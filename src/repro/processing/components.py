"""Connected-components workload: min-label propagation.

Every covered vertex starts with its own id as label; each superstep a
vertex adopts the minimum label among itself and its neighbors (computed
per worker over local edges, combined at masters).  Terminates when no
label changes — the number of supersteps equals the graph's label-diameter,
so well-clustered partitions finish in the same number of steps but with
far less sync traffic.
"""

from __future__ import annotations

import numpy as np


class ConnectedComponents:
    """Min-label propagation until fixpoint."""

    name = "connected-components"

    def init(self, pgraph) -> np.ndarray:
        """Label = own vertex id for covered vertices, -1 for isolated."""
        covered = pgraph.replica_counts > 0
        labels = np.arange(pgraph.n, dtype=np.int64)
        labels[~covered] = -1
        self._covered = covered
        return labels

    def superstep(self, pgraph, labels) -> tuple[np.ndarray, bool]:
        """One propagation round; done when no label changed."""
        new = labels.copy()
        for local in pgraph.local_edges:
            if local.shape[0] == 0:
                continue
            u = local[:, 0]
            v = local[:, 1]
            np.minimum.at(new, u, labels[v])
            np.minimum.at(new, v, labels[u])
        done = bool(np.array_equal(new, labels))
        return new, done
