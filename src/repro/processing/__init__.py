"""Distributed graph-processing simulator (the paper's Section V-E substrate).

The paper measures end-to-end time = partitioning + distributed PageRank on
a Spark/GraphX cluster.  We cannot stand up that cluster, so this package
simulates a GraphX-style edge-partitioned engine with an explicit cost
model:

- :class:`~repro.processing.engine.PartitionedGraph` — k workers, each
  holding one edge partition; vertex replicas with a master copy per
  vertex (GraphX's mirror/master scheme).
- :class:`~repro.processing.engine.PregelEngine` — superstep loop that
  runs *real* vertex programs (the numeric results are exact and validated
  against networkx) while charging simulated compute + communication time
  through :class:`~repro.processing.cost.ClusterSpec`.
- Workloads: :class:`~repro.processing.pagerank.PageRank`,
  :class:`~repro.processing.components.ConnectedComponents`,
  :class:`~repro.processing.sssp.SingleSourceShortestPaths`.

The mirror-synchronization traffic is proportional to the number of vertex
replicas, which is exactly why replication factor predicts processing time
(the correlation Table IV demonstrates).
"""

from repro.processing.cost import ClusterSpec, SimReport
from repro.processing.engine import PartitionedGraph, PregelEngine
from repro.processing.pagerank import PageRank
from repro.processing.components import ConnectedComponents
from repro.processing.sssp import SingleSourceShortestPaths
from repro.processing.gnn import GnnEpoch

__all__ = [
    "ClusterSpec",
    "SimReport",
    "PartitionedGraph",
    "PregelEngine",
    "PageRank",
    "ConnectedComponents",
    "SingleSourceShortestPaths",
    "GnnEpoch",
]
