"""Cluster cost model for the processing simulator.

The model charges, per superstep:

- **compute**: the slowest worker's local edge work,
  ``max_p |E_p| / edge_rate`` — workers proceed in lock-step (bulk
  synchronous parallel), so the straggler sets the pace;
- **communication**: mirror/master synchronization.  Every replica that is
  not the master sends one message to the master (gather) and receives one
  back (broadcast).  The per-worker traffic is divided by per-link
  bandwidth and, again, the slowest worker dominates;
- **latency**: a fixed barrier/scheduling overhead per superstep.

Defaults are calibrated for the *scaled-down* dataset stand-ins: because
the stand-in graphs are ~500x smaller than the paper's (see
``repro/graph/datasets.py``), the simulated link bandwidth and edge rate
are scaled down proportionally so that the compute/communication balance —
and therefore the replication-factor sensitivity that Table IV
demonstrates — matches the paper's 8-machine / 32-executor 10 GbE cluster.
Only *relative* comparisons across partitioners matter for the reproduced
claims.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ProcessingError


@dataclass(frozen=True)
class ClusterSpec:
    """Simulated cluster parameters.

    Attributes
    ----------
    edge_rate:
        Edges a worker processes per second (vertex-program applications
        ride along with edge work).
    link_bandwidth:
        Per-worker network bandwidth, bytes/second.
    bytes_per_message:
        Wire size of one mirror-sync message (vertex id + value + framing).
    superstep_latency:
        Fixed barrier overhead per superstep, seconds.
    """

    edge_rate: float = 1_000_000.0
    link_bandwidth: float = 1_500_000.0
    bytes_per_message: int = 48
    superstep_latency: float = 0.05

    def __post_init__(self) -> None:
        if self.edge_rate <= 0 or self.link_bandwidth <= 0:
            raise ProcessingError("cluster rates must be positive")
        if self.bytes_per_message <= 0:
            raise ProcessingError("bytes_per_message must be positive")
        if self.superstep_latency < 0:
            raise ProcessingError("superstep_latency must be >= 0")

    @classmethod
    def paper_cluster(cls) -> "ClusterSpec":
        """The paper's Section V-E cluster at face value.

        8 machines / 32 Spark executors on 10 GbE.  Constants fitted to
        Table IV: PageRank on the real OK graph (117M edges, k=32) costs
        ~2.2-2.4 s per superstep with compute dominating (~70 %) and
        mirror synchronization ~13 % — which reproduces the paper's
        sensitivity of processing time to replication factor (DBH with 1.4x
        the RF of 2PS-L pays ~1.2x the PageRank time): ~2.5M edges/s
        effective GraphX rate per executor, ~2 GB/s aggregate cluster
        goodput, 0.3 s scheduling barrier.
        """
        return cls(
            edge_rate=2_500_000.0,
            link_bandwidth=2_000_000_000.0,
            bytes_per_message=48,
            superstep_latency=0.3,
        )

    def scaled(self, ratio: float) -> "ClusterSpec":
        """A cluster slowed down by ``ratio`` (for scaled-down stand-ins).

        Simulated compute and communication time scale linearly with graph
        size, so running a ``ratio``-times smaller stand-in on a
        ``ratio``-times slower cluster reproduces the paper-scale seconds.
        The fixed per-superstep latency is left unscaled.
        """
        if ratio <= 0:
            raise ProcessingError(f"ratio must be positive, got {ratio}")
        return ClusterSpec(
            edge_rate=self.edge_rate / ratio,
            link_bandwidth=self.link_bandwidth / ratio,
            bytes_per_message=self.bytes_per_message,
            superstep_latency=self.superstep_latency,
        )


@dataclass
class SimReport:
    """Accumulated simulation outcome of one processing job.

    Attributes
    ----------
    supersteps:
        Number of supersteps executed.
    total_messages:
        Mirror-sync messages across the whole job.
    compute_seconds, comm_seconds, latency_seconds:
        Simulated time split by cause.
    converged:
        Whether the workload reached its own stopping criterion before the
        iteration cap.
    """

    supersteps: int = 0
    total_messages: int = 0
    compute_seconds: float = 0.0
    comm_seconds: float = 0.0
    latency_seconds: float = 0.0
    converged: bool = False
    per_superstep: list = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        """End-to-end simulated processing time."""
        return self.compute_seconds + self.comm_seconds + self.latency_seconds

    def record(
        self, compute: float, comm: float, latency: float, messages: int
    ) -> None:
        """Account one superstep."""
        self.supersteps += 1
        self.compute_seconds += compute
        self.comm_seconds += comm
        self.latency_seconds += latency
        self.total_messages += int(messages)
        self.per_superstep.append(
            {"compute": compute, "comm": comm, "messages": int(messages)}
        )
