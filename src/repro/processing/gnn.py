"""GNN-style workload for the processing simulator.

The paper's Section I motivation: "GNN training requires for each vertex
to compute a multi-layer neural network function in every iteration",
which is why graphs must be split across many workers (large k) — the
regime 2PS-L targets.

:class:`GnnEpoch` models one training epoch of an L-layer message-passing
GNN over the edge-partitioned graph:

- per layer, every vertex aggregates its neighbors' feature vectors
  (computed exactly, like the other workloads, on a scalar feature proxy so
  tests can validate it against a dense reference);
- mirrors must fetch the full feature vector of their vertex before each
  layer, so the per-superstep communication is ``feature_bytes`` per mirror
  — much heavier than PageRank's 8-byte rank sync, which is exactly why
  replication factor dominates GNN training cost.

One superstep = one GNN layer; an epoch = ``layers`` supersteps.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ProcessingError


class GnnEpoch:
    """Mean-aggregation message-passing layers with heavy feature sync.

    Parameters
    ----------
    layers:
        Number of message-passing layers (supersteps per epoch).
    feature_bytes:
        Wire size of one vertex feature vector; the engine's
        ``bytes_per_message`` is overridden by this workload through
        :meth:`message_bytes`.
    """

    name = "gnn-epoch"

    def __init__(self, layers: int = 3, feature_bytes: int = 1024) -> None:
        if layers < 1:
            raise ProcessingError(f"layers must be >= 1, got {layers}")
        if feature_bytes < 1:
            raise ProcessingError(
                f"feature_bytes must be >= 1, got {feature_bytes}"
            )
        self.layers = int(layers)
        self.feature_bytes = int(feature_bytes)
        self._step = 0

    def message_bytes(self) -> int:
        """Per-mirror-sync message size for this workload."""
        return self.feature_bytes

    def init(self, pgraph) -> np.ndarray:
        """Scalar feature proxy: h0(v) = degree-normalized id hash."""
        self._step = 0
        covered = pgraph.replica_counts > 0
        values = np.zeros(pgraph.n, dtype=np.float64)
        values[covered] = 1.0 + (np.arange(pgraph.n)[covered] % 7)
        self._inv_deg = np.zeros(pgraph.n, dtype=np.float64)
        nz = pgraph.degrees > 0
        self._inv_deg[nz] = 1.0 / pgraph.degrees[nz]
        self._covered = covered
        return values

    def superstep(self, pgraph, values) -> tuple[np.ndarray, bool]:
        """One mean-aggregation layer: h' = 0.5*h + 0.5*mean(neighbors)."""
        agg = np.zeros(pgraph.n, dtype=np.float64)
        for local in pgraph.local_edges:
            if local.shape[0] == 0:
                continue
            np.add.at(agg, local[:, 1], values[local[:, 0]])
            np.add.at(agg, local[:, 0], values[local[:, 1]])
        new = np.where(
            self._covered, 0.5 * values + 0.5 * agg * self._inv_deg, values
        )
        self._step += 1
        return new, self._step >= self.layers


def reference_gnn_epoch(edges: np.ndarray, n: int, layers: int) -> np.ndarray:
    """Dense single-machine reference of :class:`GnnEpoch` for tests."""
    deg = np.zeros(n, dtype=np.float64)
    np.add.at(deg, edges[:, 0], 1)
    np.add.at(deg, edges[:, 1], 1)
    covered = deg > 0
    values = np.zeros(n, dtype=np.float64)
    values[covered] = 1.0 + (np.arange(n)[covered] % 7)
    inv = np.zeros(n)
    inv[covered] = 1.0 / deg[covered]
    for _ in range(layers):
        agg = np.zeros(n)
        np.add.at(agg, edges[:, 1], values[edges[:, 0]])
        np.add.at(agg, edges[:, 0], values[edges[:, 1]])
        values = np.where(covered, 0.5 * values + 0.5 * agg * inv, values)
    return values
