"""Single-source shortest paths (unit weights): distributed BFS relaxation.

Each superstep relaxes every local edge; terminates when no distance
improves.  On unit weights this is level-synchronous BFS, so the superstep
count equals the eccentricity of the source within its component.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ProcessingError


class SingleSourceShortestPaths:
    """Unit-weight SSSP from ``source``.

    Parameters
    ----------
    source:
        Root vertex id; must be covered by the partitioning.
    """

    name = "sssp"

    def __init__(self, source: int = 0) -> None:
        if source < 0:
            raise ProcessingError(f"source must be >= 0, got {source}")
        self.source = int(source)

    def init(self, pgraph) -> np.ndarray:
        """Distance 0 at the source, +inf elsewhere."""
        if self.source >= pgraph.n:
            raise ProcessingError(
                f"source {self.source} out of range for n={pgraph.n}"
            )
        dist = np.full(pgraph.n, np.inf, dtype=np.float64)
        dist[self.source] = 0.0
        return dist

    def superstep(self, pgraph, dist) -> tuple[np.ndarray, bool]:
        """Relax all edges once; done at fixpoint."""
        new = dist.copy()
        for local in pgraph.local_edges:
            if local.shape[0] == 0:
                continue
            u = local[:, 0]
            v = local[:, 1]
            np.minimum.at(new, v, dist[u] + 1.0)
            np.minimum.at(new, u, dist[v] + 1.0)
        done = bool(np.array_equal(new, dist))
        return new, done
