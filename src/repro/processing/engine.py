"""GraphX-style edge-partitioned Pregel engine (simulated cluster).

:class:`PartitionedGraph` places each edge partition on one worker and
derives the vertex replica sets — a vertex lives (as master or mirror) on
every worker whose partition touches it; the master is the lowest-id
replica worker.  :class:`PregelEngine` then runs gather-apply-scatter
supersteps: workers compute real partial aggregates over their local
edges, mirrors ship partials to masters, masters apply the vertex program,
and new values broadcast back to mirrors.

The numeric results are exact (tests validate PageRank against networkx to
1e-8); only the *time* is simulated, via
:class:`~repro.processing.cost.ClusterSpec`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ProcessingError
from repro.processing.cost import ClusterSpec, SimReport


class PartitionedGraph:
    """The distributed placement derived from one partitioning result.

    Parameters
    ----------
    edges:
        ``(m, 2)`` edge array.
    assignments:
        Partition (worker) id per edge.
    k:
        Number of workers/partitions.
    n_vertices:
        Vertex-id space size.
    """

    def __init__(self, edges, assignments, k: int, n_vertices: int) -> None:
        edges = np.asarray(edges, dtype=np.int64)
        assignments = np.asarray(assignments)
        if edges.shape[0] != assignments.shape[0]:
            raise ProcessingError("edges and assignments length mismatch")
        if edges.shape[0] == 0:
            raise ProcessingError("cannot process an empty graph")
        if assignments.min() < 0 or assignments.max() >= k:
            raise ProcessingError("assignment out of range [0, k)")
        self.k = int(k)
        self.n = int(n_vertices)
        self.m = int(edges.shape[0])
        order = np.argsort(assignments, kind="stable")
        sorted_edges = edges[order]
        counts = np.bincount(assignments, minlength=k)
        offsets = np.zeros(k + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        #: per-worker local edge arrays
        self.local_edges = [
            sorted_edges[offsets[p] : offsets[p + 1]] for p in range(k)
        ]
        #: replica matrix: replicas[v, p] == vertex v present on worker p
        self.replicas = np.zeros((self.n, k), dtype=bool)
        self.replicas[edges[:, 0], assignments] = True
        self.replicas[edges[:, 1], assignments] = True
        #: master worker per vertex: lowest-id replica (-1 if isolated)
        any_replica = self.replicas.any(axis=1)
        self.master = np.where(any_replica, np.argmax(self.replicas, axis=1), -1)
        #: degrees over the full graph (undirected)
        self.degrees = np.zeros(self.n, dtype=np.int64)
        np.add.at(self.degrees, edges[:, 0], 1)
        np.add.at(self.degrees, edges[:, 1], 1)

    # ------------------------------------------------------------------
    @property
    def replica_counts(self) -> np.ndarray:
        """Replicas per vertex (0 for isolated vertices)."""
        return self.replicas.sum(axis=1)

    @property
    def mirror_count(self) -> int:
        """Total mirrors = total replicas - masters."""
        counts = self.replica_counts
        return int(counts.sum() - (counts > 0).sum())

    def replication_factor(self) -> float:
        """RF over covered vertices (same definition as the partitioners)."""
        counts = self.replica_counts
        covered = int((counts > 0).sum())
        return float(counts.sum()) / covered if covered else 0.0

    def sync_traffic(self) -> tuple[np.ndarray, np.ndarray, int]:
        """Per-worker (sent, received) messages for one full sync round.

        One round = mirrors send partials to masters (gather) and masters
        broadcast new values back (scatter): each mirror link carries 2
        messages per superstep.
        """
        sent = np.zeros(self.k, dtype=np.int64)
        recv = np.zeros(self.k, dtype=np.int64)
        counts = self.replica_counts
        mirror_mask = self.replicas.copy()
        covered = counts > 0
        mirror_mask[np.arange(self.n)[covered], self.master[covered]] = False
        # gather: every mirror sends 1 to its master
        sent += mirror_mask.sum(axis=0)
        mirrors_per_vertex = mirror_mask.sum(axis=1)
        np.add.at(recv, self.master[covered], mirrors_per_vertex[covered])
        # scatter: master sends 1 back to every mirror
        sent2 = np.zeros(self.k, dtype=np.int64)
        np.add.at(sent2, self.master[covered], mirrors_per_vertex[covered])
        recv2 = mirror_mask.sum(axis=0)
        total = int(2 * mirrors_per_vertex.sum())
        return sent + sent2, recv + recv2, total


class PregelEngine:
    """Superstep driver with the cluster cost model.

    Parameters
    ----------
    cluster:
        Simulated cluster parameters (defaults match the paper's setup
        order-of-magnitude; see :class:`ClusterSpec`).
    """

    def __init__(self, cluster: ClusterSpec | None = None) -> None:
        self.cluster = cluster or ClusterSpec()

    def run(
        self, pgraph: PartitionedGraph, workload, max_supersteps: int = 100
    ) -> tuple[np.ndarray, SimReport]:
        """Run ``workload`` on the partitioned graph.

        The workload protocol (see :mod:`repro.processing.pagerank`):

        - ``init(pgraph) -> values`` — initial vertex values;
        - ``superstep(pgraph, values) -> (new_values, done)`` — one exact
          global computation step (the engine charges its simulated cost).

        Returns
        -------
        (values, report):
            Final vertex values and the :class:`SimReport`.
        """
        if max_supersteps < 1:
            raise ProcessingError(
                f"max_supersteps must be >= 1, got {max_supersteps}"
            )
        spec = self.cluster
        report = SimReport()
        values = workload.init(pgraph)
        # Per-superstep costs are partitioning-dependent but constant
        # across supersteps; compute once.
        local_sizes = np.asarray([e.shape[0] for e in pgraph.local_edges])
        compute_s = float(local_sizes.max()) / spec.edge_rate
        sent, recv, msgs = pgraph.sync_traffic()
        # Workloads with heavier sync payloads (e.g. GNN feature vectors)
        # override the wire size per mirror message.
        bytes_per_message = spec.bytes_per_message
        override = getattr(workload, "message_bytes", None)
        if callable(override):
            bytes_per_message = int(override())
        per_worker_bytes = (sent + recv) * bytes_per_message
        comm_s = float(per_worker_bytes.max()) / spec.link_bandwidth
        for _ in range(max_supersteps):
            values, done = workload.superstep(pgraph, values)
            report.record(compute_s, comm_s, spec.superstep_latency, msgs)
            if done:
                report.converged = True
                break
        return values, report
