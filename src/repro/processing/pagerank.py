"""PageRank workload (the paper's Table IV job: static PR, 100 iterations).

The computation is performed exactly, per partition: each worker computes
partial neighbor sums over its local edges (this is the real distributed
dataflow — partials from different workers add up to the true sum because
every edge lives on exactly one worker), masters combine and apply the
PageRank update.  Undirected semantics: each edge contributes in both
directions, with degree normalization, matching ``networkx.pagerank`` on
the undirected graph.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ProcessingError


class PageRank:
    """Static PageRank with damping, degree-normalized over undirected edges.

    Parameters
    ----------
    damping:
        The usual 0.85.
    tol:
        L1 convergence tolerance; set to 0 to force the full iteration
        budget (the paper runs a fixed 100 iterations).
    """

    name = "pagerank"

    def __init__(self, damping: float = 0.85, tol: float = 0.0) -> None:
        if not 0.0 < damping < 1.0:
            raise ProcessingError(f"damping must be in (0, 1), got {damping}")
        self.damping = float(damping)
        self.tol = float(tol)

    def init(self, pgraph) -> np.ndarray:
        """Uniform start over covered vertices."""
        covered = pgraph.replica_counts > 0
        n_cov = int(covered.sum())
        values = np.zeros(pgraph.n, dtype=np.float64)
        values[covered] = 1.0 / n_cov
        self._covered = covered
        self._n_cov = n_cov
        # Dangling mass: degree-0 covered vertices cannot exist (covered
        # means adjacent to an edge), so no dangling handling is needed.
        self._inv_deg = np.zeros(pgraph.n, dtype=np.float64)
        nz = pgraph.degrees > 0
        self._inv_deg[nz] = 1.0 / pgraph.degrees[nz]
        return values

    def superstep(self, pgraph, values) -> tuple[np.ndarray, bool]:
        """One exact PR iteration computed via per-worker partials."""
        partial = np.zeros(pgraph.n, dtype=np.float64)
        contrib = values * self._inv_deg
        for local in pgraph.local_edges:
            if local.shape[0] == 0:
                continue
            np.add.at(partial, local[:, 1], contrib[local[:, 0]])
            np.add.at(partial, local[:, 0], contrib[local[:, 1]])
        new = np.zeros_like(values)
        new[self._covered] = (
            (1.0 - self.damping) / self._n_cov
            + self.damping * partial[self._covered]
        )
        done = False
        if self.tol > 0:
            done = float(np.abs(new - values).sum()) < self.tol
        return new, done
