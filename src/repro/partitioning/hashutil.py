"""Deterministic integer hashing shared by all partitioners.

Python's builtin ``hash`` is randomized per process for str and not stable
across numpy dtypes, so stateless partitioners (DBH, Grid) and the 2PS-L
hash fallback use an explicit splitmix64 finalizer — deterministic, well
mixed, and vectorizable over numpy arrays.
"""

from __future__ import annotations

import numpy as np

_MASK64 = np.uint64(0xFFFFFFFFFFFFFFFF)
_C1 = np.uint64(0xBF58476D1CE4E5B9)
_C2 = np.uint64(0x94D049BB133111EB)
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)


def splitmix64(values, seed: int = 0):
    """SplitMix64 finalizer over an int scalar or numpy array.

    Returns uint64 with the same shape as the input.  The ``seed`` is mixed
    in additively so different partitioners can decorrelate their hashes.
    """
    old = np.seterr(over="ignore")
    try:
        x = (np.asarray(values).astype(np.uint64) + _GOLDEN + np.uint64(seed)) & _MASK64
        x = (x ^ (x >> np.uint64(30))) * _C1 & _MASK64
        x = (x ^ (x >> np.uint64(27))) * _C2 & _MASK64
        x = x ^ (x >> np.uint64(31))
    finally:
        np.seterr(**old)
    return x


def hash_to_partition(values, k: int, seed: int = 0):
    """Map vertex ids to partitions in ``[0, k)`` (scalar or vectorized)."""
    hashed = splitmix64(values, seed)
    result = (hashed % np.uint64(k)).astype(np.int64)
    if np.isscalar(values) or np.ndim(values) == 0:
        return int(result)
    return result
