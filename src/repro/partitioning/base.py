"""Abstract edge partitioner and the result record.

Every partitioner — the core 2PS-L and all baselines — implements
:class:`EdgePartitioner.partition` with the same contract: consume an edge
stream (possibly over several passes), return a :class:`PartitionResult`
with per-edge assignments in stream order, the final replication state,
wall-clock phase timings and machine-neutral operation counts.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.errors import PartitioningError, StreamError
from repro.metrics.runtime import CostCounter, CostModel, PhaseTimer
from repro.partitioning.state import PartitionState
from repro.streaming.stream import EdgeStream, as_stream, auto_chunk_size


@dataclass
class PartitionArtifacts:
    """Typed hand-off of reusable algorithm state.

    Produced by partitioners that can seed downstream consumers (e.g.
    ``TwoPhasePartitioner(keep_state=True)`` exposes its Phase-1 state so
    an :class:`~repro.core.incremental.IncrementalPartitioner` can be
    built without re-running the pipeline).  Unlike ``extras`` — a loose
    bag of run diagnostics — these fields are part of the public result
    contract.

    Attributes
    ----------
    clustering:
        The Phase-1 :class:`~repro.core.clustering.ClusteringResult`
        (vertex-to-cluster map, cluster volumes, degree array).
    c2p:
        ``int64`` cluster-to-partition map from the Graham scheduling
        step.
    tuning:
        The :class:`~repro.tuning.TuningDecision` of an auto-tuned run
        (``partition(..., tune="auto")``), or ``None`` when the run was
        not tuned.
    """

    clustering: object | None = None
    c2p: np.ndarray | None = None
    tuning: object | None = None


@dataclass
class PartitionResult:
    """Outcome of one partitioning run.

    Attributes
    ----------
    partitioner:
        Name of the algorithm (e.g. ``"2PS-L"``, ``"HDRF"``).
    k, alpha:
        Requested partition count and imbalance bound.
    n_vertices, n_edges:
        Graph dimensions.
    assignments:
        ``int32`` partition id per edge, aligned with the stream order.
    state:
        Final :class:`PartitionState` (replication matrix, sizes).
    timer:
        Wall-clock :class:`PhaseTimer` with per-phase totals.
    cost:
        Machine-neutral :class:`CostCounter`.
    state_bytes:
        Measured peak state footprint of the partitioner.
    extras:
        Algorithm-specific diagnostics (e.g. 2PS-L's pre-partitioned edge
        count, number of clusters).
    artifacts:
        Typed :class:`PartitionArtifacts` for downstream consumers, or
        ``None`` when the partitioner did not keep reusable state.
    """

    partitioner: str
    k: int
    alpha: float
    n_vertices: int
    n_edges: int
    assignments: np.ndarray
    state: PartitionState
    timer: PhaseTimer
    cost: CostCounter
    state_bytes: int = 0
    extras: dict = field(default_factory=dict)
    artifacts: PartitionArtifacts | None = None

    # ------------------------------------------------------------------
    @property
    def sizes(self) -> np.ndarray:
        """Edge count per partition."""
        return np.bincount(self.assignments, minlength=self.k).astype(np.int64)

    @property
    def replication_factor(self) -> float:
        """Replication factor from the final state."""
        return self.state.replication_factor()

    @property
    def measured_alpha(self) -> float:
        """Observed imbalance of the assignment."""
        if self.n_edges == 0:
            return 1.0
        return float(self.sizes.max()) * self.k / self.n_edges

    @property
    def wall_seconds(self) -> float:
        """Total wall-clock seconds across all phases."""
        return self.timer.total()

    def model_seconds(self, model: CostModel | None = None) -> float:
        """Machine-neutral run-time from the operation counts."""
        return (model or CostModel()).seconds(self.cost)

    def partition_edge_indices(self, p: int) -> np.ndarray:
        """Stream indices of the edges assigned to partition ``p``."""
        if not 0 <= p < self.k:
            raise PartitioningError(f"partition {p} out of range for k={self.k}")
        return np.where(self.assignments == p)[0]

    def summary(self) -> dict:
        """Compact dict for experiment tables."""
        return {
            "partitioner": self.partitioner,
            "k": self.k,
            "rf": round(self.replication_factor, 4),
            "alpha": round(self.measured_alpha, 4),
            "wall_s": round(self.wall_seconds, 4),
            "model_s": round(self.model_seconds(), 4),
            "state_bytes": self.state_bytes,
        }


class EdgePartitioner(ABC):
    """Base class for all edge partitioners.

    Subclasses implement :meth:`_run`; the public :meth:`partition` wraps it
    with input coercion and result validation.
    """

    #: Human-readable algorithm name; subclasses override.
    name: str = "abstract"

    #: Default stream chunk size for this partitioner's passes; ``None``
    #: keeps the stream's own default.  Settable on any instance and
    #: overridable per call via ``partition(..., chunk_size=...)``.
    chunk_size: int | None = None

    #: Default auto-tuning mode; ``None`` (no tuning) or ``"auto"``.
    #: Settable on any instance and overridable per call via
    #: ``partition(..., tune=...)``.
    tune: str | None = None

    def partition(
        self,
        source,
        k: int,
        alpha: float = 1.05,
        n_vertices: int | None = None,
        chunk_size: int | None = None,
        tune: str | None = None,
    ) -> PartitionResult:
        """Partition an edge source into ``k`` parts.

        Parameters
        ----------
        source:
            An :class:`~repro.streaming.stream.EdgeStream`, a
            :class:`~repro.graph.graph.Graph`, or an ``(m, 2)`` array.
        k:
            Number of partitions (>= 2).
        alpha:
            Imbalance bound for the hard cap (default 1.05, as in the paper).
        n_vertices:
            Vertex-count override for bare arrays.
        chunk_size:
            Edges per stream chunk for every pass of this run.  Defaults
            to the partitioner's own ``chunk_size`` attribute (when it has
            one), else the stream's current default.  The string
            ``"auto"`` derives a chunk size from the stream's vertex
            count, ``k`` and a cache budget
            (:func:`repro.streaming.stream.auto_chunk_size`).  Scoped to
            this run: a caller-supplied stream gets its previous default
            back afterwards.  A chunk size is a pure performance knob:
            results are identical for any value (enforced by the
            kernel-backend contract).
        tune:
            ``"auto"`` runs the online auto-tuner (:mod:`repro.tuning`)
            over a short probe of the stream before the real passes and
            applies its decisions for this run — backend (only when the
            partitioner's own ``backend`` is unpinned), chunk size (only
            when the resolved ``chunk_size`` is ``None``/``"auto"``) and
            sync interval (only when barrier frequency is semantics-free).
            Tuned knobs are all pure execution knobs, so results are
            bit-exact with an untuned run.  The decision is recorded in
            ``result.artifacts.tuning``.  Defaults to the partitioner's
            own ``tune`` attribute; ``None`` disables tuning.

        Raises
        ------
        PartitioningError
            If the subclass produced an invalid assignment (internal bug
            guard) or the inputs are malformed.
        """
        if tune is None:
            tune = getattr(self, "tune", None)
        if tune not in (None, "auto"):
            raise PartitioningError(
                f"tune must be None or 'auto', got {tune!r}"
            )
        if chunk_size is None:
            chunk_size = getattr(self, "chunk_size", None)
        stream = as_stream(source, n_vertices=n_vertices)
        if k < 2:
            raise PartitioningError(f"k must be >= 2, got {k}")
        if isinstance(chunk_size, str) and chunk_size != "auto":
            raise PartitioningError(
                f"chunk_size must be a positive int or 'auto', "
                f"got {chunk_size!r}"
            )
        if not isinstance(chunk_size, str) and (
            chunk_size is not None and chunk_size <= 0
        ):
            raise PartitioningError(
                f"chunk_size must be positive, got {chunk_size}"
            )
        if stream.n_edges == 0:
            raise PartitioningError("cannot partition an empty edge stream")

        decision = None
        saved_knobs: dict = {}
        if tune == "auto":
            # Imported lazily: repro.tuning depends on the kernel registry,
            # which this module must not import at module level.
            from repro.tuning import tune_run

            decision = tune_run(self, stream, k, chunk_size)
            if decision.backend is not None:
                saved_knobs["backend"] = self.backend
                self.backend = decision.backend
            if decision.chunk_size is not None:
                chunk_size = decision.chunk_size
            if decision.sync_interval is not None:
                saved_knobs["sync_interval"] = self.sync_interval
                self.sync_interval = decision.sync_interval
        if chunk_size == "auto":
            chunk_size = auto_chunk_size(stream.n_vertices, k)

        previous_chunk_size = stream.default_chunk_size
        try:
            if chunk_size is not None:
                stream.default_chunk_size = int(chunk_size)
            result = self._run(stream, k, alpha)
        finally:
            stream.default_chunk_size = previous_chunk_size
            for attr, value in saved_knobs.items():
                setattr(self, attr, value)
        if decision is not None:
            if result.artifacts is None:
                result.artifacts = PartitionArtifacts()
            result.artifacts.tuning = decision
        if result.assignments.shape[0] != stream.n_edges:
            raise PartitioningError(
                f"{self.name}: produced {result.assignments.shape[0]} "
                f"assignments for {stream.n_edges} edges"
            )
        if (result.assignments < 0).any():
            raise PartitioningError(f"{self.name}: left edges unassigned")
        return result

    @abstractmethod
    def _run(self, stream: EdgeStream, k: int, alpha: float) -> PartitionResult:
        """Algorithm body; must assign every edge."""

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _resolve_n_vertices(stream: EdgeStream, degrees=None) -> int:
        """Vertex count from the stream hint or a computed degree array."""
        if stream.n_vertices is not None:
            return int(stream.n_vertices)
        if degrees is not None:
            return int(len(degrees))
        raise StreamError(
            "stream does not know its vertex count; run a degree pass first"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"
