"""Shared partitioning infrastructure.

Everything common to the core 2PS-L partitioner and the baseline
partitioners lives here:

- :class:`~repro.partitioning.state.PartitionState` — the ``O(|V| * k)``
  vertex-to-partition replication bit matrix plus partition sizes and the
  hard balance cap (Section II / Table II of the paper).
- :class:`~repro.partitioning.base.EdgePartitioner` — the abstract driver
  every partitioner implements.
- :class:`~repro.partitioning.base.PartitionResult` — assignments, state,
  phase timings and the machine-neutral operation counts.
"""

from repro.partitioning.state import (
    LeastLoadedTracker,
    PackedReplicaMatrix,
    PartitionState,
)
from repro.partitioning.base import (
    EdgePartitioner,
    PartitionArtifacts,
    PartitionResult,
)

__all__ = [
    "LeastLoadedTracker",
    "PackedReplicaMatrix",
    "PartitionState",
    "EdgePartitioner",
    "PartitionArtifacts",
    "PartitionResult",
]
