"""Partitioning state: replication matrix, partition sizes, balance cap.

This is the ``O(|V| * k)`` state that all stateful streaming partitioners
share (paper Table II): a vertex-to-partition replication bit matrix and the
current edge count of every partition.  The *hard* balance cap
``alpha * |E| / k`` (Section III-B, Step 3: "We enforce a hard balancing
cap") is owned by this class so every partitioner enforces it identically.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.errors import BalanceError, PartitioningError


class LeastLoadedTracker:
    """Amortized O(log k) argmin over a monotonically growing sizes vector.

    The streaming passes query the least-loaded partition only on capacity
    overflows, but naively that query is an O(k) scan per overflow.  This
    tracker keeps a lazily-refreshed heap of ``(size, partition)`` entries:
    sizes only ever grow during a pass, so a stale top entry (recorded size
    below the live one) can never hide the true minimum — it is refreshed
    in place and the pop retried.  Each assignment stales at most one
    entry, so the total refresh work is O(assignments + queries) heap
    operations.

    Ties break toward the smallest partition index, matching a
    ``min(range(k), key=sizes.__getitem__)`` scan bit for bit.

    Parameters
    ----------
    sizes:
        Live, indexable per-partition edge counts (list or ndarray).  The
        caller keeps mutating it; entries must be non-decreasing for the
        lifetime of the tracker.
    """

    __slots__ = ("_sizes", "_heap")

    def __init__(self, sizes) -> None:
        self._sizes = sizes
        self._heap = [(int(s), p) for p, s in enumerate(sizes)]
        heapq.heapify(self._heap)

    def argmin(self) -> int:
        """Index of the smallest current size (smallest index on ties)."""
        heap = self._heap
        sizes = self._sizes
        while True:
            recorded, p = heap[0]
            current = int(sizes[p])
            if recorded == current:
                return p
            heapq.heapreplace(heap, (current, p))


class PartitionState:
    """Replication bit matrix + partition sizes with a hard balance cap.

    Parameters
    ----------
    n_vertices, k:
        Dimensions of the replication matrix.
    n_edges:
        Total number of edges that will be assigned (defines the cap).
    alpha:
        Imbalance factor; the cap is ``max(floor(alpha * m / k), ceil(m/k))``
        so a full assignment is always feasible.

    Raises
    ------
    PartitioningError
        On non-positive dimensions or ``k < 2``.
    BalanceError
        If ``alpha < 1`` (the constraint would be infeasible by definition).
    """

    def __init__(self, n_vertices: int, k: int, n_edges: int, alpha: float = 1.05):
        if k < 2:
            raise PartitioningError(f"k must be >= 2, got {k}")
        if n_vertices < 0 or n_edges < 0:
            raise PartitioningError("n_vertices and n_edges must be >= 0")
        if alpha < 1.0:
            raise BalanceError(f"alpha must be >= 1, got {alpha}")
        self.n_vertices = int(n_vertices)
        self.k = int(k)
        self.n_edges = int(n_edges)
        self.alpha = float(alpha)
        self.capacity = max(
            int(math.floor(alpha * n_edges / k)), int(math.ceil(n_edges / k))
        )
        self.replicas = np.zeros((self.n_vertices, self.k), dtype=bool)
        self.sizes = np.zeros(self.k, dtype=np.int64)

    # ------------------------------------------------------------------
    # assignment
    # ------------------------------------------------------------------
    def assign(self, u: int, v: int, p: int) -> None:
        """Assign one edge ``(u, v)`` to partition ``p``.

        Raises
        ------
        BalanceError
            If ``p`` is already at its hard capacity.
        """
        if self.sizes[p] >= self.capacity:
            raise BalanceError(
                f"partition {p} is at capacity {self.capacity}"
            )
        self.sizes[p] += 1
        self.replicas[u, p] = True
        self.replicas[v, p] = True

    def scatter_edges(self, us, vs, ps) -> None:
        """Batch-record assigned edges: replica bits plus size counts.

        Vectorized counterpart of :meth:`assign` for whole stream chunks;
        duplicate (vertex, partition) pairs collapse naturally because the
        replica matrix is boolean.  The hard cap is *not* enforced here —
        callers either pre-check capacity per chunk (2PS-L kernels) or do
        not enforce balance at all (stateless baselines, which report the
        measured alpha instead).
        """
        ps = np.asarray(ps)
        self.replicas[us, ps] = True
        self.replicas[vs, ps] = True
        self.sizes += np.bincount(ps, minlength=self.k)

    def is_full(self, p: int) -> bool:
        """Whether partition ``p`` reached the hard cap."""
        return bool(self.sizes[p] >= self.capacity)

    def least_loaded_open(self) -> int:
        """Index of the least-loaded partition below the cap.

        This is the paper's last-resort fallback ("we assign the edge to the
        currently least loaded partition as a last resort").

        Raises
        ------
        BalanceError
            If every partition is full (only possible when more than
            ``capacity * k`` edges are pushed in).
        """
        open_mask = self.sizes < self.capacity
        if not open_mask.any():
            raise BalanceError("all partitions are at capacity")
        candidates = np.where(open_mask)[0]
        return int(candidates[np.argmin(self.sizes[candidates])])

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def replica_counts(self) -> np.ndarray:
        """Per-vertex replica counts (0 for vertices never seen)."""
        return self.replicas.sum(axis=1)

    def vertex_cover_sizes(self) -> np.ndarray:
        """``|V(p_i)|`` per partition — vertices adjacent to an edge of p_i."""
        return self.replicas.sum(axis=0)

    def replication_factor(self) -> float:
        """``RF = (1/|V|) * sum_i |V(p_i)|``, over *covered* vertices.

        The paper normalizes by ``|V|``; isolated vertices (never streamed)
        are excluded from the denominator so RF >= 1 whenever any edge
        exists, matching the standard implementation.
        """
        covered = int((self.replica_counts() > 0).sum())
        if covered == 0:
            return 0.0
        return float(self.vertex_cover_sizes().sum()) / covered

    def measured_alpha(self) -> float:
        """Observed imbalance ``max_i |p_i| / (|E| / k)``."""
        if self.n_edges == 0:
            return 1.0
        return float(self.sizes.max()) * self.k / self.n_edges

    def nbytes(self) -> int:
        """Memory footprint of the partitioning state (Table II model)."""
        return int(self.replicas.nbytes + self.sizes.nbytes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PartitionState(n={self.n_vertices}, k={self.k}, "
            f"cap={self.capacity}, assigned={int(self.sizes.sum())})"
        )
