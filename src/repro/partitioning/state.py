"""Partitioning state: replication matrix, partition sizes, balance cap.

This is the ``O(|V| * k)`` state that all stateful streaming partitioners
share (paper Table II): a vertex-to-partition replication bit matrix and the
current edge count of every partition.  The *hard* balance cap
``alpha * |E| / k`` (Section III-B, Step 3: "We enforce a hard balancing
cap") is owned by this class so every partitioner enforces it identically.

Shared-memory lifecycle
-----------------------
The two mutable arrays (``replicas``, ``sizes``) are obtained through a
pluggable allocator, so the same state can live on the heap (the default,
plain ``np.zeros``) or inside one ``multiprocessing.shared_memory`` segment
that several processes map at once.  The contract:

- The *creator* calls :meth:`PartitionState.from_shared`, hands the segment
  name (:attr:`shm_name`) to other processes, and — once every consumer is
  done — calls :meth:`close` (drop this process's mapping) and exactly one
  :meth:`unlink` (remove the segment from the system).  A segment that is
  never unlinked leaks until reboot; the ``resource_tracker`` warns about
  it at interpreter shutdown.
- Every *attacher* calls :meth:`PartitionState.attach` with identical
  dimensions and calls :meth:`close` when done (never :meth:`unlink`).
- :meth:`close` invalidates ``replicas``/``sizes``; any outside reference
  to those arrays must be dropped first (``close`` raises ``BufferError``
  otherwise, by design — a mapped view outliving its segment is a bug).
- Unlinking while attachers still hold mappings is safe on POSIX: the name
  disappears but the memory survives until the last ``close``.

Heap-backed states ignore ``close``/``unlink`` (both are no-ops), so
generic code can run the full lifecycle unconditionally.

Dirty-row delta barriers
------------------------
A state created with ``track_dirty=True`` additionally carries a per-vertex
*dirty bitmap* (one bool per replica-matrix row).  The sharded parallel
partitioner gives each worker view such a bitmap and marks the endpoint
rows of every sync window it streams (a superset of the rows the kernels
can possibly write, since every replica write targets a window-edge
endpoint).  The synchronization barrier then merges **only the union of
dirty rows** through :func:`merge_replica_deltas` instead of re-broadcasting
the full ``|V| x k`` matrix: rows that are dirty nowhere are bit-identical
across the global state and every view (they were refreshed at the previous
barrier and unwritten since), so skipping them cannot change the merge.
This makes barrier cost proportional to the touched vertex set of a sync
window, not to ``|V|``.

Bit-packed replica rows
-----------------------
A state created with ``packed=True`` stores the replication matrix as
:class:`PackedReplicaMatrix` — ``ceil(k / 8)`` bytes per vertex instead of
``k`` dense bools, an 8x cut of the dominant ``|V| x k`` term in the Table
II memory model.  The packed layout is **little bit order**: column ``j``
lives at bit ``j % 8`` of byte ``j // 8`` of its row, i.e. exactly
``np.packbits(dense_row, bitorder="little")``.  Bits past column ``k - 1``
in the last byte are invariantly zero, which keeps byte-wise popcounts and
ORs exact; every write path below preserves the invariant.

The wrapper speaks the same indexing dialect the kernels use on the dense
matrix (scalar/fancy boolean reads, ``= True`` scalar/fancy writes with
duplicate collapse, dense row gathers, dense row assignment, axis sums,
``__array__`` for whole-matrix comparison), so packed state drops into
every backend, runner, and the shared-memory machinery unchanged — and the
differential harness pins packed-vs-dense bit-exactness end to end.  Merge
barriers OR raw uint8 rows directly (``np.bitwise_or`` is a logical OR on
bools and a byte OR on packed rows, so one code path serves both).
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.errors import BalanceError, PartitioningError


class _BufferArena:
    """Sequential, alignment-respecting array allocator over one buffer.

    Hands out ndarray views over consecutive (aligned) slices of ``buf``.
    Creator and attachers of a shared segment allocate in the same order
    with the same shapes, so their views land on identical offsets.
    """

    __slots__ = ("_buf", "_offset")

    def __init__(self, buf) -> None:
        self._buf = buf
        self._offset = 0

    def __call__(self, shape, dtype) -> np.ndarray:
        dt = np.dtype(dtype)
        align = max(int(dt.alignment), 1)
        offset = -(-self._offset // align) * align
        arr = np.ndarray(shape, dtype=dt, buffer=self._buf, offset=offset)
        self._offset = offset + arr.nbytes
        return arr


def packed_row_bytes(k: int) -> int:
    """Bytes per bit-packed replica row: ``ceil(k / 8)``."""
    return (int(k) + 7) // 8


class PackedReplicaMatrix:
    """Bit-packed boolean ``(n, k)`` matrix over ``(n, ceil(k/8))`` uint8.

    Layout: little bit order — column ``j`` is bit ``j % 8`` of byte
    ``j // 8``, matching ``np.packbits(dense, axis=1, bitorder="little")``.
    Bits past column ``k - 1`` stay zero (every writer preserves this), so
    ``np.bitwise_count`` popcounts and byte-wise ORs are exact.

    Supported access patterns (the kernel contract's working set):

    - ``m[rows, cols]`` with any scalar/array mix -> dense bool (a copy,
      like fancy indexing on an ndarray);
    - ``m[rows]`` / ``m[i]`` row gathers -> dense bool rows;
    - ``m[rows, cols] = True`` — duplicate ``(row, col)`` pairs collapse
      (``np.bitwise_or.at``, the unbuffered scatter);
    - ``m[i, j] = False`` for *scalar* element writes only (the
      incremental partitioner clears replica bits on deletion; a fancy
      ``= False`` stays unsupported because the streaming kernels never
      clear bits in bulk);
    - ``m[rows] = dense_bool`` whole-row assignment (re-packs);
    - ``m.sum(axis=0|1)``, ``m.any()``, ``np.asarray(m)``, ``m.copy()``.

    Anything else raises, loudly, rather than silently diverging from
    dense semantics — the differential harness depends on that.
    """

    __slots__ = ("packed", "k")

    def __init__(self, packed: np.ndarray, k: int) -> None:
        self.packed = packed
        self.k = int(k)

    # -- shape protocol -------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return (self.packed.shape[0], self.k)

    @property
    def nbytes(self) -> int:
        return int(self.packed.nbytes)

    def __len__(self) -> int:
        return self.packed.shape[0]

    # -- reads ----------------------------------------------------------
    def __getitem__(self, index):
        if isinstance(index, tuple):
            rows, cols = index
            cols = np.asarray(cols)
            bits = (self.packed[rows, cols >> 3] >> (cols & 7)) & 1
            return bits.astype(bool)
        sub = self.packed[index]
        axis = sub.ndim - 1  # scalar row -> 1-d, gather -> 2-d
        return np.unpackbits(
            sub, axis=axis, count=self.k, bitorder="little"
        ).view(bool)

    def sum(self, axis=None):
        if axis == 1:
            return np.bitwise_count(self.packed).sum(axis=1, dtype=np.int64)
        if axis == 0:
            # Chunked unpack keeps the dense scratch bounded at ~0.5 MiB.
            out = np.zeros(self.k, dtype=np.int64)
            step = max(1, (1 << 19) // max(self.packed.shape[1], 1))
            for lo in range(0, self.packed.shape[0], step):
                out += np.unpackbits(
                    self.packed[lo : lo + step],
                    axis=1, count=self.k, bitorder="little",
                ).sum(axis=0, dtype=np.int64)
            return out
        if axis is None:
            return int(np.bitwise_count(self.packed).sum())
        raise PartitioningError(
            f"PackedReplicaMatrix.sum: unsupported axis {axis!r}"
        )

    def any(self) -> bool:
        return bool(self.packed.any())

    def copy(self) -> np.ndarray:
        """Dense bool copy (consumers of copies expect plain ndarrays)."""
        return np.unpackbits(
            self.packed, axis=1, count=self.k, bitorder="little"
        ).view(bool)

    def __array__(self, dtype=None, copy=None) -> np.ndarray:
        dense = self.copy()
        return dense if dtype is None else dense.astype(dtype)

    # -- writes ---------------------------------------------------------
    def __setitem__(self, index, value) -> None:
        if isinstance(index, tuple):
            rows, cols = index
            rows = np.asarray(rows)
            cols = np.asarray(cols)
            if rows.ndim == 0 and cols.ndim == 0:
                c = int(cols)
                if value is True or value is np.True_:
                    self.packed[int(rows), c >> 3] |= np.uint8(1 << (c & 7))
                elif value is False or value is np.False_:
                    self.packed[int(rows), c >> 3] &= np.uint8(
                        ~(1 << (c & 7)) & 0xFF
                    )
                else:
                    raise PartitioningError(
                        "PackedReplicaMatrix scalar writes support only "
                        f"'= True' / '= False', got {value!r}"
                    )
                return
            if not (value is True or value is np.True_):
                raise PartitioningError(
                    "PackedReplicaMatrix fancy element writes support "
                    f"only '= True', got {value!r}"
                )
            rows, cols = np.broadcast_arrays(rows, cols)
            # ``|=`` buffers duplicate (row, byte) targets and drops bits;
            # ``bitwise_or.at`` is the unbuffered scatter.
            np.bitwise_or.at(
                self.packed,
                (rows, cols >> 3),
                np.left_shift(np.uint8(1), (cols & 7).astype(np.uint8)),
            )
            return
        dense = np.asarray(value, dtype=bool)
        if dense.shape[-1] != self.k:
            raise PartitioningError(
                f"PackedReplicaMatrix row assignment needs {self.k} "
                f"columns, got shape {dense.shape}"
            )
        # packbits zero-pads to the byte boundary -> tail bits stay zero.
        self.packed[index] = np.packbits(
            dense, axis=-1, bitorder="little"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PackedReplicaMatrix(n={len(self)}, k={self.k})"


def _replica_storage(replicas):
    """Raw storage of a replica matrix: the uint8 plane when packed, the
    matrix itself when dense.  ``np.bitwise_or`` on the result is a row
    merge in both representations, so barrier code stays representation
    agnostic."""
    packed = getattr(replicas, "packed", None)
    return replicas if packed is None else packed


class LeastLoadedTracker:
    """Amortized O(log k) argmin over a monotonically growing sizes vector.

    The streaming passes query the least-loaded partition only on capacity
    overflows, but naively that query is an O(k) scan per overflow.  This
    tracker keeps a lazily-refreshed heap of ``(size, partition)`` entries:
    sizes only ever grow during a pass, so a stale top entry (recorded size
    below the live one) can never hide the true minimum — it is refreshed
    in place and the pop retried.  Each assignment stales at most one
    entry, so the total refresh work is O(assignments + queries) heap
    operations.

    Ties break toward the smallest partition index, matching a
    ``min(range(k), key=sizes.__getitem__)`` scan bit for bit.

    Parameters
    ----------
    sizes:
        Live, indexable per-partition edge counts (list or ndarray).  The
        caller keeps mutating it; entries must be non-decreasing for the
        lifetime of the tracker.
    """

    __slots__ = ("_sizes", "_heap")

    def __init__(self, sizes) -> None:
        self._sizes = sizes
        self._heap = [(int(s), p) for p, s in enumerate(sizes)]
        heapq.heapify(self._heap)

    def argmin(self) -> int:
        """Index of the smallest current size (smallest index on ties)."""
        heap = self._heap
        sizes = self._sizes
        while True:
            recorded, p = heap[0]
            current = int(sizes[p])
            if recorded == current:
                return p
            heapq.heapreplace(heap, (current, p))


class PartitionState:
    """Replication bit matrix + partition sizes with a hard balance cap.

    Parameters
    ----------
    n_vertices, k:
        Dimensions of the replication matrix.
    n_edges:
        Total number of edges that will be assigned (defines the cap).
    alpha:
        Imbalance factor; the cap is ``max(floor(alpha * m / k), ceil(m/k))``
        so a full assignment is always feasible.

    allocator:
        Optional ``callable(shape, dtype) -> ndarray`` producing the
        state arrays *zero-filled*.  ``None`` (the default) allocates on
        the heap with ``np.zeros``.  :meth:`from_shared`/:meth:`attach`
        pass a :class:`_BufferArena` over a shared-memory segment.
    track_dirty:
        When True, allocate the per-row dirty bitmap used by the delta
        barriers (see the module docstring); creators and attachers of a
        shared segment must agree on it (it changes the segment layout).
    packed:
        When True, store the replication matrix bit-packed
        (:class:`PackedReplicaMatrix`, ``ceil(k/8)`` bytes per row) instead
        of dense bool.  Bit-exact with dense by contract; creators and
        attachers of a shared segment must agree on it (layout).

    Raises
    ------
    PartitioningError
        On non-positive dimensions or ``k < 2``.
    BalanceError
        If ``alpha < 1`` (the constraint would be infeasible by definition).
    """

    def __init__(
        self,
        n_vertices: int,
        k: int,
        n_edges: int,
        alpha: float = 1.05,
        *,
        allocator=None,
        track_dirty: bool = False,
        packed: bool = False,
    ):
        if k < 2:
            raise PartitioningError(f"k must be >= 2, got {k}")
        if n_vertices < 0 or n_edges < 0:
            raise PartitioningError("n_vertices and n_edges must be >= 0")
        if alpha < 1.0:
            raise BalanceError(f"alpha must be >= 1, got {alpha}")
        self.n_vertices = int(n_vertices)
        self.k = int(k)
        self.n_edges = int(n_edges)
        self.alpha = float(alpha)
        self.capacity = max(
            int(math.floor(alpha * n_edges / k)), int(math.ceil(n_edges / k))
        )
        #: Whether the replica matrix is bit-packed (segment-layout flag).
        self.packed = bool(packed)
        alloc = np.zeros if allocator is None else allocator
        if packed:
            self.replicas = PackedReplicaMatrix(
                alloc((self.n_vertices, packed_row_bytes(self.k)), np.uint8),
                self.k,
            )
        else:
            self.replicas = alloc((self.n_vertices, self.k), bool)
        self.sizes = alloc(self.k, np.int64)
        #: Dirty-row bitmap for delta barriers (``None`` when untracked).
        self.dirty = alloc(self.n_vertices, bool) if track_dirty else None
        self._shm = None
        self._owns_segment = False

    # ------------------------------------------------------------------
    # shared-memory lifecycle (see the module docstring for the contract)
    # ------------------------------------------------------------------
    @staticmethod
    def shared_nbytes(
        n_vertices: int,
        k: int,
        track_dirty: bool = False,
        packed: bool = False,
    ) -> int:
        """Segment size for a shared state of these dimensions."""
        row_bytes = packed_row_bytes(k) if packed else int(k)
        replicas = int(n_vertices) * row_bytes
        aligned = -(-replicas // 8) * 8  # int64 alignment for ``sizes``
        total = aligned + 8 * int(k)
        if track_dirty:
            total += int(n_vertices)
        return max(total, 1)

    @classmethod
    def from_shared(
        cls,
        n_vertices: int,
        k: int,
        n_edges: int,
        alpha: float = 1.05,
        *,
        name: str | None = None,
        track_dirty: bool = False,
        packed: bool = False,
    ) -> "PartitionState":
        """Create a state whose arrays live in a new shared-memory segment.

        The caller owns the segment: it must :meth:`close` *and*
        :meth:`unlink` it (see the module docstring).  ``name`` picks the
        segment name explicitly; ``None`` lets the OS choose one.
        """
        from multiprocessing import shared_memory

        size = cls.shared_nbytes(n_vertices, k, track_dirty, packed)
        shm = shared_memory.SharedMemory(name=name, create=True, size=size)
        try:
            np.frombuffer(shm.buf, dtype=np.uint8)[:] = 0
            state = cls(
                n_vertices, k, n_edges, alpha,
                allocator=_BufferArena(shm.buf), track_dirty=track_dirty,
                packed=packed,
            )
        except BaseException:
            shm.close()
            shm.unlink()
            raise
        state._shm = shm
        state._owns_segment = True
        return state

    @classmethod
    def attach(
        cls,
        name: str,
        n_vertices: int,
        k: int,
        n_edges: int,
        alpha: float = 1.05,
        *,
        track_dirty: bool = False,
        packed: bool = False,
    ) -> "PartitionState":
        """Map an existing shared segment created by :meth:`from_shared`.

        Dimensions (including ``track_dirty`` and ``packed``) must match
        the creator's; the attacher sees (and mutates) the creator's live
        arrays.  Call :meth:`close` when done; never :meth:`unlink` from
        an attacher.

        Raises
        ------
        PartitioningError
            If no segment ``name`` exists or it is too small for these
            dimensions.
        """
        from multiprocessing import shared_memory

        try:
            shm = shared_memory.SharedMemory(name=name, create=False)
        except FileNotFoundError as exc:
            raise PartitioningError(
                f"no shared partition-state segment {name!r}"
            ) from exc
        if shm.size < cls.shared_nbytes(n_vertices, k, track_dirty, packed):
            shm.close()
            raise PartitioningError(
                f"shared segment {name!r} holds {shm.size} bytes, need "
                f"{cls.shared_nbytes(n_vertices, k, track_dirty, packed)} "
                f"for n={n_vertices}, k={k}"
            )
        state = cls(
            n_vertices, k, n_edges, alpha,
            allocator=_BufferArena(shm.buf), track_dirty=track_dirty,
            packed=packed,
        )
        state._shm = shm
        state._owns_segment = False
        return state

    @property
    def shm_name(self) -> str | None:
        """Shared segment name, or ``None`` for heap-backed state."""
        return None if self._shm is None else self._shm.name

    def close(self) -> None:
        """Drop this process's mapping; ``replicas``/``sizes`` die with it.

        No-op for heap-backed state.  Idempotent.  Outside references to
        the state arrays must be released first (``BufferError`` results
        otherwise).
        """
        if self._shm is None:
            return
        self.replicas = None
        self.sizes = None
        self.dirty = None
        self._shm.close()

    def unlink(self) -> None:
        """Remove the shared segment from the system (creator only).

        No-op for heap-backed state; tolerates a segment that is already
        gone, so error-path cleanup can call it unconditionally.
        """
        if self._shm is None or not self._owns_segment:
            return
        try:
            self._shm.unlink()
        except FileNotFoundError:  # already unlinked: cleanup paths race
            pass

    # ------------------------------------------------------------------
    # assignment
    # ------------------------------------------------------------------
    def assign(self, u: int, v: int, p: int) -> None:
        """Assign one edge ``(u, v)`` to partition ``p``.

        Raises
        ------
        BalanceError
            If ``p`` is already at its hard capacity.
        """
        if self.sizes[p] >= self.capacity:
            raise BalanceError(
                f"partition {p} is at capacity {self.capacity}"
            )
        self.sizes[p] += 1
        self.replicas[u, p] = True
        self.replicas[v, p] = True

    def scatter_edges(self, us, vs, ps) -> None:
        """Batch-record assigned edges: replica bits plus size counts.

        Vectorized counterpart of :meth:`assign` for whole stream chunks;
        duplicate (vertex, partition) pairs collapse naturally because the
        replica matrix is boolean.  The hard cap is *not* enforced here —
        callers either pre-check capacity per chunk (2PS-L kernels) or do
        not enforce balance at all (stateless baselines, which report the
        measured alpha instead).

        Raises
        ------
        PartitioningError
            When ``us``/``vs``/``ps`` are not equal-length 1-d arrays, or
            any partition id falls outside ``[0, k)`` — checked *before*
            the first write, so a rejected call never half-applies (a raw
            fancy-index ``IndexError`` would fire after the replica bits
            landed but before the size counts did).
        """
        us = np.asarray(us)
        vs = np.asarray(vs)
        ps = np.asarray(ps)
        if (
            us.ndim != 1
            or vs.ndim != 1
            or ps.ndim != 1
            or not us.shape[0] == vs.shape[0] == ps.shape[0]
        ):
            raise PartitioningError(
                "scatter_edges: us/vs/ps must be equal-length 1-d arrays, "
                f"got shapes {us.shape}/{vs.shape}/{ps.shape}"
            )
        if us.shape[0] == 0:
            return
        p_lo, p_hi = int(ps.min()), int(ps.max())
        if p_lo < 0 or p_hi >= self.k:
            raise PartitioningError(
                f"scatter_edges: partition ids must be in [0, {self.k}), "
                f"got range [{p_lo}, {p_hi}]"
            )
        self.replicas[us, ps] = True
        self.replicas[vs, ps] = True
        self.sizes += np.bincount(ps, minlength=self.k)

    def mark_dirty(self, vertices) -> None:
        """Mark replica-matrix rows as touched since the last barrier.

        No-op when the state does not track dirt.  ``vertices`` may repeat
        (chunk endpoint arrays are passed raw); marking a superset of the
        actually-written rows is always safe — see the module docstring.
        """
        if self.dirty is not None:
            self.dirty[vertices] = True

    def is_full(self, p: int) -> bool:
        """Whether partition ``p`` reached the hard cap."""
        return bool(self.sizes[p] >= self.capacity)

    def least_loaded_open(self) -> int:
        """Index of the least-loaded partition below the cap.

        This is the paper's last-resort fallback ("we assign the edge to the
        currently least loaded partition as a last resort").

        Raises
        ------
        BalanceError
            If every partition is full (only possible when more than
            ``capacity * k`` edges are pushed in).
        """
        open_mask = self.sizes < self.capacity
        if not open_mask.any():
            raise BalanceError("all partitions are at capacity")
        candidates = np.where(open_mask)[0]
        return int(candidates[np.argmin(self.sizes[candidates])])

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def replica_counts(self) -> np.ndarray:
        """Per-vertex replica counts (0 for vertices never seen)."""
        return self.replicas.sum(axis=1)

    def vertex_cover_sizes(self) -> np.ndarray:
        """``|V(p_i)|`` per partition — vertices adjacent to an edge of p_i."""
        return self.replicas.sum(axis=0)

    def replication_factor(self) -> float:
        """``RF = (1/|V|) * sum_i |V(p_i)|``, over *covered* vertices.

        The paper normalizes by ``|V|``; isolated vertices (never streamed)
        are excluded from the denominator so RF >= 1 whenever any edge
        exists, matching the standard implementation.
        """
        covered = int((self.replica_counts() > 0).sum())
        if covered == 0:
            return 0.0
        return float(self.vertex_cover_sizes().sum()) / covered

    def measured_alpha(self) -> float:
        """Observed imbalance ``max_i |p_i| / (|E| / k)``."""
        if self.n_edges == 0:
            return 1.0
        return float(self.sizes.max()) * self.k / self.n_edges

    def nbytes(self) -> int:
        """Memory footprint of the partitioning state (Table II model)."""
        total = int(self.replicas.nbytes + self.sizes.nbytes)
        if self.dirty is not None:
            total += int(self.dirty.nbytes)
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PartitionState(n={self.n_vertices}, k={self.k}, "
            f"cap={self.capacity}, assigned={int(self.sizes.sum())})"
        )


def merge_replica_deltas(state: PartitionState, worker_states) -> int:
    """Delta-bitmap barrier: merge worker views into ``state`` and refresh.

    Every worker view must track dirt (``track_dirty=True``) and must have
    been refreshed to ``state`` at the previous barrier; rows written since
    are marked in its dirty bitmap (:meth:`PartitionState.mark_dirty`, fed
    by the sync-window streams).  The barrier then:

    - ORs replica bits over the **union of dirty rows only** — clean rows
      are bit-identical everywhere, so skipping them is exact;
    - sums each worker's size delta against the last synchronized sizes
      (edges are assigned by exactly one worker, so deltas are disjoint;
      stale views may legitimately carry sizes *beyond* the hard cap — the
      overshoot is merged as-is, exactly like the full re-broadcast);
    - writes the merged rows and sizes back into the global state and
      every view, and clears every dirty bitmap.

    Returns the number of rows refreshed, so callers can account barrier
    bytes (``rows * k`` versus ``n_vertices * k`` for a full re-broadcast).
    The equivalence with the full merge is pinned by the property tests in
    ``tests/test_state.py`` and end-to-end by the differential harness.

    The merge runs on the **raw row storage** (:func:`_replica_storage`):
    ``np.bitwise_or`` is a logical OR on dense bool rows and a byte OR on
    bit-packed rows, so dense and packed states share this single code
    path (all participants must use the same representation).
    """
    dirty = worker_states[0].dirty.copy()
    for ws in worker_states[1:]:
        np.logical_or(dirty, ws.dirty, out=dirty)
    rows = np.flatnonzero(dirty)
    new_sizes = state.sizes + sum(
        ws.sizes - state.sizes for ws in worker_states
    )
    raw = _replica_storage(state.replicas)
    if rows.size:
        merged = raw[rows]
        for ws in worker_states:
            np.bitwise_or(
                merged, _replica_storage(ws.replicas)[rows], out=merged
            )
        raw[rows] = merged
    state.sizes[:] = new_sizes
    for ws in worker_states:
        if rows.size:
            _replica_storage(ws.replicas)[rows] = merged
        ws.sizes[:] = new_sizes
        ws.dirty[:] = False
    return int(rows.size)


# ---------------------------------------------------------------------
# wire-delta serialization (distributed runner barriers)
# ---------------------------------------------------------------------
def extract_replica_delta(state: PartitionState):
    """Serialize a worker view's barrier contribution as raw arrays.

    Returns ``(rows, rows_data, sizes)``: the view's dirty row indices
    (``int64``), the raw storage of exactly those rows (dense bool rows,
    or the byte planes of a packed matrix — ready to ship as byte-OR
    blocks), and the full local sizes vector.  This is one worker's term
    of :func:`merge_replica_deltas`, flattened for a wire frame: clean
    rows are bit-identical to the last synchronized global state, so
    omitting them loses nothing.
    """
    if state.dirty is None:
        raise PartitioningError(
            "extract_replica_delta needs a dirty-tracking state "
            "(track_dirty=True)"
        )
    rows = np.flatnonzero(state.dirty)
    rows_data = _replica_storage(state.replicas)[rows]
    return rows, rows_data, state.sizes.copy()


def merge_replica_wire_deltas(state: PartitionState, deltas):
    """Fold serialized worker deltas into ``state``; the coordinator half.

    ``deltas`` is one ``(rows, rows_data, sizes)`` triple per worker, as
    produced by :func:`extract_replica_delta` (decoded from the wire).
    Applies the exact :func:`merge_replica_deltas` arithmetic — OR over
    the union of dirty rows, sizes summed as disjoint deltas against the
    last synchronized global sizes — and returns the refresh broadcast
    ``(rows, merged_rows, new_sizes)`` every worker must apply via
    :func:`apply_replica_refresh`.  Equivalence with the shared-memory
    barrier is pinned by ``tests/test_state.py``; bit-exactness holds
    because a row clean in worker *w* equals the pre-merge global row, so
    leaving it out of *w*'s OR contribution changes no bit.
    """
    union = np.zeros(state.n_vertices, dtype=bool)
    for rows_w, _, _ in deltas:
        union[rows_w] = True
    rows = np.flatnonzero(union)
    new_sizes = state.sizes + sum(
        np.asarray(sizes_w, dtype=np.int64) - state.sizes
        for _, _, sizes_w in deltas
    )
    raw = _replica_storage(state.replicas)
    merged = raw[rows]
    for rows_w, rows_data_w, _ in deltas:
        rows_w = np.asarray(rows_w, dtype=np.int64)
        if rows_w.size:
            idx = np.searchsorted(rows, rows_w)
            merged[idx] |= np.asarray(rows_data_w)
    if rows.size:
        raw[rows] = merged
    state.sizes[:] = new_sizes
    return rows, merged, new_sizes


def apply_replica_refresh(state: PartitionState, rows, rows_data, sizes):
    """Apply one barrier refresh broadcast to a worker view.

    After this the view is bit-identical to the merged global state on
    every refreshed row, its sizes equal the new global sizes, and its
    dirty bitmap is clear — the invariant :func:`merge_replica_deltas`
    re-establishes for shared-memory views at every barrier.
    """
    rows = np.asarray(rows, dtype=np.int64)
    if rows.size:
        _replica_storage(state.replicas)[rows] = np.asarray(rows_data)
    state.sizes[:] = np.asarray(sizes, dtype=np.int64)
    if state.dirty is not None:
        state.dirty[:] = False
