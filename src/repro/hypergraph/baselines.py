"""Hypergraph partitioning baselines.

- :class:`MinMaxStreaming` — streaming min-max hypergraph partitioning
  (Alistarh, Iglesias, Vojnovic; NIPS'15): each hyperedge goes to the
  partition with the largest member overlap among those below the balance
  cap, ties broken toward the least-loaded — an O(|H| * k) stateful
  streaming algorithm, the hypergraph analogue of HDRF's cost profile.
- :class:`HashHyperedges` — stateless hashing floor.
"""

from __future__ import annotations

import numpy as np

from repro.hypergraph.model import Hypergraph
from repro.hypergraph.partitioner import (
    HypergraphPartitionResult,
    _validate,
)
from repro.metrics.runtime import CostCounter, PhaseTimer
from repro.partitioning.hashutil import splitmix64


class MinMaxStreaming:
    """Greedy max-overlap / min-load streaming hyperedge partitioner."""

    name = "MinMax"

    def partition(
        self, hypergraph: Hypergraph, k: int, alpha: float = 1.05
    ) -> HypergraphPartitionResult:
        capacity = _validate(hypergraph, k, alpha)
        timer = PhaseTimer()
        cost = CostCounter()
        n = hypergraph.n_vertices
        replicas = np.zeros((n, k), dtype=bool)
        sizes = np.zeros(k, dtype=np.int64)
        assignments = np.empty(hypergraph.n_hyperedges, dtype=np.int32)
        with timer.phase("partitioning"):
            for i, members in enumerate(hypergraph):
                overlap = replicas[members].sum(axis=0).astype(np.float64)
                overlap[sizes >= capacity] = -np.inf
                best = overlap.max()
                tied = np.where(overlap == best)[0]
                p = int(tied[np.argmin(sizes[tied])])
                sizes[p] += 1
                replicas[members, p] = True
                assignments[i] = p
                cost.score_evaluations += k
            cost.edges_streamed += hypergraph.total_pins
        return HypergraphPartitionResult(
            partitioner=self.name,
            k=k,
            alpha=alpha,
            assignments=assignments,
            replicas=replicas,
            sizes=sizes,
            timer=timer,
            cost=cost,
        )


class HashHyperedges:
    """Stateless: hash each hyperedge's lowest member id."""

    name = "HashH"

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def partition(
        self, hypergraph: Hypergraph, k: int, alpha: float = 1.05
    ) -> HypergraphPartitionResult:
        _validate(hypergraph, k, alpha)
        timer = PhaseTimer()
        cost = CostCounter()
        n = hypergraph.n_vertices
        replicas = np.zeros((n, k), dtype=bool)
        sizes = np.zeros(k, dtype=np.int64)
        assignments = np.empty(hypergraph.n_hyperedges, dtype=np.int32)
        with timer.phase("partitioning"):
            for i, members in enumerate(hypergraph):
                key = int(members.min())
                p = int(splitmix64(key, self.seed) % np.uint64(k))
                sizes[p] += 1
                replicas[members, p] = True
                assignments[i] = p
                cost.hash_evaluations += 1
            cost.edges_streamed += hypergraph.total_pins
        return HypergraphPartitionResult(
            partitioner=self.name,
            k=k,
            alpha=alpha,
            assignments=assignments,
            replicas=replicas,
            sizes=sizes,
            timer=timer,
            cost=cost,
        )
