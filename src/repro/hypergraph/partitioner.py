"""2PS-L generalized to hypergraphs.

The lift is direct:

- **Phase 1** clusters vertices by streaming over each hyperedge's member
  list and applying the bounded-volume migration rule to consecutive
  member pairs (a hyperedge of size s contributes s-1 implicit edges) —
  the same O(total pins) complexity as Algorithm 1;
- **Phase 2** maps clusters to partitions with Graham scheduling, then
  assigns each hyperedge by scoring only the partitions of its **two
  heaviest member clusters** (by member count within the hyperedge), a
  constant-size candidate set that preserves the linear run-time; the
  score sums per-member replication affinity plus the cluster-volume term.

The balance cap applies to hyperedge counts per partition, and replication
is counted per (vertex, partition) as in edge partitioning, so the
replication-factor metric is directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.scheduling import graham_schedule
from repro.errors import ConfigurationError, PartitioningError
from repro.hypergraph.model import Hypergraph
from repro.metrics.runtime import CostCounter, PhaseTimer
from repro.partitioning.hashutil import splitmix64


@dataclass
class HypergraphPartitionResult:
    """Assignment of every hyperedge plus quality metrics."""

    partitioner: str
    k: int
    alpha: float
    assignments: np.ndarray
    replicas: np.ndarray
    sizes: np.ndarray
    timer: PhaseTimer
    cost: CostCounter
    extras: dict = field(default_factory=dict)

    @property
    def replication_factor(self) -> float:
        counts = self.replicas.sum(axis=1)
        covered = int((counts > 0).sum())
        return float(counts.sum()) / covered if covered else 0.0

    @property
    def measured_alpha(self) -> float:
        total = int(self.sizes.sum())
        if not total:
            return 1.0
        return float(self.sizes.max()) * self.k / total


def _validate(hypergraph: Hypergraph, k: int, alpha: float) -> int:
    if k < 2:
        raise PartitioningError(f"k must be >= 2, got {k}")
    if hypergraph.n_hyperedges == 0:
        raise PartitioningError("cannot partition an empty hypergraph")
    if alpha < 1.0:
        raise PartitioningError(f"alpha must be >= 1, got {alpha}")
    h = hypergraph.n_hyperedges
    return max(int(np.floor(alpha * h / k)), int(np.ceil(h / k)))


class TwoPhaseHypergraphPartitioner:
    """2PS-L-H: two-phase streaming hyperedge partitioning.

    Parameters
    ----------
    volume_cap_factor:
        Cluster volume cap as a multiple of ``total_pins / k``.
    hash_seed:
        Fallback hash seed.
    """

    name = "2PS-L-H"

    def __init__(self, volume_cap_factor: float = 0.5, hash_seed: int = 0) -> None:
        if volume_cap_factor <= 0:
            raise ConfigurationError(
                f"volume_cap_factor must be positive, got {volume_cap_factor}"
            )
        self.volume_cap_factor = float(volume_cap_factor)
        self.hash_seed = int(hash_seed)

    # ------------------------------------------------------------------
    def partition(
        self, hypergraph: Hypergraph, k: int, alpha: float = 1.05
    ) -> HypergraphPartitionResult:
        """Partition the hyperedge set into k balanced parts."""
        capacity = _validate(hypergraph, k, alpha)
        timer = PhaseTimer()
        cost = CostCounter()
        n = hypergraph.n_vertices
        degrees = hypergraph.degrees.tolist()

        # Phase 1: streaming clustering over member co-occurrence.
        with timer.phase("clustering"):
            cap = self.volume_cap_factor * hypergraph.total_pins / k
            v2c: list[int] = [-1] * n
            vol: list[int] = []
            for members in hypergraph:
                mlist = members.tolist()
                # Implicit pair stream: all pairs for small hyperedges,
                # a closed ring for large ones (keeps the pass linear in
                # total pins while giving the clustering enough signal).
                if len(mlist) <= 4:
                    pairs = [
                        (mlist[i], mlist[j])
                        for i in range(len(mlist))
                        for j in range(i + 1, len(mlist))
                    ]
                else:
                    pairs = list(zip(mlist, mlist[1:] + mlist[:1]))
                for u, v in pairs:
                    cu = v2c[u]
                    if cu < 0:
                        cu = len(vol)
                        v2c[u] = cu
                        vol.append(degrees[u])
                    cv = v2c[v]
                    if cv < 0:
                        cv = len(vol)
                        v2c[v] = cv
                        vol.append(degrees[v])
                    if cu == cv:
                        continue
                    vol_u = vol[cu]
                    vol_v = vol[cv]
                    if vol_u <= cap and vol_v <= cap:
                        if vol_u - degrees[u] <= vol_v - degrees[v]:
                            vs, cs, cl, ds = u, cu, cv, degrees[u]
                        else:
                            vs, cs, cl, ds = v, cv, cu, degrees[v]
                        if vol[cl] + ds <= cap:
                            vol[cl] += ds
                            vol[cs] -= ds
                            v2c[vs] = cl
                            cost.cluster_updates += 1
            cost.edges_streamed += hypergraph.total_pins

        with timer.phase("mapping"):
            c2p, _ = graham_schedule(
                np.asarray(vol, dtype=np.int64), k, cost=cost
            )
            c2p_l = c2p.tolist()

        # Phase 2: constant-candidate scoring per hyperedge.
        replicas = np.zeros((n, k), dtype=bool)
        sizes = np.zeros(k, dtype=np.int64)
        assignments = np.empty(hypergraph.n_hyperedges, dtype=np.int32)
        with timer.phase("partitioning"):
            for i, members in enumerate(hypergraph):
                mlist = members.tolist()
                # Two heaviest member clusters (by within-hyperedge count,
                # ties by cluster volume).
                counts: dict[int, int] = {}
                for v in mlist:
                    counts[v2c[v]] = counts.get(v2c[v], 0) + 1
                ranked = sorted(
                    counts.items(), key=lambda kv: (-kv[1], -vol[kv[0]])
                )
                candidates = {c2p_l[c] for c, _ in ranked[:2]}
                best_p = -1
                best_s = -1.0
                for p in candidates:
                    score = 0.0
                    for v in mlist:
                        if replicas[v, p]:
                            score += 1.0
                        if c2p_l[v2c[v]] == p:
                            score += vol[v2c[v]] / (
                                vol[v2c[v]] + 1.0
                            ) / len(mlist)
                    cost.score_evaluations += 1
                    if score > best_s:
                        best_s = score
                        best_p = p
                p = best_p
                if sizes[p] >= capacity:
                    heavy = max(mlist, key=degrees.__getitem__)
                    p = int(splitmix64(heavy, self.hash_seed) % np.uint64(k))
                    cost.hash_evaluations += 1
                    if sizes[p] >= capacity:
                        open_mask = sizes < capacity
                        cands = np.where(open_mask)[0]
                        p = int(cands[np.argmin(sizes[cands])])
                sizes[p] += 1
                replicas[mlist, p] = True
                assignments[i] = p
            cost.edges_streamed += hypergraph.total_pins

        return HypergraphPartitionResult(
            partitioner=self.name,
            k=k,
            alpha=alpha,
            assignments=assignments,
            replicas=replicas,
            sizes=sizes,
            timer=timer,
            cost=cost,
            extras={"n_clusters": len(set(c for c in v2c if c >= 0))},
        )
