"""Hypergraph edge partitioning — the paper's stated future work.

Section VII: "In future work, we plan to investigate the generalization of
2PS-L to hypergraphs."  This package provides that generalization:

- :class:`~repro.hypergraph.model.Hypergraph` — a CSR hyperedge container
  plus a deterministic planted-community generator;
- :class:`~repro.hypergraph.partitioner.TwoPhaseHypergraphPartitioner` —
  2PS-L lifted to hyperedges: streaming vertex clustering over member
  co-occurrence, Graham mapping of clusters, then constant-candidate
  scoring per hyperedge (the candidate set is the partitions of the two
  heaviest member clusters — still O(1) per hyperedge, preserving the
  linear run-time);
- :class:`~repro.hypergraph.baselines.MinMaxStreaming` — the streaming
  min-max baseline of Alistarh et al. (NIPS'15), which scores all k
  partitions per hyperedge;
- :class:`~repro.hypergraph.baselines.HashHyperedges` — the stateless
  floor.
"""

from repro.hypergraph.model import Hypergraph, planted_hypergraph
from repro.hypergraph.partitioner import (
    HypergraphPartitionResult,
    TwoPhaseHypergraphPartitioner,
)
from repro.hypergraph.baselines import HashHyperedges, MinMaxStreaming

__all__ = [
    "Hypergraph",
    "planted_hypergraph",
    "TwoPhaseHypergraphPartitioner",
    "HypergraphPartitionResult",
    "MinMaxStreaming",
    "HashHyperedges",
]
