"""Hypergraph container and generators.

A hypergraph is a set of hyperedges, each connecting two or more vertices
("group relationships", paper Section VI).  Storage is CSR-style: a flat
member array plus an index pointer per hyperedge, which keeps streaming
iteration allocation-free.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.errors import GraphError


class Hypergraph:
    """Immutable CSR hypergraph.

    Parameters
    ----------
    hyperedges:
        Sequence of vertex-id sequences, each of length >= 2.
    n_vertices:
        Optional vertex-count override (max id + 1 otherwise).
    """

    __slots__ = ("indptr", "members", "_n", "_degrees")

    def __init__(self, hyperedges: Sequence[Sequence[int]], n_vertices=None):
        lengths = []
        flat: list[int] = []
        for he in hyperedges:
            if len(he) < 2:
                raise GraphError("hyperedges must have at least 2 members")
            lengths.append(len(he))
            flat.extend(int(v) for v in he)
        self.members = np.asarray(flat, dtype=np.int64)
        if self.members.size and self.members.min() < 0:
            raise GraphError("vertex ids must be non-negative")
        self.indptr = np.zeros(len(lengths) + 1, dtype=np.int64)
        np.cumsum(np.asarray(lengths, dtype=np.int64), out=self.indptr[1:])
        max_id = int(self.members.max()) if self.members.size else -1
        if n_vertices is None:
            n_vertices = max_id + 1
        elif n_vertices <= max_id:
            raise GraphError(
                f"n_vertices={n_vertices} but hyperedge references {max_id}"
            )
        self._n = int(n_vertices)
        self._degrees: np.ndarray | None = None

    # ------------------------------------------------------------------
    @property
    def n_vertices(self) -> int:
        return self._n

    @property
    def n_hyperedges(self) -> int:
        return int(self.indptr.shape[0] - 1)

    @property
    def total_pins(self) -> int:
        """Total membership count (sum of hyperedge sizes)."""
        return int(self.members.shape[0])

    @property
    def degrees(self) -> np.ndarray:
        """Vertex degree = number of incident pins."""
        if self._degrees is None:
            deg = np.zeros(self._n, dtype=np.int64)
            if self.members.size:
                np.add.at(deg, self.members, 1)
            self._degrees = deg
        return self._degrees

    def hyperedge(self, i: int) -> np.ndarray:
        """Members of hyperedge ``i``."""
        return self.members[self.indptr[i] : self.indptr[i + 1]]

    def __iter__(self) -> Iterator[np.ndarray]:
        for i in range(self.n_hyperedges):
            yield self.hyperedge(i)

    def __len__(self) -> int:
        return self.n_hyperedges

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Hypergraph(|V|={self._n}, |H|={self.n_hyperedges}, "
            f"pins={self.total_pins})"
        )


def planted_hypergraph(
    n_communities: int,
    community_size: int,
    n_hyperedges: int,
    mean_size: int = 4,
    p_intra: float = 0.85,
    seed: int = 0,
) -> Hypergraph:
    """Hypergraph with planted vertex communities.

    Each hyperedge draws its size from {2..2*mean_size-2}; with probability
    ``p_intra`` all members come from one community, otherwise they are
    sampled globally.  Mirrors the planted-partition graphs used for the
    web stand-ins.
    """
    rng = np.random.default_rng(seed)
    n = n_communities * community_size
    hyperedges = []
    for _ in range(n_hyperedges):
        size = int(rng.integers(2, max(3, 2 * mean_size - 1)))
        size = min(size, community_size)
        if rng.random() < p_intra:
            comm = int(rng.integers(0, n_communities))
            base = comm * community_size
            members = base + rng.choice(community_size, size=size, replace=False)
        else:
            members = rng.choice(n, size=size, replace=False)
        hyperedges.append(members.tolist())
    return Hypergraph(hyperedges, n)
