"""CuSP-style parallel streaming partitioning (paper Section VI direction).

The paper observes that "2PS-L could be integrated into the CuSP framework
to speed up the partitioning.  However, parallelization comes with a cost,
as staleness in state synchronization of multiple partitioner instances
can lead to lower partitioning quality."

This module simulates exactly that trade-off.  The edge stream is split
into ``n_workers`` contiguous shards.  Phase 1 (degrees, clustering,
mapping) is shared — it is cheap and embarrassingly mergeable — while both
Phase-2 streaming passes (pre-partitioning and remaining-edge scoring) run
per worker against a *stale* copy of the global replication state that is
re-synchronized only every ``sync_interval`` edges.

Every sync window executes through the kernel layer
(:mod:`repro.kernels`): a worker pulls its next window of edges from the
stream's shard-window iterator (:meth:`repro.streaming.stream.EdgeStream.
window` — no ``materialize()``, so a :class:`~repro.streaming.stream.
FileEdgeStream` stays out-of-core) and dispatches the same
``prepartition_pass`` / ``remaining_pass_*`` kernels the sequential
pipeline uses, against its stale :class:`~repro.partitioning.state.
PartitionState` view.  Consequences:

- ``n_workers=1`` is **bit-exact** with the sequential
  :class:`~repro.core.partitioner.TwoPhasePartitioner` for *any*
  ``sync_interval`` (a single worker's view is never stale, and window
  boundaries are ordinary chunk boundaries, which the kernel contract
  guarantees are semantics-free).  The differential suite in
  ``tests/test_parallel_kernels.py`` pins assignments, replica bits,
  sizes and cost counters.
- Any registered kernel backend accelerates the parallel path for free,
  and backends stay bit-exact with each other here too.

Note on balance: each worker enforces the cap against its *stale* size
view, so within one sync window the global partition sizes can overshoot
``alpha * |E| / k`` slightly — the same effect a real CuSP deployment
shows.  The measured alpha is reported in the result as usual.

The simulation is single-process but round-robins workers in quanta so the
interleaving (and therefore the staleness pattern) matches a real parallel
run with barrier syncs; the modeled parallel wall-clock is
``sequential_phase2_time / n_workers + syncs * sync_latency``.
"""

from __future__ import annotations

import numpy as np

from repro.core.partitioner import run_phase1
from repro.errors import ConfigurationError
from repro.kernels import TwoPhaseContext, get_backend
from repro.metrics.memory import measured_state_bytes
from repro.metrics.runtime import CostCounter, PhaseTimer
from repro.partitioning.base import EdgePartitioner, PartitionResult
from repro.partitioning.state import PartitionState


class _WindowStream:
    """One sync window of a shard, consumable like a stream by kernels.

    Holds at most ``sync_interval`` edges (the chunks already pulled from
    the shard-window iterator), so worker windows — not the edge set —
    bound the memory of the parallel path.
    """

    __slots__ = ("_chunks", "n_edges")

    n_vertices = None

    def __init__(self, chunks, n_edges: int) -> None:
        self._chunks = chunks
        self.n_edges = n_edges

    def chunks(self, chunk_size=None):
        return iter(self._chunks)


class _ShardCursor:
    """Pulls one worker's shard from the stream in sync-window quanta.

    Wraps a single :meth:`EdgeStream.window` iterator (one sequential
    read of the shard per pass) and re-chunks it at window boundaries;
    a partial chunk is carried over to the next window.
    """

    __slots__ = ("_iter", "_carry", "position", "remaining")

    def __init__(self, stream, start: int, stop: int) -> None:
        self._iter = stream.window(start, stop)
        self._carry = None
        self.position = start
        self.remaining = stop - start

    def take(self, n_edges: int) -> _WindowStream:
        """Next window of up to ``n_edges`` edges, in stream order."""
        chunks = []
        got = 0
        while got < n_edges:
            if self._carry is not None:
                chunk, self._carry = self._carry, None
            else:
                chunk = next(self._iter, None)
                if chunk is None:
                    break
            need = n_edges - got
            if chunk.shape[0] > need:
                self._carry = chunk[need:]
                chunk = chunk[:need]
            if chunk.shape[0]:
                chunks.append(chunk)
                got += chunk.shape[0]
        self.position += got
        self.remaining -= got
        return _WindowStream(chunks, got)


class ParallelTwoPhase(EdgePartitioner):
    """Sharded 2PS-L / 2PS-HDRF with periodic state synchronization.

    Parameters
    ----------
    n_workers:
        Parallel partitioner instances (stream shards).
    sync_interval:
        Edges each worker processes between state synchronizations; larger
        means staler replica/size views and lower quality.
    clustering_passes:
        Streaming clustering passes of the shared Phase 1.
    mode:
        ``"linear"`` (2PS-L scoring) or ``"hdrf"`` (2PS-HDRF scoring) for
        the remaining pass, exactly as in the sequential partitioner.
    sync_latency:
        Modeled seconds per synchronization barrier (for the parallel
        wall-clock estimate in ``extras``).
    backend:
        Kernel backend name (:mod:`repro.kernels`); ``None`` selects the
        default.  Pure performance knob — backends are bit-exact.
    chunk_size:
        Default edges-per-chunk for every streaming pass of a run;
        ``None`` keeps the stream's own default.
    """

    def __init__(
        self,
        n_workers: int = 4,
        sync_interval: int = 1024,
        clustering_passes: int = 1,
        volume_cap_factor: float = 0.5,
        mode: str = "linear",
        hdrf_lambda: float = 1.1,
        sync_latency: float = 0.001,
        hash_seed: int = 0,
        backend: str | None = None,
        chunk_size: int | None = None,
    ) -> None:
        if n_workers < 1:
            raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
        if sync_interval < 1:
            raise ConfigurationError(
                f"sync_interval must be >= 1, got {sync_interval}"
            )
        if mode not in ("linear", "hdrf"):
            raise ConfigurationError(
                f"mode must be 'linear' or 'hdrf', got {mode!r}"
            )
        if volume_cap_factor <= 0:
            raise ConfigurationError(
                f"volume_cap_factor must be positive, got {volume_cap_factor}"
            )
        if chunk_size is not None and chunk_size <= 0:
            raise ConfigurationError(
                f"chunk_size must be positive, got {chunk_size}"
            )
        get_backend(backend)  # validate the name eagerly
        self.n_workers = int(n_workers)
        self.sync_interval = int(sync_interval)
        self.clustering_passes = int(clustering_passes)
        self.volume_cap_factor = float(volume_cap_factor)
        self.mode = mode
        self.hdrf_lambda = float(hdrf_lambda)
        self.sync_latency = float(sync_latency)
        self.hash_seed = int(hash_seed)
        self.backend = backend
        self.chunk_size = chunk_size
        self.name = (
            "2PS-L-parallel" if mode == "linear" else "2PS-HDRF-parallel"
        )

    # ------------------------------------------------------------------
    def _run(self, stream, k: int, alpha: float) -> PartitionResult:
        kernels = get_backend(self.backend)
        timer = PhaseTimer()
        cost = CostCounter()
        m = stream.n_edges

        n, degrees, clustering, c2p, loads = run_phase1(
            stream,
            k,
            backend=self.backend,
            clustering_passes=self.clustering_passes,
            volume_cap_factor=self.volume_cap_factor,
            timer=timer,
            cost=cost,
        )

        state = PartitionState(n, k, m, alpha)
        assignments = np.full(m, -1, dtype=np.int32)
        shard_bounds = np.linspace(0, m, self.n_workers + 1).astype(np.int64)

        # Per-worker stale views.  A single worker's view is never stale,
        # so it shares the global state outright (this is what makes
        # n_workers=1 bit-exact with the sequential pipeline, with no
        # merge work).
        if self.n_workers == 1:
            worker_states = [state]
        else:
            worker_states = []
            for _ in range(self.n_workers):
                ws = PartitionState(n, k, m, alpha)
                worker_states.append(ws)

        def make_ctx(worker_state, window_assignments):
            return TwoPhaseContext(
                k=k,
                v2c=clustering.v2c,
                c2p=c2p,
                volumes=clustering.volumes,
                degrees=degrees,
                state=worker_state,
                assignments=window_assignments,
                hash_seed=self.hash_seed,
                cost=cost,
                hdrf_lambda=self.hdrf_lambda,
            )

        with timer.phase("prepartition"):
            n_pre, syncs_pre = self._sharded_pass(
                stream, shard_bounds, worker_states, state, assignments,
                kernels.prepartition_pass, make_ctx,
            )
        with timer.phase("partitioning"):
            remaining_pass = (
                kernels.remaining_pass_linear
                if self.mode == "linear"
                else kernels.remaining_pass_hdrf
            )
            _, syncs_rem = self._sharded_pass(
                stream, shard_bounds, worker_states, state, assignments,
                remaining_pass, make_ctx,
            )
        syncs = syncs_pre + syncs_rem

        sequential_phase2 = timer.totals.get("prepartition", 0.0) + (
            timer.totals.get("partitioning", 0.0)
        )
        worker_bytes = sum(
            ws.nbytes() for ws in worker_states if ws is not state
        )
        return PartitionResult(
            partitioner=self.name,
            k=k,
            alpha=alpha,
            n_vertices=n,
            n_edges=m,
            assignments=assignments,
            state=state,
            timer=timer,
            cost=cost,
            state_bytes=measured_state_bytes(
                state, clustering.v2c, clustering.volumes,
                clustering.degrees, c2p, loads,
            )
            + worker_bytes,
            extras={
                "n_workers": self.n_workers,
                "sync_interval": self.sync_interval,
                "syncs": syncs,
                "parallel_wall_s": sequential_phase2 / self.n_workers
                + syncs * self.sync_latency,
                "mode": self.mode,
                "backend": kernels.name,
                "n_clusters": clustering.n_nonempty_clusters,
                "prepartitioned_edges": n_pre,
                "remaining_edges": m - n_pre,
            },
        )

    # ------------------------------------------------------------------
    def _sharded_pass(
        self, stream, shard_bounds, worker_states, state, assignments,
        pass_kernel, make_ctx,
    ) -> tuple[int, int]:
        """One Phase-2 pass, sharded over workers in sync-window quanta.

        Returns ``(sum of kernel return values, barrier count)``.  Each
        quantum dispatches ``pass_kernel`` on a :class:`_WindowStream` of
        at most ``sync_interval`` edges against the worker's stale state
        view, writing into the global assignment array's matching slice;
        after every round-robin sweep the barrier merges worker deltas
        into the global state and refreshes every stale view.
        """
        cursors = [
            _ShardCursor(stream, int(shard_bounds[w]), int(shard_bounds[w + 1]))
            for w in range(self.n_workers)
        ]
        total = 0
        syncs = 0
        active = True
        while active:
            active = False
            for w, worker_state in enumerate(worker_states):
                cursor = cursors[w]
                if cursor.remaining <= 0:
                    continue
                pos = cursor.position
                window = cursor.take(self.sync_interval)
                if window.n_edges == 0:
                    continue
                active = True
                ctx = make_ctx(
                    worker_state, assignments[pos : pos + window.n_edges]
                )
                out = pass_kernel(window, ctx)
                if out is not None:
                    total += int(out)
            if active:
                syncs += 1
                self._barrier(worker_states, state)
        return total, syncs

    def _barrier(self, worker_states, state) -> None:
        """Merge worker deltas into the global state, refresh stale views.

        Replica bits merge by OR; sizes merge by summing each worker's
        delta against the last synchronized global sizes (every edge is
        assigned by exactly one worker, so deltas are disjoint).
        """
        if self.n_workers == 1:
            return  # the worker shares the global state: nothing to do
        merged = np.logical_or.reduce(
            [state.replicas] + [ws.replicas for ws in worker_states]
        )
        new_sizes = state.sizes + sum(
            ws.sizes - state.sizes for ws in worker_states
        )
        state.replicas[:] = merged
        state.sizes[:] = new_sizes
        for ws in worker_states:
            ws.replicas[:] = merged
            ws.sizes[:] = new_sizes
