"""CuSP-style parallel streaming partitioning (paper Section VI direction).

The paper observes that "2PS-L could be integrated into the CuSP framework
to speed up the partitioning.  However, parallelization comes with a cost,
as staleness in state synchronization of multiple partitioner instances
can lead to lower partitioning quality."

:class:`ParallelTwoPhase` implements exactly that trade-off.  The edge
stream is split into ``n_workers`` contiguous shards.  Both Phase-2
streaming passes (pre-partitioning and remaining-edge scoring) run per
worker against a *stale* copy of the global replication state that is
re-synchronized only every ``sync_interval`` edges.

Phase 1 can run either shared (the default: degrees, clustering and
mapping execute sequentially, exactly as in the paper's pipeline) or —
with ``parallel_phase1=True`` — sharded through the same runner session:
workers stream disjoint shard windows computing partial degree vectors
and clustering state, merged at every barrier by the associative Phase-1
merge ops of the kernel layer (``merge_phase1_degrees`` /
``merge_phase1_clustering``; see :mod:`repro.kernels` for the exact fold
semantics).  Like Phase-2 staleness, parallel clustering is a *quality*
knob at ``n_workers > 1`` (workers cluster against a stale snapshot
between barriers) but a pure execution knob at ``n_workers = 1``, where
it stays bit-exact with the sequential pipeline.

Execution is delegated to a pluggable **runner**
(:mod:`repro.core.runners`), which decides *who* executes the
deterministic sync-window schedule:

- ``runner="serial"`` — no sharding: the sequential reference execution
  (bit-exact with :class:`~repro.core.partitioner.TwoPhasePartitioner`
  for any worker count; zero syncs, zero staleness).
- ``runner="simulated"`` (default) — single-process round-robin over
  per-worker stale state views with merge barriers.  Deterministic and
  dependency-free; the parallel wall-clock in ``extras`` is *modeled* as
  ``sequential_phase2 / n_workers + syncs * sync_latency``.
- ``runner="process"`` — true ``multiprocessing`` workers against
  shared-memory-backed :class:`~repro.partitioning.state.PartitionState`
  views, with the stream reopened per worker from a picklable spec
  (:class:`~repro.streaming.stream.FileEdgeStream` shards stay
  out-of-core).  The parallel wall-clock is *measured*: the phase timer
  wraps real concurrent execution.

What stays bit-exact, and why
-----------------------------
All runners execute the same schedule (worker ``w`` streams shard
``[bounds[w], bounds[w+1])`` in windows of at most ``sync_interval``
edges; a barrier merges and refreshes every view after each sweep), and
every sync window dispatches the same kernel-layer passes
(:mod:`repro.kernels`) the sequential pipeline uses.  Because the kernel
contract makes chunk and window boundaries semantics-free, the runner
choice is a pure execution knob:

- ``process`` is bit-identical to ``simulated`` under the same schedule —
  per-edge assignments, replica bits, partition sizes and cost counters
  (worker cost deltas are summed, and sums commute);
- ``n_workers=1`` is bit-exact with the sequential
  :class:`~repro.core.partitioner.TwoPhasePartitioner` for *any*
  ``sync_interval`` (a single worker's view is never stale);
- any registered kernel backend accelerates every runner for free, and
  backends stay bit-exact with each other through the parallel path.

The differential suite in ``tests/test_parallel_kernels.py`` pins all of
this; ``benchmarks/run_bench.py`` gates the measured process-runner
speedup into ``BENCH_parallel.json``.

Note on balance: each worker enforces the cap against its *stale* size
view, so within one sync window the global partition sizes can overshoot
``alpha * |E| / k`` slightly — the same effect a real CuSP deployment
shows.  The measured alpha is reported in the result as usual.
"""

from __future__ import annotations

import numpy as np

from repro.core.clustering import ClusteringResult, default_volume_cap
from repro.core.partitioner import run_phase1
from repro.core.runners import Runner, ShardedJob, make_runner
from repro.core.scheduling import graham_schedule
from repro.errors import ConfigurationError
from repro.kernels import get_backend
from repro.metrics.memory import measured_state_bytes
from repro.metrics.runtime import CostCounter, PhaseTimer
from repro.partitioning.base import EdgePartitioner, PartitionResult
from repro.partitioning.state import PartitionState


class ParallelTwoPhase(EdgePartitioner):
    """Sharded 2PS-L / 2PS-HDRF with periodic state synchronization.

    Parameters
    ----------
    n_workers:
        Parallel partitioner instances (stream shards).
    sync_interval:
        Edges each worker processes between state synchronizations; larger
        means staler replica/size views and lower quality.
    clustering_passes:
        Streaming clustering passes of the shared Phase 1.
    mode:
        ``"linear"`` (2PS-L scoring) or ``"hdrf"`` (2PS-HDRF scoring) for
        the remaining pass, exactly as in the sequential partitioner.
    sync_latency:
        Modeled seconds per synchronization barrier (used by the
        simulated runner's parallel wall-clock estimate in ``extras``).
    backend:
        Kernel backend name (:mod:`repro.kernels`); ``None`` selects the
        default.  Pure performance knob — backends are bit-exact.
    chunk_size:
        Default edges-per-chunk for every streaming pass of a run;
        ``None`` keeps the stream's own default, ``"auto"`` derives one
        from ``|V|`` and ``k`` (:func:`repro.streaming.stream.
        auto_chunk_size`).
    runner:
        Execution runner: ``"serial"``, ``"simulated"`` (default),
        ``"process"``, or a :class:`~repro.core.runners.Runner` instance.
        A pure execution knob — results are bit-identical across runners
        under the same schedule (see the module docstring).
    parallel_phase1:
        When True, the degree and clustering passes are sharded through
        the runner session too (partial degree vectors summed; clustering
        windows folded at barriers via the kernel-layer Phase-1 merge
        ops).  Bit-exact with the sequential Phase 1 at ``n_workers=1``;
        a staleness/quality knob beyond that, exactly like Phase 2.  The
        serial runner runs Phase 1 sequentially regardless.
    start_method, task_timeout:
        Process-runner knobs (``multiprocessing`` start method and the
        per-window hang timeout); ignored by the other runners.
    packed_state:
        When True, the global state and every worker view store the
        replica matrix bit-packed (``ceil(k/8)`` bytes per row — the
        out-of-core memory tier).  A pure storage knob: results are
        bit-exact with dense state on every runner and backend.
    tune:
        ``"auto"`` enables the online auto-tuner (:mod:`repro.tuning`)
        for every ``partition(...)`` call of this instance; ``None``
        (default) disables it.  The tuner touches ``sync_interval`` only
        in the semantics-free regime (``n_workers == 1`` or the serial
        runner), so tuned runs stay bit-exact with untuned ones.
    """

    def __init__(
        self,
        n_workers: int = 4,
        sync_interval: int = 1024,
        clustering_passes: int = 1,
        volume_cap_factor: float = 0.5,
        mode: str = "linear",
        hdrf_lambda: float = 1.1,
        sync_latency: float = 0.001,
        hash_seed: int = 0,
        backend: str | None = None,
        chunk_size: int | str | None = None,
        runner: str | Runner = "simulated",
        parallel_phase1: bool = False,
        start_method: str | None = None,
        task_timeout: float = 600.0,
        packed_state: bool = False,
        tune: str | None = None,
    ) -> None:
        if n_workers < 1:
            raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
        if sync_interval < 1:
            raise ConfigurationError(
                f"sync_interval must be >= 1, got {sync_interval}"
            )
        if mode not in ("linear", "hdrf"):
            raise ConfigurationError(
                f"mode must be 'linear' or 'hdrf', got {mode!r}"
            )
        if volume_cap_factor <= 0:
            raise ConfigurationError(
                f"volume_cap_factor must be positive, got {volume_cap_factor}"
            )
        if (
            chunk_size is not None
            and chunk_size != "auto"
            and (isinstance(chunk_size, str) or chunk_size <= 0)
        ):
            raise ConfigurationError(
                f"chunk_size must be positive or 'auto', got {chunk_size!r}"
            )
        if tune not in (None, "auto"):
            raise ConfigurationError(
                f"tune must be None or 'auto', got {tune!r}"
            )
        get_backend(backend)  # validate the name eagerly
        self.n_workers = int(n_workers)
        self.sync_interval = int(sync_interval)
        self.clustering_passes = int(clustering_passes)
        self.volume_cap_factor = float(volume_cap_factor)
        self.mode = mode
        self.hdrf_lambda = float(hdrf_lambda)
        self.sync_latency = float(sync_latency)
        self.hash_seed = int(hash_seed)
        self.backend = backend
        self.chunk_size = chunk_size
        self.runner = make_runner(
            runner, start_method=start_method, task_timeout=task_timeout
        )
        self.parallel_phase1 = bool(parallel_phase1)
        self.packed_state = bool(packed_state)
        self.tune = tune
        self.name = (
            "2PS-L-parallel" if mode == "linear" else "2PS-HDRF-parallel"
        )

    # ------------------------------------------------------------------
    def _run(self, stream, k: int, alpha: float) -> PartitionResult:
        kernels = get_backend(self.backend)
        timer = PhaseTimer()
        cost = CostCounter()
        m = stream.n_edges

        job = ShardedJob(
            stream=stream,
            n_workers=self.n_workers,
            sync_interval=self.sync_interval,
            shard_bounds=np.linspace(0, m, self.n_workers + 1).astype(
                np.int64
            ),
            # The *resolved* backend name: if an optional backend (e.g.
            # numba) fell back to the default, the parent resolves it
            # once and every runner worker receives the concrete name —
            # no per-worker re-detection or repeated fallback warnings.
            backend=kernels.name,
            k=k,
            alpha=alpha,
            hash_seed=self.hash_seed,
            hdrf_lambda=self.hdrf_lambda,
            cost=cost,
        )

        session = self.runner.open(job)
        try:
            if self.parallel_phase1:
                n, degrees, clustering, c2p, loads, phase1_syncs = (
                    self._run_parallel_phase1(
                        session, stream, k, m, timer, cost
                    )
                )
            else:
                n, degrees, clustering, c2p, loads = run_phase1(
                    stream,
                    k,
                    backend=self.backend,
                    clustering_passes=self.clustering_passes,
                    volume_cap_factor=self.volume_cap_factor,
                    timer=timer,
                    cost=cost,
                )
                phase1_syncs = 0

            state = PartitionState(n, k, m, alpha, packed=self.packed_state)
            assignments = np.full(m, -1, dtype=np.int32)
            job.v2c = clustering.v2c
            job.c2p = c2p
            job.volumes = clustering.volumes
            job.degrees = degrees
            job.state = state
            job.assignments = assignments
            session.bind_phase2()

            with timer.phase("prepartition"):
                n_pre, syncs_pre = session.run_pass("prepartition")
            remaining = (
                "remaining_linear"
                if self.mode == "linear"
                else "remaining_hdrf"
            )
            with timer.phase("partitioning"):
                _, syncs_rem = session.run_pass(remaining)
            worker_bytes = session.extra_state_bytes()
            barrier_rows = session.barrier_rows
            barrier_full_rows = session.barrier_full_rows
            wire_stats = session.wire_stats()
            session.finalize()
        finally:
            session.close()
        syncs = syncs_pre + syncs_rem

        phase2_seconds = timer.totals.get("prepartition", 0.0) + (
            timer.totals.get("partitioning", 0.0)
        )
        return PartitionResult(
            partitioner=self.name,
            k=k,
            alpha=alpha,
            n_vertices=n,
            n_edges=m,
            assignments=assignments,
            state=state,
            timer=timer,
            cost=cost,
            state_bytes=measured_state_bytes(
                state, clustering.v2c, clustering.volumes,
                clustering.degrees, c2p, loads,
            )
            + worker_bytes,
            extras={
                "n_workers": self.n_workers,
                "sync_interval": self.sync_interval,
                "syncs": syncs,
                "runner": self.runner.kind,
                "parallel_wall_s": self.runner.parallel_wall_seconds(
                    phase2_seconds, self.n_workers, syncs, self.sync_latency
                ),
                "measured_wallclock": self.runner.measures_wallclock,
                "mode": self.mode,
                "backend": kernels.name,
                "n_clusters": clustering.n_nonempty_clusters,
                "prepartitioned_edges": n_pre,
                "remaining_edges": m - n_pre,
                "parallel_phase1": self.parallel_phase1,
                "phase1_syncs": phase1_syncs,
                # Replica rows the Phase-2 delta barriers actually merged
                # versus what full re-broadcast would have touched (bytes
                # = rows * k replica-matrix cells).
                "barrier_bytes": barrier_rows * k,
                "barrier_bytes_full": barrier_full_rows * k,
                # Distributed sessions also report actual socket traffic
                # (frame bytes both ways, barrier delta vs what a full
                # state re-broadcast would have shipped).
                **({"wire": wire_stats} if wire_stats else {}),
            },
        )

    def _run_parallel_phase1(self, session, stream, k, m, timer, cost):
        """Phase 1 through the runner session (see the class docstring)."""
        with timer.phase("degree"):
            degrees = session.run_degree_pass(stream.n_vertices)
            cost.edges_streamed += m
        n = max(
            self._resolve_n_vertices(stream, degrees), len(degrees)
        )
        if len(degrees) < n:
            grown = np.zeros(n, dtype=np.int64)
            grown[: len(degrees)] = degrees
            degrees = grown
        with timer.phase("clustering"):
            cap = default_volume_cap(m, k, self.volume_cap_factor)
            v2c, volumes, phase1_syncs = session.run_clustering(
                degrees, cap, self.clustering_passes
            )
            clustering = ClusteringResult(
                v2c=v2c,
                volumes=volumes,
                degrees=degrees,
                volume_cap=cap,
                passes=self.clustering_passes,
            )
        with timer.phase("mapping"):
            c2p, loads = graham_schedule(clustering.volumes, k, cost=cost)
        return n, degrees, clustering, c2p, loads, phase1_syncs
