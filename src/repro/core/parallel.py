"""CuSP-style parallel streaming partitioning (paper Section VI direction).

The paper observes that "2PS-L could be integrated into the CuSP framework
to speed up the partitioning.  However, parallelization comes with a cost,
as staleness in state synchronization of multiple partitioner instances
can lead to lower partitioning quality."

This module simulates exactly that trade-off.  The edge stream is split
into ``n_workers`` contiguous shards.  Phase 1 (degrees, clustering,
mapping) is shared — it is cheap and embarrassingly mergeable — while the
Phase-2 scoring pass runs per worker against a *stale* copy of the global
replication state that is re-synchronized only every ``sync_interval``
edges.  ``sync_interval=1`` degenerates to sequential 2PS-L behaviour (no
staleness); larger intervals trade quality for (modeled) parallel speedup.

Note on balance: each worker enforces the cap against its *stale* size
view, so within one sync window the global partition sizes can overshoot
``alpha * |E| / k`` slightly — the same effect a real CuSP deployment
shows.  The measured alpha is reported in the result as usual.

The simulation is single-process but round-robins workers in quanta so the
interleaving (and therefore the staleness pattern) matches a real parallel
run with barrier syncs; the modeled parallel wall-clock is
``sequential_time / n_workers + syncs * sync_latency``.
"""

from __future__ import annotations

import numpy as np

from repro.core.clustering import StreamingClustering, default_volume_cap
from repro.core.scheduling import graham_schedule
from repro.errors import ConfigurationError
from repro.graph.degrees import compute_degrees_from_stream
from repro.metrics.memory import measured_state_bytes
from repro.metrics.runtime import CostCounter, PhaseTimer
from repro.partitioning.base import EdgePartitioner, PartitionResult
from repro.partitioning.hashutil import splitmix64
from repro.partitioning.state import PartitionState


class ParallelTwoPhase(EdgePartitioner):
    """Sharded 2PS-L with periodic state synchronization.

    Parameters
    ----------
    n_workers:
        Parallel partitioner instances (stream shards).
    sync_interval:
        Edges each worker processes between state synchronizations; larger
        means staler replica/size views and lower quality.
    sync_latency:
        Modeled seconds per synchronization barrier (for the parallel
        wall-clock estimate in ``extras``).
    """

    name = "2PS-L-parallel"

    def __init__(
        self,
        n_workers: int = 4,
        sync_interval: int = 1024,
        volume_cap_factor: float = 0.5,
        sync_latency: float = 0.001,
        hash_seed: int = 0,
    ) -> None:
        if n_workers < 1:
            raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
        if sync_interval < 1:
            raise ConfigurationError(
                f"sync_interval must be >= 1, got {sync_interval}"
            )
        self.n_workers = int(n_workers)
        self.sync_interval = int(sync_interval)
        self.volume_cap_factor = float(volume_cap_factor)
        self.sync_latency = float(sync_latency)
        self.hash_seed = int(hash_seed)

    # ------------------------------------------------------------------
    def _run(self, stream, k: int, alpha: float) -> PartitionResult:
        timer = PhaseTimer()
        cost = CostCounter()
        m = stream.n_edges

        with timer.phase("degree"):
            degrees = compute_degrees_from_stream(stream)
            cost.edges_streamed += m
        n = max(self._resolve_n_vertices(stream, degrees), len(degrees))

        with timer.phase("clustering"):
            cap = default_volume_cap(m, k, self.volume_cap_factor)
            clustering = StreamingClustering(volume_cap=cap).run(
                stream, degrees=degrees, cost=cost
            )
        with timer.phase("mapping"):
            c2p, _ = graham_schedule(clustering.volumes, k, cost=cost)

        # Materialize shard boundaries over the stream order.
        edges = stream.materialize().edges
        shard_bounds = np.linspace(0, m, self.n_workers + 1).astype(np.int64)

        state = PartitionState(n, k, m, alpha)
        assignments = np.full(m, -1, dtype=np.int32)
        global_sizes = np.zeros(k, dtype=np.int64)
        # Per-worker stale views.
        stale_replicas = [state.replicas.copy() for _ in range(self.n_workers)]
        stale_sizes = [global_sizes.copy() for _ in range(self.n_workers)]
        cursors = shard_bounds[:-1].copy()
        syncs = 0

        v2c = clustering.v2c.tolist()
        c2p_l = c2p.tolist()
        vol = clustering.volumes.tolist()
        deg = degrees.tolist()
        capacity = state.capacity

        with timer.phase("partitioning"):
            active = True
            while active:
                active = False
                for w in range(self.n_workers):
                    start = int(cursors[w])
                    end = min(int(shard_bounds[w + 1]), start + self.sync_interval)
                    if start >= end:
                        continue
                    active = True
                    replicas = stale_replicas[w]
                    sizes = stale_sizes[w]
                    for idx in range(start, end):
                        u = int(edges[idx, 0])
                        v = int(edges[idx, 1])
                        c1 = v2c[u]
                        c2 = v2c[v]
                        p1 = c2p_l[c1]
                        p2 = c2p_l[c2]
                        if c1 == c2 or p1 == p2:
                            p = p1
                        else:
                            du = deg[u]
                            dv = deg[v]
                            dsum = du + dv
                            vol1 = vol[c1]
                            vol2 = vol[c2]
                            vsum = vol1 + vol2
                            s1 = vol1 / vsum if vsum else 0.0
                            if replicas[u, p1]:
                                s1 += 2.0 - du / dsum
                            if replicas[v, p1]:
                                s1 += 2.0 - dv / dsum
                            s2 = vol2 / vsum if vsum else 0.0
                            if replicas[u, p2]:
                                s2 += 2.0 - du / dsum
                            if replicas[v, p2]:
                                s2 += 2.0 - dv / dsum
                            cost.score_evaluations += 2
                            p = p1 if s1 >= s2 else p2
                        if sizes[p] >= capacity:
                            hv = u if deg[u] >= deg[v] else v
                            p = int(splitmix64(hv, self.hash_seed) % np.uint64(k))
                            cost.hash_evaluations += 1
                            if sizes[p] >= capacity:
                                open_mask = sizes < capacity
                                candidates = np.where(open_mask)[0]
                                p = int(candidates[np.argmin(sizes[candidates])])
                        sizes[p] += 1
                        replicas[u, p] = True
                        replicas[v, p] = True
                        assignments[idx] = p
                    cursors[w] = end
                # Barrier: merge worker deltas into the global state and
                # refresh every stale view.
                merged = np.logical_or.reduce(
                    [state.replicas] + stale_replicas
                )
                state.replicas[:] = merged
                counted = np.bincount(
                    assignments[assignments >= 0], minlength=k
                ).astype(np.int64)
                global_sizes[:] = counted
                for w in range(self.n_workers):
                    stale_replicas[w][:] = merged
                    stale_sizes[w][:] = global_sizes
                syncs += 1
            cost.edges_streamed += m

        state.sizes[:] = global_sizes
        sequential = timer.totals.get("partitioning", 0.0)
        return PartitionResult(
            partitioner=self.name,
            k=k,
            alpha=alpha,
            n_vertices=n,
            n_edges=m,
            assignments=assignments,
            state=state,
            timer=timer,
            cost=cost,
            state_bytes=measured_state_bytes(state, degrees, clustering.v2c, c2p)
            * (1 + self.n_workers),
            extras={
                "n_workers": self.n_workers,
                "sync_interval": self.sync_interval,
                "syncs": syncs,
                "parallel_wall_s": sequential / self.n_workers
                + syncs * self.sync_latency,
            },
        )
