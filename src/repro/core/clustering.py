"""Phase 1 of 2PS-L: streaming vertex clustering (paper Algorithm 1).

The algorithm extends Hollocou et al.'s single-pass streaming clustering
with the two novelties of Section III-A.2:

1. **True-degree volumes with an explicit volume cap.**  Vertex degrees are
   computed upfront in a separate linear pass, cluster *volume* is the sum
   of member true degrees, and no migration may push a cluster's volume
   beyond ``volume_cap``.  Bounded volumes are what later lets Phase 2 map
   whole clusters onto partitions without breaking the balance constraint.
2. **Re-streaming.**  The same pass can be repeated over the edge stream,
   refining assignments with the accumulated state (evaluated in the
   paper's Figures 7 and 8).

For ablation, the original Hollocou behaviour is available via
``use_true_degrees=False`` (partial degrees counted on the fly) and
``volume_cap=None`` (unbounded volumes).

The per-edge pass bodies live in the kernel backends
(:mod:`repro.kernels`): the ``python`` backend runs the reference
per-edge loop below, the default ``numpy`` backend vectorizes the
conflict-free portion of each chunk and is bit-exact with the reference.

Per-edge logic (matching Algorithm 1 line numbers):

- lines 11-15: endpoints without a cluster open a fresh singleton cluster
  whose volume is the vertex's degree;
- line 16: migration is only considered when *both* cluster volumes are
  within the cap;
- lines 17-18: the vertex whose cluster-minus-own-degree volume is smaller
  (``v_s``) is the migration candidate, toward the other endpoint's cluster
  (``v_l``);
- lines 19-22: the migration happens only if it keeps the target volume
  within the cap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.kernels import get_backend
from repro.metrics.runtime import CostCounter


@dataclass
class ClusteringResult:
    """State produced by Phase 1, consumed by Phase 2.

    Attributes
    ----------
    v2c:
        ``int64`` vertex-to-cluster map (-1 for vertices never streamed).
    volumes:
        ``int64`` cluster volumes, indexed by cluster id; entries of emptied
        clusters are 0.
    degrees:
        The degree array used (true degrees, or final partial degrees).
    volume_cap:
        The cap enforced (``None`` when unbounded).
    passes:
        Number of streaming passes performed.
    """

    v2c: np.ndarray
    volumes: np.ndarray
    degrees: np.ndarray
    volume_cap: float | None
    passes: int

    @property
    def n_clusters(self) -> int:
        """Number of allocated cluster ids (including emptied ones)."""
        return int(self.volumes.shape[0])

    @property
    def n_nonempty_clusters(self) -> int:
        """Clusters that still own at least one vertex."""
        if self.v2c.size == 0:
            return 0
        used = self.v2c[self.v2c >= 0]
        return int(np.unique(used).shape[0]) if used.size else 0

    def validate(self) -> None:
        """Check the volume invariant: volume == sum of member degrees.

        Only valid in true-degree mode; raises ``AssertionError`` with a
        diagnostic on violation (used heavily by the property tests).
        """
        recomputed = np.zeros_like(self.volumes)
        mask = self.v2c >= 0
        np.add.at(recomputed, self.v2c[mask], self.degrees[mask])
        if not np.array_equal(recomputed, self.volumes):
            bad = np.where(recomputed != self.volumes)[0][:5]
            raise AssertionError(
                f"cluster volume invariant violated at clusters {bad.tolist()}"
            )


class StreamingClustering:
    """Streaming vertex clustering with bounded volumes and re-streaming.

    Parameters
    ----------
    n_passes:
        Streaming passes (1 = no re-streaming, the paper's recommended
        default; Figures 7-8 sweep 1..8).
    volume_cap:
        Maximum cluster volume.  ``None`` disables the bound (original
        Hollocou behaviour).
    use_true_degrees:
        When True (2PS-L), a degree array must be passed to :meth:`run`.
        When False, partial degrees are counted on the fly (Hollocou).
    backend:
        Kernel backend name (:mod:`repro.kernels`); ``None`` selects the
        default.  Pure performance knob — backends are bit-exact.
    """

    def __init__(
        self,
        n_passes: int = 1,
        volume_cap: float | None = None,
        use_true_degrees: bool = True,
        backend: str | None = None,
    ) -> None:
        if n_passes < 1:
            raise ConfigurationError(f"n_passes must be >= 1, got {n_passes}")
        if volume_cap is not None and volume_cap <= 0:
            raise ConfigurationError(
                f"volume_cap must be positive or None, got {volume_cap}"
            )
        get_backend(backend)  # validate the name eagerly
        self.n_passes = int(n_passes)
        self.volume_cap = volume_cap
        self.use_true_degrees = bool(use_true_degrees)
        self.backend = backend

    # ------------------------------------------------------------------
    def run(
        self,
        stream,
        degrees: np.ndarray | None = None,
        n_vertices: int | None = None,
        cost: CostCounter | None = None,
    ) -> ClusteringResult:
        """Cluster the vertices of ``stream``.

        Parameters
        ----------
        stream:
            Edge stream (re-iterable).
        degrees:
            True degree array; required when ``use_true_degrees``.
        n_vertices:
            Vertex-count override (else from degrees/stream).
        cost:
            Optional cost counter; cluster updates and streamed edges are
            accounted there.
        """
        if self.use_true_degrees:
            if degrees is None:
                raise ConfigurationError(
                    "true-degree clustering requires a degree array "
                    "(run compute_degrees_from_stream first)"
                )
            n = len(degrees)
        else:
            if n_vertices is None:
                n_vertices = getattr(stream, "n_vertices", None)
            if n_vertices is None:
                raise ConfigurationError(
                    "partial-degree clustering requires n_vertices"
                )
            n = int(n_vertices)
            degrees = np.zeros(n, dtype=np.int64)

        kernels = get_backend(self.backend)
        state = kernels.clustering_init(np.asarray(degrees, dtype=np.int64))
        cap = float("inf") if self.volume_cap is None else float(self.volume_cap)

        for _ in range(self.n_passes):
            if self.use_true_degrees:
                kernels.clustering_true_pass(stream, state, cap, cost)
            else:
                kernels.clustering_partial_pass(stream, state, cap, cost)

        v2c, volumes, final_degrees = kernels.clustering_export(state)
        return ClusteringResult(
            v2c=v2c,
            volumes=volumes,
            degrees=final_degrees,
            volume_cap=self.volume_cap,
            passes=self.n_passes,
        )


def default_volume_cap(n_edges: int, k: int, factor: float = 0.5) -> float:
    """The volume cap 2PS-L hands to Phase 1: ``factor * |E| / k``.

    A partition may hold ``alpha * |E| / k`` edges; a fully internal cluster
    of volume ``vol`` holds about ``vol / 2`` edges, so the largest cluster
    that fits one partition has volume about ``2 * |E| / k`` (``factor =
    2``).  In practice substantially smaller caps partition better — many
    medium clusters give the Graham scheduler balancing freedom and stop
    the volume-priority migration from snowballing mixed mega-clusters.
    The library default ``factor = 0.5`` was tuned on both the social and
    web stand-ins (see the ablation bench ``test_bench_ablation.py``).
    """
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    return factor * n_edges / k
