"""The 2PS-L partitioner: two-phase streaming edge partitioning (Alg. 2).

Pipeline (each step is a separate streaming pass, timed separately so the
Figure 5 breakdown can be reproduced):

1. **Degree pass** — one linear pass counting true vertex degrees.
2. **Clustering pass(es)** — Phase 1 (:mod:`repro.core.clustering`).
3. **Cluster mapping** — Graham sorted list scheduling of cluster volumes
   onto partitions (:mod:`repro.core.scheduling`).  No streaming.
4. **Pre-partitioning pass** — edges whose endpoints share a cluster, or
   whose clusters are mapped to the same partition, go straight to that
   partition (Algorithm 2, lines 16-26).
5. **Remaining pass** — every other edge is scored on exactly **two**
   candidate partitions (the partitions of its endpoints' clusters) with
   the constant-time 2PS-L score (lines 27-44).

Fallback chain when a target partition is at the hard cap: hash on the
higher-degree endpoint, then the least-loaded open partition as a last
resort — both from the paper (line 40-41 and the prose below them).

Setting ``mode="hdrf"`` replaces step 5's two-candidate scoring with the
full HDRF score over all k partitions, which is the paper's **2PS-HDRF**
variant (Section V-D): better replication factor, O(|E| * k) run-time.
"""

from __future__ import annotations

import numpy as np

from repro.core.clustering import (
    StreamingClustering,
    default_volume_cap,
)
from repro.core.scheduling import graham_schedule
from repro.core.scoring import HDRF_EPSILON
from repro.errors import ConfigurationError
from repro.graph.degrees import compute_degrees_from_stream
from repro.metrics.memory import measured_state_bytes
from repro.metrics.runtime import CostCounter, PhaseTimer
from repro.partitioning.base import EdgePartitioner, PartitionResult
from repro.partitioning.hashutil import splitmix64
from repro.partitioning.state import PartitionState


class TwoPhasePartitioner(EdgePartitioner):
    """2PS-L (default) or 2PS-HDRF (``mode="hdrf"``).

    Parameters
    ----------
    clustering_passes:
        Streaming clustering passes (1 = the paper's recommended default,
        i.e. no re-streaming; Figures 7-8 sweep this).
    volume_cap_factor:
        Cluster volume cap as a multiple of ``|E| / k``; see
        :func:`repro.core.clustering.default_volume_cap`.
    mode:
        ``"linear"`` for 2PS-L's two-candidate constant-time scoring,
        ``"hdrf"`` for full HDRF scoring over all k partitions (2PS-HDRF).
    hdrf_lambda:
        Balance weight of the HDRF score (paper appendix: 1.1).
    hash_seed:
        Seed of the fallback hash.
    keep_state:
        When True, the result's ``extras`` carry the Phase-1 clustering and
        the cluster-to-partition map (keys ``_clustering`` / ``_c2p``), so
        an :class:`~repro.core.incremental.IncrementalPartitioner` can be
        built from it for dynamic-graph updates.
    """

    def __init__(
        self,
        clustering_passes: int = 1,
        volume_cap_factor: float = 0.5,
        mode: str = "linear",
        hdrf_lambda: float = 1.1,
        hash_seed: int = 0,
        keep_state: bool = False,
    ) -> None:
        if mode not in ("linear", "hdrf"):
            raise ConfigurationError(
                f"mode must be 'linear' or 'hdrf', got {mode!r}"
            )
        if volume_cap_factor <= 0:
            raise ConfigurationError(
                f"volume_cap_factor must be positive, got {volume_cap_factor}"
            )
        self.clustering_passes = int(clustering_passes)
        self.volume_cap_factor = float(volume_cap_factor)
        self.mode = mode
        self.hdrf_lambda = float(hdrf_lambda)
        self.hash_seed = int(hash_seed)
        self.keep_state = bool(keep_state)
        self.name = "2PS-L" if mode == "linear" else "2PS-HDRF"

    # ------------------------------------------------------------------
    def _run(self, stream, k: int, alpha: float) -> PartitionResult:
        timer = PhaseTimer()
        cost = CostCounter()
        m = stream.n_edges

        # Pass 1: true vertex degrees (Figure 5: "Degree").
        with timer.phase("degree"):
            degrees = compute_degrees_from_stream(stream)
            cost.edges_streamed += m
        n = max(self._resolve_n_vertices(stream, degrees), len(degrees))
        if len(degrees) < n:
            grown = np.zeros(n, dtype=np.int64)
            grown[: len(degrees)] = degrees
            degrees = grown

        # Phase 1: streaming clustering (Figure 5: "Clustering").
        with timer.phase("clustering"):
            cap = default_volume_cap(m, k, self.volume_cap_factor)
            clustering = StreamingClustering(
                n_passes=self.clustering_passes, volume_cap=cap
            ).run(stream, degrees=degrees, cost=cost)

        # Phase 2 Step 1: map clusters to partitions (no streaming).
        with timer.phase("mapping"):
            c2p, loads = graham_schedule(clustering.volumes, k, cost=cost)

        state = PartitionState(n, k, m, alpha)
        assignments = np.full(m, -1, dtype=np.int32)
        sizes: list[int] = [0] * k  # Python-list mirror of state.sizes (hot loop)

        # Phase 2 Step 2: pre-partitioning pass.
        with timer.phase("prepartition"):
            n_pre = self._prepartition_pass(
                stream, clustering, c2p, state, sizes, assignments, degrees, k, cost
            )

        # Phase 2 Step 3: score remaining edges.
        with timer.phase("partitioning"):
            if self.mode == "linear":
                self._remaining_pass_linear(
                    stream, clustering, c2p, state, sizes, assignments, degrees, k, cost
                )
            else:
                self._remaining_pass_hdrf(
                    stream, clustering, c2p, state, sizes, assignments, degrees, k, cost
                )

        state.sizes[:] = sizes
        state_bytes = measured_state_bytes(
            state, clustering.v2c, clustering.volumes, clustering.degrees, c2p, loads
        )
        extra_state = (
            {"_clustering": clustering, "_c2p": c2p} if self.keep_state else {}
        )
        return PartitionResult(
            partitioner=self.name,
            k=k,
            alpha=alpha,
            n_vertices=n,
            n_edges=m,
            assignments=assignments,
            state=state,
            timer=timer,
            cost=cost,
            state_bytes=state_bytes,
            extras={
                "n_clusters": clustering.n_nonempty_clusters,
                "clustering_passes": clustering.passes,
                "volume_cap": clustering.volume_cap,
                "prepartitioned_edges": n_pre,
                "remaining_edges": m - n_pre,
                "mode": self.mode,
                **extra_state,
            },
        )

    # ------------------------------------------------------------------
    def _fallback_partition(
        self, u: int, v: int, deg: list, sizes: list, capacity: int, k: int, cost
    ) -> int:
        """Hash on the higher-degree endpoint; least-loaded open as last resort."""
        hv = u if deg[u] >= deg[v] else v
        p = int(splitmix64(hv, self.hash_seed) % np.uint64(k))
        cost.hash_evaluations += 1
        if sizes[p] >= capacity:
            p = min(range(k), key=sizes.__getitem__)
        return p

    def _prepartition_pass(
        self, stream, clustering, c2p, state, sizes, assignments, degrees, k, cost
    ) -> int:
        """Algorithm 2 lines 16-26; returns the number of edges assigned."""
        v2c = clustering.v2c.tolist()
        c2p_l = c2p.tolist()
        deg = degrees.tolist()
        replicas = state.replicas
        capacity = state.capacity
        idx = 0
        n_pre = 0
        for chunk in stream.chunks():
            for u, v in chunk.tolist():
                c1 = v2c[u]
                c2 = v2c[v]
                p1 = c2p_l[c1]
                if c1 == c2 or p1 == c2p_l[c2]:
                    p = p1
                    if sizes[p] >= capacity:
                        p = self._fallback_partition(
                            u, v, deg, sizes, capacity, k, cost
                        )
                    sizes[p] += 1
                    replicas[u, p] = True
                    replicas[v, p] = True
                    assignments[idx] = p
                    n_pre += 1
                idx += 1
        cost.edges_streamed += stream.n_edges
        return n_pre

    def _remaining_pass_linear(
        self, stream, clustering, c2p, state, sizes, assignments, degrees, k, cost
    ) -> None:
        """Algorithm 2 lines 27-44 with the two-candidate 2PS-L score."""
        v2c = clustering.v2c.tolist()
        c2p_l = c2p.tolist()
        vol = clustering.volumes.tolist()
        deg = degrees.tolist()
        replicas = state.replicas
        capacity = state.capacity
        idx = 0
        n_scored = 0
        for chunk in stream.chunks():
            for u, v in chunk.tolist():
                c1 = v2c[u]
                c2 = v2c[v]
                p1 = c2p_l[c1]
                p2 = c2p_l[c2]
                if c1 == c2 or p1 == p2:
                    idx += 1  # pre-partitioned in the previous pass
                    continue
                du = deg[u]
                dv = deg[v]
                dsum = du + dv
                vol1 = vol[c1]
                vol2 = vol[c2]
                vsum = vol1 + vol2
                # Score candidate p1: c1 is mapped to p1 (and c2 is not).
                s1 = vol1 / vsum if vsum else 0.0
                if replicas[u, p1]:
                    s1 += 2.0 - du / dsum
                if replicas[v, p1]:
                    s1 += 2.0 - dv / dsum
                # Score candidate p2 symmetrically.
                s2 = vol2 / vsum if vsum else 0.0
                if replicas[u, p2]:
                    s2 += 2.0 - du / dsum
                if replicas[v, p2]:
                    s2 += 2.0 - dv / dsum
                n_scored += 2
                p = p1 if s1 >= s2 else p2
                if sizes[p] >= capacity:
                    p = self._fallback_partition(u, v, deg, sizes, capacity, k, cost)
                sizes[p] += 1
                replicas[u, p] = True
                replicas[v, p] = True
                assignments[idx] = p
                idx += 1
        cost.score_evaluations += n_scored
        cost.edges_streamed += stream.n_edges

    def _remaining_pass_hdrf(
        self, stream, clustering, c2p, state, sizes, assignments, degrees, k, cost
    ) -> None:
        """2PS-HDRF: full HDRF scoring over all k partitions (Section V-D)."""
        v2c = clustering.v2c.tolist()
        c2p_l = c2p.tolist()
        deg = degrees.tolist()
        replicas = state.replicas
        capacity = state.capacity
        lam = self.hdrf_lambda
        sizes_np = np.asarray(sizes, dtype=np.float64)
        idx = 0
        n_scored = 0
        for chunk in stream.chunks():
            for u, v in chunk.tolist():
                c1 = v2c[u]
                c2 = v2c[v]
                if c1 == c2 or c2p_l[c1] == c2p_l[c2]:
                    idx += 1
                    continue
                du = deg[u]
                dv = deg[v]
                theta_u = du / (du + dv)
                scores = replicas[u] * (2.0 - theta_u) + replicas[v] * (
                    1.0 + theta_u
                )
                maxs = sizes_np.max()
                mins = sizes_np.min()
                scores = scores + lam * (maxs - sizes_np) / (
                    HDRF_EPSILON + maxs - mins
                )
                scores[sizes_np >= capacity] = -np.inf
                p = int(np.argmax(scores))
                n_scored += k
                sizes[p] += 1
                sizes_np[p] += 1.0
                replicas[u, p] = True
                replicas[v, p] = True
                assignments[idx] = p
                idx += 1
        cost.score_evaluations += n_scored
        cost.edges_streamed += stream.n_edges
