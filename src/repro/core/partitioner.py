"""The 2PS-L partitioner: two-phase streaming edge partitioning (Alg. 2).

Pipeline (each step is a separate streaming pass, timed separately so the
Figure 5 breakdown can be reproduced):

1. **Degree pass** — one linear pass counting true vertex degrees.
2. **Clustering pass(es)** — Phase 1 (:mod:`repro.core.clustering`).
3. **Cluster mapping** — Graham sorted list scheduling of cluster volumes
   onto partitions (:mod:`repro.core.scheduling`).  No streaming.
4. **Pre-partitioning pass** — edges whose endpoints share a cluster, or
   whose clusters are mapped to the same partition, go straight to that
   partition (Algorithm 2, lines 16-26).
5. **Remaining pass** — every other edge is scored on exactly **two**
   candidate partitions (the partitions of its endpoints' clusters) with
   the constant-time 2PS-L score (lines 27-44).

Fallback chain when a target partition is at the hard cap: hash on the
higher-degree endpoint, then the least-loaded open partition as a last
resort — both from the paper (line 40-41 and the prose below them).

Setting ``mode="hdrf"`` replaces step 5's two-candidate scoring with the
full HDRF score over all k partitions, which is the paper's **2PS-HDRF**
variant (Section V-D): better replication factor, O(|E| * k) run-time.

The per-pass edge processing is delegated to a pluggable kernel backend
(:mod:`repro.kernels`): ``backend="numpy"`` (default) runs the
chunk-vectorized kernels, ``backend="python"`` the per-edge reference
kernels — both bit-exact with each other.
"""

from __future__ import annotations

import numpy as np

from repro.core.clustering import (
    StreamingClustering,
    default_volume_cap,
)
from repro.core.scheduling import graham_schedule
from repro.errors import ConfigurationError
from repro.kernels import TwoPhaseContext, get_backend
from repro.metrics.memory import measured_state_bytes
from repro.metrics.runtime import CostCounter, PhaseTimer
from repro.partitioning.base import (
    EdgePartitioner,
    PartitionArtifacts,
    PartitionResult,
)
from repro.partitioning.state import PartitionState


def run_phase1(
    stream,
    k: int,
    *,
    backend: str | None,
    clustering_passes: int,
    volume_cap_factor: float,
    timer: PhaseTimer,
    cost: CostCounter,
):
    """Degree pass + Phase-1 clustering + cluster mapping.

    Shared by the sequential :class:`TwoPhasePartitioner` and the sharded
    :class:`~repro.core.parallel.ParallelTwoPhase`, so the two pipelines
    are bit-identical (outputs *and* cost counters) up to the Phase-2
    streaming passes.  Returns ``(n, degrees, clustering, c2p, loads)``.
    """
    kernels = get_backend(backend)
    m = stream.n_edges

    # Pass 1: true vertex degrees (Figure 5: "Degree").
    with timer.phase("degree"):
        degrees = kernels.degree_pass(stream, stream.n_vertices)
        cost.edges_streamed += m
    n = max(EdgePartitioner._resolve_n_vertices(stream, degrees), len(degrees))
    if len(degrees) < n:
        grown = np.zeros(n, dtype=np.int64)
        grown[: len(degrees)] = degrees
        degrees = grown

    # Phase 1: streaming clustering (Figure 5: "Clustering").
    with timer.phase("clustering"):
        cap = default_volume_cap(m, k, volume_cap_factor)
        clustering = StreamingClustering(
            n_passes=clustering_passes,
            volume_cap=cap,
            backend=backend,
        ).run(stream, degrees=degrees, cost=cost)

    # Phase 2 Step 1: map clusters to partitions (no streaming).
    with timer.phase("mapping"):
        c2p, loads = graham_schedule(clustering.volumes, k, cost=cost)
    return n, degrees, clustering, c2p, loads


class TwoPhasePartitioner(EdgePartitioner):
    """2PS-L (default) or 2PS-HDRF (``mode="hdrf"``).

    Parameters
    ----------
    clustering_passes:
        Streaming clustering passes (1 = the paper's recommended default,
        i.e. no re-streaming; Figures 7-8 sweep this).
    volume_cap_factor:
        Cluster volume cap as a multiple of ``|E| / k``; see
        :func:`repro.core.clustering.default_volume_cap`.
    mode:
        ``"linear"`` for 2PS-L's two-candidate constant-time scoring,
        ``"hdrf"`` for full HDRF scoring over all k partitions (2PS-HDRF).
    hdrf_lambda:
        Balance weight of the HDRF score (paper appendix: 1.1).
    hash_seed:
        Seed of the fallback hash.
    keep_state:
        When True, the result carries a typed
        :class:`~repro.partitioning.base.PartitionArtifacts` (Phase-1
        clustering + cluster-to-partition map), so an
        :class:`~repro.core.incremental.IncrementalPartitioner` can be
        built from it for dynamic-graph updates.
    backend:
        Kernel backend name (:mod:`repro.kernels`); ``None`` selects the
        default (``"numpy"``).  Backends are bit-exact, so this is a pure
        performance knob.
    chunk_size:
        Default edges-per-chunk for every streaming pass of a run
        (overridable per call via ``partition(..., chunk_size=...)``);
        ``None`` keeps the stream's own default, ``"auto"`` derives one
        from ``|V|`` and ``k`` (:func:`repro.streaming.stream.
        auto_chunk_size`).
    packed_state:
        When True, the replica matrix is stored bit-packed (``ceil(k/8)``
        bytes per row; the out-of-core memory tier).  A pure storage
        knob — bit-exact with the dense default on every backend.
    tune:
        ``"auto"`` enables the online auto-tuner (:mod:`repro.tuning`)
        for every ``partition(...)`` call of this instance; ``None``
        (default) disables it.  Overridable per call via
        ``partition(..., tune=...)``.  Tuned knobs are pure execution
        knobs, so results stay bit-exact with an untuned run.
    """

    def __init__(
        self,
        clustering_passes: int = 1,
        volume_cap_factor: float = 0.5,
        mode: str = "linear",
        hdrf_lambda: float = 1.1,
        hash_seed: int = 0,
        keep_state: bool = False,
        backend: str | None = None,
        chunk_size: int | str | None = None,
        packed_state: bool = False,
        tune: str | None = None,
    ) -> None:
        if mode not in ("linear", "hdrf"):
            raise ConfigurationError(
                f"mode must be 'linear' or 'hdrf', got {mode!r}"
            )
        if volume_cap_factor <= 0:
            raise ConfigurationError(
                f"volume_cap_factor must be positive, got {volume_cap_factor}"
            )
        if (
            chunk_size is not None
            and chunk_size != "auto"
            and (isinstance(chunk_size, str) or chunk_size <= 0)
        ):
            raise ConfigurationError(
                f"chunk_size must be positive or 'auto', got {chunk_size!r}"
            )
        if tune not in (None, "auto"):
            raise ConfigurationError(
                f"tune must be None or 'auto', got {tune!r}"
            )
        get_backend(backend)  # validate the name eagerly
        self.clustering_passes = int(clustering_passes)
        self.volume_cap_factor = float(volume_cap_factor)
        self.mode = mode
        self.hdrf_lambda = float(hdrf_lambda)
        self.hash_seed = int(hash_seed)
        self.keep_state = bool(keep_state)
        self.backend = backend
        self.chunk_size = chunk_size
        self.packed_state = bool(packed_state)
        self.tune = tune
        self.name = "2PS-L" if mode == "linear" else "2PS-HDRF"

    # ------------------------------------------------------------------
    def _run(self, stream, k: int, alpha: float) -> PartitionResult:
        kernels = get_backend(self.backend)
        timer = PhaseTimer()
        cost = CostCounter()
        m = stream.n_edges

        n, degrees, clustering, c2p, loads = run_phase1(
            stream,
            k,
            backend=self.backend,
            clustering_passes=self.clustering_passes,
            volume_cap_factor=self.volume_cap_factor,
            timer=timer,
            cost=cost,
        )

        state = PartitionState(n, k, m, alpha, packed=self.packed_state)
        assignments = np.full(m, -1, dtype=np.int32)
        ctx = TwoPhaseContext(
            k=k,
            v2c=clustering.v2c,
            c2p=c2p,
            volumes=clustering.volumes,
            degrees=degrees,
            state=state,
            assignments=assignments,
            hash_seed=self.hash_seed,
            cost=cost,
            hdrf_lambda=self.hdrf_lambda,
        )

        # Phase 2 Step 2: pre-partitioning pass.
        with timer.phase("prepartition"):
            n_pre = kernels.prepartition_pass(stream, ctx)

        # Phase 2 Step 3: score remaining edges.
        with timer.phase("partitioning"):
            if self.mode == "linear":
                kernels.remaining_pass_linear(stream, ctx)
            else:
                kernels.remaining_pass_hdrf(stream, ctx)

        state_bytes = measured_state_bytes(
            state, clustering.v2c, clustering.volumes, clustering.degrees, c2p, loads
        )
        artifacts = (
            PartitionArtifacts(clustering=clustering, c2p=c2p)
            if self.keep_state
            else None
        )
        return PartitionResult(
            partitioner=self.name,
            k=k,
            alpha=alpha,
            n_vertices=n,
            n_edges=m,
            assignments=assignments,
            state=state,
            timer=timer,
            cost=cost,
            state_bytes=state_bytes,
            extras={
                "n_clusters": clustering.n_nonempty_clusters,
                "clustering_passes": clustering.passes,
                "volume_cap": clustering.volume_cap,
                "prepartitioned_edges": n_pre,
                "remaining_edges": m - n_pre,
                "mode": self.mode,
                "backend": kernels.name,
            },
            artifacts=artifacts,
        )
