"""The paper's contribution: the 2PS-L two-phase streaming edge partitioner.

- :mod:`~repro.core.clustering` — Phase 1: streaming vertex clustering
  (Hollocou-style with true-degree volumes, an explicit volume cap, and
  optional re-streaming; paper Algorithm 1).
- :mod:`~repro.core.scheduling` — Phase 2 Step 1: cluster-to-partition
  mapping via Graham's sorted list scheduling (4/3-approximation of
  makespan scheduling on identical machines).
- :mod:`~repro.core.scoring` — the constant-time 2PS-L scoring function
  over exactly two candidate partitions, plus HDRF scoring for the
  2PS-HDRF variant.
- :mod:`~repro.core.partitioner` — the full pipeline (paper Algorithm 2):
  degree pass, clustering pass(es), cluster mapping, pre-partitioning pass,
  remaining-edge scoring pass.

Extensions from the paper's discussion (Section VI):

- :mod:`~repro.core.incremental` — dynamic-graph updates without
  re-partitioning (Fan et al. direction);
- :mod:`~repro.core.parallel` — CuSP-style sharded partitioning with
  stale-state synchronization, executed by a pluggable runner
  (:mod:`~repro.core.runners`: serial reference, single-process
  simulation, or true multi-process over shared-memory state views).
"""

from repro.core.clustering import ClusteringResult, StreamingClustering
from repro.core.scheduling import graham_schedule, makespan_lower_bound
from repro.core.scoring import hdrf_scores, twopsl_score
from repro.core.partitioner import TwoPhasePartitioner
from repro.core.incremental import IncrementalPartitioner
from repro.core.runners import (
    ProcessRunner,
    Runner,
    SerialRunner,
    SimulatedRunner,
    make_runner,
)
from repro.core.distributed import DistributedRunner
from repro.core.parallel import ParallelTwoPhase

__all__ = [
    "StreamingClustering",
    "ClusteringResult",
    "graham_schedule",
    "makespan_lower_bound",
    "twopsl_score",
    "hdrf_scores",
    "TwoPhasePartitioner",
    "IncrementalPartitioner",
    "ParallelTwoPhase",
    "Runner",
    "SerialRunner",
    "SimulatedRunner",
    "ProcessRunner",
    "DistributedRunner",
    "make_runner",
]
