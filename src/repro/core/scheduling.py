"""Phase 2 Step 1: cluster-to-partition mapping via Graham scheduling.

The paper models cluster assignment as Makespan Scheduling on Identical
Machines (MSP-IM): partitions are machines, clusters are jobs, cluster
volumes are job run-times, and the goal is to minimize the largest
cumulative partition volume.  MSP-IM is NP-hard; Graham's *sorted list
scheduling* (longest processing time first) is a 4/3-approximation: sort
jobs by decreasing size, repeatedly give the next job to the least-loaded
machine.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.errors import PartitioningError
from repro.metrics.runtime import CostCounter


def graham_schedule(
    volumes: np.ndarray, k: int, cost: CostCounter | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Map clusters to partitions with sorted list scheduling.

    Parameters
    ----------
    volumes:
        Cluster volumes (job sizes); zero-volume (emptied) clusters are
        mapped to partition 0 without affecting loads.
    k:
        Number of partitions (machines).
    cost:
        Optional counter; heap operations are accounted there.

    Returns
    -------
    (c2p, loads):
        ``c2p[c]`` is the partition of cluster ``c``; ``loads[p]`` is the
        cumulative volume of partition ``p``.

    Complexity: ``O(C log C)`` for the sort plus ``O(C log k)`` for the
    heap, with C = number of clusters (paper Section IV-A).
    """
    volumes = np.asarray(volumes, dtype=np.int64)
    if k < 1:
        raise PartitioningError(f"k must be >= 1, got {k}")
    if volumes.size and volumes.min() < 0:
        raise PartitioningError("cluster volumes must be non-negative")

    c2p = np.zeros(volumes.shape[0], dtype=np.int64)
    loads = np.zeros(k, dtype=np.int64)
    nonzero = np.where(volumes > 0)[0]
    # Decreasing volume; stable tie-break on cluster id for determinism.
    order = nonzero[np.argsort(-volumes[nonzero], kind="stable")]

    heap: list[tuple[int, int]] = [(0, p) for p in range(k)]
    heapq.heapify(heap)
    ops = 0
    for c in order.tolist():
        load, p = heapq.heappop(heap)
        c2p[c] = p
        load += int(volumes[c])
        loads[p] = load
        heapq.heappush(heap, (load, p))
        ops += 2
    if cost is not None:
        cost.heap_operations += ops
    return c2p, loads


def makespan_lower_bound(volumes: np.ndarray, k: int) -> float:
    """A valid lower bound on the optimal makespan.

    ``OPT >= max(sum(volumes) / k, max(volumes))`` — the average-load bound
    and the largest-job bound.  Used by the property tests to verify
    Graham's 4/3 guarantee: ``makespan <= 4/3 * OPT`` and our schedule also
    satisfies the direct Graham bound ``makespan <= mean + max``.
    """
    volumes = np.asarray(volumes, dtype=np.float64)
    if volumes.size == 0:
        return 0.0
    return max(float(volumes.sum()) / k, float(volumes.max()))
