"""Versioned wire protocol for the distributed runner tier.

The distributed runner (:mod:`repro.core.distributed`) speaks the same
sync-window/delta-barrier schedule as the simulated and process runners,
but over TCP sockets.  This module is the transport: an explicit,
versioned frame format plus a typed payload encoding, deliberately free
of pickle so a malformed or hostile peer can at worst fail a checksum —
never execute code.

Frame layout (network byte order)::

    +--------+------+-------+----------+-------------+----------+
    | magic  | type | flags | reserved | payload_len | crc32    |
    | 4 B    | 1 B  | 1 B   | 2 B      | 4 B         | 4 B      |
    +--------+------+-------+----------+-------------+----------+
    | payload (payload_len bytes)                               |
    +-----------------------------------------------------------+

``magic`` is ``b"2PSW"`` (2PS-L Wire).  ``crc32`` covers the payload
bytes only; header corruption is caught by the magic check.  ``flags``
and ``reserved`` are zero in :data:`WIRE_VERSION` 1 and ignored on
receipt, so they are available to future versions without a frame-format
break.

Payloads are flat key/value mappings encoded field-by-field with a type
tag per value: ``None``, bool, int (signed 64-bit), float (IEEE 754
binary64), UTF-8 string, raw bytes, numpy ndarray (dtype descriptor +
shape + little-endian buffer), or a nested mapping.  Decoded ndarrays
are always fresh writable copies — kernels mutate their inputs, and
``np.frombuffer`` views would be read-only.

Version negotiation happens once per connection: the coordinator opens
with ``HELLO {version}``, the worker answers ``HELLO {version}`` when it
speaks the same version and ``ERROR`` otherwise; both sides check.  Every
transport/framing failure raises :class:`~repro.errors.WireError` (a
:class:`~repro.errors.PartitioningError`), so worker death, truncation,
checksum corruption, and timeouts all surface as the one typed error the
runner contract promises — no hangs, no silent partial reads.
"""

from __future__ import annotations

import socket
import struct
import zlib

import numpy as np

from repro.errors import WireError

#: Protocol version spoken by this build; bumped on any frame or payload
#: format break.  Negotiated by the HELLO handshake.
WIRE_VERSION = 1

MAGIC = b"2PSW"

_HEADER = struct.Struct("!4sBBHII")
HEADER_BYTES = _HEADER.size

#: Hard ceiling on one frame's payload; a corrupt length field must not
#: make the receiver try to allocate petabytes.
MAX_PAYLOAD_BYTES = 1 << 32

# ---------------------------------------------------------------------
# message types
# ---------------------------------------------------------------------
MSG_HELLO = 1  #: handshake: {"version": int}
MSG_OK = 2  #: generic acknowledgement
MSG_ERROR = 3  #: {"message": str} — remote failure, surfaced typed
MSG_JOB = 4  #: session parameters + stream spec
MSG_DEGREE = 5  #: Phase-1 degree window {"start", "stop"}
MSG_DEGREE_RESULT = 6  #: {"degrees": int64[n]}
MSG_PHASE1_INIT = 7  #: {"degrees", "cap", "single"}
MSG_CLUSTER = 8  #: clustering window (+ merged v2c/volumes when sharded)
MSG_CLUSTER_RESULT = 9  #: {"cost"} (+ "v2c"/"volumes" export when sharded)
MSG_CLUSTER_FINISH = 10  #: drain the single-worker live clustering state
MSG_BIND = 11  #: Phase-2 bind: phase-1 arrays + state geometry
MSG_WINDOW = 12  #: Phase-2 sync window {"pass", "start", "stop"}
MSG_WINDOW_RESULT = 13  #: assignments + dirty replica-row delta
MSG_BARRIER = 14  #: merged refresh {"rows", "rows_data", "sizes"}
MSG_BARRIER_ACK = 15  #: worker applied the refresh
MSG_SHUTDOWN = 16  #: orderly session end

MESSAGE_NAMES = {
    value: name
    for name, value in list(globals().items())
    if name.startswith("MSG_")
}

# ---------------------------------------------------------------------
# typed payload encoding
# ---------------------------------------------------------------------
_T_NONE = 0
_T_BOOL = 1
_T_INT = 2
_T_FLOAT = 3
_T_STR = 4
_T_BYTES = 5
_T_ARRAY = 6
_T_DICT = 7

_U32 = struct.Struct("!I")
_I64 = struct.Struct("!q")
_F64 = struct.Struct("!d")


def _encode_value(value, out: list) -> None:
    if value is None:
        out.append(bytes([_T_NONE]))
    elif isinstance(value, (bool, np.bool_)):
        out.append(bytes([_T_BOOL, 1 if value else 0]))
    elif isinstance(value, (int, np.integer)):
        out.append(bytes([_T_INT]) + _I64.pack(int(value)))
    elif isinstance(value, (float, np.floating)):
        out.append(bytes([_T_FLOAT]) + _F64.pack(float(value)))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(bytes([_T_STR]) + _U32.pack(len(raw)) + raw)
    elif isinstance(value, (bytes, bytearray, memoryview)):
        raw = bytes(value)
        out.append(bytes([_T_BYTES]) + _U32.pack(len(raw)) + raw)
    elif isinstance(value, np.ndarray):
        arr = np.ascontiguousarray(value)
        if arr.dtype.byteorder == ">":  # pragma: no cover - BE hosts only
            arr = arr.astype(arr.dtype.newbyteorder("<"))
        descr = arr.dtype.str.encode("ascii")
        raw = arr.tobytes()
        out.append(
            bytes([_T_ARRAY, len(descr), arr.ndim])
            + descr
            + b"".join(_I64.pack(dim) for dim in arr.shape)
            + _U32.pack(len(raw))
            + raw
        )
    elif isinstance(value, dict):
        nested = encode_payload(value)
        out.append(bytes([_T_DICT]) + _U32.pack(len(nested)) + nested)
    else:
        raise WireError(
            f"no wire encoding for values of type {type(value).__name__}"
        )


def encode_payload(fields: dict | None) -> bytes:
    """Encode a flat mapping of typed fields into payload bytes."""
    out: list[bytes] = [_U32.pack(len(fields or {}))]
    for key, value in (fields or {}).items():
        raw_key = key.encode("utf-8")
        if len(raw_key) > 255:
            raise WireError(f"payload key too long: {key!r}")
        out.append(bytes([len(raw_key)]) + raw_key)
        _encode_value(value, out)
    return b"".join(out)


class _Reader:
    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        end = self.pos + n
        if end > len(self.data):
            raise WireError("truncated wire payload")
        chunk = self.data[self.pos : end]
        self.pos = end
        return chunk


def _decode_value(reader: _Reader):
    tag = reader.take(1)[0]
    if tag == _T_NONE:
        return None
    if tag == _T_BOOL:
        return reader.take(1)[0] != 0
    if tag == _T_INT:
        return _I64.unpack(reader.take(8))[0]
    if tag == _T_FLOAT:
        return _F64.unpack(reader.take(8))[0]
    if tag == _T_STR:
        (length,) = _U32.unpack(reader.take(4))
        return reader.take(length).decode("utf-8")
    if tag == _T_BYTES:
        (length,) = _U32.unpack(reader.take(4))
        return reader.take(length)
    if tag == _T_ARRAY:
        descr_len = reader.take(1)[0]
        ndim = reader.take(1)[0]
        dtype = np.dtype(reader.take(descr_len).decode("ascii"))
        shape = tuple(
            _I64.unpack(reader.take(8))[0] for _ in range(ndim)
        )
        (length,) = _U32.unpack(reader.take(4))
        raw = reader.take(length)
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        if count * dtype.itemsize != length:
            raise WireError(
                f"wire array length mismatch: {length} bytes for "
                f"shape {shape} of {dtype}"
            )
        # Writable copy: kernels mutate their inputs and frombuffer
        # views over the frame bytes would be read-only.
        return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()
    if tag == _T_DICT:
        (length,) = _U32.unpack(reader.take(4))
        return decode_payload(reader.take(length))
    raise WireError(f"unknown wire value tag {tag}")


def decode_payload(data: bytes) -> dict:
    """Decode payload bytes back into the typed field mapping."""
    reader = _Reader(data)
    (n_fields,) = _U32.unpack(reader.take(4))
    fields = {}
    for _ in range(n_fields):
        key_len = reader.take(1)[0]
        key = reader.take(key_len).decode("utf-8")
        fields[key] = _decode_value(reader)
    return fields


# ---------------------------------------------------------------------
# framing over a socket
# ---------------------------------------------------------------------
class Connection:
    """One framed, CRC-checked protocol connection over a socket.

    Owns the socket; tracks bytes in both directions so sessions can
    report wire traffic.  Every failure mode — peer gone, timeout,
    corruption — raises :class:`~repro.errors.WireError` with the
    connection's ``label`` in the message, and :meth:`close` is
    idempotent so error-path teardown never leaks the socket.
    """

    def __init__(self, sock: socket.socket, label: str = "peer") -> None:
        self.sock = sock
        self.label = label
        self.bytes_sent = 0
        self.bytes_received = 0
        self.closed = False

    def settimeout(self, timeout: float | None) -> None:
        self.sock.settimeout(timeout)

    # -- sending -------------------------------------------------------
    def send(self, msg_type: int, fields: dict | None = None) -> int:
        payload = encode_payload(fields)
        header = _HEADER.pack(
            MAGIC, msg_type, 0, 0, len(payload), zlib.crc32(payload)
        )
        frame = header + payload
        try:
            self.sock.sendall(frame)
        except (OSError, ValueError) as exc:
            raise WireError(
                f"send to {self.label} failed: {exc}"
            ) from exc
        self.bytes_sent += len(frame)
        return len(frame)

    # -- receiving -----------------------------------------------------
    def _recv_exact(self, n: int) -> bytes:
        parts = []
        remaining = n
        while remaining > 0:
            try:
                chunk = self.sock.recv(min(remaining, 1 << 20))
            except (TimeoutError, socket.timeout) as exc:
                raise WireError(
                    f"timed out waiting for {self.label}"
                ) from exc
            except (OSError, ValueError) as exc:
                raise WireError(
                    f"recv from {self.label} failed: {exc}"
                ) from exc
            if not chunk:
                raise WireError(
                    f"connection closed by {self.label}"
                    + (" mid-frame" if parts or remaining < n else "")
                )
            parts.append(chunk)
            remaining -= len(chunk)
        return b"".join(parts)

    def recv(self) -> tuple[int, dict]:
        header = self._recv_exact(HEADER_BYTES)
        magic, msg_type, _flags, _reserved, length, crc = _HEADER.unpack(
            header
        )
        if magic != MAGIC:
            raise WireError(
                f"bad frame magic from {self.label}: {magic!r}"
            )
        if length > MAX_PAYLOAD_BYTES:  # pragma: no cover - corrupt len
            raise WireError(
                f"oversized frame from {self.label}: {length} bytes"
            )
        payload = self._recv_exact(length) if length else b""
        if zlib.crc32(payload) != crc:
            raise WireError(f"frame CRC mismatch from {self.label}")
        self.bytes_received += HEADER_BYTES + length
        return msg_type, decode_payload(payload)

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - double-close race
            pass


# ---------------------------------------------------------------------
# handshake / version negotiation
# ---------------------------------------------------------------------
def handshake_client(conn: Connection, version: int | None = None) -> int:
    """Coordinator side: offer our version, verify the peer's answer."""
    version = WIRE_VERSION if version is None else int(version)
    conn.send(MSG_HELLO, {"version": version})
    msg_type, fields = conn.recv()
    if msg_type == MSG_ERROR:
        raise WireError(
            f"handshake with {conn.label} rejected: "
            f"{fields.get('message', 'no reason given')}"
        )
    if msg_type != MSG_HELLO:
        raise WireError(
            f"handshake with {conn.label} got message type {msg_type}, "
            f"expected HELLO"
        )
    peer = int(fields.get("version", -1))
    if peer != version:
        raise WireError(
            f"wire protocol version mismatch with {conn.label}: "
            f"local {version}, peer {peer}"
        )
    return peer


def handshake_server(conn: Connection, version: int | None = None) -> int:
    """Worker side: await the coordinator's HELLO, accept or reject."""
    version = WIRE_VERSION if version is None else int(version)
    msg_type, fields = conn.recv()
    if msg_type != MSG_HELLO:
        conn.send(
            MSG_ERROR,
            {"message": f"expected HELLO, got message type {msg_type}"},
        )
        raise WireError(
            f"handshake with {conn.label} got message type {msg_type}, "
            f"expected HELLO"
        )
    peer = int(fields.get("version", -1))
    if peer != version:
        conn.send(
            MSG_ERROR,
            {
                "message": (
                    f"wire protocol version mismatch: coordinator "
                    f"speaks {peer}, worker speaks {version}"
                )
            },
        )
        raise WireError(
            f"wire protocol version mismatch with {conn.label}: "
            f"local {version}, peer {peer}"
        )
    conn.send(MSG_HELLO, {"version": version})
    return peer
