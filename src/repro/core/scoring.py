"""Scoring functions: the 2PS-L constant-time score and HDRF.

2PS-L score (Section III-B, Step 3).  For edge ``(u, v)`` and candidate
partition ``p``::

    s(u, v, p) = g_u + g_v + sc_u + sc_v

    g_x  = 1 + (1 - d_x / (d_u + d_v))   if x is replicated on p, else 0
    sc_x = vol(c_x) / (vol(c_u) + vol(c_v))   if c_x is mapped to p, else 0

The degree term prefers replicating the *lower*-degree endpoint (cutting
through hubs is cheaper per edge), and the novel cluster-volume term pulls
the edge toward the partition of the larger adjacent cluster, because more
of that cluster's edges are still to come in the stream.

Crucially, 2PS-L evaluates this score on **two** candidate partitions only
(the partitions of the endpoints' clusters) — that is the whole trick that
makes the partitioner linear-time.

HDRF score (Petroni et al., used by the HDRF baseline and the 2PS-HDRF
variant) evaluates on **every** partition::

    C_HDRF(u, v, p) = C_REP(u, v, p) + lambda * C_BAL(p)
    C_REP = g_u + g_v          (same degree-weighted replication term)
    C_BAL = (maxsize - |p|) / (eps + maxsize - minsize)
"""

from __future__ import annotations

import numpy as np

#: Tie-break epsilon in the HDRF balance term (reference implementation).
HDRF_EPSILON = 1e-9


def twopsl_score(
    du: int,
    dv: int,
    u_on_p: bool,
    v_on_p: bool,
    vol_cu: int,
    vol_cv: int,
    cu_on_p: bool,
    cv_on_p: bool,
) -> float:
    """The 2PS-L score of one (edge, partition) pair — scalar, O(1).

    Parameters mirror the formula: endpoint degrees, whether each endpoint
    is already replicated on ``p``, the adjacent cluster volumes, and
    whether each cluster is mapped to ``p``.
    """
    dsum = du + dv
    score = 0.0
    if u_on_p:
        score += 2.0 - du / dsum
    if v_on_p:
        score += 2.0 - dv / dsum
    vsum = vol_cu + vol_cv
    if vsum > 0:
        if cu_on_p:
            score += vol_cu / vsum
        if cv_on_p:
            score += vol_cv / vsum
    return score


def hdrf_replication_scores(
    du: int, dv: int, u_replicas: np.ndarray, v_replicas: np.ndarray
) -> np.ndarray:
    """HDRF ``C_REP`` over all k partitions, vectorized.

    ``u_replicas`` / ``v_replicas`` are the boolean replica rows of the two
    endpoints (length k).  Degrees may be partial (classic HDRF counts them
    on the fly).
    """
    dsum = du + dv
    if dsum <= 0:
        # Both endpoints unseen: no replication preference.
        return np.zeros(u_replicas.shape[0], dtype=np.float64)
    theta_u = du / dsum
    theta_v = 1.0 - theta_u
    return u_replicas * (2.0 - theta_u) + v_replicas * (2.0 - theta_v)


def hdrf_balance_scores(sizes: np.ndarray) -> np.ndarray:
    """HDRF ``C_BAL`` over all k partitions, vectorized."""
    sizes = np.asarray(sizes, dtype=np.float64)
    maxsize = sizes.max()
    minsize = sizes.min()
    return (maxsize - sizes) / (HDRF_EPSILON + maxsize - minsize)


def hdrf_scores(
    du: int,
    dv: int,
    u_replicas: np.ndarray,
    v_replicas: np.ndarray,
    sizes: np.ndarray,
    lam: float = 1.1,
) -> np.ndarray:
    """Full HDRF score vector ``C_REP + lambda * C_BAL`` over all partitions."""
    return hdrf_replication_scores(du, dv, u_replicas, v_replicas) + (
        lam * hdrf_balance_scores(sizes)
    )
