"""Execution runners: who runs the sync windows of a sharded Phase-2 pass.

:class:`~repro.core.parallel.ParallelTwoPhase` owns the *semantics* of
CuSP-style sharded partitioning — contiguous stream shards, per-worker
stale state views, barrier synchronization every ``sync_interval`` edges —
and delegates the *execution* of the resulting sync-window schedule to a
runner from this module:

- :class:`SerialRunner` — no sharding at all: each pass runs once over the
  full stream against the global state, exactly like the sequential
  :class:`~repro.core.partitioner.TwoPhasePartitioner`.  The degenerate
  reference point (zero syncs, zero staleness).
- :class:`SimulatedRunner` — the single-process round-robin simulation:
  worker windows execute interleaved in one process, each against its own
  stale heap-allocated :class:`~repro.partitioning.state.PartitionState`,
  with an explicit merge barrier after every sweep.  Deterministic and
  dependency-free; parallel wall-clock is *modeled*, not measured.
- :class:`ProcessRunner` — true ``multiprocessing`` execution: one pool
  process per shard worker, worker state views in shared-memory-backed
  ``PartitionState`` segments, per-edge assignments in one shared ``int32``
  array, and the stream reopened in every worker from a picklable
  :class:`~repro.streaming.stream.StreamSpec` (file streams stay
  out-of-core; in-memory streams ship their edges once through shared
  memory).  Parallel wall-clock is *measured*.

Equivalence contract
--------------------
All three runners execute the same deterministic schedule: worker ``w``
processes shard ``[bounds[w], bounds[w+1])`` in windows of at most
``sync_interval`` edges, and after every sweep the barrier ORs replica
bits and sums disjoint size deltas into the global state, then refreshes
every stale view.  Because the kernel contract makes chunk and window
boundaries semantics-free (see :mod:`repro.kernels`), this pins down every
output bit:

- :class:`ProcessRunner` is **bit-identical** to :class:`SimulatedRunner`
  under the same schedule — assignments, replica matrix, partition sizes
  *and* cost counters (cost fields are sums of per-window counts, so
  merge order cannot matter).
- With ``n_workers=1`` both are bit-exact with the sequential pipeline
  (a single worker's view is never stale), and :class:`SerialRunner` is
  bit-exact with it for *any* worker count because it ignores sharding
  entirely.

``tests/test_parallel_kernels.py`` enforces all of this differentially.

Shared-memory lifecycle
-----------------------
A process session owns every segment it creates (worker state views, the
assignment array, and — for non-file streams — the edge array).  Segments
are created in ``open()``, unlinked in ``close()``; ``close()`` is
idempotent and runs on both success and error paths, so a crashed or
timed-out worker cannot leak segments past the session (verified by the
cleanup tests; :func:`live_shared_segments` exposes the owned set).
Workers only ever *attach* and never unlink.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import astuple, dataclass, fields

import numpy as np

from repro.errors import ConfigurationError, PartitioningError
from repro.kernels import TwoPhaseContext, get_backend
from repro.metrics.runtime import CostCounter
from repro.partitioning.state import PartitionState
from repro.streaming.stream import make_stream_spec

#: Pass names a runner can execute -> kernel-backend method names.
PASS_METHODS = {
    "prepartition": "prepartition_pass",
    "remaining_linear": "remaining_pass_linear",
    "remaining_hdrf": "remaining_pass_hdrf",
}

_COST_FIELDS = tuple(f.name for f in fields(CostCounter))


def _merge_cost(cost: CostCounter, delta: tuple) -> None:
    """Accumulate a worker's per-window cost tuple into ``cost``."""
    for name, value in zip(_COST_FIELDS, delta):
        setattr(cost, name, getattr(cost, name) + int(value))


@dataclass
class ShardedJob:
    """Everything one parallel run shares across its two Phase-2 passes.

    Built once by ``ParallelTwoPhase._run`` after the shared Phase 1;
    handed to ``Runner.open``.  ``state``, ``assignments`` and ``cost``
    are the run's global outputs and are mutated by the session.
    """

    stream: object
    n_workers: int
    sync_interval: int
    shard_bounds: np.ndarray
    backend: str | None
    k: int
    alpha: float
    v2c: np.ndarray
    c2p: np.ndarray
    volumes: np.ndarray
    degrees: np.ndarray
    hash_seed: int
    hdrf_lambda: float
    state: PartitionState
    assignments: np.ndarray
    cost: CostCounter


def _make_ctx(job: ShardedJob, state, assignments, cost=None) -> TwoPhaseContext:
    return TwoPhaseContext(
        k=job.k,
        v2c=job.v2c,
        c2p=job.c2p,
        volumes=job.volumes,
        degrees=job.degrees,
        state=state,
        assignments=assignments,
        hash_seed=job.hash_seed,
        cost=job.cost if cost is None else cost,
        hdrf_lambda=job.hdrf_lambda,
    )


def merge_barrier(state: PartitionState, worker_states) -> None:
    """One synchronization barrier: merge worker deltas, refresh views.

    Replica bits merge by OR; sizes merge by summing each worker's delta
    against the last synchronized global sizes (every edge is assigned by
    exactly one worker, so deltas are disjoint).  Afterwards every worker
    view equals the new global state.  Shared by the simulated and the
    process runner so their barrier arithmetic cannot diverge.
    """
    if len(worker_states) == 1 and worker_states[0] is state:
        return  # the worker shares the global state: nothing to do
    merged = np.logical_or.reduce(
        [state.replicas] + [ws.replicas for ws in worker_states]
    )
    new_sizes = state.sizes + sum(
        ws.sizes - state.sizes for ws in worker_states
    )
    state.replicas[:] = merged
    state.sizes[:] = new_sizes
    for ws in worker_states:
        ws.replicas[:] = merged
        ws.sizes[:] = new_sizes


def _sweep_schedule(position, stop, sync_interval, pass_name):
    """Advance every active shard cursor one window; return the tasks."""
    tasks = []
    for w in range(len(position)):
        if position[w] >= stop[w]:
            continue
        take = min(sync_interval, stop[w] - position[w])
        tasks.append((w, pass_name, position[w], position[w] + take))
        position[w] += take
    return tasks


# ----------------------------------------------------------------------
# runner protocol
# ----------------------------------------------------------------------
class RunnerSession(ABC):
    """One parallel run's execution state (pools, views, segments)."""

    @abstractmethod
    def run_pass(self, pass_name: str) -> tuple[int, int]:
        """Execute one sharded pass; returns ``(kernel total, syncs)``."""

    def finalize(self) -> None:
        """Copy shared results back into the job arrays (success path)."""

    def close(self) -> None:
        """Release every resource; idempotent, safe on error paths."""

    def extra_state_bytes(self) -> int:
        """Bytes held by per-worker state views beyond the global state."""
        return 0


class Runner(ABC):
    """Scheduling strategy for the Phase-2 passes of ``ParallelTwoPhase``."""

    #: Registry name; subclasses override.
    kind: str = "abstract"

    #: True when wall-clock measured around ``run_pass`` is real parallel
    #: time (processes actually ran concurrently), False when it is
    #: single-process compute that a model must convert.
    measures_wallclock: bool = False

    @abstractmethod
    def open(self, job: ShardedJob) -> RunnerSession:
        """Start a session for one run (allocate views, pools, segments)."""

    def parallel_wall_seconds(
        self, phase2_seconds: float, n_workers: int, syncs: int,
        sync_latency: float,
    ) -> float:
        """Parallel Phase-2 wall-clock estimate for the result extras."""
        return phase2_seconds  # measured runners: the timer already is it

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} kind={self.kind!r}>"


# ----------------------------------------------------------------------
# serial
# ----------------------------------------------------------------------
class SerialRunner(Runner):
    """Sequential reference execution: one window, the whole stream.

    Ignores ``n_workers``/``sync_interval`` — each pass dispatches the
    kernel once over the full stream against the global state, which is
    exactly the sequential pipeline (bit-exact with
    ``TwoPhasePartitioner`` by construction).  Reports zero syncs.
    """

    kind = "serial"

    def open(self, job: ShardedJob) -> RunnerSession:
        return _SerialSession(job)


class _SerialSession(RunnerSession):
    def __init__(self, job: ShardedJob) -> None:
        self.job = job

    def run_pass(self, pass_name: str) -> tuple[int, int]:
        job = self.job
        kernel = getattr(get_backend(job.backend), PASS_METHODS[pass_name])
        out = kernel(job.stream, _make_ctx(job, job.state, job.assignments))
        return (0 if out is None else int(out)), 0


# ----------------------------------------------------------------------
# simulated (single-process round-robin)
# ----------------------------------------------------------------------
class _WindowStream:
    """One sync window of a shard, consumable like a stream by kernels.

    Holds at most ``sync_interval`` edges (the chunks already pulled from
    the shard-window iterator), so worker windows — not the edge set —
    bound the memory of the simulated parallel path.
    """

    __slots__ = ("_chunks", "n_edges")

    n_vertices = None

    def __init__(self, chunks, n_edges: int) -> None:
        self._chunks = chunks
        self.n_edges = n_edges

    def chunks(self, chunk_size=None):
        return iter(self._chunks)


class _ShardCursor:
    """Pulls one worker's shard from the stream in sync-window quanta.

    Wraps a single :meth:`EdgeStream.window` iterator (one sequential
    read of the shard per pass) and re-chunks it at window boundaries;
    a partial chunk is carried over to the next window.
    """

    __slots__ = ("_iter", "_carry", "position", "remaining")

    def __init__(self, stream, start: int, stop: int) -> None:
        self._iter = stream.window(start, stop)
        self._carry = None
        self.position = start
        self.remaining = stop - start

    def take(self, n_edges: int) -> _WindowStream:
        """Next window of up to ``n_edges`` edges, in stream order."""
        chunks = []
        got = 0
        while got < n_edges:
            if self._carry is not None:
                chunk, self._carry = self._carry, None
            else:
                chunk = next(self._iter, None)
                if chunk is None:
                    break
            need = n_edges - got
            if chunk.shape[0] > need:
                self._carry = chunk[need:]
                chunk = chunk[:need]
            if chunk.shape[0]:
                chunks.append(chunk)
                got += chunk.shape[0]
        self.position += got
        self.remaining -= got
        return _WindowStream(chunks, got)


class SimulatedRunner(Runner):
    """Single-process round-robin execution of the sharded schedule.

    Workers take turns in quanta so the interleaving (and therefore the
    staleness pattern) matches a real parallel run with barrier syncs;
    parallel wall-clock is *modeled* as
    ``sequential_phase2 / n_workers + syncs * sync_latency``.
    """

    kind = "simulated"

    def open(self, job: ShardedJob) -> RunnerSession:
        return _SimulatedSession(job)

    def parallel_wall_seconds(
        self, phase2_seconds, n_workers, syncs, sync_latency
    ) -> float:
        return phase2_seconds / n_workers + syncs * sync_latency


class _SimulatedSession(RunnerSession):
    def __init__(self, job: ShardedJob) -> None:
        self.job = job
        # A single worker's view is never stale, so it shares the global
        # state outright (this is what makes n_workers=1 bit-exact with
        # the sequential pipeline, with no merge work).
        if job.n_workers == 1:
            self.worker_states = [job.state]
        else:
            self.worker_states = [
                PartitionState(
                    job.state.n_vertices, job.k, job.state.n_edges, job.alpha
                )
                for _ in range(job.n_workers)
            ]

    def run_pass(self, pass_name: str) -> tuple[int, int]:
        job = self.job
        pass_kernel = getattr(
            get_backend(job.backend), PASS_METHODS[pass_name]
        )
        cursors = [
            _ShardCursor(
                job.stream,
                int(job.shard_bounds[w]),
                int(job.shard_bounds[w + 1]),
            )
            for w in range(job.n_workers)
        ]
        total = 0
        syncs = 0
        active = True
        while active:
            active = False
            for w, worker_state in enumerate(self.worker_states):
                cursor = cursors[w]
                if cursor.remaining <= 0:
                    continue
                pos = cursor.position
                window = cursor.take(job.sync_interval)
                if window.n_edges == 0:
                    continue
                active = True
                ctx = _make_ctx(
                    job,
                    worker_state,
                    job.assignments[pos : pos + window.n_edges],
                )
                out = pass_kernel(window, ctx)
                if out is not None:
                    total += int(out)
            if active:
                syncs += 1
                merge_barrier(job.state, self.worker_states)
        return total, syncs

    def extra_state_bytes(self) -> int:
        return sum(
            ws.nbytes()
            for ws in self.worker_states
            if ws is not self.job.state
        )


# ----------------------------------------------------------------------
# process (true multiprocessing over shared memory)
# ----------------------------------------------------------------------
#: Names of shared segments currently owned by live process sessions.
#: Test/debug hook: must be empty whenever no session is open.
_LIVE_SEGMENTS: set[str] = set()


def live_shared_segments() -> frozenset[str]:
    """Segment names owned by open process sessions (leak-check hook)."""
    return frozenset(_LIVE_SEGMENTS)


def default_start_method() -> str:
    """``fork`` where available (cheap, inherits the backend registry),
    else ``spawn``."""
    import multiprocessing as mp

    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


@dataclass
class _WorkerPayload:
    """Once-per-process initialization shipped to every pool worker."""

    spec: object
    assignments_shm: str
    state_shm_names: tuple[str, ...]
    n_vertices: int
    k: int
    n_edges: int
    alpha: float
    backend: str | None
    v2c: np.ndarray
    c2p: np.ndarray
    volumes: np.ndarray
    degrees: np.ndarray
    hash_seed: int
    hdrf_lambda: float


class _SubStream:
    """A ``[start, stop)`` stream window, consumable by kernels.

    Unlike :class:`_WindowStream` it is lazy: chunks come straight from
    the underlying stream's window iterator, so a worker holds at most
    one chunk of its current window in memory.
    """

    __slots__ = ("_stream", "_start", "_stop", "n_edges")

    n_vertices = None

    def __init__(self, stream, start: int, stop: int) -> None:
        self._stream = stream
        self._start = start
        self._stop = stop
        self.n_edges = stop - start

    def chunks(self, chunk_size=None):
        return self._stream.window(self._start, self._stop, chunk_size)


_WORKER = None  # per-process context, set by _process_worker_init


def _process_worker_init(payload: _WorkerPayload) -> None:
    """Pool initializer: attach every shared segment, open the stream.

    Never raises: an exception escaping a pool initializer makes the
    worker exit and the pool respawn it in a tight crash loop, with the
    parent none the wiser until a task timeout.  Instead the failure is
    recorded and re-raised by the first task, so the parent gets the
    true cause immediately through the normal result path.
    """
    global _WORKER
    try:
        from multiprocessing import shared_memory

        stream = payload.spec.open()
        assign_shm = shared_memory.SharedMemory(
            name=payload.assignments_shm, create=False
        )
        assignments = np.ndarray(
            payload.n_edges, dtype=np.int32, buffer=assign_shm.buf
        )
        views = [
            PartitionState.attach(
                name, payload.n_vertices, payload.k, payload.n_edges,
                payload.alpha,
            )
            for name in payload.state_shm_names
        ]
        _WORKER = {
            "payload": payload,
            "stream": stream,
            "assign_shm": assign_shm,
            "assignments": assignments,
            "views": views,
            "kernels": get_backend(payload.backend),
        }
    except BaseException as exc:  # noqa: BLE001 - see docstring
        _WORKER = {"init_error": f"{type(exc).__name__}: {exc}"}


def _process_worker_task(task) -> tuple[int, tuple]:
    """One sync window in a pool worker.

    ``task`` is ``(worker_index, pass_name, start, stop)``.  Any pool
    process may execute any shard worker's window (every process maps
    every view); within a sweep the windows of distinct shard workers
    touch disjoint views and disjoint assignment slices, so there are no
    cross-process races by construction.  Returns the kernel total and
    this window's cost-counter delta for the parent to merge.
    """
    worker_index, pass_name, start, stop = task
    ctx_globals = _WORKER
    if "init_error" in ctx_globals:
        raise PartitioningError(
            "process worker initialization failed: "
            + ctx_globals["init_error"]
        )
    payload = ctx_globals["payload"]
    cost = CostCounter()
    ctx = TwoPhaseContext(
        k=payload.k,
        v2c=payload.v2c,
        c2p=payload.c2p,
        volumes=payload.volumes,
        degrees=payload.degrees,
        state=ctx_globals["views"][worker_index],
        assignments=ctx_globals["assignments"][start:stop],
        hash_seed=payload.hash_seed,
        cost=cost,
        hdrf_lambda=payload.hdrf_lambda,
    )
    window = _SubStream(ctx_globals["stream"], start, stop)
    out = getattr(ctx_globals["kernels"], PASS_METHODS[pass_name])(
        window, ctx
    )
    return (0 if out is None else int(out)), astuple(cost)


class ProcessRunner(Runner):
    """True multi-process execution over shared-memory state views.

    Parameters
    ----------
    start_method:
        ``multiprocessing`` start method (``None`` picks
        :func:`default_start_method`).  ``fork`` inherits dynamically
        registered kernel backends; ``spawn`` re-imports them.
    task_timeout:
        Seconds to wait for any single sync-window task.  A worker that
        died abruptly (OOM-kill, segfault) leaves its task result pending
        forever in a ``multiprocessing.Pool``; the timeout converts that
        hang into a :class:`~repro.errors.PartitioningError` and the
        session teardown terminates the pool and unlinks every segment.
    """

    kind = "process"
    measures_wallclock = True

    def __init__(
        self,
        start_method: str | None = None,
        task_timeout: float = 600.0,
    ) -> None:
        if start_method is not None:
            import multiprocessing as mp

            if start_method not in mp.get_all_start_methods():
                raise ConfigurationError(
                    f"start_method {start_method!r} not available; "
                    f"choose from {mp.get_all_start_methods()}"
                )
        if task_timeout <= 0:
            raise ConfigurationError(
                f"task_timeout must be positive, got {task_timeout}"
            )
        self.start_method = start_method
        self.task_timeout = float(task_timeout)

    def open(self, job: ShardedJob) -> RunnerSession:
        return _ProcessSession(self, job)


class _ProcessSession(RunnerSession):
    def __init__(self, runner: ProcessRunner, job: ShardedJob) -> None:
        self.job = job
        self._timeout = runner.task_timeout
        self._pool = None
        self._stream_shm = None
        self._assign_shm = None
        self._assign_view = None
        self.views: list[PartitionState] = []
        self._closed = False
        try:
            self._setup(runner)
        except BaseException:
            self.close()
            raise

    def _setup(self, runner: ProcessRunner) -> None:
        import multiprocessing as mp
        from multiprocessing import shared_memory

        job = self.job
        spec, self._stream_shm = make_stream_spec(job.stream)
        if self._stream_shm is not None:
            _LIVE_SEGMENTS.add(self._stream_shm.name)
        m = int(job.assignments.shape[0])
        self._assign_shm = shared_memory.SharedMemory(
            create=True, size=max(job.assignments.nbytes, 1)
        )
        _LIVE_SEGMENTS.add(self._assign_shm.name)
        self._assign_view = np.ndarray(
            m, dtype=np.int32, buffer=self._assign_shm.buf
        )
        self._assign_view[:] = job.assignments
        for _ in range(job.n_workers):
            view = PartitionState.from_shared(
                job.state.n_vertices, job.k, job.state.n_edges, job.alpha
            )
            self.views.append(view)
            _LIVE_SEGMENTS.add(view.shm_name)
        payload = _WorkerPayload(
            spec=spec,
            assignments_shm=self._assign_shm.name,
            state_shm_names=tuple(v.shm_name for v in self.views),
            n_vertices=job.state.n_vertices,
            k=job.k,
            n_edges=job.state.n_edges,
            alpha=job.alpha,
            backend=job.backend,
            v2c=job.v2c,
            c2p=job.c2p,
            volumes=job.volumes,
            degrees=job.degrees,
            hash_seed=job.hash_seed,
            hdrf_lambda=job.hdrf_lambda,
        )
        ctx = mp.get_context(runner.start_method or default_start_method())
        self._pool = ctx.Pool(
            processes=job.n_workers,
            initializer=_process_worker_init,
            initargs=(payload,),
        )

    def run_pass(self, pass_name: str) -> tuple[int, int]:
        import multiprocessing as mp

        if pass_name not in PASS_METHODS:
            raise ConfigurationError(f"unknown pass {pass_name!r}")
        job = self.job
        position = [int(job.shard_bounds[w]) for w in range(job.n_workers)]
        stop = [int(job.shard_bounds[w + 1]) for w in range(job.n_workers)]
        total = 0
        syncs = 0
        while True:
            tasks = _sweep_schedule(
                position, stop, job.sync_interval, pass_name
            )
            if not tasks:
                break
            pending = [
                self._pool.apply_async(_process_worker_task, (task,))
                for task in tasks
            ]
            for handle in pending:
                try:
                    out, cost_delta = handle.get(timeout=self._timeout)
                except mp.TimeoutError as exc:
                    raise PartitioningError(
                        f"process runner: a {pass_name} window exceeded "
                        f"the {self._timeout:.0f}s task timeout (worker "
                        "died or deadlocked)"
                    ) from exc
                total += out
                _merge_cost(job.cost, cost_delta)
            syncs += 1
            merge_barrier(job.state, self.views)
        return total, syncs

    def finalize(self) -> None:
        # The barrier already synchronized the global state after the
        # last sweep; only the assignments live solely in shared memory.
        self.job.assignments[:] = self._assign_view

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            pool, self._pool = self._pool, None
            self._shutdown_pool(pool)
        self._assign_view = None
        for shm in (self._assign_shm, self._stream_shm):
            if shm is None:
                continue
            _LIVE_SEGMENTS.discard(shm.name)
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - cleanup race
                pass
        self._assign_shm = None
        self._stream_shm = None
        views, self.views = self.views, []
        for view in views:
            _LIVE_SEGMENTS.discard(view.shm_name)
            view.close()
            view.unlink()

    @staticmethod
    def _shutdown_pool(pool) -> None:
        """Tear the pool down in bounded time, even mid-task.

        ``Pool.terminate()`` can deadlock when a worker dies while its
        queues are busy (long-standing CPython race, hit exactly when a
        task hung or crashed — our error paths).  The graceful shutdown
        therefore runs under a watchdog: if it does not finish promptly,
        the workers are SIGKILLed and, as a last resort, the join is
        abandoned to a daemon thread so ``close()`` always returns and
        the shared segments below always get unlinked.
        """
        import threading

        joiner = threading.Thread(
            target=lambda: (pool.terminate(), pool.join()), daemon=True
        )
        joiner.start()
        joiner.join(timeout=10.0)
        if joiner.is_alive():  # pragma: no cover - needs the mp race
            for proc in getattr(pool, "_pool", None) or []:
                try:
                    proc.kill()
                except Exception:  # noqa: BLE001 - best-effort kill
                    pass
            joiner.join(timeout=5.0)

    def extra_state_bytes(self) -> int:
        return sum(view.nbytes() for view in self.views)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
RUNNERS: dict[str, type[Runner]] = {
    "serial": SerialRunner,
    "simulated": SimulatedRunner,
    "process": ProcessRunner,
}


def make_runner(
    spec,
    *,
    start_method: str | None = None,
    task_timeout: float = 600.0,
) -> Runner:
    """Resolve a runner name or pass an instance through.

    ``start_method``/``task_timeout`` configure the process runner and are
    ignored by the others (they have no execution knobs).

    Raises
    ------
    ConfigurationError
        For unknown names (message lists the registry).
    """
    if isinstance(spec, Runner):
        return spec
    if spec not in RUNNERS:
        raise ConfigurationError(
            f"unknown runner {spec!r}; available: {sorted(RUNNERS)}"
        )
    if RUNNERS[spec] is ProcessRunner:
        return ProcessRunner(
            start_method=start_method, task_timeout=task_timeout
        )
    return RUNNERS[spec]()
