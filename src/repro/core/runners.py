"""Execution runners: who runs the sync windows of a sharded run.

:class:`~repro.core.parallel.ParallelTwoPhase` owns the *semantics* of
CuSP-style sharded partitioning — contiguous stream shards, per-worker
stale state views, barrier synchronization every ``sync_interval`` edges —
and delegates the *execution* of the resulting sync-window schedule to a
runner from this module:

- :class:`SerialRunner` — no sharding at all: each pass runs once over the
  full stream against the global state, exactly like the sequential
  :class:`~repro.core.partitioner.TwoPhasePartitioner`.  The degenerate
  reference point (zero syncs, zero staleness).
- :class:`SimulatedRunner` — the single-process round-robin simulation:
  worker windows execute interleaved in one process, each against its own
  stale heap-allocated state, with an explicit merge barrier after every
  sweep.  Deterministic and dependency-free; parallel wall-clock is
  *modeled*, not measured.
- :class:`ProcessRunner` — true ``multiprocessing`` execution: one pool
  process per shard worker, worker state in shared-memory segments, and
  the stream reopened in every worker from a picklable
  :class:`~repro.streaming.stream.StreamSpec` (file streams stay
  out-of-core; in-memory streams ship their edges once through shared
  memory).  Parallel wall-clock is *measured*.
- :class:`~repro.core.distributed.DistributedRunner` — worker processes
  over TCP sockets (loopback by default, ``host:port`` specs for real
  clusters), speaking the same schedule as an explicit versioned wire
  format (:mod:`repro.core.wire`): length-prefixed CRC-checked frames
  carrying window assignments, dirty replica-row deltas (packed planes
  as raw byte-OR blocks), Phase-1 merge inputs, and barrier acks.
  Workers reopen their own stream shards from the job's spec, so edge
  data never crosses the wire.  Registered lazily (importing
  :mod:`repro.core` or calling :func:`make_runner` resolves it).

A session covers **both phases** of a run.  Phase 1 executes through
:meth:`RunnerSession.run_degree_pass` (per-shard partial degree vectors,
merged by the associative-and-commutative integer sum) and
:meth:`RunnerSession.run_clustering` (per-worker sync windows over a stale
clustering snapshot, folded at each barrier by the ordered
``merge_phase1_clustering`` kernel op — see :mod:`repro.kernels` for the
merge contract).  Phase 2 then binds its state with
:meth:`RunnerSession.bind_phase2` and executes through
:meth:`RunnerSession.run_pass` exactly as before.

Equivalence contract
--------------------
All four runners execute the same deterministic schedule: worker ``w``
processes shard ``[bounds[w], bounds[w+1])`` in windows of at most
``sync_interval`` edges, and after every sweep a barrier merges worker
deltas into the global state and refreshes every stale view.  Because the
kernel contract makes chunk and window boundaries semantics-free (see
:mod:`repro.kernels`), this pins down every output bit:

- :class:`ProcessRunner` and ``DistributedRunner`` are **bit-identical**
  to :class:`SimulatedRunner` under the same schedule — Phase-1 degrees
  and clustering, per-edge assignments, replica matrix, partition sizes
  *and* cost counters (cost fields are sums of per-window counts, so
  merge order cannot matter).  For the distributed tier the wire is a
  value-preserving recoding: barriers ship each worker's dirty rows
  only, which is exact because a row clean in worker ``w`` equals the
  pre-merge global row (see :mod:`repro.core.distributed` for the full
  argument).  ``SimulatedRunner`` thereby doubles as the in-CI
  deterministic twin of a multi-host run.
- With ``n_workers=1`` all of them are bit-exact with the sequential
  pipeline (a single worker's view is never stale), and
  :class:`SerialRunner` is bit-exact with it for *any* worker count
  because it ignores sharding entirely.

``tests/test_parallel_kernels.py`` and the randomized differential
harness (``tests/differential.py``) enforce all of this.

Barrier cost
------------
Phase-2 barriers use **dirty-row delta bitmaps**
(:func:`repro.partitioning.state.merge_replica_deltas`): each worker view
marks the endpoint rows of the windows it streams, and the barrier ORs
and re-broadcasts only the union of dirty rows instead of the full
``|V| x k`` replica matrix.  Sessions account the merged versus the
hypothetical full row counts (``barrier_rows`` / ``barrier_full_rows``)
so the saving is measurable end to end (``BENCH_parallel.json``).

Shared-memory lifecycle
-----------------------
A process session owns every segment it creates (worker state views, the
Phase-1 clustering scratch, the read-only Phase-1 arrays, the assignment
array, and — for non-file streams — the edge array).  Session *open* ships
only a picklable stream spec and scalars to the pool, so it is O(1) in
``|V|``; the Phase-1 arrays travel through one shared segment that workers
attach lazily on first use.  Segments are unlinked in ``close()``;
``close()`` is idempotent and runs on both success and error paths, so a
crashed or timed-out worker cannot leak segments past the session
(verified by the cleanup tests; :func:`live_shared_segments` exposes the
owned set).  Workers only ever *attach* and never unlink.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import astuple, dataclass, fields

import numpy as np

from repro.errors import ConfigurationError, PartitioningError
from repro.kernels import TwoPhaseContext, get_backend
from repro.metrics.runtime import CostCounter
from repro.partitioning.state import (
    PartitionState,
    _BufferArena,
    _replica_storage,
    merge_replica_deltas,
)
from repro.streaming.stream import make_stream_spec

#: Pass names a runner can execute -> kernel-backend method names.
PASS_METHODS = {
    "prepartition": "prepartition_pass",
    "remaining_linear": "remaining_pass_linear",
    "remaining_hdrf": "remaining_pass_hdrf",
}

_COST_FIELDS = tuple(f.name for f in fields(CostCounter))


def _merge_cost(cost: CostCounter, delta: tuple) -> None:
    """Accumulate a worker's per-window cost tuple into ``cost``."""
    for name, value in zip(_COST_FIELDS, delta):
        setattr(cost, name, getattr(cost, name) + int(value))


def _phase1_error(worker: int, step: str, exc: BaseException) -> PartitioningError:
    """The one typed error every runner raises for a Phase-1 worker death."""
    return PartitioningError(
        f"phase-1 worker {worker} died during the {step} pass: "
        f"{type(exc).__name__}: {exc}"
    )


def cluster_id_capacity(n_edges: int, n_vertices: int, n_workers: int) -> int:
    """Upper bound on live cluster ids any Phase-1 export can carry.

    Every barrier compacts the merged clustering
    (:func:`compact_clustering`), so a worker's next export is the
    compacted base plus its own window's fresh clusters.  Both terms are
    counted by *assigned vertices*: a live cluster has at least one
    assigned member (clusters only exist through members, and parallel
    clustering always folds true degrees, so a member contributes
    positive volume), and each fresh cluster assigns one
    snapshot-unassigned vertex — hence exports stay within ``|V|``.
    Assigned vertices are also endpoint first-encounters of processed
    edges, disjoint across shards, giving the ``2 * |E|`` bound.  The
    no-merge single-worker path opens at most one cluster per vertex,
    satisfying the same bound.  ``n_workers`` no longer enters the bound
    (pre-compaction it contributed an ``n_workers * |V|`` term); the
    parameter is kept so call sites document which run they size for.
    """
    del n_workers  # bound is worker-count-free since barrier compaction
    return min(2 * int(n_edges), int(n_vertices)) + 1


def compact_clustering(
    v2c: np.ndarray, volumes: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Drop zero-volume clusters, relabeling ids order-preservingly.

    Merging per-worker clustering exports leaves behind clusters whose
    members all migrated away (volume 0).  Compacting at every barrier
    keeps the id space — and with it the fixed per-worker scratch of the
    process runner (:func:`cluster_id_capacity`) — bounded by *live*
    clusters instead of cumulative allocations.

    Semantics-free by construction: assigned vertices always point at
    live clusters (a member contributes positive volume), and the relabel
    is monotone, so the volume ordering — all downstream consumers
    (Graham scheduling, cluster-to-partition lookups) are order- or
    id-composition-based — is preserved bit-exactly.
    """
    live = np.flatnonzero(volumes > 0)
    if live.shape[0] == volumes.shape[0]:
        return v2c, volumes
    remap = np.full(volumes.shape[0], -1, dtype=np.int64)
    remap[live] = np.arange(live.shape[0], dtype=np.int64)
    assigned = v2c >= 0
    out = v2c.copy()
    out[assigned] = remap[v2c[assigned]]
    return out, volumes[live]


@dataclass
class ShardedJob:
    """Everything one parallel run shares across its passes.

    Built by ``ParallelTwoPhase._run`` before Phase 1 and handed to
    ``Runner.open``; the Phase-1 product fields (``v2c`` .. ``degrees``)
    and the Phase-2 outputs (``state``, ``assignments``) are filled in
    before :meth:`RunnerSession.bind_phase2`.  ``cost`` accumulates over
    the whole run.

    ``backend`` carries the *resolved* kernel-backend name: the parent
    resolves optional-backend fallback (e.g. ``numba`` without its
    dependency -> the default backend, one warning) once before opening
    the session, so every worker's ``get_backend(job.backend)`` hits a
    concrete registered backend — process-pool workers never re-detect
    optional dependencies or repeat fallback warnings.
    """

    stream: object
    n_workers: int
    sync_interval: int
    shard_bounds: np.ndarray
    backend: str | None
    k: int
    alpha: float
    hash_seed: int
    hdrf_lambda: float
    cost: CostCounter
    v2c: np.ndarray | None = None
    c2p: np.ndarray | None = None
    volumes: np.ndarray | None = None
    degrees: np.ndarray | None = None
    state: PartitionState | None = None
    assignments: np.ndarray | None = None


def _make_ctx(job: ShardedJob, state, assignments, cost=None) -> TwoPhaseContext:
    return TwoPhaseContext(
        k=job.k,
        v2c=job.v2c,
        c2p=job.c2p,
        volumes=job.volumes,
        degrees=job.degrees,
        state=state,
        assignments=assignments,
        hash_seed=job.hash_seed,
        cost=job.cost if cost is None else cost,
        hdrf_lambda=job.hdrf_lambda,
    )


def merge_barrier(state: PartitionState, worker_states) -> int:
    """One Phase-2 synchronization barrier; returns the rows refreshed.

    Replica bits merge by OR; sizes merge by summing each worker's delta
    against the last synchronized global sizes (every edge is assigned by
    exactly one worker, so deltas are disjoint).  Afterwards every worker
    view equals the new global state.  When every view tracks dirty rows
    the merge touches only the dirty union
    (:func:`~repro.partitioning.state.merge_replica_deltas`); otherwise it
    falls back to the full re-broadcast.  Shared by the simulated and the
    process runner so their barrier arithmetic cannot diverge.
    """
    if len(worker_states) == 1 and worker_states[0] is state:
        return 0  # the worker shares the global state: nothing to do
    if all(ws.dirty is not None for ws in worker_states):
        return merge_replica_deltas(state, worker_states)
    # Raw-storage OR: a logical OR on dense bool rows, a byte OR on
    # bit-packed rows — one fallback for both representations.
    merged = np.bitwise_or.reduce(
        [_replica_storage(state.replicas)]
        + [_replica_storage(ws.replicas) for ws in worker_states]
    )
    new_sizes = state.sizes + sum(
        ws.sizes - state.sizes for ws in worker_states
    )
    _replica_storage(state.replicas)[:] = merged
    state.sizes[:] = new_sizes
    for ws in worker_states:
        _replica_storage(ws.replicas)[:] = merged
        ws.sizes[:] = new_sizes
    return int(state.n_vertices)


def _sweep_schedule(position, stop, sync_interval, pass_name):
    """Advance every active shard cursor one window; return the tasks."""
    tasks = []
    for w in range(len(position)):
        if position[w] >= stop[w]:
            continue
        take = min(sync_interval, stop[w] - position[w])
        tasks.append((w, pass_name, position[w], position[w] + take))
        position[w] += take
    return tasks


# ----------------------------------------------------------------------
# runner protocol
# ----------------------------------------------------------------------
class RunnerSession(ABC):
    """One parallel run's execution state (pools, views, segments)."""

    #: Rows merged by Phase-2 delta barriers / rows a full re-broadcast
    #: would have merged (equal when the full path ran).
    barrier_rows: int = 0
    barrier_full_rows: int = 0

    def run_degree_pass(self, n_hint: int | None = None) -> np.ndarray:
        """Parallel degree pass: per-shard partials, merged by summation."""
        raise PartitioningError(
            f"{type(self).__name__} does not execute Phase 1"
        )

    def run_clustering(
        self, degrees: np.ndarray, cap: float, n_passes: int
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Sharded Phase-1 clustering; returns ``(v2c, volumes, syncs)``."""
        raise PartitioningError(
            f"{type(self).__name__} does not execute Phase 1"
        )

    def bind_phase2(self) -> None:
        """Allocate Phase-2 execution state once the job carries the
        Phase-1 arrays, the global state and the assignment array."""

    @abstractmethod
    def run_pass(self, pass_name: str) -> tuple[int, int]:
        """Execute one sharded Phase-2 pass; returns ``(total, syncs)``."""

    def finalize(self) -> None:
        """Copy shared results back into the job arrays (success path)."""

    def close(self) -> None:
        """Release every resource; idempotent, safe on error paths."""

    def extra_state_bytes(self) -> int:
        """Bytes held by per-worker state views beyond the global state."""
        return 0

    def wire_stats(self) -> dict | None:
        """Wire-traffic accounting (distributed sessions only)."""
        return None


class Runner(ABC):
    """Scheduling strategy for the passes of ``ParallelTwoPhase``."""

    #: Registry name; subclasses override.
    kind: str = "abstract"

    #: True when wall-clock measured around ``run_pass`` is real parallel
    #: time (processes actually ran concurrently), False when it is
    #: single-process compute that a model must convert.
    measures_wallclock: bool = False

    @abstractmethod
    def open(self, job: ShardedJob) -> RunnerSession:
        """Start a session for one run (allocate views, pools, segments)."""

    def parallel_wall_seconds(
        self, phase2_seconds: float, n_workers: int, syncs: int,
        sync_latency: float,
    ) -> float:
        """Parallel Phase-2 wall-clock estimate for the result extras."""
        return phase2_seconds  # measured runners: the timer already is it

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} kind={self.kind!r}>"


# ----------------------------------------------------------------------
# serial
# ----------------------------------------------------------------------
class SerialRunner(Runner):
    """Sequential reference execution: one window, the whole stream.

    Ignores ``n_workers``/``sync_interval`` — each pass (Phase 1 and
    Phase 2 alike) dispatches the kernel once over the full stream against
    the global state, which is exactly the sequential pipeline (bit-exact
    with ``TwoPhasePartitioner`` by construction).  Reports zero syncs.
    """

    kind = "serial"

    def open(self, job: ShardedJob) -> RunnerSession:
        return _SerialSession(job)


class _SerialSession(RunnerSession):
    def __init__(self, job: ShardedJob) -> None:
        self.job = job

    def run_degree_pass(self, n_hint: int | None = None) -> np.ndarray:
        kernels = get_backend(self.job.backend)
        return kernels.degree_pass(self.job.stream, n_hint)

    def run_clustering(self, degrees, cap, n_passes):
        job = self.job
        kernels = get_backend(job.backend)
        st = kernels.clustering_init(np.asarray(degrees, dtype=np.int64))
        for _ in range(int(n_passes)):
            kernels.clustering_true_pass(job.stream, st, cap, job.cost)
        v2c, volumes, _ = kernels.clustering_export(st)
        return v2c, volumes, 0

    def run_pass(self, pass_name: str) -> tuple[int, int]:
        job = self.job
        kernel = getattr(get_backend(job.backend), PASS_METHODS[pass_name])
        out = kernel(job.stream, _make_ctx(job, job.state, job.assignments))
        return (0 if out is None else int(out)), 0


# ----------------------------------------------------------------------
# simulated (single-process round-robin)
# ----------------------------------------------------------------------
class _WindowStream:
    """One sync window of a shard, consumable like a stream by kernels.

    Holds at most ``sync_interval`` edges (the chunks already pulled from
    the shard-window iterator), so worker windows — not the edge set —
    bound the memory of the simulated parallel path.
    """

    __slots__ = ("_chunks", "n_edges")

    n_vertices = None

    def __init__(self, chunks, n_edges: int) -> None:
        self._chunks = chunks
        self.n_edges = n_edges

    def chunks(self, chunk_size=None):
        return iter(self._chunks)


class _ShardCursor:
    """Pulls one worker's shard from the stream in sync-window quanta.

    Wraps a single :meth:`EdgeStream.window` iterator (one sequential
    read of the shard per pass) and re-chunks it at window boundaries;
    a partial chunk is carried over to the next window.
    """

    __slots__ = ("_iter", "_carry", "position", "remaining")

    def __init__(self, stream, start: int, stop: int) -> None:
        self._iter = stream.window(start, stop)
        self._carry = None
        self.position = start
        self.remaining = stop - start

    def take(self, n_edges: int) -> _WindowStream:
        """Next window of up to ``n_edges`` edges, in stream order."""
        chunks = []
        got = 0
        while got < n_edges:
            if self._carry is not None:
                chunk, self._carry = self._carry, None
            else:
                chunk = next(self._iter, None)
                if chunk is None:
                    break
            need = n_edges - got
            if chunk.shape[0] > need:
                self._carry = chunk[need:]
                chunk = chunk[:need]
            if chunk.shape[0]:
                chunks.append(chunk)
                got += chunk.shape[0]
        self.position += got
        self.remaining -= got
        return _WindowStream(chunks, got)


class SimulatedRunner(Runner):
    """Single-process round-robin execution of the sharded schedule.

    Workers take turns in quanta so the interleaving (and therefore the
    staleness pattern) matches a real parallel run with barrier syncs;
    parallel wall-clock is *modeled* as
    ``sequential_phase2 / n_workers + syncs * sync_latency``.
    """

    kind = "simulated"

    def open(self, job: ShardedJob) -> RunnerSession:
        return _SimulatedSession(job)

    def parallel_wall_seconds(
        self, phase2_seconds, n_workers, syncs, sync_latency
    ) -> float:
        return phase2_seconds / n_workers + syncs * sync_latency


class _SimulatedSession(RunnerSession):
    def __init__(self, job: ShardedJob) -> None:
        self.job = job
        self.worker_states: list[PartitionState] = []

    # ------------------------------------------------------------------
    # Phase 1
    # ------------------------------------------------------------------
    def run_degree_pass(self, n_hint: int | None = None) -> np.ndarray:
        job = self.job
        kernels = get_backend(job.backend)
        partials = []
        for w in range(job.n_workers):
            start = int(job.shard_bounds[w])
            stop = int(job.shard_bounds[w + 1])
            if start == stop:
                continue
            try:
                partials.append(
                    kernels.degree_pass(_SubStream(job.stream, start, stop))
                )
            except PartitioningError:
                raise
            except Exception as exc:
                raise _phase1_error(w, "degree", exc) from exc
        return kernels.merge_phase1_degrees(partials, n_hint)

    def run_clustering(self, degrees, cap, n_passes):
        job = self.job
        kernels = get_backend(job.backend)
        degrees = np.asarray(degrees, dtype=np.int64)
        m = int(job.shard_bounds[-1])
        syncs = 0
        if job.n_workers == 1:
            # A single worker's clustering view is never stale: keep one
            # live state across windows (bit-exact with the sequential
            # pass, window boundaries being ordinary chunk boundaries).
            st = kernels.clustering_init(degrees)
            for _ in range(int(n_passes)):
                cursor = _ShardCursor(job.stream, 0, m)
                while cursor.remaining > 0:
                    window = cursor.take(job.sync_interval)
                    if window.n_edges == 0:
                        break
                    try:
                        kernels.clustering_true_pass(
                            window, st, cap, job.cost
                        )
                    except PartitioningError:
                        raise
                    except Exception as exc:
                        raise _phase1_error(0, "clustering", exc) from exc
                    syncs += 1
            v2c, volumes, _ = kernels.clustering_export(st)
            return v2c, volumes, syncs
        v2c_g = np.full(degrees.shape[0], -1, dtype=np.int64)
        vol_g = np.zeros(0, dtype=np.int64)
        for _ in range(int(n_passes)):
            cursors = [
                _ShardCursor(
                    job.stream,
                    int(job.shard_bounds[w]),
                    int(job.shard_bounds[w + 1]),
                )
                for w in range(job.n_workers)
            ]
            active = True
            while active:
                active = False
                exports = []
                for w in range(job.n_workers):
                    cursor = cursors[w]
                    if cursor.remaining <= 0:
                        continue
                    window = cursor.take(job.sync_interval)
                    if window.n_edges == 0:
                        continue
                    active = True
                    st = kernels.clustering_load(v2c_g, vol_g, degrees)
                    try:
                        kernels.clustering_true_pass(
                            window, st, cap, job.cost
                        )
                    except PartitioningError:
                        raise
                    except Exception as exc:
                        raise _phase1_error(w, "clustering", exc) from exc
                    e_v2c, e_vol, _ = kernels.clustering_export(st)
                    exports.append((e_v2c, e_vol))
                if active:
                    syncs += 1
                    v2c_g, vol_g = kernels.merge_phase1_clustering(
                        v2c_g, vol_g, exports, degrees
                    )
                    v2c_g, vol_g = compact_clustering(v2c_g, vol_g)
        return v2c_g, vol_g, syncs

    # ------------------------------------------------------------------
    # Phase 2
    # ------------------------------------------------------------------
    def bind_phase2(self) -> None:
        job = self.job
        # A single worker's view is never stale, so it shares the global
        # state outright (this is what makes n_workers=1 bit-exact with
        # the sequential pipeline, with no merge work).
        if job.n_workers == 1:
            self.worker_states = [job.state]
        else:
            self.worker_states = [
                PartitionState(
                    job.state.n_vertices, job.k, job.state.n_edges,
                    job.alpha, track_dirty=True, packed=job.state.packed,
                )
                for _ in range(job.n_workers)
            ]

    def run_pass(self, pass_name: str) -> tuple[int, int]:
        job = self.job
        pass_kernel = getattr(
            get_backend(job.backend), PASS_METHODS[pass_name]
        )
        cursors = [
            _ShardCursor(
                job.stream,
                int(job.shard_bounds[w]),
                int(job.shard_bounds[w + 1]),
            )
            for w in range(job.n_workers)
        ]
        total = 0
        syncs = 0
        active = True
        while active:
            active = False
            for w, worker_state in enumerate(self.worker_states):
                cursor = cursors[w]
                if cursor.remaining <= 0:
                    continue
                pos = cursor.position
                window = cursor.take(job.sync_interval)
                if window.n_edges == 0:
                    continue
                active = True
                if worker_state.dirty is not None:
                    window = _DirtyMarkingStream(window, worker_state)
                ctx = _make_ctx(
                    job,
                    worker_state,
                    job.assignments[pos : pos + window.n_edges],
                )
                out = pass_kernel(window, ctx)
                if out is not None:
                    total += int(out)
            if active:
                syncs += 1
                rows = merge_barrier(job.state, self.worker_states)
                if self.worker_states[0] is not job.state:
                    self.barrier_rows += rows
                    self.barrier_full_rows += job.state.n_vertices
        return total, syncs

    def extra_state_bytes(self) -> int:
        return sum(
            ws.nbytes()
            for ws in self.worker_states
            if ws is not self.job.state
        )


# ----------------------------------------------------------------------
# process (true multiprocessing over shared memory)
# ----------------------------------------------------------------------
#: Names of shared segments currently owned by live process sessions.
#: Test/debug hook: must be empty whenever no session is open.
_LIVE_SEGMENTS: set[str] = set()


def live_shared_segments() -> frozenset[str]:
    """Segment names owned by open process sessions (leak-check hook)."""
    return frozenset(_LIVE_SEGMENTS)


def default_start_method() -> str:
    """``fork`` where available (cheap, inherits the backend registry),
    else ``spawn``."""
    import multiprocessing as mp

    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


@dataclass
class _WorkerPayload:
    """Once-per-process initialization shipped to every pool worker.

    Deliberately tiny — a stream spec plus scalars — so opening a session
    is O(1) in ``|V|``; the Phase-1 arrays and every state view are
    attached lazily from shared segments named in the task tuples.
    """

    spec: object
    n_edges: int
    k: int
    alpha: float
    backend: str | None
    hash_seed: int
    hdrf_lambda: float


class _SubStream:
    """A ``[start, stop)`` stream window, consumable by kernels.

    Unlike :class:`_WindowStream` it is lazy: chunks come straight from
    the underlying stream's window iterator, so a worker holds at most
    one chunk of its current window in memory.
    """

    __slots__ = ("_stream", "_start", "_stop", "n_edges")

    n_vertices = None

    def __init__(self, stream, start: int, stop: int) -> None:
        self._stream = stream
        self._start = start
        self._stop = stop
        self.n_edges = stop - start

    def chunks(self, chunk_size=None):
        return self._stream.window(self._start, self._stop, chunk_size)


class _DirtyMarkingStream:
    """Stream wrapper that marks every chunk's endpoint rows as dirty.

    Wrapping the sync-window stream (instead of instrumenting every
    replica write inside the kernels) is exact because each Phase-2 pass
    only ever writes the replica rows of its window-edge endpoints — a
    superset mark is always safe for the delta barrier.
    """

    __slots__ = ("_inner", "_state", "n_edges")

    n_vertices = None

    def __init__(self, inner, state: PartitionState) -> None:
        self._inner = inner
        self._state = state
        self.n_edges = inner.n_edges

    def chunks(self, chunk_size=None):
        for chunk in self._inner.chunks(chunk_size):
            if chunk.size:
                self._state.mark_dirty(chunk.ravel())
            yield chunk


_WORKER = None  # per-process context, set by _process_worker_init


def _process_worker_init(payload: _WorkerPayload) -> None:
    """Pool initializer: open the stream, resolve the kernel backend.

    Never raises: an exception escaping a pool initializer makes the
    worker exit and the pool respawn it in a tight crash loop, with the
    parent none the wiser until a task timeout.  Instead the failure is
    recorded and re-raised by the first task, so the parent gets the
    true cause immediately through the normal result path.
    """
    global _WORKER
    try:
        stream = payload.spec.open()
        _WORKER = {
            "payload": payload,
            "stream": stream,
            "kernels": get_backend(payload.backend),
        }
    except BaseException as exc:  # noqa: BLE001 - see docstring
        _WORKER = {"init_error": f"{type(exc).__name__}: {exc}"}


def _attach_cluster(ref) -> dict:
    """Map the Phase-1 clustering scratch segment (memoized per ref)."""
    cached = _WORKER.get("cluster")
    if cached is not None and cached["ref"] == ref:
        return cached
    from multiprocessing import shared_memory

    name, n, cap_ids, n_workers = ref
    shm = shared_memory.SharedMemory(name=name, create=False)
    arena = _BufferArena(shm.buf)
    degrees = arena(n, np.int64)
    slots = []
    for _ in range(n_workers):
        header = arena(1, np.int64)
        v2c = arena(n, np.int64)
        vol = arena(cap_ids, np.int64)
        slots.append((header, v2c, vol))
    cached = {"ref": ref, "shm": shm, "degrees": degrees, "slots": slots}
    _WORKER["cluster"] = cached
    return cached


def _attach_phase2(ref) -> dict:
    """Map the Phase-2 segments (assignments, views, Phase-1 arrays)."""
    cached = _WORKER.get("phase2")
    if cached is not None and cached["ref"] == ref:
        return cached
    from multiprocessing import shared_memory

    payload = _WORKER["payload"]
    assign_name, state_names, phase1_name, n, n_clusters, packed = ref
    assign_shm = shared_memory.SharedMemory(name=assign_name, create=False)
    assignments = np.ndarray(
        payload.n_edges, dtype=np.int32, buffer=assign_shm.buf
    )
    views = [
        PartitionState.attach(
            name, n, payload.k, payload.n_edges, payload.alpha,
            track_dirty=True, packed=packed,
        )
        for name in state_names
    ]
    p1_shm = shared_memory.SharedMemory(name=phase1_name, create=False)
    arena = _BufferArena(p1_shm.buf)
    cached = {
        "ref": ref,
        "assign_shm": assign_shm,
        "assignments": assignments,
        "views": views,
        "p1_shm": p1_shm,
        "v2c": arena(n, np.int64),
        "c2p": arena(n_clusters, np.int64),
        "volumes": arena(n_clusters, np.int64),
        "degrees": arena(n, np.int64),
    }
    _WORKER["phase2"] = cached
    return cached


def _process_worker_task(task):
    """One task in a pool worker, dispatched on the task kind.

    Any pool process may execute any shard worker's window (every process
    can map every segment); within a sweep the windows of distinct shard
    workers touch disjoint views and disjoint assignment slices, so there
    are no cross-process races by construction.
    """
    ctx_globals = _WORKER
    if "init_error" in ctx_globals:
        raise PartitioningError(
            "process worker initialization failed: "
            + ctx_globals["init_error"]
        )
    kind = task[0]
    if kind == "degree":
        _, start, stop = task
        return ctx_globals["kernels"].degree_pass(
            _SubStream(ctx_globals["stream"], start, stop)
        )
    if kind == "cluster":
        return _worker_cluster_window(task)
    return _worker_phase2_window(task)


def _worker_cluster_window(task):
    """One Phase-1 clustering sync window against the shared scratch."""
    _, worker_index, start, stop, ref, cap = task
    ctx_globals = _WORKER
    cluster = _attach_cluster(ref)
    header, v2c_view, vol_view = cluster["slots"][worker_index]
    kernels = ctx_globals["kernels"]
    n_ids = int(header[0])
    st = kernels.clustering_load(
        v2c_view, vol_view[:n_ids], cluster["degrees"]
    )
    cost = CostCounter()
    window = _SubStream(ctx_globals["stream"], start, stop)
    kernels.clustering_true_pass(window, st, cap, cost)
    v2c_out, vol_out, _ = kernels.clustering_export(st)
    if vol_out.shape[0] > vol_view.shape[0]:  # pragma: no cover - bound proof
        raise PartitioningError(
            f"phase-1 cluster-id capacity exceeded: {vol_out.shape[0]} ids "
            f"for a scratch of {vol_view.shape[0]}"
        )
    v2c_view[:] = v2c_out
    vol_view[: vol_out.shape[0]] = vol_out
    header[0] = vol_out.shape[0]
    return astuple(cost)


def _worker_phase2_window(task):
    """One Phase-2 sync window; returns the kernel total and this
    window's cost-counter delta for the parent to merge."""
    worker_index, pass_name, start, stop, ref = task
    ctx_globals = _WORKER
    payload = ctx_globals["payload"]
    phase2 = _attach_phase2(ref)
    cost = CostCounter()
    view = phase2["views"][worker_index]
    ctx = TwoPhaseContext(
        k=payload.k,
        v2c=phase2["v2c"],
        c2p=phase2["c2p"],
        volumes=phase2["volumes"],
        degrees=phase2["degrees"],
        state=view,
        assignments=phase2["assignments"][start:stop],
        hash_seed=payload.hash_seed,
        cost=cost,
        hdrf_lambda=payload.hdrf_lambda,
    )
    window = _DirtyMarkingStream(
        _SubStream(ctx_globals["stream"], start, stop), view
    )
    out = getattr(ctx_globals["kernels"], PASS_METHODS[pass_name])(
        window, ctx
    )
    return (0 if out is None else int(out)), astuple(cost)


class ProcessRunner(Runner):
    """True multi-process execution over shared-memory state views.

    Parameters
    ----------
    start_method:
        ``multiprocessing`` start method (``None`` picks
        :func:`default_start_method`).  ``fork`` inherits dynamically
        registered kernel backends; ``spawn`` re-imports them.
    task_timeout:
        Seconds to wait for any single sync-window task.  A worker that
        died abruptly (OOM-kill, segfault) leaves its task result pending
        forever in a ``multiprocessing.Pool``; the timeout converts that
        hang into a :class:`~repro.errors.PartitioningError` and the
        session teardown terminates the pool and unlinks every segment.
    """

    kind = "process"
    measures_wallclock = True

    def __init__(
        self,
        start_method: str | None = None,
        task_timeout: float = 600.0,
    ) -> None:
        if start_method is not None:
            import multiprocessing as mp

            if start_method not in mp.get_all_start_methods():
                raise ConfigurationError(
                    f"start_method {start_method!r} not available; "
                    f"choose from {mp.get_all_start_methods()}"
                )
        if task_timeout <= 0:
            raise ConfigurationError(
                f"task_timeout must be positive, got {task_timeout}"
            )
        self.start_method = start_method
        self.task_timeout = float(task_timeout)

    def open(self, job: ShardedJob) -> RunnerSession:
        return _ProcessSession(self, job)


class _ProcessSession(RunnerSession):
    def __init__(self, runner: ProcessRunner, job: ShardedJob) -> None:
        self.job = job
        self._timeout = runner.task_timeout
        self._pool = None
        self._stream_shm = None
        self._assign_shm = None
        self._assign_view = None
        self._cluster_shm = None
        self._phase1_shm = None
        self._phase2_ref = None
        self.views: list[PartitionState] = []
        self._closed = False
        try:
            self._setup(runner)
        except BaseException:
            self.close()
            raise

    def _setup(self, runner: ProcessRunner) -> None:
        import multiprocessing as mp
        from multiprocessing import resource_tracker

        # Start the parent's resource tracker BEFORE the pool exists, so
        # every worker inherits it and all segment registrations land in
        # one tracker that the parent's unlink can clear.  Session open no
        # longer creates a segment up front (workers attach lazily), so
        # without this a forked worker would lazily spawn its *own*
        # tracker, whose attach registrations nobody unregisters —
        # spurious "leaked shared_memory objects" warnings at shutdown.
        resource_tracker.ensure_running()

        job = self.job
        spec, self._stream_shm = make_stream_spec(job.stream)
        if self._stream_shm is not None:
            _LIVE_SEGMENTS.add(self._stream_shm.name)
        payload = _WorkerPayload(
            spec=spec,
            n_edges=int(job.shard_bounds[-1]),
            k=job.k,
            alpha=job.alpha,
            backend=job.backend,
            hash_seed=job.hash_seed,
            hdrf_lambda=job.hdrf_lambda,
        )
        ctx = mp.get_context(runner.start_method or default_start_method())
        self._pool = ctx.Pool(
            processes=job.n_workers,
            initializer=_process_worker_init,
            initargs=(payload,),
        )

    def _create_segment(self, nbytes: int):
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(create=True, size=max(nbytes, 1))
        _LIVE_SEGMENTS.add(shm.name)
        np.frombuffer(shm.buf, dtype=np.uint8)[:] = 0
        return shm

    def _collect(self, handles, step: str):
        """Gather async results in task order, converting failures into
        the typed Phase-1/Phase-2 errors."""
        import multiprocessing as mp

        results = []
        for w, handle in handles:
            try:
                results.append(handle.get(timeout=self._timeout))
            except mp.TimeoutError as exc:
                raise PartitioningError(
                    f"process runner: a {step} window exceeded the "
                    f"{self._timeout:.0f}s task timeout (worker died or "
                    "deadlocked)"
                ) from exc
            except PartitioningError:
                raise
            except Exception as exc:
                if step in ("degree", "clustering"):
                    raise _phase1_error(w, step, exc) from exc
                raise
        return results

    # ------------------------------------------------------------------
    # Phase 1
    # ------------------------------------------------------------------
    def run_degree_pass(self, n_hint: int | None = None) -> np.ndarray:
        job = self.job
        handles = []
        for w in range(job.n_workers):
            start = int(job.shard_bounds[w])
            stop = int(job.shard_bounds[w + 1])
            if start == stop:
                continue
            handles.append(
                (w, self._pool.apply_async(
                    _process_worker_task, (("degree", start, stop),)
                ))
            )
        partials = self._collect(handles, "degree")
        return get_backend(job.backend).merge_phase1_degrees(
            partials, n_hint
        )

    def run_clustering(self, degrees, cap, n_passes):
        degrees = np.asarray(degrees, dtype=np.int64)
        n = int(degrees.shape[0])
        m = int(self.job.shard_bounds[-1])
        cap_ids = cluster_id_capacity(m, n, self.job.n_workers)
        nbytes = 8 * (n + self.job.n_workers * (1 + n + cap_ids))
        self._cluster_shm = self._create_segment(nbytes)
        result = self._run_clustering_windows(
            degrees, cap, int(n_passes), n, cap_ids
        )
        # Phase 2 never reads the scratch: release it now instead of at
        # close().  Every parent-side view died with the helper frame
        # above (so the mapping can drop), and pool workers keep their
        # memoized mapping until the pool dies — unlinking under live
        # mappings is safe on POSIX.
        scratch, self._cluster_shm = self._cluster_shm, None
        self._release_segment(scratch)
        return result

    def _run_clustering_windows(self, degrees, cap, n_passes, n, cap_ids):
        """Sweep/barrier loop over the scratch segment; every view over
        the segment is local to this frame (see ``run_clustering``)."""
        job = self.job
        kernels = get_backend(job.backend)
        arena = _BufferArena(self._cluster_shm.buf)
        deg_view = arena(n, np.int64)
        deg_view[:] = degrees
        slots = []
        for _ in range(job.n_workers):
            header = arena(1, np.int64)
            v2c_view = arena(n, np.int64)
            vol_view = arena(cap_ids, np.int64)
            v2c_view[:] = -1
            slots.append((header, v2c_view, vol_view))
        ref = (self._cluster_shm.name, n, cap_ids, job.n_workers)
        single = job.n_workers == 1
        v2c_g = np.full(n, -1, dtype=np.int64)
        vol_g = np.zeros(0, dtype=np.int64)
        syncs = 0
        for _ in range(n_passes):
            position = [int(job.shard_bounds[w]) for w in range(job.n_workers)]
            stop = [int(job.shard_bounds[w + 1]) for w in range(job.n_workers)]
            while True:
                tasks = _sweep_schedule(
                    position, stop, job.sync_interval, "cluster"
                )
                if not tasks:
                    break
                handles = [
                    (w, self._pool.apply_async(
                        _process_worker_task,
                        (("cluster", w, t_start, t_stop, ref, cap),),
                    ))
                    for w, _, t_start, t_stop in tasks
                ]
                for delta in self._collect(handles, "clustering"):
                    _merge_cost(job.cost, delta)
                syncs += 1
                if single:
                    continue  # the lone worker's slot stays live
                exports = [
                    (slots[w][1], slots[w][2][: int(slots[w][0][0])])
                    for w, _, _, _ in tasks
                ]
                v2c_g, vol_g = kernels.merge_phase1_clustering(
                    v2c_g, vol_g, exports, degrees
                )
                v2c_g, vol_g = compact_clustering(v2c_g, vol_g)
                for header, v2c_view, vol_view in slots:
                    v2c_view[:] = v2c_g
                    vol_view[: vol_g.shape[0]] = vol_g
                    header[0] = vol_g.shape[0]
        if single:
            header, v2c_view, vol_view = slots[0]
            v2c_g = np.array(v2c_view, dtype=np.int64, copy=True)
            vol_g = np.array(
                vol_view[: int(header[0])], dtype=np.int64, copy=True
            )
        return v2c_g, vol_g, syncs

    @staticmethod
    def _release_segment(shm) -> None:
        """Unlink one owned segment (idempotent against cleanup races)."""
        _LIVE_SEGMENTS.discard(shm.name)
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - cleanup race
            pass

    # ------------------------------------------------------------------
    # Phase 2
    # ------------------------------------------------------------------
    def bind_phase2(self) -> None:
        job = self.job
        m = int(job.assignments.shape[0])
        self._assign_shm = self._create_segment(job.assignments.nbytes)
        self._assign_view = np.ndarray(
            m, dtype=np.int32, buffer=self._assign_shm.buf
        )
        self._assign_view[:] = job.assignments
        for _ in range(job.n_workers):
            view = PartitionState.from_shared(
                job.state.n_vertices, job.k, job.state.n_edges, job.alpha,
                track_dirty=True, packed=job.state.packed,
            )
            self.views.append(view)
            _LIVE_SEGMENTS.add(view.shm_name)
        # The read-only Phase-1 arrays travel through ONE shared segment
        # (the SharedArrayStreamSpec pattern): workers attach it lazily,
        # so nothing O(|V|) is ever pickled per worker or per task.
        n = int(job.state.n_vertices)
        n_clusters = int(job.c2p.shape[0])
        self._phase1_shm = self._create_segment(8 * (2 * n + 2 * n_clusters))
        arena = _BufferArena(self._phase1_shm.buf)
        arena(n, np.int64)[:] = job.v2c
        arena(n_clusters, np.int64)[:] = job.c2p
        arena(n_clusters, np.int64)[:] = job.volumes
        arena(n, np.int64)[:] = job.degrees
        self._phase2_ref = (
            self._assign_shm.name,
            tuple(view.shm_name for view in self.views),
            self._phase1_shm.name,
            n,
            n_clusters,
            bool(job.state.packed),
        )

    def run_pass(self, pass_name: str) -> tuple[int, int]:
        if pass_name not in PASS_METHODS:
            raise ConfigurationError(f"unknown pass {pass_name!r}")
        job = self.job
        position = [int(job.shard_bounds[w]) for w in range(job.n_workers)]
        stop = [int(job.shard_bounds[w + 1]) for w in range(job.n_workers)]
        total = 0
        syncs = 0
        while True:
            tasks = _sweep_schedule(
                position, stop, job.sync_interval, pass_name
            )
            if not tasks:
                break
            handles = [
                (task[0], self._pool.apply_async(
                    _process_worker_task, (task + (self._phase2_ref,),)
                ))
                for task in tasks
            ]
            for out, cost_delta in self._collect(handles, pass_name):
                total += out
                _merge_cost(job.cost, cost_delta)
            syncs += 1
            rows = merge_barrier(job.state, self.views)
            self.barrier_rows += rows
            self.barrier_full_rows += job.state.n_vertices
        return total, syncs

    def finalize(self) -> None:
        # The barrier already synchronized the global state after the
        # last sweep; only the assignments live solely in shared memory.
        self.job.assignments[:] = self._assign_view

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            pool, self._pool = self._pool, None
            self._shutdown_pool(pool)
        self._assign_view = None
        for shm in (
            self._assign_shm,
            self._stream_shm,
            self._cluster_shm,
            self._phase1_shm,
        ):
            if shm is not None:
                self._release_segment(shm)
        self._assign_shm = None
        self._stream_shm = None
        self._cluster_shm = None
        self._phase1_shm = None
        views, self.views = self.views, []
        for view in views:
            _LIVE_SEGMENTS.discard(view.shm_name)
            view.close()
            view.unlink()

    @staticmethod
    def _shutdown_pool(pool) -> None:
        """Tear the pool down in bounded time, even mid-task.

        ``Pool.terminate()`` can deadlock when a worker dies while its
        queues are busy (long-standing CPython race, hit exactly when a
        task hung or crashed — our error paths).  The graceful shutdown
        therefore runs under a watchdog: if it does not finish promptly,
        the workers are SIGKILLed and, as a last resort, the join is
        abandoned to a daemon thread so ``close()`` always returns and
        the shared segments below always get unlinked.
        """
        import threading

        joiner = threading.Thread(
            target=lambda: (pool.terminate(), pool.join()), daemon=True
        )
        joiner.start()
        joiner.join(timeout=10.0)
        if joiner.is_alive():  # pragma: no cover - needs the mp race
            for proc in getattr(pool, "_pool", None) or []:
                try:
                    proc.kill()
                except Exception:  # noqa: BLE001 - best-effort kill
                    pass
            joiner.join(timeout=5.0)

    def extra_state_bytes(self) -> int:
        return sum(view.nbytes() for view in self.views)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
RUNNERS: dict[str, type[Runner]] = {
    "serial": SerialRunner,
    "simulated": SimulatedRunner,
    "process": ProcessRunner,
}


def make_runner(
    spec,
    *,
    start_method: str | None = None,
    task_timeout: float = 600.0,
    workers=None,
    connect_timeout: float = 10.0,
) -> Runner:
    """Resolve a runner name or pass an instance through.

    ``start_method``/``task_timeout`` configure the process and
    distributed runners (for the latter ``task_timeout`` becomes the
    per-reply ``recv_timeout``); ``workers``/``connect_timeout``
    configure the distributed runner only.  All are ignored by runners
    without execution knobs.

    The distributed runner lives in :mod:`repro.core.distributed`
    (imported lazily here to keep this module import-cycle-free); naming
    it registers it.

    Raises
    ------
    ConfigurationError
        For unknown names (message lists the registry).
    """
    if isinstance(spec, Runner):
        return spec
    if spec == "distributed" and spec not in RUNNERS:
        import repro.core.distributed  # noqa: F401 - registers itself
    if spec not in RUNNERS:
        raise ConfigurationError(
            f"unknown runner {spec!r}; available: "
            f"{sorted(set(RUNNERS) | {'distributed'})}"
        )
    cls = RUNNERS[spec]
    if cls is ProcessRunner:
        return ProcessRunner(
            start_method=start_method, task_timeout=task_timeout
        )
    if cls.kind == "distributed":
        return cls(
            workers=workers,
            connect_timeout=connect_timeout,
            recv_timeout=task_timeout,
            start_method=start_method,
        )
    return cls()
