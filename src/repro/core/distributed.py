"""Distributed runner: socket workers under the sync-window schedule.

The fourth way the one deterministic schedule executes (after serial,
simulated, and process runners): worker processes connected over TCP
sockets speaking the :mod:`repro.core.wire` protocol.  Loopback by
default — the coordinator listens on ``127.0.0.1`` and forks local
workers that connect back — or against pre-started worker servers named
by ``host:port`` specs (the CLI ``worker`` subcommand) for real
clusters.

Determinism contract
--------------------
``DistributedRunner`` is pinned full-state bit-exact with
``SimulatedRunner`` and ``ProcessRunner`` per schedule (and with the
sequential pipeline at ``n_workers=1``) by ``tests/differential.py``.
The pin holds because every protocol round-trip is a value-preserving
recoding of the shared-memory runners' arithmetic:

- Workers reopen the job's stream from its spec, so window chunk
  boundaries — which the vectorized kernels are sensitive to — are
  identical to every other runner's.
- Phase-1 merges run coordinator-side through the same kernel merge ops
  (``merge_phase1_degrees`` / ``merge_phase1_clustering`` +
  ``compact_clustering``), folding worker exports in task order exactly
  like the process runner.  A single worker keeps one live clustering
  state worker-side (no reload/merge), mirroring the simulated runner.
- Phase-2 barriers ship each worker's **dirty replica rows only**
  (:func:`~repro.partitioning.state.extract_replica_delta`); the
  coordinator folds them with
  :func:`~repro.partitioning.state.merge_replica_wire_deltas` — the
  same OR-over-dirty-union / disjoint-size-delta arithmetic as
  ``merge_replica_deltas`` — and broadcasts one refresh every worker
  acknowledges before the next sweep.  A row clean in worker *w* is
  bit-identical to the pre-merge global row, so omitting it from *w*'s
  contribution changes no bit.  Packed replica planes cross the wire as
  raw byte blocks and merge by byte-OR, dense rows as bool blocks — one
  code path, like the shared-memory barrier.
- Assignment slices come back per window and merge where ``>= 0``: the
  two Phase-2 passes write disjoint positions (the remaining mask is
  the complement of the prepartition mask under the frozen Phase-1
  arrays), so last-write-wins never happens.

Failure surface
---------------
No hangs, no leaked sockets or shm: every recv runs under the session's
``recv_timeout``, worker death / disconnection / corruption surfaces as
a typed :class:`~repro.errors.PartitioningError`
(:class:`~repro.errors.WireError`), and session ``close()`` — invoked on
every error path — shuts sockets, reaps spawned workers, and releases
any stream segment.  ``live_connections()`` / ``live_worker_processes()``
are the leak-check hooks, mirroring ``live_shared_segments()``.

Edge data never crosses the wire: remote (``host:port``) workers must be
handed a file-backed stream (:class:`~repro.streaming.stream.FileStreamSpec`)
and read their own shards; loopback workers may also map a shared-memory
edge segment, same-host by construction.
"""

from __future__ import annotations

import socket
from dataclasses import astuple

import numpy as np

from repro.core import wire
from repro.core.runners import (
    _LIVE_SEGMENTS,
    PASS_METHODS,
    RUNNERS,
    Runner,
    RunnerSession,
    _DirtyMarkingStream,
    _merge_cost,
    _SubStream,
    _sweep_schedule,
    compact_clustering,
    default_start_method,
)
from repro.errors import ConfigurationError, PartitioningError, WireError
from repro.kernels import TwoPhaseContext, get_backend
from repro.metrics.runtime import CostCounter
from repro.partitioning.state import (
    PartitionState,
    apply_replica_refresh,
    extract_replica_delta,
    merge_replica_wire_deltas,
    packed_row_bytes,
)
from repro.streaming.stream import (
    FileStreamSpec,
    make_stream_spec,
    spec_from_wire,
    spec_to_wire,
)

#: Connections currently owned by open distributed sessions (leak-check
#: hook: must be empty whenever no session is open).
_LIVE_CONNECTIONS: set = set()

#: Locally spawned worker processes of open sessions (same contract).
_LIVE_WORKER_PROCS: set = set()


def live_connections() -> frozenset:
    """Coordinator connections of open sessions (leak-check hook)."""
    return frozenset(_LIVE_CONNECTIONS)


def live_worker_processes() -> frozenset:
    """Loopback worker processes of open sessions (leak-check hook)."""
    return frozenset(_LIVE_WORKER_PROCS)


def parse_worker_spec(spec: str) -> tuple[str, int]:
    """Parse one ``host:port`` worker address."""
    host, sep, port = str(spec).rpartition(":")
    if not sep or not host:
        raise ConfigurationError(
            f"worker spec {spec!r} is not of the form host:port"
        )
    try:
        port_no = int(port)
    except ValueError:
        raise ConfigurationError(
            f"worker spec {spec!r} has a non-integer port"
        ) from None
    if not 0 < port_no < 65536:
        raise ConfigurationError(
            f"worker spec {spec!r} has an out-of-range port"
        )
    return host, port_no


# ---------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------
def _w_job(ctx, payload):
    spec = spec_from_wire(payload["spec"])
    ctx["stream"] = spec.open()
    ctx["kernels"] = get_backend(payload["backend"])
    ctx["k"] = int(payload["k"])
    ctx["alpha"] = float(payload["alpha"])
    ctx["n_edges"] = int(payload["n_edges"])
    ctx["hash_seed"] = int(payload["hash_seed"])
    ctx["hdrf_lambda"] = float(payload["hdrf_lambda"])
    ctx["worker_index"] = int(payload["worker_index"])
    return wire.MSG_OK, None


def _w_degree(ctx, payload):
    window = _SubStream(
        ctx["stream"], int(payload["start"]), int(payload["stop"])
    )
    degrees = ctx["kernels"].degree_pass(window)
    return wire.MSG_DEGREE_RESULT, {
        "degrees": np.asarray(degrees, dtype=np.int64)
    }


def _w_phase1_init(ctx, payload):
    degrees = np.asarray(payload["degrees"], dtype=np.int64)
    ctx["p1_degrees"] = degrees
    ctx["p1_cap"] = float(payload["cap"])
    # A lone worker's view is never stale: keep one live clustering
    # state across windows (the simulated runner's single-worker path).
    ctx["cluster_state"] = (
        ctx["kernels"].clustering_init(degrees)
        if payload["single"]
        else None
    )
    return wire.MSG_OK, None


def _w_cluster(ctx, payload):
    kernels = ctx["kernels"]
    window = _SubStream(
        ctx["stream"], int(payload["start"]), int(payload["stop"])
    )
    cost = CostCounter()
    if ctx["cluster_state"] is not None:
        kernels.clustering_true_pass(
            window, ctx["cluster_state"], ctx["p1_cap"], cost
        )
        return wire.MSG_CLUSTER_RESULT, {
            "cost": np.asarray(astuple(cost), dtype=np.int64)
        }
    st = kernels.clustering_load(
        payload["v2c"], payload["volumes"], ctx["p1_degrees"]
    )
    kernels.clustering_true_pass(window, st, ctx["p1_cap"], cost)
    v2c, volumes, _ = kernels.clustering_export(st)
    return wire.MSG_CLUSTER_RESULT, {
        "v2c": np.asarray(v2c, dtype=np.int64),
        "volumes": np.asarray(volumes, dtype=np.int64),
        "cost": np.asarray(astuple(cost), dtype=np.int64),
    }


def _w_cluster_finish(ctx, payload):
    v2c, volumes, _ = ctx["kernels"].clustering_export(
        ctx["cluster_state"]
    )
    ctx["cluster_state"] = None
    return wire.MSG_CLUSTER_RESULT, {
        "v2c": np.asarray(v2c, dtype=np.int64),
        "volumes": np.asarray(volumes, dtype=np.int64),
    }


def _w_bind(ctx, payload):
    ctx["view"] = PartitionState(
        int(payload["n_vertices"]),
        ctx["k"],
        ctx["n_edges"],
        ctx["alpha"],
        track_dirty=True,
        packed=bool(payload["packed"]),
    )
    ctx["phase1"] = {
        name: np.asarray(payload[name], dtype=np.int64)
        for name in ("v2c", "c2p", "volumes", "degrees")
    }
    return wire.MSG_OK, None


def _w_window(ctx, payload):
    view = ctx["view"]
    start, stop = int(payload["start"]), int(payload["stop"])
    # Fresh slice: Phase-2 kernels only ever *write* assignments, and
    # the two passes write disjoint positions — the coordinator merges
    # returned values where >= 0, so current values need not ship out.
    assignments = np.full(stop - start, -1, dtype=np.int32)
    cost = CostCounter()
    phase1 = ctx["phase1"]
    kernel_ctx = TwoPhaseContext(
        k=ctx["k"],
        v2c=phase1["v2c"],
        c2p=phase1["c2p"],
        volumes=phase1["volumes"],
        degrees=phase1["degrees"],
        state=view,
        assignments=assignments,
        hash_seed=ctx["hash_seed"],
        cost=cost,
        hdrf_lambda=ctx["hdrf_lambda"],
    )
    window = _DirtyMarkingStream(
        _SubStream(ctx["stream"], start, stop), view
    )
    out = getattr(ctx["kernels"], PASS_METHODS[payload["pass"]])(
        window, kernel_ctx
    )
    rows, rows_data, sizes = extract_replica_delta(view)
    return wire.MSG_WINDOW_RESULT, {
        "total": 0 if out is None else int(out),
        "cost": np.asarray(astuple(cost), dtype=np.int64),
        "assignments": assignments,
        "rows": rows,
        "rows_data": np.asarray(rows_data),
        "sizes": sizes,
    }


def _w_barrier(ctx, payload):
    apply_replica_refresh(
        ctx["view"], payload["rows"], payload["rows_data"], payload["sizes"]
    )
    return wire.MSG_BARRIER_ACK, None


#: Message dispatch for the worker loop.  Module-level and looked up per
#: message so tests can monkeypatch handlers (fork-spawned loopback
#: workers inherit the patched registry) to inject failures.
_MESSAGE_HANDLERS = {
    wire.MSG_JOB: _w_job,
    wire.MSG_DEGREE: _w_degree,
    wire.MSG_PHASE1_INIT: _w_phase1_init,
    wire.MSG_CLUSTER: _w_cluster,
    wire.MSG_CLUSTER_FINISH: _w_cluster_finish,
    wire.MSG_BIND: _w_bind,
    wire.MSG_WINDOW: _w_window,
    wire.MSG_BARRIER: _w_barrier,
}


def _serve_connection(sock: socket.socket, version: int | None = None):
    """Serve one coordinator session over an established socket.

    Handler exceptions are reported back as ``ERROR`` frames (the
    coordinator turns them into typed errors and tears the session
    down); transport failures mean the coordinator is gone, so the loop
    just exits.  ``version`` overrides the advertised wire version —
    exists so version-negotiation tests can stand up a mismatched peer.
    """
    conn = wire.Connection(sock, label="coordinator")
    ctx: dict = {}
    try:
        wire.handshake_server(conn, version=version)
        while True:
            msg_type, payload = conn.recv()
            if msg_type == wire.MSG_SHUTDOWN:
                conn.send(wire.MSG_OK)
                return
            handler = _MESSAGE_HANDLERS.get(msg_type)
            if handler is None:
                conn.send(
                    wire.MSG_ERROR,
                    {"message": f"unknown message type {msg_type}"},
                )
                continue
            try:
                out_type, out_payload = handler(ctx, payload)
            except Exception as exc:  # noqa: BLE001 - reported to peer
                conn.send(
                    wire.MSG_ERROR,
                    {"message": f"{type(exc).__name__}: {exc}"},
                )
                continue
            conn.send(out_type, out_payload)
    except WireError:
        return  # coordinator vanished: no peer left to report to
    finally:
        conn.close()
        stream = ctx.get("stream")
        shm = getattr(stream, "_shm", None)
        if shm is not None:
            shm.close()


def _loopback_worker_main(address: tuple[str, int]) -> None:
    """Entry point of a coordinator-spawned loopback worker process."""
    sock = socket.create_connection(address, timeout=30.0)
    sock.settimeout(None)
    _serve_connection(sock)


def serve_worker(
    host: str = "127.0.0.1",
    port: int = 0,
    max_sessions: int | None = None,
    version: int | None = None,
    ready=None,
) -> int:
    """Run a standalone worker server; returns sessions served.

    One coordinator session at a time (the protocol is session-scoped
    lock-step; a partitioning worker has no work to interleave).  With
    ``port=0`` the OS picks a free port — ``ready(host, port)`` is
    called with the bound address before accepting.  ``max_sessions``
    bounds the lifetime for tests and one-shot jobs; ``None`` serves
    until killed.
    """
    server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    try:
        server.bind((host, port))
        server.listen()
        bound_host, bound_port = server.getsockname()[:2]
        if ready is not None:
            ready(bound_host, bound_port)
        served = 0
        while max_sessions is None or served < max_sessions:
            sock, _ = server.accept()
            _serve_connection(sock, version=version)
            served += 1
        return served
    finally:
        server.close()


# ---------------------------------------------------------------------
# coordinator side
# ---------------------------------------------------------------------
class DistributedRunner(Runner):
    """Socket workers speaking the sync-window/delta-barrier protocol.

    Parameters
    ----------
    workers:
        ``host:port`` specs of pre-started worker servers (the CLI
        ``worker`` subcommand), one per shard worker.  ``None`` (the
        default) bootstraps loopback: the coordinator listens on
        ``127.0.0.1`` and spawns local worker processes that connect
        back.  Remote workers need a file-backed stream — each streams
        its own shard; edge data never crosses the wire.
    connect_timeout:
        Seconds to establish (or accept) each worker connection.
    recv_timeout:
        Seconds any single protocol reply may take.  A worker that died
        mid-window would otherwise hang the coordinator forever; the
        timeout converts that into a typed
        :class:`~repro.errors.PartitioningError` and session teardown
        closes every socket and reaps every spawned worker.
    start_method:
        ``multiprocessing`` start method for loopback workers (``None``
        picks :func:`~repro.core.runners.default_start_method`).
    """

    kind = "distributed"
    measures_wallclock = True

    def __init__(
        self,
        workers=None,
        connect_timeout: float = 10.0,
        recv_timeout: float = 600.0,
        start_method: str | None = None,
    ) -> None:
        if connect_timeout <= 0 or recv_timeout <= 0:
            raise ConfigurationError(
                "connect_timeout and recv_timeout must be positive, got "
                f"{connect_timeout} / {recv_timeout}"
            )
        if start_method is not None:
            import multiprocessing as mp

            if start_method not in mp.get_all_start_methods():
                raise ConfigurationError(
                    f"start_method {start_method!r} not available; "
                    f"choose from {mp.get_all_start_methods()}"
                )
        self.workers = (
            None
            if workers is None
            else [parse_worker_spec(spec) for spec in workers]
        )
        self.connect_timeout = float(connect_timeout)
        self.recv_timeout = float(recv_timeout)
        self.start_method = start_method

    def open(self, job) -> RunnerSession:
        return _DistributedSession(self, job)


class _DistributedSession(RunnerSession):
    def __init__(self, runner: DistributedRunner, job) -> None:
        self.job = job
        self._recv_timeout = runner.recv_timeout
        self._connect_timeout = runner.connect_timeout
        self._conns: list[wire.Connection] = []
        self._procs: list = []
        self._listener = None
        self._stream_shm = None
        self._row_bytes = 0
        self._closed = False
        self.wire_barrier_delta_bytes = 0
        self.wire_barrier_plane_bytes = 0
        self.wire_barrier_full_bytes = 0
        try:
            self._setup(runner)
        except BaseException:
            self.close()
            raise

    # -- bootstrap -----------------------------------------------------
    def _setup(self, runner: DistributedRunner) -> None:
        job = self.job
        spec, self._stream_shm = make_stream_spec(job.stream)
        if self._stream_shm is not None:
            _LIVE_SEGMENTS.add(self._stream_shm.name)
        if runner.workers is not None:
            if len(runner.workers) != job.n_workers:
                raise ConfigurationError(
                    f"{len(runner.workers)} worker specs for "
                    f"n_workers={job.n_workers}; they must match"
                )
            if not isinstance(spec, FileStreamSpec):
                raise ConfigurationError(
                    "host:port workers need a file-backed stream "
                    "(FileEdgeStream): shared-memory edge segments do "
                    "not cross hosts — workers stream their own shards"
                )
            self._connect_workers(runner.workers)
        else:
            self._spawn_loopback_workers(runner, job.n_workers)
        for conn in self._conns:
            conn.settimeout(self._recv_timeout)
            try:
                wire.handshake_client(conn)
            except WireError as exc:
                raise PartitioningError(
                    f"distributed handshake failed: {exc}"
                ) from exc
        job_fields = {
            "spec": spec_to_wire(spec),
            "n_edges": int(job.shard_bounds[-1]),
            "k": job.k,
            "alpha": job.alpha,
            "backend": job.backend,
            "hash_seed": job.hash_seed,
            "hdrf_lambda": job.hdrf_lambda,
        }
        for w, conn in enumerate(self._conns):
            self._send(w, wire.MSG_JOB, {**job_fields, "worker_index": w},
                       "job setup")
        for w in range(len(self._conns)):
            self._recv(w, wire.MSG_OK, "job setup")

    def _connect_workers(self, addresses) -> None:
        for w, address in enumerate(addresses):
            label = f"worker {w} at {address[0]}:{address[1]}"
            try:
                sock = socket.create_connection(
                    address, timeout=self._connect_timeout
                )
            except OSError as exc:
                raise PartitioningError(
                    f"could not connect to distributed {label}: {exc}"
                ) from exc
            self._track(wire.Connection(sock, label=label))

    def _spawn_loopback_workers(self, runner, n_workers: int) -> None:
        import multiprocessing as mp

        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(n_workers)
        self._listener.settimeout(self._connect_timeout)
        address = self._listener.getsockname()[:2]
        ctx = mp.get_context(runner.start_method or default_start_method())
        for _ in range(n_workers):
            proc = ctx.Process(
                target=_loopback_worker_main, args=(address,), daemon=True
            )
            proc.start()
            self._procs.append(proc)
            _LIVE_WORKER_PROCS.add(proc)
        for w in range(n_workers):
            try:
                sock, _ = self._listener.accept()
            except (TimeoutError, socket.timeout, OSError) as exc:
                raise PartitioningError(
                    f"loopback worker {w} did not connect within "
                    f"{self._connect_timeout:.0f}s"
                ) from exc
            self._track(wire.Connection(sock, label=f"worker {w}"))
        self._listener.close()
        self._listener = None

    def _track(self, conn: wire.Connection) -> None:
        self._conns.append(conn)
        _LIVE_CONNECTIONS.add(conn)

    # -- protocol plumbing ---------------------------------------------
    def _send(self, w: int, msg_type: int, payload, step: str) -> None:
        try:
            self._conns[w].send(msg_type, payload)
        except WireError as exc:
            raise PartitioningError(
                f"distributed {step}: worker {w} unreachable: {exc}"
            ) from exc

    def _recv(self, w: int, expected: int, step: str) -> dict:
        try:
            msg_type, payload = self._conns[w].recv()
        except WireError as exc:
            raise PartitioningError(
                f"distributed {step}: worker {w} died or stalled: {exc}"
            ) from exc
        if msg_type == wire.MSG_ERROR:
            raise PartitioningError(
                f"distributed worker {w} failed during {step}: "
                f"{payload.get('message', 'no detail')}"
            )
        if msg_type != expected:
            raise PartitioningError(
                f"distributed {step}: worker {w} sent "
                f"{wire.MESSAGE_NAMES.get(msg_type, msg_type)}, expected "
                f"{wire.MESSAGE_NAMES.get(expected, expected)}"
            )
        return payload

    def _broadcast(self, msg_type: int, payload, expected: int,
                   step: str) -> list[dict]:
        for w in range(len(self._conns)):
            self._send(w, msg_type, payload, step)
        return [
            self._recv(w, expected, step)
            for w in range(len(self._conns))
        ]

    # -- Phase 1 -------------------------------------------------------
    def run_degree_pass(self, n_hint: int | None = None) -> np.ndarray:
        job = self.job
        active = []
        for w in range(job.n_workers):
            start = int(job.shard_bounds[w])
            stop = int(job.shard_bounds[w + 1])
            if start == stop:
                continue
            self._send(
                w, wire.MSG_DEGREE, {"start": start, "stop": stop}, "degree"
            )
            active.append(w)
        partials = [
            self._recv(w, wire.MSG_DEGREE_RESULT, "degree")["degrees"]
            for w in active
        ]
        return get_backend(job.backend).merge_phase1_degrees(
            partials, n_hint
        )

    def run_clustering(self, degrees, cap, n_passes):
        job = self.job
        kernels = get_backend(job.backend)
        degrees = np.asarray(degrees, dtype=np.int64)
        single = job.n_workers == 1
        self._broadcast(
            wire.MSG_PHASE1_INIT,
            {"degrees": degrees, "cap": float(cap), "single": single},
            wire.MSG_OK,
            "clustering",
        )
        v2c_g = np.full(degrees.shape[0], -1, dtype=np.int64)
        vol_g = np.zeros(0, dtype=np.int64)
        syncs = 0
        for _ in range(int(n_passes)):
            position = [
                int(job.shard_bounds[w]) for w in range(job.n_workers)
            ]
            stop = [
                int(job.shard_bounds[w + 1]) for w in range(job.n_workers)
            ]
            while True:
                tasks = _sweep_schedule(
                    position, stop, job.sync_interval, "cluster"
                )
                if not tasks:
                    break
                for w, _, t_start, t_stop in tasks:
                    fields = {"start": t_start, "stop": t_stop}
                    if not single:
                        # The merged clustering the worker loads from —
                        # the wire twin of the process runner's shared
                        # scratch slots.
                        fields["v2c"] = v2c_g
                        fields["volumes"] = vol_g
                    self._send(w, wire.MSG_CLUSTER, fields, "clustering")
                results = [
                    self._recv(w, wire.MSG_CLUSTER_RESULT, "clustering")
                    for w, _, _, _ in tasks
                ]
                for result in results:
                    _merge_cost(job.cost, result["cost"])
                syncs += 1
                if single:
                    continue  # the lone worker's live state stays put
                exports = [
                    (result["v2c"], result["volumes"])
                    for result in results
                ]
                v2c_g, vol_g = kernels.merge_phase1_clustering(
                    v2c_g, vol_g, exports, degrees
                )
                v2c_g, vol_g = compact_clustering(v2c_g, vol_g)
        if single:
            self._send(0, wire.MSG_CLUSTER_FINISH, None, "clustering")
            result = self._recv(0, wire.MSG_CLUSTER_RESULT, "clustering")
            v2c_g = result["v2c"]
            vol_g = result["volumes"]
        return v2c_g, vol_g, syncs

    # -- Phase 2 -------------------------------------------------------
    def bind_phase2(self) -> None:
        job = self.job
        self._row_bytes = (
            packed_row_bytes(job.k) if job.state.packed else int(job.k)
        )
        self._broadcast(
            wire.MSG_BIND,
            {
                "n_vertices": int(job.state.n_vertices),
                "packed": bool(job.state.packed),
                "v2c": job.v2c,
                "c2p": job.c2p,
                "volumes": job.volumes,
                "degrees": job.degrees,
            },
            wire.MSG_OK,
            "phase-2 bind",
        )

    def run_pass(self, pass_name: str) -> tuple[int, int]:
        if pass_name not in PASS_METHODS:
            raise ConfigurationError(f"unknown pass {pass_name!r}")
        job = self.job
        n = int(job.state.n_vertices)
        position = [int(job.shard_bounds[w]) for w in range(job.n_workers)]
        stop = [int(job.shard_bounds[w + 1]) for w in range(job.n_workers)]
        total = 0
        syncs = 0
        while True:
            tasks = _sweep_schedule(
                position, stop, job.sync_interval, pass_name
            )
            if not tasks:
                break
            for w, _, t_start, t_stop in tasks:
                self._send(
                    w,
                    wire.MSG_WINDOW,
                    {"pass": pass_name, "start": t_start, "stop": t_stop},
                    pass_name,
                )
            deltas = []
            for w, _, t_start, t_stop in tasks:
                result = self._recv(w, wire.MSG_WINDOW_RESULT, pass_name)
                returned = result["assignments"]
                np.copyto(
                    job.assignments[t_start:t_stop],
                    returned,
                    where=returned >= 0,
                )
                total += int(result["total"])
                _merge_cost(job.cost, result["cost"])
                deltas.append(
                    (result["rows"], result["rows_data"], result["sizes"])
                )
            rows, merged, new_sizes = merge_replica_wire_deltas(
                job.state, deltas
            )
            self._broadcast(
                wire.MSG_BARRIER,
                {"rows": rows, "rows_data": merged, "sizes": new_sizes},
                wire.MSG_BARRIER_ACK,
                f"{pass_name} barrier",
            )
            syncs += 1
            self.barrier_rows += int(rows.size)
            self.barrier_full_rows += n
            # Three views of barrier traffic: the full refresh payload
            # (row indices + row planes + sizes), the replica-plane
            # component alone, and what a full-state re-broadcast would
            # have shipped (every plane row + sizes, no indices needed).
            per_worker = rows.nbytes + merged.nbytes + new_sizes.nbytes
            self.wire_barrier_delta_bytes += per_worker * job.n_workers
            self.wire_barrier_plane_bytes += merged.nbytes * job.n_workers
            self.wire_barrier_full_bytes += (
                n * self._row_bytes + new_sizes.nbytes
            ) * job.n_workers
        return total, syncs

    # -- bookkeeping ---------------------------------------------------
    def wire_stats(self) -> dict:
        return {
            "bytes_sent": sum(c.bytes_sent for c in self._conns),
            "bytes_received": sum(c.bytes_received for c in self._conns),
            "barrier_delta_bytes": self.wire_barrier_delta_bytes,
            "barrier_plane_bytes": self.wire_barrier_plane_bytes,
            "barrier_full_bytes": self.wire_barrier_full_bytes,
        }

    def extra_state_bytes(self) -> int:
        # Worker views live in worker processes; report their logical
        # size (what the process runner reports for its shared views).
        job = self.job
        if job.state is None:
            return 0
        return job.n_workers * PartitionState.shared_nbytes(
            int(job.state.n_vertices),
            job.k,
            track_dirty=True,
            packed=bool(job.state.packed),
        )

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        conns, self._conns = self._conns, []
        for conn in conns:
            try:
                conn.settimeout(2.0)
                conn.send(wire.MSG_SHUTDOWN)
                conn.recv()
            except WireError:
                pass  # best-effort goodbye; the close below is what counts
            conn.close()
            _LIVE_CONNECTIONS.discard(conn)
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        procs, self._procs = self._procs, []
        for proc in procs:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - needs a wedged child
                proc.kill()
                proc.join(timeout=1.0)
            _LIVE_WORKER_PROCS.discard(proc)
        if self._stream_shm is not None:
            shm, self._stream_shm = self._stream_shm, None
            _LIVE_SEGMENTS.discard(shm.name)
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - cleanup race
                pass


RUNNERS["distributed"] = DistributedRunner
