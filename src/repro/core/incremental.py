"""Incremental 2PS-L for dynamic graphs (paper Section VI direction).

The paper notes that "following the approach proposed by Fan et al.,
2PS-L could be transformed into an incremental algorithm to efficiently
handle dynamic graphs with edge insertions and deletions without
recomputing the complete partitioning from scratch."  This module builds
that extension on top of a completed :class:`TwoPhasePartitioner` run:

- **Insertions** reuse the frozen Phase-1 state (vertex clusters, cluster
  volumes, cluster-to-partition map).  A new edge between already-clustered
  vertices goes through exactly the 2PS-L decision procedure
  (pre-partition condition, else two-candidate scoring, hash/least-loaded
  fallback).  A new *vertex* joins the cluster of its first seen neighbor
  (or opens a singleton cluster mapped to the least-loaded partition).
- **Deletions** decrement partition sizes and, when the last edge of a
  vertex on a partition disappears, clear the replication bit — keeping
  the replication factor exact under churn.

The per-update cost is O(1) (two score evaluations at most), so the
incremental partitioner preserves 2PS-L's linearity for the update stream.
Quality degrades gracefully as the clustering ages; callers can monitor
:attr:`IncrementalPartitioner.staleness` and re-run the batch partitioner
when it exceeds a budget.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PartitioningError
from repro.metrics.runtime import CostCounter
from repro.partitioning.base import PartitionResult
from repro.partitioning.hashutil import splitmix64
from repro.partitioning.state import PackedReplicaMatrix


class IncrementalPartitioner:
    """Maintains a 2PS-L partitioning under edge insertions and deletions.

    Build one with :meth:`from_result` from a
    :class:`~repro.core.partitioner.TwoPhasePartitioner` run configured
    with ``keep_state=True`` (so the result carries typed
    :class:`~repro.partitioning.base.PartitionArtifacts` with the Phase-1
    clustering and cluster-to-partition map), then register the base edges
    with :meth:`attach_edges` to enable deletions.
    """

    def __init__(
        self,
        k: int,
        alpha: float,
        degrees: np.ndarray,
        v2c: np.ndarray,
        volumes: np.ndarray,
        c2p: np.ndarray,
        replicas: np.ndarray,
        sizes: np.ndarray,
        hash_seed: int = 0,
    ) -> None:
        self.k = int(k)
        self.alpha = float(alpha)
        self.degrees = degrees.astype(np.int64).copy()
        self.v2c = v2c.astype(np.int64).copy()
        self.volumes = volumes.astype(np.int64).copy()
        self.c2p = c2p.astype(np.int64).copy()
        # A bit-packed replica matrix stays packed: ``.copy()`` on the
        # wrapper returns a *dense* bool matrix (its documented contract),
        # which would silently blow the state back up to |V| x k bytes —
        # exactly what ``PartitionState(packed=True)`` exists to avoid.
        if isinstance(replicas, PackedReplicaMatrix):
            self.replicas = PackedReplicaMatrix(
                replicas.packed.copy(), replicas.k
            )
        else:
            self.replicas = replicas.copy()
        self.sizes = sizes.astype(np.int64).copy()
        #: per (vertex, partition) incident-edge counts, needed so that
        #: deletions can tell when a replica becomes empty.  Built lazily
        #: by :meth:`attach_edges`.
        self._incidence: dict[tuple[int, int], int] = {}
        self.cost = CostCounter()
        self.updates = 0
        self.hash_seed = int(hash_seed)

    @property
    def total_edges(self) -> int:
        """Current number of edges across all partitions."""
        return int(self.sizes.sum())

    @property
    def capacity(self) -> int:
        """The balance cap, tracking the *current* edge count.

        Recomputed as ``max(floor(alpha * m / k), ceil(m / k))`` so the
        constraint stays both meaningful and feasible as the graph grows
        and shrinks.
        """
        m = self.total_edges
        return max(
            int(np.floor(self.alpha * m / self.k)),
            int(np.ceil(m / self.k)),
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_result(cls, result: PartitionResult) -> "IncrementalPartitioner":
        """Build from a 2PS-L result that carries its clustering state.

        Works with both replica-state representations: a result from a
        ``packed_state=True`` run keeps its
        :class:`~repro.partitioning.state.PackedReplicaMatrix` bit-packed
        here (inserts set bits, deletions clear them, growth extends the
        uint8 bit plane) instead of being densified back to ``|V| x k``
        bools.
        """
        artifacts = result.artifacts
        if (
            artifacts is None
            or artifacts.clustering is None
            or artifacts.c2p is None
        ):
            raise PartitioningError(
                "result does not carry clustering state; partition with "
                "TwoPhasePartitioner(keep_state=True)"
            )
        clustering = artifacts.clustering
        c2p = artifacts.c2p
        inc = cls(
            k=result.k,
            alpha=result.alpha,
            degrees=clustering.degrees,
            v2c=clustering.v2c,
            volumes=clustering.volumes,
            c2p=c2p,
            replicas=result.state.replicas,
            sizes=result.state.sizes,
        )
        return inc

    def attach_edges(self, edges: np.ndarray, assignments: np.ndarray) -> None:
        """Register the base partitioning's edges for deletion support."""
        for (u, v), p in zip(edges.tolist(), np.asarray(assignments).tolist()):
            self._incidence[(u, int(p))] = self._incidence.get((u, int(p)), 0) + 1
            self._incidence[(v, int(p))] = self._incidence.get((v, int(p)), 0) + 1

    # ------------------------------------------------------------------
    def _ensure_vertex(self, v: int, neighbor: int | None) -> None:
        """Grow state for unseen vertices; adopt the neighbor's cluster."""
        if v >= self.v2c.shape[0]:
            grow = v + 1 - self.v2c.shape[0]
            self.v2c = np.concatenate([self.v2c, np.full(grow, -1, dtype=np.int64)])
            self.degrees = np.concatenate(
                [self.degrees, np.zeros(grow, dtype=np.int64)]
            )
            if isinstance(self.replicas, PackedReplicaMatrix):
                # Grow the uint8 bit plane directly; np.vstack on the
                # wrapper would round-trip through a dense |V| x k copy.
                pad = np.zeros(
                    (grow, self.replicas.packed.shape[1]), dtype=np.uint8
                )
                self.replicas = PackedReplicaMatrix(
                    np.vstack([self.replicas.packed, pad]), self.k
                )
            else:
                pad = np.zeros((grow, self.k), dtype=bool)
                self.replicas = np.vstack([self.replicas, pad])
        if self.v2c[v] < 0:
            if (
                neighbor is not None
                and 0 <= neighbor < self.v2c.shape[0]
                and self.v2c[neighbor] >= 0
            ):
                self.v2c[v] = self.v2c[neighbor]
            else:
                # Open a singleton cluster on the least-loaded partition.
                self.v2c[v] = self.volumes.shape[0]
                self.volumes = np.concatenate(
                    [self.volumes, np.zeros(1, dtype=np.int64)]
                )
                self.c2p = np.concatenate(
                    [self.c2p, np.asarray([int(np.argmin(self.sizes))])]
                )

    def _insertion_capacity(self, m_after: int) -> int:
        """Per-partition cap an insert is checked against.

        Feasibility against the post-insert edge count: cap(m+1) * k is
        always >= m+1, so an open partition always exists for consistent
        state.  Factored out so tests (and subclasses modeling external
        admission control) can tighten it and exercise the rejection path.
        """
        return max(
            int(np.floor(self.alpha * m_after / self.k)),
            int(np.ceil(m_after / self.k)),
        )

    def insert(self, u: int, v: int) -> int:
        """Insert edge ``(u, v)``; returns the chosen partition.

        The update is **transactional**: counter mutations (degrees,
        volumes, the updates/cost counters) and state growth for unseen
        vertices are rolled back if the insert is rejected, so a raised
        :class:`PartitioningError` leaves the partitioner bit-identical
        to its pre-call state instead of leaking phantom degree/volume
        increments for an edge that was never assigned.

        Raises
        ------
        PartitioningError
            If ``u``/``v`` are negative, or every partition is at its
            (insertion-adjusted) capacity.
        """
        if u < 0 or v < 0:
            # Checked before any mutation: negative ids would silently
            # index from the array tails and corrupt another vertex.
            raise PartitioningError(
                f"vertex ids must be >= 0, got ({u}, {v})"
            )
        n0 = self.v2c.shape[0]
        c0 = self.volumes.shape[0]
        v2c_u0 = int(self.v2c[u]) if u < n0 else -1
        v2c_v0 = int(self.v2c[v]) if v < n0 else -1
        score_evals0 = self.cost.score_evaluations
        hash_evals0 = self.cost.hash_evaluations
        self._ensure_vertex(u, v if v < self.v2c.shape[0] else None)
        self._ensure_vertex(v, u)
        self.degrees[u] += 1
        self.degrees[v] += 1
        cu = int(self.v2c[u])
        cv = int(self.v2c[v])
        self.volumes[cu] += 1
        self.volumes[cv] += 1
        self.updates += 1
        try:
            capacity = self._insertion_capacity(self.total_edges + 1)
            p1 = int(self.c2p[cu])
            p2 = int(self.c2p[cv])
            if cu == cv or p1 == p2:
                p = p1
            else:
                du = int(self.degrees[u])
                dv = int(self.degrees[v])
                dsum = du + dv
                vol1 = int(self.volumes[cu])
                vol2 = int(self.volumes[cv])
                vsum = vol1 + vol2
                s1 = vol1 / vsum if vsum else 0.0
                if self.replicas[u, p1]:
                    s1 += 2.0 - du / dsum
                if self.replicas[v, p1]:
                    s1 += 2.0 - dv / dsum
                s2 = vol2 / vsum if vsum else 0.0
                if self.replicas[u, p2]:
                    s2 += 2.0 - du / dsum
                if self.replicas[v, p2]:
                    s2 += 2.0 - dv / dsum
                self.cost.score_evaluations += 2
                p = p1 if s1 >= s2 else p2
            if self.sizes[p] >= capacity:
                hv = u if self.degrees[u] >= self.degrees[v] else v
                p = int(splitmix64(hv, self.hash_seed) % np.uint64(self.k))
                self.cost.hash_evaluations += 1
                if self.sizes[p] >= capacity:
                    open_mask = self.sizes < capacity
                    if not open_mask.any():
                        raise PartitioningError("all partitions at capacity")
                    candidates = np.where(open_mask)[0]
                    p = int(candidates[np.argmin(self.sizes[candidates])])
        except PartitioningError:
            self._rollback_insert(
                u, v, cu, cv, n0, c0, v2c_u0, v2c_v0,
                score_evals0, hash_evals0,
            )
            raise
        self.sizes[p] += 1
        self.replicas[u, p] = True
        self.replicas[v, p] = True
        self._incidence[(u, p)] = self._incidence.get((u, p), 0) + 1
        self._incidence[(v, p)] = self._incidence.get((v, p), 0) + 1
        return p

    def _rollback_insert(
        self, u, v, cu, cv, n0, c0, v2c_u0, v2c_v0, score_evals0, hash_evals0
    ) -> None:
        """Undo the speculative mutations of a rejected :meth:`insert`.

        Growth only ever appends (``_ensure_vertex``), so truncating the
        per-vertex arrays back to ``n0`` rows and the per-cluster arrays
        back to ``c0`` entries restores them exactly; pre-existing
        vertices whose cluster was assigned in-place get their saved
        ``v2c`` value back.  Counter decrements run before the
        truncations while the grown indices are still addressable.
        """
        self.degrees[u] -= 1
        self.degrees[v] -= 1
        self.volumes[cu] -= 1
        self.volumes[cv] -= 1
        self.updates -= 1
        self.cost.score_evaluations = score_evals0
        self.cost.hash_evaluations = hash_evals0
        if self.volumes.shape[0] > c0:
            self.volumes = self.volumes[:c0].copy()
            self.c2p = self.c2p[:c0].copy()
        if self.v2c.shape[0] > n0:
            self.v2c = self.v2c[:n0].copy()
            self.degrees = self.degrees[:n0].copy()
            if isinstance(self.replicas, PackedReplicaMatrix):
                self.replicas = PackedReplicaMatrix(
                    self.replicas.packed[:n0].copy(), self.k
                )
            else:
                self.replicas = self.replicas[:n0].copy()
        if u < n0:
            self.v2c[u] = v2c_u0
        if v < n0:
            self.v2c[v] = v2c_v0

    def delete(self, u: int, v: int, p: int) -> None:
        """Delete an edge previously assigned to partition ``p``.

        Raises
        ------
        PartitioningError
            If no such edge is registered on ``p``.
        """
        for x in (u, v):
            count = self._incidence.get((x, p), 0)
            if count <= 0:
                raise PartitioningError(
                    f"vertex {x} has no edges on partition {p}"
                )
            if count == 1:
                del self._incidence[(x, p)]
                self.replicas[x, p] = False
            else:
                self._incidence[(x, p)] = count - 1
        self.sizes[p] -= 1
        self.degrees[u] -= 1
        self.degrees[v] -= 1
        cu = int(self.v2c[u])
        cv = int(self.v2c[v])
        self.volumes[cu] -= 1
        self.volumes[cv] -= 1
        self.updates += 1

    # ------------------------------------------------------------------
    def replication_factor(self) -> float:
        """Exact replication factor of the current dynamic state."""
        counts = self.replicas.sum(axis=1)
        covered = int((counts > 0).sum())
        return float(counts.sum()) / covered if covered else 0.0

    @property
    def staleness(self) -> float:
        """Updates applied per original edge-capacity unit.

        A coarse signal for "the Phase-1 clustering is aging"; callers
        re-run the batch partitioner when this exceeds their budget.
        """
        base_edges = max(int(self.sizes.sum()), 1)
        return self.updates / base_edges
