"""METIS-like multilevel partitioner (Karypis & Kumar, SISC'98).

A from-scratch multilevel *vertex* partitioner in the METIS mold —
coarsen / initial-partition / uncoarsen+refine — followed by the standard
derivation of an edge partitioning from the vertex partitioning (each edge
goes to one of its endpoints' parts, whichever is less loaded), which is
how METIS is used as an edge-partitioning baseline in the paper.

Stages:

1. **Coarsening** — repeated heavy-edge matching: visit vertices in random
   order, match each with the unmatched neighbor behind the heaviest edge,
   contract matched pairs.  Stops when the graph is small (``<= max(128,
   8k)`` vertices) or matching stalls.
2. **Initial partitioning** — greedy BFS region growing on the coarsest
   graph: k region seeds, each grown to a balanced vertex-weight share.
3. **Refinement** — per uncoarsening level, one boundary pass of
   Kernighan-Lin-style moves: a boundary vertex moves to the neighboring
   part with the largest edge-cut gain if vertex-weight balance allows.

This is deliberately a "METIS-like" algorithm, not a bug-for-bug clone of
the METIS code base; it reproduces the baseline's *profile* in the paper's
plots — in-memory footprint, run-time far above streaming partitioners,
and excellent replication factors on clusterable graphs.
"""

from __future__ import annotations

import math

import numpy as np

from repro.metrics.memory import measured_state_bytes
from repro.metrics.runtime import CostCounter, PhaseTimer
from repro.partitioning.base import EdgePartitioner, PartitionResult
from repro.partitioning.state import PartitionState


class _Level:
    """One level of the multilevel hierarchy (weighted CSR graph + mapping)."""

    def __init__(self, indptr, nbr, wgt, vwgt, fine_to_coarse=None):
        self.indptr = indptr
        self.nbr = nbr
        self.wgt = wgt
        self.vwgt = vwgt
        self.fine_to_coarse = fine_to_coarse  # None at the finest level

    @property
    def n(self) -> int:
        return self.indptr.shape[0] - 1


def _build_weighted_csr(edges: np.ndarray, n: int):
    """Weighted CSR with parallel edges merged (weights summed)."""
    mask = edges[:, 0] != edges[:, 1]
    e = edges[mask]
    if e.shape[0] == 0:
        indptr = np.zeros(n + 1, dtype=np.int64)
        return indptr, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    lo = np.minimum(e[:, 0], e[:, 1])
    hi = np.maximum(e[:, 0], e[:, 1])
    keys = lo * np.int64(n) + hi
    uniq, counts = np.unique(keys, return_counts=True)
    lo_u = (uniq // n).astype(np.int64)
    hi_u = (uniq % n).astype(np.int64)
    src = np.concatenate([lo_u, hi_u])
    dst = np.concatenate([hi_u, lo_u])
    w = np.concatenate([counts, counts]).astype(np.int64)
    order = np.argsort(src, kind="stable")
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(src, minlength=n), out=indptr[1:])
    return indptr, dst[order], w[order]


def _coarsen(level: _Level, rng: np.random.Generator) -> _Level | None:
    """One heavy-edge-matching contraction; None when matching stalls."""
    n = level.n
    match = np.full(n, -1, dtype=np.int64)
    order = rng.permutation(n)
    for v in order.tolist():
        if match[v] >= 0:
            continue
        best, best_w = -1, -1
        for pos in range(level.indptr[v], level.indptr[v + 1]):
            w = int(level.nbr[pos])
            if w != v and match[w] < 0 and level.wgt[pos] > best_w:
                best, best_w = w, int(level.wgt[pos])
        if best >= 0:
            match[v] = best
            match[best] = v
        else:
            match[v] = v
    # Build the coarse id map.
    coarse_id = np.full(n, -1, dtype=np.int64)
    nxt = 0
    for v in range(n):
        if coarse_id[v] >= 0:
            continue
        coarse_id[v] = nxt
        partner = int(match[v])
        if partner != v and coarse_id[partner] < 0:
            coarse_id[partner] = nxt
        nxt += 1
    if nxt >= n:  # no contraction happened
        return None
    # Aggregate vertex weights and edges.
    cvwgt = np.zeros(nxt, dtype=np.int64)
    np.add.at(cvwgt, coarse_id, level.vwgt)
    pairs: dict[tuple[int, int], int] = {}
    for v in range(n):
        cv = int(coarse_id[v])
        for pos in range(level.indptr[v], level.indptr[v + 1]):
            cw = int(coarse_id[level.nbr[pos]])
            if cv < cw:
                key = (cv, cw)
                pairs[key] = pairs.get(key, 0) + int(level.wgt[pos])
    if pairs:
        arr = np.asarray(list(pairs.keys()), dtype=np.int64)
        wts = np.asarray(list(pairs.values()), dtype=np.int64)
        src = np.concatenate([arr[:, 0], arr[:, 1]])
        dst = np.concatenate([arr[:, 1], arr[:, 0]])
        w2 = np.concatenate([wts, wts])
        order2 = np.argsort(src, kind="stable")
        indptr = np.zeros(nxt + 1, dtype=np.int64)
        np.cumsum(np.bincount(src, minlength=nxt), out=indptr[1:])
        return _Level(indptr, dst[order2], w2[order2], cvwgt, coarse_id)
    indptr = np.zeros(nxt + 1, dtype=np.int64)
    return _Level(
        indptr,
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.int64),
        cvwgt,
        coarse_id,
    )


def _initial_partition(level: _Level, k: int, rng: np.random.Generator) -> np.ndarray:
    """Greedy BFS region growing on the coarsest graph."""
    n = level.n
    part = np.full(n, -1, dtype=np.int64)
    total_w = int(level.vwgt.sum())
    target = math.ceil(total_w / k)
    loads = np.zeros(k, dtype=np.int64)
    order = np.argsort(-level.vwgt, kind="stable")
    from collections import deque

    cursor = 0
    for p in range(k):
        # Seed: heaviest unassigned vertex.
        while cursor < n and part[order[cursor]] >= 0:
            cursor += 1
        if cursor >= n:
            break
        queue = deque([int(order[cursor])])
        while queue and loads[p] < target:
            v = queue.popleft()
            if part[v] >= 0:
                continue
            part[v] = p
            loads[p] += int(level.vwgt[v])
            for pos in range(level.indptr[v], level.indptr[v + 1]):
                w = int(level.nbr[pos])
                if part[w] < 0:
                    queue.append(w)
    # Leftovers: least-loaded part.
    for v in np.where(part < 0)[0].tolist():
        p = int(np.argmin(loads))
        part[v] = p
        loads[p] += int(level.vwgt[v])
    return part


def _refine(level: _Level, part: np.ndarray, k: int, cost: CostCounter) -> None:
    """One boundary KL/FM-style pass, balance-guarded."""
    n = level.n
    loads = np.zeros(k, dtype=np.int64)
    np.add.at(loads, part, level.vwgt)
    limit = 1.1 * level.vwgt.sum() / k
    for v in range(n):
        own = int(part[v])
        gains: dict[int, int] = {}
        internal = 0
        for pos in range(level.indptr[v], level.indptr[v + 1]):
            w_part = int(part[level.nbr[pos]])
            wt = int(level.wgt[pos])
            if w_part == own:
                internal += wt
            else:
                gains[w_part] = gains.get(w_part, 0) + wt
        if not gains:
            continue
        best_p, best_gain = max(gains.items(), key=lambda kv: (kv[1], -kv[0]))
        if best_gain > internal and loads[best_p] + level.vwgt[v] <= limit:
            loads[own] -= int(level.vwgt[v])
            loads[best_p] += int(level.vwgt[v])
            part[v] = best_p
            cost.refinement_moves += 1


class MetisLike(EdgePartitioner):
    """Multilevel vertex partitioner with derived edge partitioning.

    Parameters
    ----------
    max_levels:
        Upper bound on coarsening levels.
    coarse_target_factor:
        Stop coarsening when ``n <= max(128, factor * k)``.
    seed:
        Determinism seed for matching/region growing.
    """

    name = "METIS"

    def __init__(
        self, max_levels: int = 12, coarse_target_factor: int = 8, seed: int = 0
    ) -> None:
        self.max_levels = int(max_levels)
        self.coarse_target_factor = int(coarse_target_factor)
        self.seed = int(seed)

    def _run(self, stream, k: int, alpha: float) -> PartitionResult:
        timer = PhaseTimer()
        cost = CostCounter()
        with timer.phase("load"):
            graph = stream.materialize()
            cost.edges_streamed += graph.n_edges
        n = graph.n_vertices
        m = graph.n_edges
        rng = np.random.default_rng(self.seed)

        with timer.phase("coarsen"):
            indptr, nbr, wgt = _build_weighted_csr(graph.edges, n)
            levels = [_Level(indptr, nbr, wgt, np.ones(n, dtype=np.int64))]
            target = max(128, self.coarse_target_factor * k)
            while levels[-1].n > target and len(levels) <= self.max_levels:
                nxt = _coarsen(levels[-1], rng)
                # Matching + contraction touch every adjacency slot twice.
                cost.expansion_scans += 2 * int(levels[-1].nbr.shape[0])
                if nxt is None or nxt.n >= levels[-1].n * 0.95:
                    break
                levels.append(nxt)

        with timer.phase("initial"):
            part = _initial_partition(levels[-1], k, rng)

        with timer.phase("refine"):
            for li in range(len(levels) - 1, 0, -1):
                _refine(levels[li], part, k, cost)
                cost.expansion_scans += int(levels[li].nbr.shape[0])
                part = part[levels[li].fine_to_coarse]
            _refine(levels[0], part, k, cost)
            cost.expansion_scans += int(levels[0].nbr.shape[0])

        # Derive the edge partitioning: each edge follows the endpoint whose
        # part is currently less loaded; hard cap enforced by fallback.
        state = PartitionState(n, k, m, alpha)
        assignments = np.empty(m, dtype=np.int32)
        sizes = np.zeros(k, dtype=np.int64)
        capacity = state.capacity
        huge = np.iinfo(np.int64).max
        with timer.phase("derive"):
            part_l = part.tolist()
            idx = 0
            for u, v in graph.edges.tolist():
                pu = part_l[u]
                pv = part_l[v]
                p = pu if sizes[pu] <= sizes[pv] else pv
                if sizes[p] >= capacity:
                    other = pv if p == pu else pu
                    p = other
                    if sizes[p] >= capacity:
                        p = int(np.argmin(np.where(sizes < capacity, sizes, huge)))
                sizes[p] += 1
                assignments[idx] = p
                idx += 1

        state.sizes[:] = sizes
        state.replicas[graph.edges[:, 0], assignments] = True
        state.replicas[graph.edges[:, 1], assignments] = True
        return PartitionResult(
            partitioner=self.name,
            k=k,
            alpha=alpha,
            n_vertices=n,
            n_edges=m,
            assignments=assignments,
            state=state,
            timer=timer,
            cost=cost,
            state_bytes=measured_state_bytes(state, graph.edges, indptr, nbr, wgt),
            extras={"levels": len(levels), "coarsest_n": levels[-1].n},
        )
