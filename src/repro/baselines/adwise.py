"""ADWISE: adaptive window-based streaming edge partitioning (ICDCS'18).

ADWISE keeps a buffer (window) of edges and, instead of assigning the next
edge of the stream, repeatedly assigns the *best* edge currently in the
buffer — "looking into the future" to detect local clusters.  Our
re-implementation keeps the essential mechanism:

- a FIFO-refilled buffer of ``buffer_size`` edges;
- per round, every buffered edge is scored with the HDRF score plus a
  *lookahead bonus* proportional to how many other buffered edges share an
  endpoint with it (the in-buffer clustering signal);
- the top ``assign_fraction`` of the buffer is assigned in score order,
  then the buffer refills.

This preserves ADWISE's run-time profile (a constant-factor multiple of
HDRF's O(|E| * k) — the paper measures it as the slowest streaming
baseline) and its quality profile: better than HDRF on graphs small enough
for the window to "see" clusters, no better on large graphs (the paper's
Section V observation, reproduced in our benches by shrinking
``buffer_size`` relative to the graph).
"""

from __future__ import annotations

import numpy as np

from repro.core.scoring import HDRF_EPSILON
from repro.errors import ConfigurationError
from repro.metrics.memory import measured_state_bytes
from repro.metrics.runtime import CostCounter, PhaseTimer
from repro.partitioning.base import EdgePartitioner, PartitionResult
from repro.partitioning.state import PartitionState


class Adwise(EdgePartitioner):
    """Buffered best-first streaming partitioner.

    Parameters
    ----------
    buffer_size:
        Window size in edges (paper: adaptive; we expose it directly and
        let experiments derive it from a run-time budget).
    assign_fraction:
        Fraction of the buffer assigned per scoring round; smaller values
        re-score more often (slower, better quality).
    lam:
        HDRF balance weight.
    lookahead_weight:
        Weight of the in-buffer degree bonus.
    """

    name = "ADWISE"

    def __init__(
        self,
        buffer_size: int = 256,
        assign_fraction: float = 0.25,
        lam: float = 1.1,
        lookahead_weight: float = 0.1,
    ) -> None:
        if buffer_size < 1:
            raise ConfigurationError(f"buffer_size must be >= 1, got {buffer_size}")
        if not 0.0 < assign_fraction <= 1.0:
            raise ConfigurationError(
                f"assign_fraction must be in (0, 1], got {assign_fraction}"
            )
        self.buffer_size = int(buffer_size)
        self.assign_fraction = float(assign_fraction)
        self.lam = float(lam)
        self.lookahead_weight = float(lookahead_weight)

    # ------------------------------------------------------------------
    def _run(self, stream, k: int, alpha: float) -> PartitionResult:
        timer = PhaseTimer()
        cost = CostCounter()
        n = self._resolve_n_vertices(stream)
        m = stream.n_edges
        state = PartitionState(n, k, m, alpha)
        assignments = np.full(m, -1, dtype=np.int32)
        replicas = state.replicas
        sizes = np.zeros(k, dtype=np.float64)
        capacity = state.capacity
        partial_deg = [0] * n
        buffer_deg = [0] * n

        def score_edge(u: int, v: int) -> tuple[float, int]:
            """Best (score, partition) for one buffered edge."""
            du = partial_deg[u] + 1
            dv = partial_deg[v] + 1
            theta_u = du / (du + dv)
            scores = replicas[u] * (2.0 - theta_u) + replicas[v] * (1.0 + theta_u)
            maxs = sizes.max()
            mins = sizes.min()
            scores = scores + self.lam * (maxs - sizes) / (
                HDRF_EPSILON + maxs - mins
            )
            scores[sizes >= capacity] = -np.inf
            p = int(np.argmax(scores))
            bonus = self.lookahead_weight * (buffer_deg[u] + buffer_deg[v])
            return float(scores[p]) + bonus, p

        with timer.phase("partitioning"):
            buffer: list[tuple[int, int, int]] = []  # (edge_idx, u, v)
            edge_iter = stream.edges()
            next_idx = 0
            scored_rounds = 0

            def refill() -> None:
                nonlocal next_idx
                while len(buffer) < self.buffer_size:
                    try:
                        u, v = next(edge_iter)
                    except StopIteration:
                        return
                    buffer.append((next_idx, u, v))
                    buffer_deg[u] += 1
                    buffer_deg[v] += 1
                    next_idx += 1

            refill()
            batch = max(1, int(self.buffer_size * self.assign_fraction))
            while buffer:
                scored = [
                    (score_edge(u, v), pos)
                    for pos, (_, u, v) in enumerate(buffer)
                ]
                scored_rounds += len(buffer)
                scored.sort(key=lambda item: -item[0][0])
                chosen_positions = sorted(
                    (pos for (_, pos) in scored[:batch]), reverse=True
                )
                for pos in chosen_positions:
                    edge_idx, u, v = buffer[pos]
                    # Re-score at assignment time: sizes/replicas moved.
                    _, p = score_edge(u, v)
                    sizes[p] += 1.0
                    replicas[u, p] = True
                    replicas[v, p] = True
                    partial_deg[u] += 1
                    partial_deg[v] += 1
                    buffer_deg[u] -= 1
                    buffer_deg[v] -= 1
                    assignments[edge_idx] = p
                    buffer.pop(pos)
                refill()
            cost.edges_streamed += m
            cost.score_evaluations += (scored_rounds + m) * k

        state.sizes[:] = sizes.astype(np.int64)
        return PartitionResult(
            partitioner=self.name,
            k=k,
            alpha=alpha,
            n_vertices=n,
            n_edges=m,
            assignments=assignments,
            state=state,
            timer=timer,
            cost=cost,
            state_bytes=measured_state_bytes(state, partial_deg, buffer_deg),
            extras={"buffer_size": self.buffer_size},
        )
