"""NE: neighborhood expansion edge partitioning (Zhang et al., KDD'17).

The strongest in-memory baseline in the paper (best replication factor
together with METIS).  NE grows one partition at a time: it keeps a core
set ``C`` and a boundary ``S`` (neighbors of the core); each step moves the
boundary vertex with the fewest *external* neighbors into the core and
assigns all of its still-unassigned edges to the partition.  Dense regions
are therefore swallowed whole, producing very low replication.

This is an in-memory partitioner: the stream is materialized (paper
Table II — in-memory partitioners are >= O(|E|) space; the measured
``state_bytes`` reflects that).

The expansion machinery is exposed as :class:`ExpansionState` so the SNE,
DNE and HEP baselines can reuse it on their own edge subsets.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.metrics.memory import measured_state_bytes
from repro.metrics.runtime import CostCounter, PhaseTimer
from repro.partitioning.base import EdgePartitioner, PartitionResult
from repro.partitioning.state import PartitionState


def edge_adjacency(edges: np.ndarray, n_vertices: int):
    """CSR adjacency with parallel edge-id arrays.

    Returns ``(indptr, nbr, eid)`` where for vertex ``v`` the incident
    edges are ``eid[indptr[v]:indptr[v+1]]`` toward ``nbr[...]``.
    """
    m = edges.shape[0]
    src = np.concatenate([edges[:, 0], edges[:, 1]])
    dst = np.concatenate([edges[:, 1], edges[:, 0]])
    ids = np.concatenate([np.arange(m), np.arange(m)])
    order = np.argsort(src, kind="stable")
    counts = np.bincount(src, minlength=n_vertices)
    indptr = np.zeros(n_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, dst[order], ids[order]


class ExpansionState:
    """Shared neighborhood-expansion engine over a fixed edge set.

    Drives any number of sequential or interleaved partition expansions
    over the same "unassigned edges" pool.  Used directly by NE, and by
    SNE/DNE/HEP for their in-memory portions.
    """

    def __init__(self, edges: np.ndarray, n_vertices: int, seed: int = 0) -> None:
        self.edges = edges
        self.n = int(n_vertices)
        self.m = int(edges.shape[0])
        self.indptr, self.nbr, self.eid = edge_adjacency(edges, self.n)
        self.assigned = np.zeros(self.m, dtype=bool)
        self.unassigned_deg = np.bincount(
            np.concatenate([edges[:, 0], edges[:, 1]]), minlength=self.n
        ).astype(np.int64)
        degs = self.unassigned_deg.copy()
        self._seed_order = np.argsort(degs, kind="stable")
        self._seed_cursor = 0
        # Stamps identify membership per expansion round without clearing.
        self._stamp_S = np.full(self.n, -1, dtype=np.int64)
        self._stamp_C = np.full(self.n, -1, dtype=np.int64)
        self._round = -1
        self.heap_ops = 0
        #: adjacency positions visited (the dominant in-memory work term);
        #: construction itself touches every edge twice.
        self.scan_count = 2 * self.m
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def has_unassigned(self) -> bool:
        """Whether any edge remains unassigned."""
        return bool((~self.assigned).any())

    def next_seed(self) -> int | None:
        """Lowest-degree vertex that still has unassigned edges."""
        order = self._seed_order
        while self._seed_cursor < order.shape[0]:
            v = int(order[self._seed_cursor])
            if self.unassigned_deg[v] > 0:
                return v
            self._seed_cursor += 1
        return None

    def _external_estimate(self, v: int) -> int:
        """Unassigned incident edges of ``v`` (cheap external-degree proxy)."""
        return int(self.unassigned_deg[v])

    def expand_partition(
        self,
        p: int,
        budget: int,
        assign_cb,
        round_id: int | None = None,
        seed_hint=None,
    ) -> int:
        """Grow partition ``p`` by up to ``budget`` edges.

        ``assign_cb(edge_id, p)`` is invoked for every assigned edge;
        returns the number of edges assigned.  ``round_id`` isolates the
        S/C membership stamps (defaults to a fresh round).  ``seed_hint``
        primes the boundary with vertices the partition already owns —
        SNE/HEP use it to keep an expansion coherent across buffer refills.
        """
        if budget <= 0:
            return 0
        self._round += 1
        rid = self._round if round_id is None else round_id
        stamp_S = self._stamp_S
        stamp_C = self._stamp_C
        indptr = self.indptr
        nbr = self.nbr
        eid = self.eid
        assigned = self.assigned
        unassigned_deg = self.unassigned_deg
        heap: list[tuple[int, int]] = []
        if seed_hint is not None:
            for v in seed_hint:
                v = int(v)
                if unassigned_deg[v] > 0 and stamp_S[v] != rid:
                    stamp_S[v] = rid
                    heapq.heappush(heap, (self._external_estimate(v), v))
                    self.heap_ops += 1
        taken = 0

        while taken < budget:
            # Pull the lowest-external-degree boundary vertex (lazy heap).
            x = -1
            while heap:
                _, cand = heapq.heappop(heap)
                self.heap_ops += 1
                if stamp_C[cand] != rid and unassigned_deg[cand] > 0:
                    x = cand
                    break
            if x < 0:
                seed = self.next_seed()
                if seed is None:
                    break
                x = seed
                stamp_S[x] = rid
            stamp_C[x] = rid
            # Assign all unassigned edges incident to the new core vertex.
            self.scan_count += int(indptr[x + 1] - indptr[x])
            for pos in range(indptr[x], indptr[x + 1]):
                e = int(eid[pos])
                if assigned[e]:
                    continue
                if taken >= budget:
                    break
                w = int(nbr[pos])
                assigned[e] = True
                unassigned_deg[x] -= 1
                unassigned_deg[w] -= 1
                assign_cb(e, p)
                taken += 1
                if stamp_S[w] != rid:
                    stamp_S[w] = rid
                    heapq.heappush(heap, (self._external_estimate(w), w))
                    self.heap_ops += 1
        return taken

    def unassigned_edge_ids(self) -> np.ndarray:
        """Ids of edges not yet assigned."""
        return np.where(~self.assigned)[0]


class NeighborhoodExpansion(EdgePartitioner):
    """The NE in-memory partitioner.

    Parameters
    ----------
    seed:
        Determinism seed for tie-breaking.
    """

    name = "NE"

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def _run(self, stream, k: int, alpha: float) -> PartitionResult:
        timer = PhaseTimer()
        cost = CostCounter()
        with timer.phase("load"):
            graph = stream.materialize()
            cost.edges_streamed += graph.n_edges
        n = graph.n_vertices
        m = graph.n_edges
        state = PartitionState(n, k, m, alpha)
        assignments = np.full(m, -1, dtype=np.int32)
        sizes = np.zeros(k, dtype=np.int64)
        capacity = state.capacity

        def assign_cb(e: int, p: int) -> None:
            assignments[e] = p
            sizes[p] += 1

        with timer.phase("partitioning"):
            exp = ExpansionState(graph.edges, n, seed=self.seed)
            remaining = m
            for p in range(k):
                budget = min(capacity, math.ceil(remaining / (k - p)))
                got = exp.expand_partition(p, budget, assign_cb)
                remaining -= got
            # Spill anything left to the least-loaded open partitions.
            for e in exp.unassigned_edge_ids().tolist():
                p = int(
                    np.argmin(
                        np.where(
                            sizes < capacity, sizes, np.iinfo(np.int64).max
                        )
                    )
                )
                assign_cb(e, p)
            cost.heap_operations += exp.heap_ops
            cost.expansion_scans += exp.scan_count

        state.sizes[:] = sizes
        edges = graph.edges
        state.replicas[edges[:, 0], assignments] = True
        state.replicas[edges[:, 1], assignments] = True
        return PartitionResult(
            partitioner=self.name,
            k=k,
            alpha=alpha,
            n_vertices=n,
            n_edges=m,
            assignments=assignments,
            state=state,
            timer=timer,
            cost=cost,
            state_bytes=measured_state_bytes(
                state, graph.edges, exp.indptr, exp.nbr, exp.eid
            ),
        )
