"""HEP: hybrid edge partitioner (Mayer & Jacobsen, SIGMOD'21).

HEP splits the edge set by vertex degree.  Edges between two *low-degree*
vertices (degree <= tau * mean_degree) are partitioned **in memory** with
neighborhood expansion; the remaining edges — those touching a high-degree
vertex — are **streamed** with HDRF, starting from the replication state
the in-memory phase built up.  The parameter ``tau`` trades memory for
quality:

- ``tau = 100`` (HEP-100): nearly everything in memory → NE-like quality;
- ``tau = 1`` (HEP-1): only the low-degree core in memory → close to
  streaming memory footprint, still better quality than pure HDRF.

These are the paper's HEP-1 / HEP-10 / HEP-100 configurations.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.ne import ExpansionState
from repro.core.scoring import HDRF_EPSILON
from repro.errors import ConfigurationError
from repro.graph.degrees import compute_degrees_from_stream
from repro.metrics.memory import measured_state_bytes
from repro.metrics.runtime import CostCounter, PhaseTimer
from repro.partitioning.base import EdgePartitioner, PartitionResult
from repro.partitioning.state import PartitionState


class HEP(EdgePartitioner):
    """Hybrid edge partitioner.

    Parameters
    ----------
    tau:
        Degree threshold multiplier (paper: 1, 10, 100).
    lam:
        HDRF balance weight for the streaming phase.
    seed:
        Determinism seed for the expansion phase.
    """

    def __init__(self, tau: float = 10.0, lam: float = 1.1, seed: int = 0) -> None:
        if tau <= 0:
            raise ConfigurationError(f"tau must be positive, got {tau}")
        self.tau = float(tau)
        self.lam = float(lam)
        self.seed = int(seed)
        self.name = f"HEP-{int(tau) if float(tau).is_integer() else tau}"

    # ------------------------------------------------------------------
    def _run(self, stream, k: int, alpha: float) -> PartitionResult:
        timer = PhaseTimer()
        cost = CostCounter()
        m = stream.n_edges

        with timer.phase("degree"):
            degrees = compute_degrees_from_stream(stream)
            cost.edges_streamed += m
        n = max(self._resolve_n_vertices(stream, degrees), len(degrees))
        if len(degrees) < n:
            grown = np.zeros(n, dtype=np.int64)
            grown[: len(degrees)] = degrees
            degrees = grown
        mean_degree = degrees[degrees > 0].mean() if (degrees > 0).any() else 0.0
        threshold = self.tau * mean_degree

        state = PartitionState(n, k, m, alpha)
        assignments = np.full(m, -1, dtype=np.int32)
        sizes = np.zeros(k, dtype=np.int64)
        capacity = state.capacity
        replicas = state.replicas

        # Phase A: collect the low-degree subgraph in memory (this is the
        # memory HEP's tau controls) and partition it with expansion.
        low = degrees <= threshold
        with timer.phase("in-memory"):
            low_edges: list[tuple[int, int, int]] = []
            idx = 0
            for chunk in stream.chunks():
                lu = low[chunk[:, 0]]
                lv = low[chunk[:, 1]]
                both = lu & lv
                for offset in np.where(both)[0].tolist():
                    u = int(chunk[offset, 0])
                    v = int(chunk[offset, 1])
                    low_edges.append((idx + offset, u, v))
                idx += chunk.shape[0]
            cost.edges_streamed += m
            n_low = len(low_edges)
            if n_low:
                arr = np.asarray([(u, v) for (_, u, v) in low_edges], dtype=np.int64)
                orig_idx = np.asarray([i for (i, _, _) in low_edges], dtype=np.int64)
                exp = ExpansionState(arr, n, seed=self.seed)
                # Budget each partition proportionally to the in-memory share.
                share = min(capacity, math.ceil(n_low / k))

                def cb(local_e: int, p: int) -> None:
                    e = int(orig_idx[local_e])
                    assignments[e] = p
                    sizes[p] += 1
                    replicas[arr[local_e, 0], p] = True
                    replicas[arr[local_e, 1], p] = True

                remaining = n_low
                for p in range(k):
                    budget = min(share, math.ceil(remaining / (k - p)))
                    got = exp.expand_partition(p, budget, cb)
                    remaining -= got
                huge = np.iinfo(np.int64).max
                for local_e in exp.unassigned_edge_ids().tolist():
                    p = int(np.argmin(np.where(sizes < capacity, sizes, huge)))
                    cb(local_e, p)
                cost.heap_operations += exp.heap_ops
                cost.expansion_scans += exp.scan_count
            in_memory_bytes = 24 * n_low

        # Phase B: stream the high-degree edges with HDRF, reusing state.
        with timer.phase("streaming"):
            sizes_f = sizes.astype(np.float64)
            lam = self.lam
            idx = 0
            n_high = 0
            for chunk in stream.chunks():
                for u, v in chunk.tolist():
                    if assignments[idx] >= 0:
                        idx += 1
                        continue
                    du = int(degrees[u])
                    dv = int(degrees[v])
                    theta_u = du / (du + dv)
                    scores = replicas[u] * (2.0 - theta_u) + replicas[v] * (
                        1.0 + theta_u
                    )
                    maxs = sizes_f.max()
                    mins = sizes_f.min()
                    scores = scores + lam * (maxs - sizes_f) / (
                        HDRF_EPSILON + maxs - mins
                    )
                    scores[sizes_f >= capacity] = -np.inf
                    p = int(np.argmax(scores))
                    sizes_f[p] += 1.0
                    replicas[u, p] = True
                    replicas[v, p] = True
                    assignments[idx] = p
                    n_high += 1
                    idx += 1
            sizes = sizes_f.astype(np.int64)
            cost.edges_streamed += m
            cost.score_evaluations += n_high * k

        state.sizes[:] = sizes
        return PartitionResult(
            partitioner=self.name,
            k=k,
            alpha=alpha,
            n_vertices=n,
            n_edges=m,
            assignments=assignments,
            state=state,
            timer=timer,
            cost=cost,
            state_bytes=measured_state_bytes(state, degrees) + in_memory_bytes,
            extras={
                "tau": self.tau,
                "threshold": float(threshold),
                "in_memory_edges": n_low,
                "streamed_edges": m - n_low,
            },
        )
