"""SNE: streaming neighborhood expansion (the out-of-core variant of NE).

The paper uses SNE (from the NE authors) as the quality-leading *streaming*
baseline: it applies NE's expansion inside a bounded in-memory edge cache
instead of the full graph.  Our re-implementation follows that design:

- edges stream into a cache of capacity ``cache_factor * |V|`` edges (the
  paper's appendix configures a cache of ``2 * |V|``);
- whenever the cache fills, expansion runs on the cached subgraph,
  assigning edges to the current partition until it reaches its budget,
  then moves to the next partition;
- assigned edges leave the cache, making room for more of the stream;
- after the stream is exhausted, the remaining cached edges are drained the
  same way.

The quality sits between HDRF and full NE (the cache sees only part of the
graph), and the run-time/memory are significantly higher than 2PS-L —
matching the paper's Figure 4 relations.  On very small caches relative to
the graph, quality degrades toward streaming levels, which is the "SNE
FAIL" regime the paper reports on some graph/k combinations.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.ne import ExpansionState
from repro.errors import ConfigurationError
from repro.metrics.memory import measured_state_bytes
from repro.metrics.runtime import CostCounter, PhaseTimer
from repro.partitioning.base import EdgePartitioner, PartitionResult
from repro.partitioning.state import PartitionState


class StreamingNE(EdgePartitioner):
    """Bounded-cache streaming NE.

    Parameters
    ----------
    cache_factor:
        Cache capacity as a multiple of |V| (paper: 2.0).
    seed:
        Determinism seed for expansion tie-breaks.
    """

    name = "SNE"

    def __init__(self, cache_factor: float = 2.0, seed: int = 0) -> None:
        if cache_factor <= 0:
            raise ConfigurationError(
                f"cache_factor must be positive, got {cache_factor}"
            )
        self.cache_factor = float(cache_factor)
        self.seed = int(seed)

    def _run(self, stream, k: int, alpha: float) -> PartitionResult:
        timer = PhaseTimer()
        cost = CostCounter()
        n = self._resolve_n_vertices(stream)
        m = stream.n_edges
        state = PartitionState(n, k, m, alpha)
        assignments = np.full(m, -1, dtype=np.int32)
        sizes = np.zeros(k, dtype=np.int64)
        capacity = state.capacity
        cache_capacity = max(16, int(self.cache_factor * n))
        budget_per_partition = min(capacity, math.ceil(m / k))

        cache_edges: list[tuple[int, int, int]] = []  # (orig_idx, u, v)
        current_p = 0
        peak_cache = 0

        def drain(cache: list, final: bool) -> list:
            """Run expansion over the cached subgraph; return leftovers."""
            nonlocal current_p, peak_cache
            if not cache:
                return []
            peak_cache = max(peak_cache, len(cache))
            arr = np.asarray([(u, v) for (_, u, v) in cache], dtype=np.int64)
            exp = ExpansionState(arr, n, seed=self.seed)
            local_assign: dict[int, int] = {}

            def cb(local_e: int, p: int) -> None:
                local_assign[local_e] = p

            # Keep expanding until the cache is at most half full (or fully
            # drained at the end of the stream).  Each expansion is primed
            # with the vertices the partition already covers so the region
            # stays coherent across buffer refills (true SNE keeps its
            # core/boundary sets across the stream).
            goal = 0 if final else len(cache) // 2
            while len(local_assign) < len(cache) - goal:
                if current_p >= k:
                    current_p = k - 1
                room = budget_per_partition - int(sizes[current_p])
                if room <= 0 and current_p < k - 1:
                    current_p += 1
                    continue
                if room <= 0:
                    break  # every partition at budget; leftovers spill later
                touched = np.unique(arr)
                hint = touched[state.replicas[touched, current_p]]
                got = exp.expand_partition(current_p, room, cb, seed_hint=hint)
                if got == 0:
                    break
                sizes[current_p] += got
            cost.heap_operations += exp.heap_ops
            cost.expansion_scans += exp.scan_count
            leftovers = []
            for local_e, (orig_idx, u, v) in enumerate(cache):
                p = local_assign.get(local_e)
                if p is None:
                    leftovers.append((orig_idx, u, v))
                else:
                    assignments[orig_idx] = p
                    state.replicas[u, p] = True
                    state.replicas[v, p] = True
            return leftovers

        with timer.phase("partitioning"):
            idx = 0
            for chunk in stream.chunks():
                for u, v in chunk.tolist():
                    cache_edges.append((idx, u, v))
                    idx += 1
                    if len(cache_edges) >= cache_capacity:
                        cache_edges = drain(cache_edges, final=False)
            cache_edges = drain(cache_edges, final=True)
            # Spill edges that no partition budget could take.
            for orig_idx, u, v in cache_edges:
                open_sizes = np.where(
                    sizes < capacity, sizes, np.iinfo(np.int64).max
                )
                p = int(np.argmin(open_sizes))
                sizes[p] += 1
                assignments[orig_idx] = p
                state.replicas[u, p] = True
                state.replicas[v, p] = True
            cost.edges_streamed += m

        state.sizes[:] = sizes
        return PartitionResult(
            partitioner=self.name,
            k=k,
            alpha=alpha,
            n_vertices=n,
            n_edges=m,
            assignments=assignments,
            state=state,
            timer=timer,
            cost=cost,
            state_bytes=measured_state_bytes(state) + 24 * peak_cache,
            extras={"cache_capacity": cache_capacity, "peak_cache": peak_cache},
        )
