"""Stateless streaming partitioners: DBH, Grid, and plain random hashing.

These assign each edge with a constant-time hash and keep no replication
state (paper Table II: DBH is O(|V|) for the degree array, Grid is O(1)).
They are the fastest partitioners and the quality floor every stateful
method must beat.  Because they cannot react to partition sizes, the
balance constraint is *not enforced* — like the paper, experiments report
the measured alpha instead (the plot annotations in Figures 2a/4).

All three are fully vectorized over stream chunks: no per-edge Python loop,
which mirrors their real-world speed advantage.
"""

from __future__ import annotations

import math

import numpy as np

from repro.graph.degrees import compute_degrees_from_stream
from repro.metrics.memory import measured_state_bytes
from repro.metrics.runtime import CostCounter, PhaseTimer
from repro.partitioning.base import EdgePartitioner, PartitionResult
from repro.partitioning.hashutil import splitmix64
from repro.partitioning.state import PartitionState


class DBH(EdgePartitioner):
    """Degree-based hashing (Xie et al., NeurIPS'14).

    Hashes each edge on the id of its *lower-degree* endpoint: cutting
    through the high-degree vertex spreads the hub's edges while keeping
    each low-degree vertex on one partition.  One degree pass plus one
    assignment pass, both vectorized.
    """

    name = "DBH"

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def _run(self, stream, k: int, alpha: float) -> PartitionResult:
        timer = PhaseTimer()
        cost = CostCounter()
        with timer.phase("degree"):
            degrees = compute_degrees_from_stream(stream)
            cost.edges_streamed += stream.n_edges
        n = max(self._resolve_n_vertices(stream, degrees), len(degrees))
        m = stream.n_edges
        assignments = np.empty(m, dtype=np.int32)
        state = PartitionState(n, k, m, alpha=max(alpha, 64.0))
        with timer.phase("partitioning"):
            idx = 0
            for chunk in stream.chunks():
                u = chunk[:, 0]
                v = chunk[:, 1]
                lower = np.where(degrees[u] <= degrees[v], u, v)
                parts = (splitmix64(lower, self.seed) % np.uint64(k)).astype(
                    np.int32
                )
                assignments[idx : idx + chunk.shape[0]] = parts
                state.replicas[u, parts] = True
                state.replicas[v, parts] = True
                idx += chunk.shape[0]
            cost.edges_streamed += m
            cost.hash_evaluations += m
        state.sizes[:] = np.bincount(assignments, minlength=k)
        return PartitionResult(
            partitioner=self.name,
            k=k,
            alpha=alpha,
            n_vertices=n,
            n_edges=m,
            assignments=assignments,
            state=state,
            timer=timer,
            cost=cost,
            state_bytes=measured_state_bytes(degrees),
        )


class Grid(EdgePartitioner):
    """Grid-constrained hashing (GraphBuilder, Jain et al. GRADES'13).

    Partitions are arranged in an ``r x c`` grid with ``r * c >= k``; each
    vertex hashes to a grid row/column and the edge goes to the cell at the
    intersection (modulo k when the grid overshoots).  Guarantees each
    vertex appears in at most one row — bounded replication with zero
    state.
    """

    name = "Grid"

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    @staticmethod
    def grid_shape(k: int) -> tuple[int, int]:
        """Smallest near-square grid covering k cells."""
        r = max(1, int(math.isqrt(k)))
        c = (k + r - 1) // r
        return r, c

    def _run(self, stream, k: int, alpha: float) -> PartitionResult:
        timer = PhaseTimer()
        cost = CostCounter()
        n = self._resolve_n_vertices(stream)
        m = stream.n_edges
        r, c = self.grid_shape(k)
        assignments = np.empty(m, dtype=np.int32)
        state = PartitionState(n, k, m, alpha=max(alpha, 64.0))
        with timer.phase("partitioning"):
            idx = 0
            for chunk in stream.chunks():
                u = chunk[:, 0]
                v = chunk[:, 1]
                row = splitmix64(u, self.seed) % np.uint64(r)
                col = splitmix64(v, self.seed + 1) % np.uint64(c)
                parts = ((row * np.uint64(c) + col) % np.uint64(k)).astype(
                    np.int32
                )
                assignments[idx : idx + chunk.shape[0]] = parts
                state.replicas[u, parts] = True
                state.replicas[v, parts] = True
                idx += chunk.shape[0]
            cost.edges_streamed += m
            cost.hash_evaluations += 2 * m
        state.sizes[:] = np.bincount(assignments, minlength=k)
        return PartitionResult(
            partitioner=self.name,
            k=k,
            alpha=alpha,
            n_vertices=n,
            n_edges=m,
            assignments=assignments,
            state=state,
            timer=timer,
            cost=cost,
            state_bytes=0,
        )


class RandomHash(EdgePartitioner):
    """Uniform random edge assignment via hashing both endpoints.

    The weakest sensible baseline: expected perfect balance, worst-case
    replication (every vertex replicated on ~min(d, k) partitions).
    """

    name = "Random"

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def _run(self, stream, k: int, alpha: float) -> PartitionResult:
        timer = PhaseTimer()
        cost = CostCounter()
        n = self._resolve_n_vertices(stream)
        m = stream.n_edges
        assignments = np.empty(m, dtype=np.int32)
        state = PartitionState(n, k, m, alpha=max(alpha, 64.0))
        with timer.phase("partitioning"):
            idx = 0
            for chunk in stream.chunks():
                u = chunk[:, 0].astype(np.uint64)
                v = chunk[:, 1].astype(np.uint64)
                old = np.seterr(over="ignore")
                try:
                    key = u * np.uint64(0x9E3779B97F4A7C15) + v
                finally:
                    np.seterr(**old)
                parts = (splitmix64(key, self.seed) % np.uint64(k)).astype(
                    np.int32
                )
                assignments[idx : idx + chunk.shape[0]] = parts
                state.replicas[chunk[:, 0], parts] = True
                state.replicas[chunk[:, 1], parts] = True
                idx += chunk.shape[0]
            cost.edges_streamed += m
            cost.hash_evaluations += m
        state.sizes[:] = np.bincount(assignments, minlength=k)
        return PartitionResult(
            partitioner=self.name,
            k=k,
            alpha=alpha,
            n_vertices=n,
            n_edges=m,
            assignments=assignments,
            state=state,
            timer=timer,
            cost=cost,
            state_bytes=0,
        )
