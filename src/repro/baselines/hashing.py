"""Stateless streaming partitioners: DBH, Grid, and plain random hashing.

These assign each edge with a constant-time hash and keep no replication
state (paper Table II: DBH is O(|V|) for the degree array, Grid is O(1)).
They are the fastest partitioners and the quality floor every stateful
method must beat.  Because they cannot react to partition sizes, the
balance constraint is *not enforced* — like the paper, experiments report
the measured alpha instead (the plot annotations in Figures 2a/4).

Each algorithm contributes only a vectorized ``map_chunk(u, v) -> parts``
function; the stream loop itself is a kernel-backend pass
(:mod:`repro.kernels`), so the default ``numpy`` backend processes whole
chunks with a vectorized splitmix64 while the ``python`` reference
backend replays the same hash per edge for equivalence testing.
"""

from __future__ import annotations

import math

import numpy as np

from repro.graph.degrees import compute_degrees_from_stream
from repro.kernels import get_backend
from repro.metrics.memory import measured_state_bytes
from repro.metrics.runtime import CostCounter, PhaseTimer
from repro.partitioning.base import EdgePartitioner, PartitionResult
from repro.partitioning.hashutil import splitmix64
from repro.partitioning.state import PartitionState


class DBH(EdgePartitioner):
    """Degree-based hashing (Xie et al., NeurIPS'14).

    Hashes each edge on the id of its *lower-degree* endpoint: cutting
    through the high-degree vertex spreads the hub's edges while keeping
    each low-degree vertex on one partition.  One degree pass plus one
    assignment pass, both chunk-kernel driven.
    """

    name = "DBH"

    def __init__(self, seed: int = 0, backend: str | None = None) -> None:
        self.seed = int(seed)
        self.backend = backend

    def _run(self, stream, k: int, alpha: float) -> PartitionResult:
        kernels = get_backend(self.backend)
        timer = PhaseTimer()
        cost = CostCounter()
        with timer.phase("degree"):
            degrees = compute_degrees_from_stream(stream, backend=self.backend)
            cost.edges_streamed += stream.n_edges
        n = max(self._resolve_n_vertices(stream, degrees), len(degrees))
        m = stream.n_edges
        assignments = np.empty(m, dtype=np.int32)
        state = PartitionState(n, k, m, alpha=max(alpha, 64.0))
        seed = self.seed

        def map_chunk(u: np.ndarray, v: np.ndarray) -> np.ndarray:
            lower = np.where(degrees[u] <= degrees[v], u, v)
            return (splitmix64(lower, seed) % np.uint64(k)).astype(np.int32)

        with timer.phase("partitioning"):
            kernels.stateless_pass(stream, map_chunk, state, assignments)
            cost.edges_streamed += m
            cost.hash_evaluations += m
        return PartitionResult(
            partitioner=self.name,
            k=k,
            alpha=alpha,
            n_vertices=n,
            n_edges=m,
            assignments=assignments,
            state=state,
            timer=timer,
            cost=cost,
            state_bytes=measured_state_bytes(degrees),
        )


class Grid(EdgePartitioner):
    """Grid-constrained hashing (GraphBuilder, Jain et al. GRADES'13).

    Partitions are arranged in an ``r x c`` grid with ``r * c >= k``; each
    vertex hashes to a grid row/column and the edge goes to the cell at the
    intersection (modulo k when the grid overshoots).  Guarantees each
    vertex appears in at most one row — bounded replication with zero
    state.
    """

    name = "Grid"

    def __init__(self, seed: int = 0, backend: str | None = None) -> None:
        self.seed = int(seed)
        self.backend = backend

    @staticmethod
    def grid_shape(k: int) -> tuple[int, int]:
        """Smallest near-square grid covering k cells."""
        r = max(1, int(math.isqrt(k)))
        c = (k + r - 1) // r
        return r, c

    def _run(self, stream, k: int, alpha: float) -> PartitionResult:
        kernels = get_backend(self.backend)
        timer = PhaseTimer()
        cost = CostCounter()
        n = self._resolve_n_vertices(stream)
        m = stream.n_edges
        r, c = self.grid_shape(k)
        assignments = np.empty(m, dtype=np.int32)
        state = PartitionState(n, k, m, alpha=max(alpha, 64.0))
        seed = self.seed

        def map_chunk(u: np.ndarray, v: np.ndarray) -> np.ndarray:
            row = splitmix64(u, seed) % np.uint64(r)
            col = splitmix64(v, seed + 1) % np.uint64(c)
            return ((row * np.uint64(c) + col) % np.uint64(k)).astype(np.int32)

        with timer.phase("partitioning"):
            kernels.stateless_pass(stream, map_chunk, state, assignments)
            cost.edges_streamed += m
            cost.hash_evaluations += 2 * m
        return PartitionResult(
            partitioner=self.name,
            k=k,
            alpha=alpha,
            n_vertices=n,
            n_edges=m,
            assignments=assignments,
            state=state,
            timer=timer,
            cost=cost,
            state_bytes=0,
        )


class RandomHash(EdgePartitioner):
    """Uniform random edge assignment via hashing both endpoints.

    The weakest sensible baseline: expected perfect balance, worst-case
    replication (every vertex replicated on ~min(d, k) partitions).
    """

    name = "Random"

    def __init__(self, seed: int = 0, backend: str | None = None) -> None:
        self.seed = int(seed)
        self.backend = backend

    def _run(self, stream, k: int, alpha: float) -> PartitionResult:
        kernels = get_backend(self.backend)
        timer = PhaseTimer()
        cost = CostCounter()
        n = self._resolve_n_vertices(stream)
        m = stream.n_edges
        assignments = np.empty(m, dtype=np.int32)
        state = PartitionState(n, k, m, alpha=max(alpha, 64.0))
        seed = self.seed

        def map_chunk(u: np.ndarray, v: np.ndarray) -> np.ndarray:
            old = np.seterr(over="ignore")
            try:
                key = u.astype(np.uint64) * np.uint64(
                    0x9E3779B97F4A7C15
                ) + v.astype(np.uint64)
            finally:
                np.seterr(**old)
            return (splitmix64(key, seed) % np.uint64(k)).astype(np.int32)

        with timer.phase("partitioning"):
            kernels.stateless_pass(stream, map_chunk, state, assignments)
            cost.edges_streamed += m
            cost.hash_evaluations += m
        return PartitionResult(
            partitioner=self.name,
            k=k,
            alpha=alpha,
            n_vertices=n,
            n_edges=m,
            assignments=assignments,
            state=state,
            timer=timer,
            cost=cost,
            state_bytes=0,
        )
