"""HDRF: high-degree-replicated-first streaming partitioning (CIKM'15).

The paper's primary stateful streaming baseline.  For every edge, a score
``C_REP(u, v, p) + lambda * C_BAL(p)`` is evaluated on *every* partition
and the edge goes to the argmax — hence O(|E| * k) run-time, the exact
bottleneck 2PS-L removes.

Faithful details:

- degrees are *partial*: counted on the fly as edges stream in (HDRF does
  not get a degree pass);
- ``lambda = 1.1`` as configured in the paper's appendix;
- the hard balance cap is enforced by masking full partitions before the
  argmax (capacity bound alpha * |E| / k).

The whole pass dispatches through the kernel registry
(:meth:`repro.kernels.base.KernelBackend.hdrf_baseline_pass`): the
``python`` backend streams edge-at-a-time through the scoring twin
``PythonBackend.hdrf_choose`` (shared with the 2PS-HDRF remaining pass,
so the score arithmetic can never diverge between the baseline and the
two-phase variant), the ``numpy`` backend runs the same decisions through
the speculate-verify-repair block machinery, and the ``numba`` backends
run a compiled per-edge argmax — all bit-exact by the backend contract.
One simulated "score evaluation" per partition per edge is charged to the
cost counter, preserving the O(|E| * k) operation count.
"""

from __future__ import annotations

import numpy as np

from repro.kernels import get_backend
from repro.metrics.memory import measured_state_bytes
from repro.metrics.runtime import CostCounter, PhaseTimer
from repro.partitioning.base import EdgePartitioner, PartitionResult
from repro.partitioning.state import PartitionState
from repro.kernels.base import TwoPhaseContext

_EMPTY = np.zeros(0, dtype=np.int64)


class HDRF(EdgePartitioner):
    """Streaming HDRF with partial degrees and hard balance cap.

    Parameters
    ----------
    lam:
        Weight of the balance term (paper: 1.1).
    backend:
        Kernel backend name (``None`` -> registry default); validated
        eagerly so an unknown name fails at construction.
    chunk_size:
        Stream chunk size for this run (``None`` keeps the stream's
        default, ``"auto"`` resolves the size heuristic) — a pure
        performance knob, like everywhere else in the kernel layer.
    """

    name = "HDRF"
    backend: str | None = None
    chunk_size: int | None = None

    def __init__(
        self,
        lam: float = 1.1,
        backend: str | None = None,
        chunk_size: int | str | None = None,
    ) -> None:
        self.lam = float(lam)
        get_backend(backend)  # fail fast on unknown names
        self.backend = backend
        self.chunk_size = chunk_size

    def _run(self, stream, k: int, alpha: float) -> PartitionResult:
        kernels = get_backend(self.backend)
        timer = PhaseTimer()
        cost = CostCounter()
        n = self._resolve_n_vertices(stream)
        m = stream.n_edges
        state = PartitionState(n, k, m, alpha)
        assignments = np.empty(m, dtype=np.int32)
        # The baseline needs no clustering inputs; empty read-only arrays
        # satisfy the context shape.
        ctx = TwoPhaseContext(
            k=k,
            v2c=_EMPTY,
            c2p=_EMPTY,
            volumes=_EMPTY,
            degrees=_EMPTY,
            state=state,
            assignments=assignments,
            hash_seed=0,
            cost=cost,
            hdrf_lambda=self.lam,
        )
        with timer.phase("partitioning"):
            partial_deg = kernels.hdrf_baseline_pass(stream, ctx)
        return PartitionResult(
            partitioner=self.name,
            k=k,
            alpha=alpha,
            n_vertices=n,
            n_edges=m,
            assignments=assignments,
            state=state,
            timer=timer,
            cost=cost,
            state_bytes=measured_state_bytes(state, partial_deg),
            extras={"backend": kernels.name},
        )
