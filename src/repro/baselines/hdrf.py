"""HDRF: high-degree-replicated-first streaming partitioning (CIKM'15).

The paper's primary stateful streaming baseline.  For every edge, a score
``C_REP(u, v, p) + lambda * C_BAL(p)`` is evaluated on *every* partition
and the edge goes to the argmax — hence O(|E| * k) run-time, the exact
bottleneck 2PS-L removes.

Faithful details:

- degrees are *partial*: counted on the fly as edges stream in (HDRF does
  not get a degree pass);
- ``lambda = 1.1`` as configured in the paper's appendix;
- the hard balance cap is enforced by masking full partitions before the
  argmax (capacity bound alpha * |E| / k).

The per-edge decision routes through the kernel layer's scoring twin
(:meth:`repro.kernels.python_backend.PythonBackend.hdrf_choose`) — the
single implementation of the HDRF argmax shared with the 2PS-HDRF
remaining pass, so the score arithmetic can never diverge between the
baseline and the two-phase variant.  One simulated "score evaluation" per
partition per edge is charged to the cost counter, preserving the
O(|E| * k) operation count.
"""

from __future__ import annotations

import numpy as np

from repro.core.scoring import HDRF_EPSILON
from repro.kernels.python_backend import PythonBackend
from repro.metrics.memory import measured_state_bytes
from repro.metrics.runtime import CostCounter, PhaseTimer
from repro.partitioning.base import EdgePartitioner, PartitionResult
from repro.partitioning.state import PartitionState


class HDRF(EdgePartitioner):
    """Streaming HDRF with partial degrees and hard balance cap.

    Parameters
    ----------
    lam:
        Weight of the balance term (paper: 1.1).
    """

    name = "HDRF"

    def __init__(self, lam: float = 1.1) -> None:
        self.lam = float(lam)

    def _run(self, stream, k: int, alpha: float) -> PartitionResult:
        timer = PhaseTimer()
        cost = CostCounter()
        n = self._resolve_n_vertices(stream)
        m = stream.n_edges
        state = PartitionState(n, k, m, alpha)
        assignments = np.empty(m, dtype=np.int32)
        partial_deg = [0] * n
        replicas = state.replicas
        sizes = np.zeros(k, dtype=np.float64)
        capacity = state.capacity
        lam = self.lam

        choose = PythonBackend.hdrf_choose
        with timer.phase("partitioning"):
            idx = 0
            for chunk in stream.chunks():
                for u, v in chunk.tolist():
                    partial_deg[u] += 1
                    partial_deg[v] += 1
                    du = partial_deg[u]
                    dv = partial_deg[v]
                    theta_u = du / (du + dv)
                    # C_REP + lambda * C_BAL over all k partitions at once.
                    p = choose(
                        replicas[u], replicas[v], theta_u, sizes, capacity,
                        lam, HDRF_EPSILON,
                    )
                    sizes[p] += 1.0
                    replicas[u, p] = True
                    replicas[v, p] = True
                    assignments[idx] = p
                    idx += 1
            cost.edges_streamed += m
            cost.score_evaluations += m * k

        state.sizes[:] = sizes.astype(np.int64)
        return PartitionResult(
            partitioner=self.name,
            k=k,
            alpha=alpha,
            n_vertices=n,
            n_edges=m,
            assignments=assignments,
            state=state,
            timer=timer,
            cost=cost,
            state_bytes=measured_state_bytes(state, partial_deg),
        )
