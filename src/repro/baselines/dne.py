"""DNE: distributed neighborhood expansion (Hanai et al., VLDB'19).

DNE parallelizes NE: every partition grows *concurrently*, each expansion
greedily claiming boundary vertices and edges from a shared pool.  The
paper runs the authors' multi-process implementation; we simulate the same
algorithm in one process by interleaving the k expansions round-robin in
small quanta, which reproduces DNE's characteristic quality loss relative
to sequential NE (concurrent fronts collide and fragment clusters) and its
speed advantage, which we expose through a parallel wall-clock model
(``n_workers``-way division of the expansion work, as in the paper's
machine with ceil(64 / k) threads per process).

An ``expansion_ratio`` caps how many edges one expansion may claim per
quantum relative to the balanced share — the equivalent of DNE's expansion
ratio parameter (paper appendix: 0.1).
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.ne import ExpansionState
from repro.errors import ConfigurationError
from repro.metrics.memory import measured_state_bytes
from repro.metrics.runtime import CostCounter, PhaseTimer
from repro.partitioning.base import EdgePartitioner, PartitionResult
from repro.partitioning.state import PartitionState


class DistributedNE(EdgePartitioner):
    """Round-robin simulated parallel NE.

    Parameters
    ----------
    expansion_ratio:
        Fraction of the balanced per-partition share one expansion may take
        per round (paper: 0.1).
    n_workers:
        Parallelism for the wall-clock model; recorded in ``extras`` as
        ``parallel_wall_s = wall_s / n_workers``.
    seed:
        Determinism seed.
    """

    name = "DNE"

    def __init__(
        self, expansion_ratio: float = 0.1, n_workers: int = 8, seed: int = 0
    ) -> None:
        if expansion_ratio <= 0 or expansion_ratio > 1:
            raise ConfigurationError(
                f"expansion_ratio must be in (0, 1], got {expansion_ratio}"
            )
        if n_workers < 1:
            raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
        self.expansion_ratio = float(expansion_ratio)
        self.n_workers = int(n_workers)
        self.seed = int(seed)

    def _run(self, stream, k: int, alpha: float) -> PartitionResult:
        timer = PhaseTimer()
        cost = CostCounter()
        with timer.phase("load"):
            graph = stream.materialize()
            cost.edges_streamed += graph.n_edges
        n = graph.n_vertices
        m = graph.n_edges
        state = PartitionState(n, k, m, alpha)
        assignments = np.full(m, -1, dtype=np.int32)
        sizes = np.zeros(k, dtype=np.int64)
        capacity = state.capacity
        share = min(capacity, math.ceil(m / k))
        quantum = max(1, int(self.expansion_ratio * share))

        def assign_cb(e: int, p: int) -> None:
            assignments[e] = p
            sizes[p] += 1

        with timer.phase("partitioning"):
            exp = ExpansionState(graph.edges, n, seed=self.seed)
            # Interleave the k expansions round-robin until the pool drains.
            active = True
            while active and exp.has_unassigned():
                active = False
                for p in range(k):
                    room = min(quantum, share - int(sizes[p]))
                    if room <= 0:
                        continue
                    got = exp.expand_partition(p, room, assign_cb)
                    if got:
                        active = True
            # Spill anything still unassigned (every partition at its
            # balanced share) to the least-loaded open partitions.
            huge = np.iinfo(np.int64).max
            for e in exp.unassigned_edge_ids().tolist():
                p = int(np.argmin(np.where(sizes < capacity, sizes, huge)))
                assign_cb(e, p)
            cost.heap_operations += exp.heap_ops
            cost.expansion_scans += exp.scan_count

        state.sizes[:] = sizes
        edges = graph.edges
        state.replicas[edges[:, 0], assignments] = True
        state.replicas[edges[:, 1], assignments] = True
        return PartitionResult(
            partitioner=self.name,
            k=k,
            alpha=alpha,
            n_vertices=n,
            n_edges=m,
            assignments=assignments,
            state=state,
            timer=timer,
            cost=cost,
            state_bytes=measured_state_bytes(state, graph.edges),
            extras={
                "n_workers": self.n_workers,
                "parallel_wall_s": timer.total() / self.n_workers,
            },
        )
