"""Greedy streaming edge partitioning (PowerGraph, OSDI'12).

The original stateful streaming heuristic.  Case analysis per edge
``(u, v)``:

1. both endpoints already replicated on a common partition → assign to the
   least-loaded common partition;
2. both replicated but on disjoint partition sets → candidate set is the
   union of their partitions;
3. exactly one endpoint replicated → its partitions are the candidates;
4. neither replicated → all partitions are candidates.

Among the candidates that are below the hard cap, the least-loaded wins
(ties broken by lowest partition id, deterministically).  Replication state
makes this O(|E| * k) like HDRF, but without degree weighting it loses to
HDRF on power-law graphs — which is why the paper drops it from the main
comparison ("outperformed by our chosen baselines").
"""

from __future__ import annotations

import numpy as np

from repro.metrics.memory import measured_state_bytes
from repro.metrics.runtime import CostCounter, PhaseTimer
from repro.partitioning.base import EdgePartitioner, PartitionResult
from repro.partitioning.state import PartitionState


class Greedy(EdgePartitioner):
    """PowerGraph's greedy vertex-cut heuristic."""

    name = "Greedy"

    def _run(self, stream, k: int, alpha: float) -> PartitionResult:
        timer = PhaseTimer()
        cost = CostCounter()
        n = self._resolve_n_vertices(stream)
        m = stream.n_edges
        state = PartitionState(n, k, m, alpha)
        assignments = np.empty(m, dtype=np.int32)
        replicas = state.replicas
        sizes = np.zeros(k, dtype=np.int64)
        capacity = state.capacity
        huge = np.iinfo(np.int64).max

        with timer.phase("partitioning"):
            idx = 0
            for chunk in stream.chunks():
                for u, v in chunk.tolist():
                    ru = replicas[u]
                    rv = replicas[v]
                    common = ru & rv
                    if common.any():
                        candidates = common
                    else:
                        union = ru | rv
                        candidates = union if union.any() else None
                    open_mask = sizes < capacity
                    if candidates is not None:
                        candidates = candidates & open_mask
                        if not candidates.any():
                            candidates = open_mask
                    else:
                        candidates = open_mask
                    masked = np.where(candidates, sizes, huge)
                    p = int(np.argmin(masked))
                    sizes[p] += 1
                    replicas[u, p] = True
                    replicas[v, p] = True
                    assignments[idx] = p
                    idx += 1
            cost.edges_streamed += m
            cost.score_evaluations += m * k

        state.sizes[:] = sizes
        return PartitionResult(
            partitioner=self.name,
            k=k,
            alpha=alpha,
            n_vertices=n,
            n_edges=m,
            assignments=assignments,
            state=state,
            timer=timer,
            cost=cost,
            state_bytes=measured_state_bytes(state),
        )
