"""Baseline partitioners (the paper's comparison systems, re-implemented).

Streaming:

- :class:`~repro.baselines.hashing.DBH` — degree-based hashing (stateless).
- :class:`~repro.baselines.hashing.Grid` — grid-constrained hashing
  (stateless).
- :class:`~repro.baselines.hashing.RandomHash` — plain edge hashing.
- :class:`~repro.baselines.hdrf.HDRF` — stateful streaming with the
  high-degree-replicated-first score, O(|E| * k).
- :class:`~repro.baselines.greedy.Greedy` — PowerGraph's greedy heuristic.
- :class:`~repro.baselines.adwise.Adwise` — buffered/window-based streaming.

In-memory / hybrid:

- :class:`~repro.baselines.ne.NeighborhoodExpansion` — NE (KDD'17).
- :class:`~repro.baselines.sne.StreamingNE` — SNE, bounded-cache NE.
- :class:`~repro.baselines.dne.DistributedNE` — parallel NE with a
  multi-worker wall-clock model.
- :class:`~repro.baselines.metis_like.MetisLike` — multilevel
  coarsen/partition/refine vertex partitioner with derived edge partition.
- :class:`~repro.baselines.hep.HEP` — hybrid edge partitioner with the
  tunable in-memory fraction ``tau``.
"""

from repro.baselines.hashing import DBH, Grid, RandomHash
from repro.baselines.hdrf import HDRF
from repro.baselines.greedy import Greedy
from repro.baselines.adwise import Adwise
from repro.baselines.ne import NeighborhoodExpansion
from repro.baselines.sne import StreamingNE
from repro.baselines.dne import DistributedNE
from repro.baselines.metis_like import MetisLike
from repro.baselines.hep import HEP

__all__ = [
    "DBH",
    "Grid",
    "RandomHash",
    "HDRF",
    "Greedy",
    "Adwise",
    "NeighborhoodExpansion",
    "StreamingNE",
    "DistributedNE",
    "MetisLike",
    "HEP",
]
