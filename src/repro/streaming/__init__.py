"""Streaming substrate: out-of-core edge streams and I/O accounting.

Out-of-core partitioners never materialize the edge set; they ingest the
graph edge-by-edge, possibly over several passes (degree pass, clustering
pass(es), pre-partitioning pass, partitioning pass).  This package provides
the stream abstraction those passes consume:

- :class:`~repro.streaming.stream.EdgeStream` — the protocol (chunked numpy
  iteration plus per-edge iteration).
- :class:`~repro.streaming.stream.InMemoryEdgeStream` — stream over an
  in-memory graph (the "page cache" scenario of Section V-F).
- :class:`~repro.streaming.stream.FileEdgeStream` — stream over a binary
  edge-list file, optionally charged against a simulated storage device.
- :class:`~repro.streaming.iostats.IOStats` — bytes/edges/passes accounting.
"""

from repro.streaming.iostats import IOStats
from repro.streaming.stream import (
    DEFAULT_CHUNK_SIZE,
    EdgeStream,
    FileEdgeStream,
    FileStreamSpec,
    InMemoryEdgeStream,
    SharedArrayStreamSpec,
    StreamSpec,
    auto_chunk_size,
    make_stream_spec,
)
from repro.streaming.writer import (
    PartitionWriter,
    load_partitioned,
    write_partitioned,
)
from repro.streaming.order import (
    bfs_like_order,
    degree_sorted_order,
    shuffled_copy,
)

__all__ = [
    "IOStats",
    "EdgeStream",
    "InMemoryEdgeStream",
    "FileEdgeStream",
    "DEFAULT_CHUNK_SIZE",
    "StreamSpec",
    "FileStreamSpec",
    "SharedArrayStreamSpec",
    "make_stream_spec",
    "auto_chunk_size",
    "shuffled_copy",
    "degree_sorted_order",
    "bfs_like_order",
    "PartitionWriter",
    "load_partitioned",
    "write_partitioned",
]
