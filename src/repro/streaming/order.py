"""Stream-order utilities.

Streaming partitioners can be sensitive to the order in which edges arrive
(stateful ones are; stateless ones must not be — we test both).  These
helpers derive re-ordered copies of a graph deterministically.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graph.graph import Graph


def shuffled_copy(graph: Graph, seed: int = 0) -> Graph:
    """Uniformly random permutation of the edge stream (deterministic seed)."""
    return graph.shuffled(seed)


def degree_sorted_order(graph: Graph, descending: bool = False) -> Graph:
    """Order edges by the max endpoint degree (adversarial for HDRF).

    Ascending order delays information about hubs until late in the stream;
    descending order front-loads it.
    """
    deg = graph.degrees
    key = np.maximum(deg[graph.edges[:, 0]], deg[graph.edges[:, 1]])
    order = np.argsort(-key if descending else key, kind="stable")
    return Graph(graph.edges[order].copy(), graph.n_vertices)


def bfs_like_order(graph: Graph, source: int = 0) -> Graph:
    """Order edges by BFS discovery of their earlier endpoint.

    Approximates the locality-friendly orders that web-graph crawls exhibit
    naturally; used to probe order sensitivity of the clustering phase.
    """
    n = graph.n_vertices
    if n == 0:
        return Graph(graph.edges.copy(), 0)
    indptr, indices = graph.csr()
    rank = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
    counter = 0
    for start in list(range(source, n)) + list(range(0, source)):
        if rank[start] != np.iinfo(np.int64).max:
            continue
        queue: deque[int] = deque([start])
        rank[start] = counter
        counter += 1
        while queue:
            u = queue.popleft()
            for w in indices[indptr[u] : indptr[u + 1]]:
                w = int(w)
                if rank[w] == np.iinfo(np.int64).max:
                    rank[w] = counter
                    counter += 1
                    queue.append(w)
    key = np.minimum(rank[graph.edges[:, 0]], rank[graph.edges[:, 1]])
    order = np.argsort(key, kind="stable")
    return Graph(graph.edges[order].copy(), n)
