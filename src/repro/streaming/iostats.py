"""I/O accounting for edge streams.

Every stream keeps an :class:`IOStats` that records how much data flowed and
how much *simulated* storage time it cost.  The Table V experiment (external
storage) and the Figure 5 phase breakdown are built on these counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class IOStats:
    """Mutable I/O counters for one stream.

    Attributes
    ----------
    bytes_read:
        Total bytes delivered by the stream (binary-edge-list equivalent:
        8 bytes per edge even for in-memory streams, so that the storage
        model sees identical byte counts regardless of backing).
    edges_read:
        Total edges delivered, across all passes.
    passes:
        Completed full passes through the stream.
    simulated_read_seconds:
        Time charged by the storage-device model for the reads.
    """

    bytes_read: int = 0
    edges_read: int = 0
    passes: int = 0
    simulated_read_seconds: float = 0.0
    _notes: dict = field(default_factory=dict, repr=False)

    def record_chunk(self, n_edges: int, n_bytes: int, seconds: float = 0.0) -> None:
        """Account one delivered chunk."""
        self.edges_read += int(n_edges)
        self.bytes_read += int(n_bytes)
        self.simulated_read_seconds += float(seconds)

    def record_pass(self) -> None:
        """Account one completed full pass over the stream."""
        self.passes += 1

    def merged_with(self, other: "IOStats") -> "IOStats":
        """Return a new IOStats with the sums of both operands."""
        return IOStats(
            bytes_read=self.bytes_read + other.bytes_read,
            edges_read=self.edges_read + other.edges_read,
            passes=self.passes + other.passes,
            simulated_read_seconds=(
                self.simulated_read_seconds + other.simulated_read_seconds
            ),
        )

    def reset(self) -> None:
        """Zero all counters (used between experiment repetitions)."""
        self.bytes_read = 0
        self.edges_read = 0
        self.passes = 0
        self.simulated_read_seconds = 0.0
