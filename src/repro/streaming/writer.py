"""Partitioned-output writer and loader.

The paper's deployment model (appendix): "2PS-L ... reads the graph data
as a file from a given storage, partitions the edges, and writes back the
partitioned graph data to storage.  This partitioned graph data can then
be ingested by a data loader into the data processing framework of
choice."

:class:`PartitionWriter` streams (edge, partition) pairs into one binary
edge-list file per partition plus a JSON manifest;
:func:`load_partitioned` reads such a directory back into per-partition
:class:`~repro.graph.graph.Graph` objects (or a single merged graph with
assignments, for verification).

:class:`EdgeListWriter` is the input-side twin: an append-only streaming
writer of one binary ``<u4`` edge-list file (the
:func:`repro.graph.formats.write_binary_edge_list` format), consumed chunk
by chunk so external-memory generators can emit graphs far larger than RAM
(see :func:`repro.graph.generators.rmat_edge_file`).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import FormatError, PartitioningError
from repro.graph.formats import BYTES_PER_EDGE
from repro.graph.graph import Graph

MANIFEST_NAME = "manifest.json"

#: Largest vertex id a ``<u4`` edge record can carry.
MAX_U4_VERTEX = 2**32 - 1


class EdgeListWriter:
    """Append-only streaming writer of one binary ``<u4`` edge-list file.

    Peak memory is one caller-supplied chunk: each :meth:`write_chunk`
    validates, casts, and appends, so a generator looping over bounded
    batches never materializes the full edge array.  Use as a context
    manager; :attr:`n_edges` counts everything written so far.

    Raises
    ------
    FormatError
        On a non-``(c, 2)`` chunk or vertex ids outside ``[0, 2**32)``
        (``<u4`` would silently wrap them).
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._fh = open(self.path, "wb")
        self.n_edges = 0
        self._closed = False

    def write_chunk(self, edges) -> int:
        """Append a ``(c, 2)`` chunk of edges; returns edges written."""
        arr = np.asarray(edges)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise FormatError(
                f"edge chunk must be (c, 2), got shape {arr.shape}"
            )
        if arr.shape[0] == 0:
            return 0
        if int(arr.min()) < 0 or int(arr.max()) > MAX_U4_VERTEX:
            raise FormatError(
                "edge chunk has vertex ids outside the u4 range [0, 2**32)"
            )
        flat = np.ascontiguousarray(arr, dtype="<u4").reshape(-1)
        self._fh.write(flat.tobytes())
        self.n_edges += int(arr.shape[0])
        return int(arr.shape[0])

    def close(self) -> None:
        if not self._closed:
            self._fh.close()
            self._closed = True

    def __enter__(self) -> "EdgeListWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class PartitionWriter:
    """Streams assigned edges into one file per partition.

    Parameters
    ----------
    directory:
        Output directory (created if missing).
    k:
        Number of partitions.
    n_vertices:
        Recorded in the manifest for loaders.
    buffer_edges:
        Edges buffered per partition before a flush (out-of-core friendly).

    Use as a context manager; the manifest is written on close.
    """

    def __init__(
        self,
        directory,
        k: int,
        n_vertices: int | None = None,
        buffer_edges: int = 8192,
    ) -> None:
        if k < 1:
            raise PartitioningError(f"k must be >= 1, got {k}")
        if buffer_edges < 1:
            raise PartitioningError("buffer_edges must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.k = int(k)
        self.n_vertices = n_vertices
        self.buffer_edges = int(buffer_edges)
        self._buffers: list[list[tuple[int, int]]] = [[] for _ in range(k)]
        self._counts = [0] * k
        self._files = [
            open(self.directory / f"partition_{p:05d}.bin", "wb")
            for p in range(k)
        ]
        self._closed = False

    # ------------------------------------------------------------------
    def write(self, u: int, v: int, p: int) -> None:
        """Append one edge to partition ``p``."""
        if not 0 <= p < self.k:
            raise PartitioningError(f"partition {p} out of range for k={self.k}")
        buf = self._buffers[p]
        buf.append((u, v))
        self._counts[p] += 1
        if len(buf) >= self.buffer_edges:
            self._flush(p)

    def write_result(self, edges: np.ndarray, assignments: np.ndarray) -> None:
        """Write a whole (edges, assignments) pair, chunked per partition."""
        edges = np.asarray(edges)
        assignments = np.asarray(assignments)
        if edges.shape[0] != assignments.shape[0]:
            raise PartitioningError("edges/assignments length mismatch")
        for p in range(self.k):
            chunk = edges[assignments == p]
            if chunk.size:
                flat = np.ascontiguousarray(chunk, dtype="<u4").reshape(-1)
                self._files[p].write(flat.tobytes())
                self._counts[p] += chunk.shape[0]

    def _flush(self, p: int) -> None:
        buf = self._buffers[p]
        if buf:
            flat = np.asarray(buf, dtype="<u4").reshape(-1)
            self._files[p].write(flat.tobytes())
            buf.clear()

    def close(self) -> None:
        """Flush everything and write the manifest."""
        if self._closed:
            return
        for p in range(self.k):
            self._flush(p)
            self._files[p].close()
        manifest = {
            "format": "repro-partitioned-v1",
            "k": self.k,
            "n_vertices": self.n_vertices,
            "edge_counts": self._counts,
            "files": [f"partition_{p:05d}.bin" for p in range(self.k)],
        }
        (self.directory / MANIFEST_NAME).write_text(json.dumps(manifest, indent=2))
        self._closed = True

    def abort(self) -> None:
        """Close the partition files *without* writing a manifest.

        The error path of the context manager: a directory with partition
        files but no manifest makes :func:`load_partitioned` fail loudly,
        instead of a complete-looking manifest silently blessing partition
        files that were truncated mid-write.  Idempotent; a writer that
        was aborted stays closed (a later :meth:`close` will not resurrect
        it and write a manifest over the partial files).
        """
        if self._closed:
            return
        for fh in self._files:
            fh.close()
        self._closed = True

    def __enter__(self) -> "PartitionWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Only a clean exit earns a manifest: ``close()`` after a raised
        # with-body would stamp a valid-looking manifest onto partition
        # files whose tail (the unflushed buffers, or edges the body never
        # got to write) is missing, and load_partitioned would then load
        # truncated data without complaint.
        if exc_type is None:
            self.close()
        else:
            self.abort()


def load_partitioned(directory) -> tuple[list[Graph], dict]:
    """Load a partitioned directory back into per-partition graphs.

    Returns ``(graphs, manifest)``; graph ``p`` holds partition ``p``'s
    edges in their written order.

    Raises
    ------
    FormatError
        On missing/corrupt manifest or truncated partition files.
    """
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        raise FormatError(f"no manifest at {manifest_path}")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("format") != "repro-partitioned-v1":
        raise FormatError(f"unknown manifest format {manifest.get('format')!r}")
    n_vertices = manifest.get("n_vertices")
    graphs = []
    for p, name in enumerate(manifest["files"]):
        data = (directory / name).read_bytes()
        if len(data) % BYTES_PER_EDGE:
            raise FormatError(f"{name}: truncated edge record")
        edges = (
            np.frombuffer(data, dtype="<u4").reshape(-1, 2).astype(np.int64)
        )
        if edges.shape[0] != manifest["edge_counts"][p]:
            raise FormatError(
                f"{name}: expected {manifest['edge_counts'][p]} edges, "
                f"found {edges.shape[0]}"
            )
        graphs.append(Graph(edges, n_vertices))
    return graphs, manifest


def write_partitioned(directory, edges, assignments, k, n_vertices=None) -> dict:
    """One-shot convenience wrapper around :class:`PartitionWriter`."""
    with PartitionWriter(directory, k, n_vertices=n_vertices) as writer:
        writer.write_result(np.asarray(edges), np.asarray(assignments))
    return json.loads((Path(directory) / MANIFEST_NAME).read_text())
