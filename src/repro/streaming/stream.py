"""Edge-stream abstractions.

A stream delivers the graph as consecutive numpy chunks of shape ``(c, 2)``.
Streams are *re-iterable*: every call to :meth:`EdgeStream.chunks` starts a
fresh pass from the beginning, which is exactly the re-streaming model of the
paper (degree pass, clustering pass(es), two partitioning passes).

Two implementations are provided:

- :class:`InMemoryEdgeStream` slices a materialized edge array.  This models
  the paper's "page cache" runs, where the OS has the file cached and I/O is
  effectively free.
- :class:`FileEdgeStream` reads a binary edge-list file in chunks without
  ever holding the full edge set in memory — the true out-of-core path.  It
  can charge a simulated :class:`~repro.storage.devices.StorageDevice` for
  every byte so the Table V experiment can compare page cache vs SSD vs HDD.

Prefetching and I/O accounting
------------------------------
``FileEdgeStream(..., prefetch=True)`` double-buffers file reads: a
background thread reads and decodes chunk ``i+1`` while the kernels consume
chunk ``i`` (up to :data:`PREFETCH_DEPTH` chunks in flight), overlapping
real file I/O with compute.  The accounting contract is unchanged by
design: **device charging and ``IOStats`` recording happen on the consumer
side, immediately before each chunk is yielded**, so a prefetching stream
produces bit-identical stats and simulated-clock charges to a synchronous
one for any consumed prefix — only the chunk *contents* travel through the
reader thread.  The equivalence (same chunks, same stats, reader errors
propagate) is pinned in ``tests/test_streams.py`` and end-to-end by the
differential harness's out-of-core tier.
"""

from __future__ import annotations

import os
import queue
import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import StreamError
from repro.graph.formats import BYTES_PER_EDGE
from repro.graph.graph import Graph
from repro.streaming.iostats import IOStats

#: Default edges per chunk; large enough to amortize numpy overhead, small
#: enough that a chunk is negligible against the memory budget.
DEFAULT_CHUNK_SIZE = 65_536

#: Bounds and model constants of :func:`auto_chunk_size`.  The budget is
#: the working set a chunk may occupy (sized for a shared L2/L3 slice);
#: the per-edge constant covers the fixed gather arrays every vectorized
#: pass materializes (endpoints, clusters, partitions, scores, masks).
AUTO_CHUNK_MIN = 4_096
AUTO_CHUNK_MAX = 262_144
AUTO_CHUNK_CACHE_BUDGET = 8 * 1024 * 1024
AUTO_CHUNK_EDGE_BYTES = 96

#: Chunks a prefetching :class:`FileEdgeStream` may hold in flight: the one
#: being consumed plus one being read ahead (double buffering).
PREFETCH_DEPTH = 2


def auto_chunk_size(n_vertices: int | None, k: int) -> int:
    """Pick a streaming chunk size from ``|V|``, ``k`` and a cache budget.

    The model: a chunk of ``c`` edges makes the vectorized kernels touch
    roughly ``c * (AUTO_CHUNK_EDGE_BYTES + 8 * k)`` bytes (fixed gather
    arrays plus the k-wide score blocks of the HDRF-style passes), so the
    chunk is sized to keep that inside :data:`AUTO_CHUNK_CACHE_BUDGET` —
    larger ``k`` means smaller chunks.  On small graphs the chunk is
    additionally capped at ``4 * |V|``: past that, a chunk revisits the
    same vertices so often that conflict-free sub-batching degrades while
    vectorization gains are already saturated.  The result is always
    clamped to ``[AUTO_CHUNK_MIN, AUTO_CHUNK_MAX]``.

    ``n_vertices=None`` (stream without a vertex-count hint) skips the
    ``|V|`` cap and sizes purely from the budget.  ``k`` is coerced to at
    least 1 (degenerate requests still size sanely), and a ``k`` so large
    that the budget division underflows to 0 lands on
    :data:`AUTO_CHUNK_MIN` — the clamp, not the model, is the floor.
    """
    k = max(int(k), 1)
    per_edge = AUTO_CHUNK_EDGE_BYTES + 8 * k
    chunk = AUTO_CHUNK_CACHE_BUDGET // per_edge
    # ``is not None``, not truthiness: ``n_vertices=0`` is a (degenerate)
    # hint and must take the |V| cap, not behave like the no-hint case.
    if n_vertices is not None:
        chunk = min(chunk, 4 * int(n_vertices))
    return int(min(max(chunk, AUTO_CHUNK_MIN), AUTO_CHUNK_MAX))


class EdgeStream(ABC):
    """Protocol for a re-iterable out-of-core edge stream.

    Every stream carries a mutable :attr:`default_chunk_size` so callers
    that own the stream (e.g. ``EdgePartitioner.partition(...,
    chunk_size=...)``) can tune the chunk granularity of *every* pass
    without threading a parameter through each ``chunks()`` call site.
    """

    def __init__(self) -> None:
        self.stats = IOStats()
        #: Chunk size used when ``chunks()`` is called without an explicit
        #: override; per-run tunable (see class docstring).
        self.default_chunk_size = DEFAULT_CHUNK_SIZE

    def _resolve_chunk_size(self, chunk_size: int | None) -> int:
        resolved = (
            self.default_chunk_size if chunk_size is None else chunk_size
        )
        if resolved <= 0:
            raise StreamError(f"chunk_size must be positive, got {resolved}")
        return int(resolved)

    # ------------------------------------------------------------------
    @property
    @abstractmethod
    def n_edges(self) -> int:
        """Total number of edges in one full pass."""

    @property
    @abstractmethod
    def n_vertices(self) -> int | None:
        """Vertex count if known, else ``None`` (derive with a degree pass)."""

    @abstractmethod
    def chunks(self, chunk_size: int | None = None) -> Iterator[np.ndarray]:
        """Yield ``(c, 2)`` int64 chunks covering one full pass, in order.

        ``chunk_size=None`` (the default) uses :attr:`default_chunk_size`.
        """

    # ------------------------------------------------------------------
    def window(
        self, start: int, stop: int, chunk_size: int | None = None
    ) -> Iterator[np.ndarray]:
        """Yield ``(c, 2)`` chunks covering stream positions ``[start, stop)``.

        The shard-window iterator behind the parallel partitioner: each
        worker reads only its contiguous slice of the stream order, so an
        out-of-core stream never needs to materialize the full edge array.
        Several windows of the same stream may be consumed concurrently
        (interleaved), each holding at most one chunk in memory.

        This base implementation replays :meth:`chunks` and slices — one
        full (lazy) pass per window.  Streams with random access override
        it: :class:`InMemoryEdgeStream` slices the edge array directly,
        :class:`FileEdgeStream` seeks to the window's byte offset.

        Raises
        ------
        StreamError
            If ``[start, stop)`` is not within ``[0, n_edges]``.
        """
        start, stop = self._validate_window(start, stop)
        return self._window_iter(start, stop, chunk_size)

    def _validate_window(self, start: int, stop: int) -> tuple[int, int]:
        start, stop = int(start), int(stop)
        if not 0 <= start <= stop <= self.n_edges:
            raise StreamError(
                f"invalid window [{start}, {stop}) for a stream of "
                f"{self.n_edges} edges"
            )
        return start, stop

    def _window_iter(
        self, start: int, stop: int, chunk_size: int | None
    ) -> Iterator[np.ndarray]:
        if start == stop:
            return
        pos = 0
        for chunk in self.chunks(chunk_size):
            c = chunk.shape[0]
            if pos + c > start:
                yield chunk[max(start - pos, 0) : min(stop - pos, c)]
            pos += c
            if pos >= stop:
                return

    def edges(self) -> Iterator[tuple[int, int]]:
        """Per-edge iteration (convenience wrapper over :meth:`chunks`)."""
        for chunk in self.chunks():
            for u, v in chunk:
                yield int(u), int(v)

    def materialize(self) -> Graph:
        """Collect the whole stream into an in-memory :class:`Graph`.

        Only metrics/tests use this; partitioners must not.
        """
        parts = [chunk.copy() for chunk in self.chunks()]
        if parts:
            edges = np.concatenate(parts)
        else:
            edges = np.empty((0, 2), dtype=np.int64)
        return Graph(edges, self.n_vertices)


class InMemoryEdgeStream(EdgeStream):
    """Stream over an in-memory edge array (page-cache scenario).

    Parameters
    ----------
    source:
        A :class:`Graph` or an ``(m, 2)`` array.
    n_vertices:
        Override for the vertex count (required when passing a bare array
        whose max id undercounts the vertex set).
    """

    def __init__(self, source, n_vertices: int | None = None) -> None:
        super().__init__()
        if isinstance(source, Graph):
            self._edges = source.edges
            self._n = source.n_vertices if n_vertices is None else n_vertices
        else:
            arr = np.asarray(source, dtype=np.int64)
            if arr.size == 0:
                arr = arr.reshape(0, 2)
            if arr.ndim != 2 or arr.shape[1] != 2:
                raise StreamError(f"edge array must be (m, 2), got {arr.shape}")
            self._edges = arr
            self._n = n_vertices

    @property
    def n_edges(self) -> int:
        return int(self._edges.shape[0])

    @property
    def n_vertices(self) -> int | None:
        return self._n

    def chunks(self, chunk_size: int | None = None) -> Iterator[np.ndarray]:
        yield from self._window_iter(0, self.n_edges, chunk_size)
        self.stats.record_pass()

    def _window_iter(
        self, start: int, stop: int, chunk_size: int | None
    ) -> Iterator[np.ndarray]:
        chunk_size = self._resolve_chunk_size(chunk_size)
        for lo in range(start, stop, chunk_size):
            chunk = self._edges[lo : min(lo + chunk_size, stop)]
            self.stats.record_chunk(chunk.shape[0], chunk.shape[0] * BYTES_PER_EDGE)
            yield chunk


class FileEdgeStream(EdgeStream):
    """Out-of-core stream over a binary 32-bit edge-list file.

    Parameters
    ----------
    path:
        File written by :func:`repro.graph.formats.write_binary_edge_list`.
    n_vertices:
        Vertex-count hint (optional).
    device:
        Optional :class:`~repro.storage.devices.StorageDevice`; when given,
        every read is charged simulated time through the device (and its
        page-cache model, if any).
    prefetch:
        When True, every pass/window double-buffers through a background
        reader thread (see the module docstring).  A pure wall-clock knob:
        chunks, stats, and device charges are identical to a synchronous
        stream.

    Raises
    ------
    StreamError
        If the file does not exist or has a truncated record.
    """

    def __init__(
        self,
        path,
        n_vertices: int | None = None,
        device=None,
        prefetch: bool = False,
    ) -> None:
        super().__init__()
        self._path = os.fspath(path)
        if not os.path.exists(self._path):
            raise StreamError(f"no such edge-list file: {self._path}")
        size = os.path.getsize(self._path)
        if size % BYTES_PER_EDGE:
            raise StreamError(
                f"{self._path}: size {size} is not a multiple of {BYTES_PER_EDGE}"
            )
        self._m = size // BYTES_PER_EDGE
        self._n = n_vertices
        self._device = device
        #: Whether passes/windows read ahead through a background thread.
        self.prefetch = bool(prefetch)

    @property
    def path(self) -> str:
        return self._path

    @property
    def n_edges(self) -> int:
        return int(self._m)

    @property
    def n_vertices(self) -> int | None:
        return self._n

    def chunks(self, chunk_size: int | None = None) -> Iterator[np.ndarray]:
        yield from self._window_iter(0, self.n_edges, chunk_size)
        self.stats.record_pass()

    def _window_iter(
        self, start: int, stop: int, chunk_size: int | None
    ) -> Iterator[np.ndarray]:
        chunk_size = self._resolve_chunk_size(chunk_size)
        if self.prefetch and stop > start:
            yield from self._prefetch_iter(start, stop, chunk_size)
            return
        bytes_per_chunk = chunk_size * BYTES_PER_EDGE
        with open(self._path, "rb") as fh:
            fh.seek(start * BYTES_PER_EDGE)
            left = (stop - start) * BYTES_PER_EDGE
            while left > 0:
                data = fh.read(min(bytes_per_chunk, left))
                if not data or len(data) % BYTES_PER_EDGE:
                    raise StreamError(f"{self._path}: truncated edge record")
                left -= len(data)
                flat = np.frombuffer(data, dtype="<u4")
                chunk = flat.reshape(-1, 2).astype(np.int64)
                seconds = 0.0
                if self._device is not None:
                    seconds = self._device.charge_read(self._path, len(data))
                self.stats.record_chunk(chunk.shape[0], len(data), seconds)
                yield chunk

    def _prefetch_iter(
        self, start: int, stop: int, chunk_size: int
    ) -> Iterator[np.ndarray]:
        """Double-buffered window iterator (see the module docstring).

        The reader thread reads and decodes up to :data:`PREFETCH_DEPTH`
        chunks ahead through a bounded queue; the consumer charges the
        device and records stats right before yielding, so accounting
        order is identical to the synchronous path.  The reader never
        blocks forever: every queue put polls the stop event, and the
        consumer drains the queue on exit (including early generator
        close) before joining the thread.
        """
        bytes_per_chunk = chunk_size * BYTES_PER_EDGE
        out: queue.Queue = queue.Queue(maxsize=PREFETCH_DEPTH)
        stop_event = threading.Event()

        def put(item) -> bool:
            while not stop_event.is_set():
                try:
                    out.put(item, timeout=0.05)
                    return True
                except queue.Full:
                    continue
            return False

        def read_ahead() -> None:
            try:
                with open(self._path, "rb") as fh:
                    fh.seek(start * BYTES_PER_EDGE)
                    left = (stop - start) * BYTES_PER_EDGE
                    while left > 0:
                        data = fh.read(min(bytes_per_chunk, left))
                        if not data or len(data) % BYTES_PER_EDGE:
                            raise StreamError(
                                f"{self._path}: truncated edge record"
                            )
                        left -= len(data)
                        chunk = (
                            np.frombuffer(data, dtype="<u4")
                            .reshape(-1, 2)
                            .astype(np.int64)
                        )
                        if not put(("chunk", chunk, len(data))):
                            return
                put(("done", None, 0))
            except BaseException as exc:  # propagated to the consumer
                put(("error", exc, 0))

        reader = threading.Thread(
            target=read_ahead, name="repro-prefetch", daemon=True
        )
        reader.start()
        try:
            while True:
                kind, payload, nbytes = out.get()
                if kind == "error":
                    raise payload
                if kind == "done":
                    return
                seconds = 0.0
                if self._device is not None:
                    seconds = self._device.charge_read(self._path, nbytes)
                self.stats.record_chunk(payload.shape[0], nbytes, seconds)
                yield payload
        finally:
            stop_event.set()
            while True:
                try:
                    out.get_nowait()
                except queue.Empty:
                    break
            reader.join(timeout=10.0)


class StreamSpec(ABC):
    """Picklable recipe for reopening an :class:`EdgeStream` elsewhere.

    The process-runner workers cannot receive a live stream (file handles
    and big arrays don't ship well over pickles), so the parent builds a
    spec with :func:`make_stream_spec`, sends it to each worker once, and
    every worker calls :meth:`open` to get its own stream over the same
    edges — then reads only its shard windows out of it.
    """

    @abstractmethod
    def open(self) -> EdgeStream:
        """Open a fresh stream over the spec'd edges (one per process)."""


@dataclass(frozen=True)
class FileStreamSpec(StreamSpec):
    """Reopen a :class:`FileEdgeStream` by path — stays out-of-core.

    A simulated :class:`~repro.storage.devices.StorageDevice` attached to
    the original stream is *not* carried over: device charging models the
    parent's sequential I/O, which worker-side shard reads do not share.
    """

    path: str
    n_vertices: int | None = None
    chunk_size: int = DEFAULT_CHUNK_SIZE
    #: Carried over so process-runner workers read ahead like the parent.
    prefetch: bool = False

    def open(self) -> EdgeStream:
        stream = FileEdgeStream(
            self.path, n_vertices=self.n_vertices, prefetch=self.prefetch
        )
        stream.default_chunk_size = self.chunk_size
        return stream


@dataclass
class SharedArrayStreamSpec(StreamSpec):
    """Reopen an in-memory stream over a shared-memory edge array.

    The edge array is shipped **once** through a shared segment created by
    :func:`make_stream_spec`; every :meth:`open` maps it zero-copy, so
    per-window pickling never happens.  The creator of the segment owns
    its lifecycle (close + unlink); openers keep their mapping alive for
    the lifetime of the returned stream.
    """

    shm_name: str
    n_edges: int
    n_vertices: int | None = None
    chunk_size: int = DEFAULT_CHUNK_SIZE

    def open(self) -> EdgeStream:
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=self.shm_name, create=False)
        edges = np.ndarray((self.n_edges, 2), dtype=np.int64, buffer=shm.buf)
        stream = InMemoryEdgeStream(edges, n_vertices=self.n_vertices)
        stream.default_chunk_size = self.chunk_size
        # The mapping must outlive the stream's edge view.
        stream._shm = shm
        return stream


def make_stream_spec(stream: EdgeStream):
    """Build a picklable spec for ``stream``; returns ``(spec, segment)``.

    ``segment`` is a ``multiprocessing.shared_memory.SharedMemory`` the
    caller must ``close()`` and ``unlink()`` when every opener is done, or
    ``None`` when the spec needs no shared segment (file-backed streams).
    A :class:`FileEdgeStream` maps to a :class:`FileStreamSpec`; any other
    stream is snapshotted chunk-by-chunk into one shared edge array (an
    :class:`InMemoryEdgeStream` already holds its edges, so this is the
    one unavoidable copy that lets workers read them zero-copy).
    """
    if isinstance(stream, FileEdgeStream):
        spec = FileStreamSpec(
            stream.path,
            stream.n_vertices,
            stream.default_chunk_size,
            stream.prefetch,
        )
        return spec, None
    from multiprocessing import shared_memory

    m = int(stream.n_edges)
    shm = shared_memory.SharedMemory(create=True, size=max(m * 16, 1))
    try:
        view = np.ndarray((m, 2), dtype=np.int64, buffer=shm.buf)
        pos = 0
        for chunk in stream.chunks():
            view[pos : pos + chunk.shape[0]] = chunk
            pos += chunk.shape[0]
        del view
    except BaseException:
        shm.close()
        shm.unlink()
        raise
    spec = SharedArrayStreamSpec(
        shm.name, m, stream.n_vertices, stream.default_chunk_size
    )
    return spec, shm


def spec_to_wire(spec: StreamSpec) -> dict:
    """Flatten a stream spec into a wire-encodable field mapping.

    The distributed runner ships specs inside protocol frames
    (:mod:`repro.core.wire`), which carry typed scalars rather than
    pickles — so specs cross the wire as tagged plain fields.  Inverse of
    :func:`spec_from_wire`.  Note a :class:`SharedArrayStreamSpec` only
    reopens on the host that created its segment; coordinators must send
    remote workers file-backed specs so each worker streams its own shard
    and no edge data crosses the wire.
    """
    if isinstance(spec, FileStreamSpec):
        return {
            "kind": "file",
            "path": spec.path,
            "n_vertices": spec.n_vertices,
            "chunk_size": spec.chunk_size,
            "prefetch": spec.prefetch,
        }
    if isinstance(spec, SharedArrayStreamSpec):
        return {
            "kind": "shared-array",
            "shm_name": spec.shm_name,
            "n_edges": spec.n_edges,
            "n_vertices": spec.n_vertices,
            "chunk_size": spec.chunk_size,
        }
    raise StreamError(
        f"no wire encoding for stream spec {type(spec).__name__}"
    )


def spec_from_wire(fields: dict) -> StreamSpec:
    """Rebuild a stream spec from its wire field mapping."""
    kind = fields.get("kind")
    n_vertices = fields.get("n_vertices")
    if n_vertices is not None:
        n_vertices = int(n_vertices)
    if kind == "file":
        return FileStreamSpec(
            path=str(fields["path"]),
            n_vertices=n_vertices,
            chunk_size=int(fields["chunk_size"]),
            prefetch=bool(fields["prefetch"]),
        )
    if kind == "shared-array":
        return SharedArrayStreamSpec(
            shm_name=str(fields["shm_name"]),
            n_edges=int(fields["n_edges"]),
            n_vertices=n_vertices,
            chunk_size=int(fields["chunk_size"]),
        )
    raise StreamError(f"unknown stream-spec kind {kind!r}")


def as_stream(
    source, n_vertices: int | None = None, chunk_size: int | None = None
) -> EdgeStream:
    """Coerce a Graph / array / existing stream into an :class:`EdgeStream`.

    ``chunk_size``, when given, becomes the stream's
    :attr:`~EdgeStream.default_chunk_size` (also on an already-constructed
    stream passed as ``source``).
    """
    if isinstance(source, EdgeStream):
        stream = source
    else:
        stream = InMemoryEdgeStream(source, n_vertices=n_vertices)
    if chunk_size is not None:
        if chunk_size <= 0:
            raise StreamError(f"chunk_size must be positive, got {chunk_size}")
        stream.default_chunk_size = int(chunk_size)
    return stream
