"""Vertex-partitioning quality metrics and the bridge to edge partitioning.

Vertex partitioning is judged by the *edge cut* (fraction of edges whose
endpoints land on different machines) under vertex balance.  To compare
against edge partitioning on the replication-factor axis — the Section I
motivation — a vertex partitioning induces an edge partitioning: every
edge is placed on one of its endpoints' machines, and cut edges force the
other endpoint to be replicated there.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PartitioningError


def edge_cut_fraction(edges: np.ndarray, parts: np.ndarray) -> float:
    """Fraction of edges whose endpoints are on different machines."""
    edges = np.asarray(edges)
    parts = np.asarray(parts)
    if edges.shape[0] == 0:
        return 0.0
    pu = parts[edges[:, 0]]
    pv = parts[edges[:, 1]]
    if (pu < 0).any() or (pv < 0).any():
        raise PartitioningError("edge endpoint without a machine assignment")
    return float((pu != pv).mean())


def vertex_balance(parts: np.ndarray, k: int) -> float:
    """``max_i |V_i| / (n/k)`` over assigned vertices (1.0 = perfect)."""
    parts = np.asarray(parts)
    assigned = parts[parts >= 0]
    if assigned.size == 0:
        return 1.0
    sizes = np.bincount(assigned, minlength=k)
    return float(sizes.max()) * k / assigned.size


def derived_edge_assignment(
    edges: np.ndarray, parts: np.ndarray, k: int
) -> np.ndarray:
    """Edge partitioning induced by a vertex partitioning.

    Each edge goes to the machine of its lower-id endpoint (the standard
    1D placement used by vertex-partitioned systems); cut edges therefore
    replicate their other endpoint.  The result can be fed to the regular
    replication-factor metrics for a like-for-like comparison with edge
    partitioners.
    """
    edges = np.asarray(edges)
    parts = np.asarray(parts)
    if edges.size and (parts[edges[:, 0]] < 0).any():
        raise PartitioningError("vertex without machine assignment")
    assignment = parts[np.minimum(edges[:, 0], edges[:, 1])]
    if assignment.size and assignment.max() >= k:
        raise PartitioningError("machine id out of range")
    return assignment.astype(np.int32)
