"""Streaming *vertex* partitioning — the contrast class of Section I.

The paper motivates edge partitioning by the finding (Bourse et al. [9])
that on power-law graphs vertex cuts beat edge cuts: "when the
distribution of vertex degrees in a graph is highly skewed ... edge
partitioning is more effective than vertex partitioning in finding good
cuts."  To make that comparison concrete inside this repository, this
package implements the classic streaming vertex partitioners the paper
cites:

- :class:`~repro.vertexpart.partitioners.HashVertices` — stateless hashing;
- :class:`~repro.vertexpart.partitioners.LinearDeterministicGreedy` —
  Stanton & Kliot's LDG (KDD'12, paper ref [15]);
- :class:`~repro.vertexpart.partitioners.Fennel` — Tsourakakis et al.
  (WSDM'14, paper ref [47]).

plus the quality metrics of that world (edge cut, vertex balance) and the
bridge :func:`~repro.vertexpart.metrics.derived_edge_assignment` that
turns a vertex partitioning into an edge partitioning so replication
factors are directly comparable (the Section-I experiment is
``python -m repro.experiments motivation``).
"""

from repro.vertexpart.partitioners import (
    Fennel,
    HashVertices,
    LinearDeterministicGreedy,
    VertexPartitionResult,
)
from repro.vertexpart.metrics import (
    derived_edge_assignment,
    edge_cut_fraction,
    vertex_balance,
)

__all__ = [
    "HashVertices",
    "LinearDeterministicGreedy",
    "Fennel",
    "VertexPartitionResult",
    "edge_cut_fraction",
    "vertex_balance",
    "derived_edge_assignment",
]
