"""Streaming vertex partitioners (Stanton-Kliot model).

In the streaming *vertex* partitioning model, the graph arrives as a
stream of vertices with their adjacency lists; each vertex is immediately
and irrevocably placed on one of k machines.  Quality is the fraction of
edges cut between machines under a vertex-count balance constraint.

These are the comparison algorithms for the Section-I motivation
experiment; they are deliberately faithful to the published heuristics:

- **Hash**: place v on hash(v) — the stateless floor.
- **LDG** (linear deterministic greedy): place v on the machine holding
  most of v's already-placed neighbors, weighted by the remaining capacity
  factor ``(1 - |P_i| / C)``.
- **Fennel**: interpolates between neighbor attraction and a load penalty:
  maximize ``|N(v) ∩ P_i| - gamma_fraction * dc(|P_i|)`` with the Fennel
  cost ``dc(x) = alpha_f * gamma_f * x^(gamma_f - 1)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import PartitioningError
from repro.graph.graph import Graph
from repro.metrics.runtime import CostCounter, PhaseTimer
from repro.partitioning.hashutil import splitmix64


@dataclass
class VertexPartitionResult:
    """Vertex-to-machine assignment plus bookkeeping."""

    partitioner: str
    k: int
    parts: np.ndarray
    timer: PhaseTimer
    cost: CostCounter
    extras: dict = field(default_factory=dict)

    def machine_sizes(self) -> np.ndarray:
        """Vertices per machine."""
        return np.bincount(self.parts[self.parts >= 0], minlength=self.k)


def _vertex_stream(graph: Graph):
    """Yield ``(v, neighbors)`` in vertex-id order (the stream order that
    source-sorted edge dumps induce)."""
    indptr, indices = graph.csr()
    for v in range(graph.n_vertices):
        yield v, indices[indptr[v] : indptr[v + 1]]


class HashVertices:
    """Stateless vertex placement by hashing."""

    name = "Hash-V"

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def partition(self, graph: Graph, k: int) -> VertexPartitionResult:
        if k < 2:
            raise PartitioningError(f"k must be >= 2, got {k}")
        timer = PhaseTimer()
        cost = CostCounter()
        with timer.phase("partitioning"):
            parts = (
                splitmix64(np.arange(graph.n_vertices), self.seed)
                % np.uint64(k)
            ).astype(np.int64)
            cost.hash_evaluations += graph.n_vertices
        return VertexPartitionResult(self.name, k, parts, timer, cost)


class LinearDeterministicGreedy:
    """LDG: neighbor-majority placement with a linear capacity penalty.

    Parameters
    ----------
    slack:
        Capacity per machine as a multiple of n/k (default 1.1).
    """

    name = "LDG"

    def __init__(self, slack: float = 1.1) -> None:
        if slack < 1.0:
            raise PartitioningError(f"slack must be >= 1, got {slack}")
        self.slack = float(slack)

    def partition(self, graph: Graph, k: int) -> VertexPartitionResult:
        if k < 2:
            raise PartitioningError(f"k must be >= 2, got {k}")
        timer = PhaseTimer()
        cost = CostCounter()
        n = graph.n_vertices
        capacity = max(1.0, self.slack * n / k)
        parts = np.full(n, -1, dtype=np.int64)
        sizes = np.zeros(k, dtype=np.int64)
        with timer.phase("partitioning"):
            for v, neighbors in _vertex_stream(graph):
                placed = parts[neighbors]
                placed = placed[placed >= 0]
                counts = (
                    np.bincount(placed, minlength=k).astype(np.float64)
                    if placed.size
                    else np.zeros(k)
                )
                scores = counts * (1.0 - sizes / capacity)
                scores[sizes >= capacity] = -np.inf
                best = scores.max()
                tied = np.where(scores == best)[0]
                p = int(tied[np.argmin(sizes[tied])])
                parts[v] = p
                sizes[p] += 1
                cost.score_evaluations += k
        return VertexPartitionResult(self.name, k, parts, timer, cost)


class Fennel:
    """Fennel single-pass streaming vertex partitioning.

    Parameters
    ----------
    gamma_f:
        Fennel's load exponent (paper default 1.5).
    balance_slack:
        Hard vertex-count cap multiplier.
    """

    name = "FENNEL"

    def __init__(self, gamma_f: float = 1.5, balance_slack: float = 1.1) -> None:
        if gamma_f <= 1.0:
            raise PartitioningError(f"gamma_f must be > 1, got {gamma_f}")
        self.gamma_f = float(gamma_f)
        self.balance_slack = float(balance_slack)

    def partition(self, graph: Graph, k: int) -> VertexPartitionResult:
        if k < 2:
            raise PartitioningError(f"k must be >= 2, got {k}")
        timer = PhaseTimer()
        cost = CostCounter()
        n = graph.n_vertices
        m = max(graph.n_edges, 1)
        # Fennel's alpha: sqrt(k) * m / n^1.5 (from the WSDM'14 paper).
        alpha_f = np.sqrt(k) * m / max(n, 1) ** 1.5
        capacity = max(1.0, self.balance_slack * n / k)
        parts = np.full(n, -1, dtype=np.int64)
        sizes = np.zeros(k, dtype=np.int64)
        with timer.phase("partitioning"):
            for v, neighbors in _vertex_stream(graph):
                placed = parts[neighbors]
                placed = placed[placed >= 0]
                counts = (
                    np.bincount(placed, minlength=k).astype(np.float64)
                    if placed.size
                    else np.zeros(k)
                )
                penalty = alpha_f * self.gamma_f * np.power(
                    np.maximum(sizes, 1), self.gamma_f - 1.0
                )
                scores = counts - penalty
                scores[sizes >= capacity] = -np.inf
                best = scores.max()
                tied = np.where(scores == best)[0]
                p = int(tied[np.argmin(sizes[tied])])
                parts[v] = p
                sizes[p] += 1
                cost.score_evaluations += k
        return VertexPartitionResult(
            self.name, k, parts, timer, cost, extras={"alpha_f": float(alpha_f)}
        )
