"""2PS-L: Out-of-Core Edge Partitioning at Linear Run-Time — reproduction.

A from-scratch Python implementation of the ICDE 2022 paper by Mayer,
Orujzade and Jacobsen, including the 2PS-L partitioner, every baseline
system it is evaluated against, the out-of-core streaming substrate, a
simulated storage layer, a distributed graph-processing simulator, and a
harness that regenerates every table and figure of the paper's evaluation.

Quickstart::

    from repro import TwoPhasePartitioner, load_dataset

    graph = load_dataset("OK", scale=0.1)
    result = TwoPhasePartitioner().partition(graph, k=32)
    print(result.replication_factor, result.measured_alpha)

See ``examples/`` for full scenarios and ``python -m repro.experiments``
for the paper's evaluation suite.
"""

from repro.core import TwoPhasePartitioner
from repro.kernels import available_backends, get_backend
from repro.baselines import (
    DBH,
    HDRF,
    HEP,
    Adwise,
    DistributedNE,
    Greedy,
    Grid,
    MetisLike,
    NeighborhoodExpansion,
    RandomHash,
    StreamingNE,
)
from repro.graph import Graph, load_dataset
from repro.partitioning import EdgePartitioner, PartitionResult, PartitionState
from repro.streaming import EdgeStream, FileEdgeStream, InMemoryEdgeStream
from repro.processing import (
    ConnectedComponents,
    PageRank,
    PartitionedGraph,
    PregelEngine,
    SingleSourceShortestPaths,
)

__version__ = "1.0.0"

__all__ = [
    "TwoPhasePartitioner",
    "DBH",
    "Grid",
    "RandomHash",
    "HDRF",
    "Greedy",
    "Adwise",
    "NeighborhoodExpansion",
    "StreamingNE",
    "DistributedNE",
    "MetisLike",
    "HEP",
    "Graph",
    "load_dataset",
    "EdgePartitioner",
    "PartitionResult",
    "PartitionState",
    "EdgeStream",
    "InMemoryEdgeStream",
    "FileEdgeStream",
    "available_backends",
    "get_backend",
    "PartitionedGraph",
    "PregelEngine",
    "PageRank",
    "ConnectedComponents",
    "SingleSourceShortestPaths",
    "__version__",
]
