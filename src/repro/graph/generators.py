"""Deterministic synthetic graph generators.

The paper evaluates on large proprietary crawls (Table III).  These
generators produce scaled stand-ins with the structural properties the
algorithms are sensitive to:

- **Power-law degree distributions** (``chung_lu_graph``, ``rmat_graph``) —
  social networks such as OK/TW/FR are heavy-tailed; DBH and HDRF exploit
  degree skew.
- **Community structure** (``planted_partition_graph``,
  ``ring_of_cliques``) — web graphs such as IT/UK/GSH/WDC cluster extremely
  well, which drives 2PS-L's pre-partitioning ratio (Fig. 6).
- **Toy/adversarial graphs** (``star_graph``, ``two_cluster_toy_graph``) —
  used by tests and by the Figure 3 concept experiment.

All generators take an explicit ``seed`` and are fully deterministic.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.graph import Graph


def _validate_positive(name: str, value: int) -> None:
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value}")


def chung_lu_graph(
    n_vertices: int,
    n_edges: int,
    gamma: float = 2.2,
    seed: int = 0,
    min_weight: float = 1.0,
) -> Graph:
    """Power-law random graph via the Chung-Lu model.

    Vertices receive weights ``w_i ~ i^{-1/(gamma-1)}`` (Zipf-like) and edge
    endpoints are drawn independently proportional to weight, which yields an
    expected power-law degree distribution with exponent ``gamma``.  Self
    loops are rejected and duplicates are allowed (multigraph semantics, as
    in a raw edge stream).

    Parameters
    ----------
    n_vertices, n_edges:
        Target sizes; exactly ``n_edges`` edges are emitted.
    gamma:
        Power-law exponent; real social networks sit around 2-2.5.
    seed:
        RNG seed (deterministic output).
    min_weight:
        Floor on vertex weight, keeps the tail from vanishing.
    """
    _validate_positive("n_vertices", n_vertices)
    _validate_positive("n_edges", n_edges)
    if gamma <= 1.0:
        raise ConfigurationError(f"gamma must be > 1, got {gamma}")
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, n_vertices + 1, dtype=np.float64)
    weights = np.maximum(ranks ** (-1.0 / (gamma - 1.0)), min_weight / n_vertices)
    probs = weights / weights.sum()
    # Draw in bulk with a modest oversample to cover rejected self-loops.
    edges = np.empty((0, 2), dtype=np.int64)
    needed = n_edges
    while needed > 0:
        batch = max(needed + 16, int(needed * 1.1))
        u = rng.choice(n_vertices, size=batch, p=probs)
        v = rng.choice(n_vertices, size=batch, p=probs)
        ok = u != v
        chunk = np.column_stack([u[ok], v[ok]])[:needed]
        edges = np.concatenate([edges, chunk]) if edges.size else chunk
        needed = n_edges - edges.shape[0]
    # Shuffle so that high-degree vertices are not front-loaded in the stream.
    rng.shuffle(edges)
    return Graph(edges, n_vertices)


def _rmat_probabilities(a: float, b: float, c: float) -> np.ndarray:
    """Validate R-MAT quadrant probabilities; return the search thresholds."""
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise ConfigurationError("R-MAT probabilities must be non-negative")
    return np.array([a, a + b, a + b + c])


def _rmat_batch(rng, m: int, scale: int, thresholds) -> tuple:
    """Draw ``m`` R-MAT endpoint pairs via per-level quadrant recursion."""
    u = np.zeros(m, dtype=np.int64)
    v = np.zeros(m, dtype=np.int64)
    for level in range(scale):
        r = rng.random(m)
        bit = 1 << (scale - 1 - level)
        # quadrant: 0 -> (0,0), 1 -> (0,1), 2 -> (1,0), 3 -> (1,1)
        quad = np.searchsorted(thresholds, r, side="right")
        u += np.where(quad >= 2, bit, 0)
        v += np.where((quad == 1) | (quad == 3), bit, 0)
    return u, v


def rmat_graph(
    scale: int,
    edge_factor: int = 16,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
) -> Graph:
    """R-MAT (recursive matrix) graph, the Graph500 generator.

    Produces ``2**scale`` vertices and ``edge_factor * 2**scale`` edges with
    a skewed, self-similar structure.  ``a + b + c`` must be < 1; the
    remaining mass ``d = 1 - a - b - c`` completes the quadrant
    probabilities.
    """
    if scale <= 0 or scale > 26:
        raise ConfigurationError(f"scale must be in [1, 26], got {scale}")
    _validate_positive("edge_factor", edge_factor)
    thresholds = _rmat_probabilities(a, b, c)
    n = 1 << scale
    m = edge_factor * n
    rng = np.random.default_rng(seed)
    u, v = _rmat_batch(rng, m, scale, thresholds)
    mask = u != v
    edges = np.column_stack([u[mask], v[mask]])
    rng.shuffle(edges)
    return Graph(edges, n)


def rmat_edge_file(
    path,
    scale: int,
    edge_factor: int = 16,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    batch_edges: int = 1 << 20,
) -> tuple[int, int]:
    """Stream an R-MAT edge list straight to a binary edge file.

    The external-memory twin of :func:`rmat_graph` for the out-of-core
    tier: edges are drawn in bounded batches through the same per-level
    quadrant recursion and appended to ``path`` in the
    :func:`repro.graph.formats.write_binary_edge_list` format (``<u4``
    pairs), so peak memory is ``O(batch_edges)`` regardless of scale —
    the full edge array is never materialized.  Fully deterministic for a
    fixed ``(scale, edge_factor, a, b, c, seed, batch_edges)``.

    Two deliberate differences from the in-memory generator, both forced
    by bounded memory:

    - **no global shuffle** — edges land in generation order.  R-MAT
      draws are i.i.d., so the stream order is already exchangeable in
      distribution; only the exact edge sequence differs from
      :func:`rmat_graph` with the same seed.
    - self-loops are dropped per batch, so the exact edge count depends
      on the draw; it is returned rather than promised.

    The scale cap is 30 (vertex ids must fit the on-disk ``<u4``
    records), beyond :func:`rmat_graph`'s in-memory cap of 26.

    Returns ``(n_vertices, n_edges_written)``.
    """
    from repro.streaming.writer import EdgeListWriter

    if scale <= 0 or scale > 30:
        raise ConfigurationError(f"scale must be in [1, 30], got {scale}")
    _validate_positive("edge_factor", edge_factor)
    _validate_positive("batch_edges", batch_edges)
    thresholds = _rmat_probabilities(a, b, c)
    n = 1 << scale
    target = edge_factor * n
    rng = np.random.default_rng(seed)
    with EdgeListWriter(path) as writer:
        drawn = 0
        while drawn < target:
            m = min(int(batch_edges), target - drawn)
            u, v = _rmat_batch(rng, m, scale, thresholds)
            mask = u != v
            writer.write_chunk(np.column_stack([u[mask], v[mask]]))
            drawn += m
        return n, writer.n_edges


def planted_partition_graph(
    n_communities: int,
    community_size: int,
    p_intra: float = 0.3,
    p_inter: float = 0.005,
    seed: int = 0,
) -> Graph:
    """Planted-partition (stochastic block) graph with dense communities.

    The canonical model for web-graph-like clusterability: most edges fall
    inside a community.  Edge counts are drawn per block pair (binomial),
    then endpoints are sampled uniformly within the blocks.

    Parameters
    ----------
    n_communities, community_size:
        Block structure; ``n = n_communities * community_size``.
    p_intra, p_inter:
        Within- and between-community edge probabilities.
    """
    _validate_positive("n_communities", n_communities)
    _validate_positive("community_size", community_size)
    if not (0.0 <= p_inter <= p_intra <= 1.0):
        raise ConfigurationError(
            "need 0 <= p_inter <= p_intra <= 1, got "
            f"p_intra={p_intra}, p_inter={p_inter}"
        )
    rng = np.random.default_rng(seed)
    n = n_communities * community_size
    blocks: list[np.ndarray] = []
    pairs_within = community_size * (community_size - 1) // 2
    for ci in range(n_communities):
        base = ci * community_size
        m_in = rng.binomial(pairs_within, p_intra)
        if m_in:
            u = base + rng.integers(0, community_size, size=m_in)
            v = base + rng.integers(0, community_size, size=m_in)
            ok = u != v
            blocks.append(np.column_stack([u[ok], v[ok]]))
    pairs_between = community_size * community_size
    for ci in range(n_communities):
        for cj in range(ci + 1, n_communities):
            m_out = rng.binomial(pairs_between, p_inter)
            if m_out:
                u = ci * community_size + rng.integers(0, community_size, size=m_out)
                v = cj * community_size + rng.integers(0, community_size, size=m_out)
                blocks.append(np.column_stack([u, v]))
    if blocks:
        edges = np.concatenate(blocks)
        rng.shuffle(edges)
    else:
        edges = np.empty((0, 2), dtype=np.int64)
    return Graph(edges, n)


def social_community_graph(
    n_vertices: int,
    n_edges: int,
    community_fraction: float = 0.6,
    community_size: int = 32,
    gamma: float = 2.1,
    seed: int = 0,
) -> Graph:
    """Social-network stand-in: power-law hub layer over dense communities.

    Real social networks (Orkut, Friendster, Wikipedia) combine a
    heavy-tailed global degree distribution with local community structure
    (com-orkut ships with ground-truth communities).  This generator mixes:

    - a **community layer** (``community_fraction`` of the edges): dense
      planted communities of ``community_size`` vertices;
    - a **hub layer** (the rest): Chung-Lu power-law edges across the whole
      vertex set, which produce the high-degree hubs that make these graphs
      "notoriously difficult to partition".

    Both layers share one vertex-id space; edges are shuffled together.
    """
    _validate_positive("n_vertices", n_vertices)
    _validate_positive("n_edges", n_edges)
    if not 0.0 <= community_fraction <= 1.0:
        raise ConfigurationError(
            f"community_fraction must be in [0, 1], got {community_fraction}"
        )
    rng = np.random.default_rng(seed)
    m_comm = int(n_edges * community_fraction)
    m_hub = n_edges - m_comm
    layers = []
    if m_comm:
        n_comm = max(2, n_vertices // community_size)
        intra_pairs = community_size * (community_size - 1) // 2
        p_intra = min(0.8, m_comm / max(n_comm * intra_pairs, 1))
        comm = planted_partition_graph(
            n_comm,
            community_size,
            p_intra=p_intra,
            p_inter=0.0,
            seed=seed + 1,
        )
        layers.append(comm.edges)
    if m_hub:
        hub = chung_lu_graph(n_vertices, m_hub, gamma=gamma, seed=seed + 2)
        layers.append(hub.edges)
    edges = np.concatenate(layers) if layers else np.empty((0, 2), dtype=np.int64)
    rng.shuffle(edges)
    return Graph(edges, n_vertices)


def ring_of_cliques(n_cliques: int, clique_size: int, seed: int = 0) -> Graph:
    """``n_cliques`` complete graphs joined in a ring by single bridge edges.

    A worst case for clustering-agnostic partitioners and a best case for
    clustering-aware ones — the structure behind Figure 3 of the paper.
    """
    _validate_positive("n_cliques", n_cliques)
    if clique_size < 2:
        raise ConfigurationError(f"clique_size must be >= 2, got {clique_size}")
    edges: list[tuple[int, int]] = []
    for ci in range(n_cliques):
        base = ci * clique_size
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                edges.append((base + i, base + j))
    if n_cliques > 1:
        for ci in range(n_cliques):
            nxt = (ci + 1) % n_cliques
            edges.append((ci * clique_size, nxt * clique_size + 1))
    arr = np.asarray(edges, dtype=np.int64)
    rng = np.random.default_rng(seed)
    rng.shuffle(arr)
    return Graph(arr, n_cliques * clique_size)


def star_graph(n_leaves: int) -> Graph:
    """A star: vertex 0 connected to ``n_leaves`` leaves.

    The extreme of degree skew — every sensible edge partitioner must
    replicate the hub on (almost) every partition.
    """
    _validate_positive("n_leaves", n_leaves)
    leaves = np.arange(1, n_leaves + 1, dtype=np.int64)
    edges = np.column_stack([np.zeros(n_leaves, dtype=np.int64), leaves])
    return Graph(edges, n_leaves + 1)


def two_cluster_toy_graph() -> Graph:
    """The Figure 3 illustration graph: two dense 4-cliques, two bridges.

    Vertices 0-3 form the "green" cluster, 4-7 the "blue" cluster; edges
    (0, 4) and (3, 7) bridge them.  A clustering-aware 2-partition cuts 2
    vertices; a clustering-agnostic one can cut 4.
    """
    intra = []
    for base in (0, 4):
        for i in range(4):
            for j in range(i + 1, 4):
                intra.append((base + i, base + j))
    inter = [(0, 4), (3, 7)]
    return Graph(np.asarray(intra + inter, dtype=np.int64), 8)
