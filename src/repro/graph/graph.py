"""Compact in-memory graph representation.

The partitioners in this library consume *edge streams* and never require the
full graph in memory; :class:`Graph` exists for generators, validation,
metrics, the in-memory baseline partitioners (NE, METIS-like) and the
distributed-processing simulator — exactly the places where the paper's
comparison systems also materialize the graph.

Edges are stored as an ``(m, 2)`` ``int64`` numpy array.  Graphs are treated
as undirected for partitioning purposes (an edge ``(u, v)`` contributes to the
degree of both endpoints), matching the problem statement in Section II of
the paper, but the edge list keeps its original orientation so that streaming
order is well defined.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import GraphError


class Graph:
    """An immutable edge-list graph.

    Parameters
    ----------
    edges:
        Array-like of shape ``(m, 2)`` with non-negative integer vertex ids.
    n_vertices:
        Total number of vertices.  May exceed the largest endpoint id (to
        model isolated vertices).  Defaults to ``max(edge endpoints) + 1``.

    Raises
    ------
    GraphError
        If the edge array is malformed or ids are out of range.
    """

    __slots__ = ("_edges", "_n", "_degrees", "_csr")

    def __init__(self, edges, n_vertices: int | None = None) -> None:
        arr = np.asarray(edges, dtype=np.int64)
        if arr.size == 0:
            arr = arr.reshape(0, 2)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise GraphError(
                f"edges must have shape (m, 2), got {arr.shape}"
            )
        if arr.size and arr.min() < 0:
            raise GraphError("vertex ids must be non-negative")
        max_id = int(arr.max()) if arr.size else -1
        if n_vertices is None:
            n_vertices = max_id + 1
        elif n_vertices <= max_id:
            raise GraphError(
                f"n_vertices={n_vertices} but an edge references vertex {max_id}"
            )
        self._edges = arr
        self._edges.setflags(write=False)
        self._n = int(n_vertices)
        self._degrees: np.ndarray | None = None
        self._csr: tuple[np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def edges(self) -> np.ndarray:
        """The ``(m, 2)`` read-only edge array, in stream order."""
        return self._edges

    @property
    def n_vertices(self) -> int:
        """Number of vertices ``|V|`` (including isolated vertices)."""
        return self._n

    @property
    def n_edges(self) -> int:
        """Number of edges ``|E|``."""
        return int(self._edges.shape[0])

    def __len__(self) -> int:
        return self.n_edges

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph(|V|={self.n_vertices}, |E|={self.n_edges})"

    def __iter__(self) -> Iterator[tuple[int, int]]:
        for u, v in self._edges:
            yield int(u), int(v)

    # ------------------------------------------------------------------
    # derived structures (lazy, cached)
    # ------------------------------------------------------------------
    @property
    def degrees(self) -> np.ndarray:
        """Undirected vertex degrees (self-loops count twice)."""
        if self._degrees is None:
            deg = np.zeros(self._n, dtype=np.int64)
            if self.n_edges:
                np.add.at(deg, self._edges[:, 0], 1)
                np.add.at(deg, self._edges[:, 1], 1)
            deg.setflags(write=False)
            self._degrees = deg
        return self._degrees

    @property
    def max_degree(self) -> int:
        """Largest vertex degree (0 for the empty graph)."""
        return int(self.degrees.max()) if self._n else 0

    def csr(self) -> tuple[np.ndarray, np.ndarray]:
        """Undirected CSR adjacency as ``(indptr, indices)``.

        Every edge appears in both endpoint's adjacency list.  Used by the
        in-memory baselines (NE, METIS-like) and the processing simulator.
        """
        if self._csr is None:
            m = self.n_edges
            src = np.concatenate([self._edges[:, 0], self._edges[:, 1]])
            dst = np.concatenate([self._edges[:, 1], self._edges[:, 0]])
            order = np.argsort(src, kind="stable")
            sorted_src = src[order]
            sorted_dst = dst[order]
            indptr = np.zeros(self._n + 1, dtype=np.int64)
            counts = np.bincount(sorted_src, minlength=self._n) if m else np.zeros(
                self._n, dtype=np.int64
            )
            np.cumsum(counts, out=indptr[1:])
            self._csr = (indptr, sorted_dst)
        return self._csr

    def neighbors(self, v: int) -> np.ndarray:
        """Neighbor ids of vertex ``v`` (with multiplicity)."""
        indptr, indices = self.csr()
        return indices[indptr[v] : indptr[v + 1]]

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def shuffled(self, seed: int = 0) -> "Graph":
        """Return a copy with the edge stream order permuted deterministically."""
        rng = np.random.default_rng(seed)
        perm = rng.permutation(self.n_edges)
        return Graph(self._edges[perm].copy(), self._n)

    def without_self_loops(self) -> "Graph":
        """Return a copy with self-loop edges removed."""
        mask = self._edges[:, 0] != self._edges[:, 1]
        return Graph(self._edges[mask].copy(), self._n)

    def deduplicated(self) -> "Graph":
        """Return a copy with duplicate undirected edges removed.

        Keeps the first occurrence of each undirected edge; orientation of
        the kept edge is preserved.
        """
        if not self.n_edges:
            return Graph(self._edges.copy(), self._n)
        lo = np.minimum(self._edges[:, 0], self._edges[:, 1])
        hi = np.maximum(self._edges[:, 0], self._edges[:, 1])
        keys = lo * np.int64(self._n) + hi
        _, first = np.unique(keys, return_index=True)
        first.sort()
        return Graph(self._edges[first].copy(), self._n)

    def subgraph_of_edges(self, edge_indices: np.ndarray) -> "Graph":
        """Return the graph induced by a subset of edge indices.

        Vertex ids are *not* remapped: the subgraph shares the parent's id
        space, which is what the partition-quality metrics require.
        """
        idx = np.asarray(edge_indices, dtype=np.int64)
        return Graph(self._edges[idx].copy(), self._n)

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def nbytes(self) -> int:
        """Approximate memory footprint of the materialized edge list."""
        return int(self._edges.nbytes)

    def validate(self) -> None:
        """Re-check all construction invariants; raises GraphError on failure."""
        if self._edges.ndim != 2 or self._edges.shape[1] != 2:
            raise GraphError("edge array shape corrupted")
        if self._edges.size and (
            self._edges.min() < 0 or self._edges.max() >= self._n
        ):
            raise GraphError("edge endpoints out of range")
