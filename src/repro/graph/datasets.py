"""Synthetic stand-ins for the paper's real-world datasets (Table III).

The paper evaluates on OK (117M edges) ... WDC (64B edges).  Those crawls are
multi-gigabyte downloads and far beyond a pure-Python testbed, so — per the
reproduction ground rules — each dataset is replaced by a deterministic
synthetic graph that preserves the *class* of structure the algorithms react
to:

- **Social networks** (OK, TW, FR, WI): heavy-tailed degree distribution,
  weak community structure.  OK is additionally "notoriously difficult to
  partition", which we model with a higher power-law exponent overlap (more
  mid-degree vertices) and extra random noise edges.
- **Web graphs** (IT, UK, GSH, WDC): very strong, locality-heavy community
  structure (host-level clusters), which makes pre-partitioning dominate in
  2PS-L (paper Fig. 6).

Every spec records the paper's original |V| / |E| so experiment reports can
show the mapping.  ``scale`` multiplies the default stand-in size; datasets
are cached per (name, scale, seed) within a process.
"""

from __future__ import annotations

import numpy as np

from dataclasses import dataclass
from functools import lru_cache

from repro.errors import DatasetError
from repro.graph.graph import Graph
from repro.graph import generators


@dataclass(frozen=True)
class DatasetSpec:
    """Metadata for one dataset stand-in.

    Attributes
    ----------
    name:
        Short name used throughout the paper (e.g. ``"OK"``).
    full_name:
        The original dataset identifier.
    kind:
        ``"social"`` or ``"web"`` — drives the generator family.
    paper_vertices, paper_edges:
        Sizes reported in Table III of the paper.
    standin_vertices, standin_edges:
        Approximate sizes of the scale-1 synthetic stand-in.
    """

    name: str
    full_name: str
    kind: str
    paper_vertices: int
    paper_edges: int
    standin_vertices: int
    standin_edges: int
    description: str = ""


#: Registry of all Table III datasets plus WI (used in Table IV).
DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec(
            "OK", "com-orkut", "social", 3_100_000, 117_000_000, 12_000, 240_000,
            "Social network; notoriously difficult to partition.",
        ),
        DatasetSpec(
            "IT", "it-2004", "web", 41_000_000, 1_200_000_000, 16_000, 140_000,
            "Italian web crawl; strong host-level clustering.",
        ),
        DatasetSpec(
            "TW", "twitter-2010", "social", 42_000_000, 1_500_000_000, 16_000, 320_000,
            "Twitter follower graph; extreme degree skew.",
        ),
        DatasetSpec(
            "FR", "com-friendster", "social", 66_000_000,
            1_800_000_000, 20_000, 380_000,
            "Friendster social network.",
        ),
        DatasetSpec(
            "UK", "uk-2007-05", "web", 106_000_000, 3_700_000_000, 24_000, 210_000,
            "UK web crawl.",
        ),
        DatasetSpec(
            "GSH", "gsh-2015", "web", 988_000_000, 34_000_000_000, 32_000, 290_000,
            "Very large web crawl (BUbiNG).",
        ),
        DatasetSpec(
            "WDC", "wdc-2014", "web", 1_700_000_000, 64_000_000_000, 40_000, 360_000,
            "Web Data Commons hyperlink graph; the largest graph evaluated.",
        ),
        DatasetSpec(
            "WI", "wikipedia-link", "social", 14_000_000, 437_000_000, 14_000, 280_000,
            "Wikipedia link graph (KONECT); used in the Table IV end-to-end study.",
        ),
    ]
}


def _social_standin(spec: DatasetSpec, n: int, m: int, seed: int) -> Graph:
    """Mixed power-law + community social graph.

    Per-dataset knobs: Twitter is hub-dominated (lowest community share,
    heaviest tail) which is why it is the one graph where DBH competes with
    2PS-L in the paper; Orkut/Friendster/Wikipedia have substantial
    community structure under their power-law tails.
    """
    gamma = {"OK": 2.0, "TW": 1.9, "FR": 2.2, "WI": 2.1}.get(spec.name, 2.2)
    frac = {"OK": 0.65, "TW": 0.30, "FR": 0.60, "WI": 0.55}.get(spec.name, 0.5)
    return generators.social_community_graph(
        n, m, community_fraction=frac, gamma=gamma, seed=seed
    )


def _web_standin(spec: DatasetSpec, n: int, m: int, seed: int) -> Graph:
    """Community-heavy web graph: planted partitions sized to hit ~(n, m).

    Web crawls cluster at host level into small, locally *dense* groups —
    the property the 2PS-L clustering phase exploits (and what drives the
    paper's Figure 6 pre-partitioning dominance on web graphs).  We use
    communities of 24 vertices with intra-community density up to 0.75 and
    ~93% of edges intra-community.
    """
    community_size = 24
    n_comm = max(2, n // community_size)
    intra_pairs_per_comm = community_size * (community_size - 1) // 2
    p_intra = min(0.75, 0.93 * m / max(n_comm * intra_pairs_per_comm, 1))
    total_inter_pairs = (
        n_comm * (n_comm - 1) // 2 * community_size * community_size
    )
    p_inter = min(0.5, 0.07 * m / max(total_inter_pairs, 1))
    return generators.planted_partition_graph(
        n_comm, community_size, p_intra=p_intra, p_inter=p_inter, seed=seed
    )


@lru_cache(maxsize=32)
def load_dataset(name: str, scale: float = 1.0, seed: int = 7) -> Graph:
    """Build (and cache) the synthetic stand-in for dataset ``name``.

    Parameters
    ----------
    name:
        A key of :data:`DATASETS` (case-insensitive).
    scale:
        Size multiplier relative to the default stand-in size.  Benchmarks
        use ``scale < 1`` for speed; experiments use ``scale = 1``.
    seed:
        Generator seed (default fixed for reproducibility).

    Raises
    ------
    DatasetError
        For unknown names or non-positive scales.
    """
    key = name.upper()
    if key not in DATASETS:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        )
    if scale <= 0:
        raise DatasetError(f"scale must be positive, got {scale}")
    spec = DATASETS[key]
    n = max(64, int(spec.standin_vertices * scale))
    m = max(128, int(spec.standin_edges * scale))
    if spec.kind == "social":
        graph = _social_standin(spec, n, m, seed)
    else:
        graph = _web_standin(spec, n, m, seed)
    # Real-world edge-list dumps (SNAP, WebGraph, KONECT) are sorted by
    # source vertex, giving the stream strong locality; buffer/cache-based
    # systems (SNE, ADWISE) and streaming clustering all rely on it.  The
    # generators shuffle uniformly, so restore the realistic order here.
    order = np.argsort(graph.edges[:, 0], kind="stable")
    return Graph(graph.edges[order].copy(), graph.n_vertices)


def dataset_table_rows(scale: float = 1.0) -> list[dict]:
    """Rows for the Table III reproduction: paper size vs stand-in size."""
    rows = []
    for spec in DATASETS.values():
        graph = load_dataset(spec.name, scale=scale)
        rows.append(
            {
                "name": spec.name,
                "full_name": spec.full_name,
                "type": spec.kind,
                "paper_V": spec.paper_vertices,
                "paper_E": spec.paper_edges,
                "standin_V": graph.n_vertices,
                "standin_E": graph.n_edges,
            }
        )
    return rows
