"""On-disk graph formats.

The paper streams graphs as *binary edge lists with 32-bit vertex ids*
(Table III: "Size refers to the graph representation as binary edge list
with 32-bit vertex IDs").  This module implements exactly that format plus a
whitespace text format (used by DNE/METIS/ADWISE in the paper's appendix).

Binary layout: a sequence of ``2 * m`` little-endian ``uint32`` values,
``u_0 v_0 u_1 v_1 ...`` — no header.  The vertex count is therefore not
stored; callers either supply it or derive it with a degree pass.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.errors import FormatError
from repro.graph.graph import Graph

#: Bytes per edge in the binary format (two uint32 endpoints).
BYTES_PER_EDGE = 8

_MAX_UINT32 = np.iinfo(np.uint32).max


def write_binary_edge_list(graph: Graph, path: str | os.PathLike) -> int:
    """Write ``graph`` as a binary 32-bit edge list; returns bytes written.

    Raises
    ------
    FormatError
        If any vertex id exceeds the 32-bit range.
    """
    edges = graph.edges
    if edges.size and edges.max() > _MAX_UINT32:
        raise FormatError("vertex id exceeds 32-bit range")
    flat = np.ascontiguousarray(edges, dtype="<u4").reshape(-1)
    data = flat.tobytes()
    Path(path).write_bytes(data)
    return len(data)


def read_binary_edge_list(
    path: str | os.PathLike, n_vertices: int | None = None
) -> Graph:
    """Read a binary 32-bit edge list written by :func:`write_binary_edge_list`.

    Raises
    ------
    FormatError
        If the file size is not a multiple of one edge record (8 bytes).
    """
    data = Path(path).read_bytes()
    if len(data) % BYTES_PER_EDGE:
        raise FormatError(
            f"binary edge list truncated: {len(data)} bytes is not a "
            f"multiple of {BYTES_PER_EDGE}"
        )
    flat = np.frombuffer(data, dtype="<u4")
    edges = flat.reshape(-1, 2).astype(np.int64)
    return Graph(edges, n_vertices)


def write_text_edge_list(graph: Graph, path: str | os.PathLike) -> int:
    """Write a whitespace-separated text edge list ("u v" per line)."""
    lines = [f"{u} {v}\n" for u, v in graph.edges]
    text = "".join(lines)
    Path(path).write_text(text)
    return len(text)


def read_text_edge_list(
    path: str | os.PathLike, n_vertices: int | None = None
) -> Graph:
    """Read a text edge list; '#'-prefixed comment lines are skipped.

    Raises
    ------
    FormatError
        On lines that are neither comments nor two integers.
    """
    edges: list[tuple[int, int]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise FormatError(f"{path}:{lineno}: expected 'u v', got {line!r}")
            try:
                u, v = int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise FormatError(
                    f"{path}:{lineno}: non-integer vertex id in {line!r}"
                ) from exc
            edges.append((u, v))
    arr = (
        np.asarray(edges, dtype=np.int64)
        if edges
        else np.empty((0, 2), dtype=np.int64)
    )
    return Graph(arr, n_vertices)


def binary_size_bytes(n_edges: int) -> int:
    """Size in bytes of a binary edge list with ``n_edges`` edges."""
    return n_edges * BYTES_PER_EDGE
