"""Graph substrate: in-memory graphs, generators, datasets and file formats.

This package provides everything the partitioners need to obtain graph data:

- :class:`~repro.graph.graph.Graph` — a compact in-memory edge-list graph
  with lazily computed degrees and CSR adjacency.
- :mod:`~repro.graph.generators` — deterministic synthetic graph generators
  (Chung-Lu power law, R-MAT, planted partition, ring lattice, ...).
- :mod:`~repro.graph.datasets` — the registry of scaled synthetic stand-ins
  for the paper's real-world datasets (Table III).
- :mod:`~repro.graph.formats` — binary (32-bit ids, as in the paper) and
  text edge-list serialization.
- :mod:`~repro.graph.degrees` — out-of-core degree computation.
"""

from repro.graph.graph import Graph
from repro.graph.generators import (
    chung_lu_graph,
    planted_partition_graph,
    ring_of_cliques,
    rmat_edge_file,
    rmat_graph,
    star_graph,
    two_cluster_toy_graph,
)
from repro.graph.datasets import DATASETS, DatasetSpec, load_dataset
from repro.graph.formats import (
    read_binary_edge_list,
    read_text_edge_list,
    write_binary_edge_list,
    write_text_edge_list,
)
from repro.graph.degrees import compute_degrees, compute_degrees_from_stream

__all__ = [
    "Graph",
    "chung_lu_graph",
    "rmat_edge_file",
    "rmat_graph",
    "planted_partition_graph",
    "ring_of_cliques",
    "star_graph",
    "two_cluster_toy_graph",
    "DATASETS",
    "DatasetSpec",
    "load_dataset",
    "read_binary_edge_list",
    "write_binary_edge_list",
    "read_text_edge_list",
    "write_text_edge_list",
    "compute_degrees",
    "compute_degrees_from_stream",
]
