"""Out-of-core degree computation.

2PS-L needs the *true* vertex degree before clustering (Section III-A.2:
"we compute the degree of each vertex upfront ... in a pass through the edge
set, keeping a counter for each vertex ID").  This is a linear-time pass and
its cost is reported separately in the paper's Figure 5 breakdown.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph


def compute_degrees(graph: Graph) -> np.ndarray:
    """Degrees of an in-memory graph (delegates to :attr:`Graph.degrees`)."""
    return graph.degrees


def compute_degrees_from_stream(
    stream, n_vertices: int | None = None, backend: str | None = None
) -> np.ndarray:
    """One streaming pass that counts every endpoint occurrence.

    The chunk processing is delegated to a kernel backend
    (:mod:`repro.kernels`): per-chunk ``np.bincount`` on the default
    ``numpy`` backend, a per-edge loop on the ``python`` reference
    backend.

    Parameters
    ----------
    stream:
        Any edge stream exposing ``chunks()`` (see :mod:`repro.streaming`).
    n_vertices:
        Vertex-count hint.  If omitted, taken from the stream, and if the
        stream does not know either, the array covers every id seen.
    backend:
        Kernel backend name; ``None`` selects the default.

    Returns
    -------
    numpy.ndarray
        ``int64`` degree array of length ``n_vertices`` (or large enough to
        cover every id seen).
    """
    from repro.kernels import get_backend

    if n_vertices is None:
        n_vertices = getattr(stream, "n_vertices", None)
    deg = get_backend(backend).degree_pass(stream, n_vertices)
    if n_vertices and deg.shape[0] > int(n_vertices):
        deg = deg[: int(n_vertices)]
    return deg
