"""Out-of-core degree computation.

2PS-L needs the *true* vertex degree before clustering (Section III-A.2:
"we compute the degree of each vertex upfront ... in a pass through the edge
set, keeping a counter for each vertex ID").  This is a linear-time pass and
its cost is reported separately in the paper's Figure 5 breakdown.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph


def compute_degrees(graph: Graph) -> np.ndarray:
    """Degrees of an in-memory graph (delegates to :attr:`Graph.degrees`)."""
    return graph.degrees


def compute_degrees_from_stream(stream, n_vertices: int | None = None) -> np.ndarray:
    """One streaming pass that counts every endpoint occurrence.

    Parameters
    ----------
    stream:
        Any edge stream exposing ``chunks()`` (see :mod:`repro.streaming`).
    n_vertices:
        Vertex-count hint.  If omitted, taken from the stream, and if the
        stream does not know either, the array grows as larger ids appear.

    Returns
    -------
    numpy.ndarray
        ``int64`` degree array of length ``n_vertices`` (or large enough to
        cover every id seen).
    """
    if n_vertices is None:
        n_vertices = getattr(stream, "n_vertices", None)
    size = int(n_vertices) if n_vertices else 0
    deg = np.zeros(size, dtype=np.int64)
    for chunk in stream.chunks():
        if chunk.size == 0:
            continue
        top = int(chunk.max())
        if top >= deg.shape[0]:
            grown = np.zeros(max(top + 1, 2 * max(deg.shape[0], 1)), dtype=np.int64)
            grown[: deg.shape[0]] = deg
            deg = grown
        np.add.at(deg, chunk[:, 0], 1)
        np.add.at(deg, chunk[:, 1], 1)
    if n_vertices and deg.shape[0] > int(n_vertices):
        deg = deg[: int(n_vertices)]
    return deg
