"""Exception hierarchy for the ``repro`` library.

All library-specific failures derive from :class:`ReproError` so callers can
catch one base class.  Each subclass corresponds to a distinct failure domain
(graph construction, streaming I/O, partitioning, configuration) so tests and
downstream users can discriminate precisely.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class GraphError(ReproError):
    """Invalid graph data (malformed edges, negative vertex ids, ...)."""


class FormatError(ReproError):
    """Malformed on-disk graph data (truncated binary edge list, bad text)."""


class StreamError(ReproError):
    """Misuse of an edge stream (e.g. unknown vertex count when required)."""


class StorageError(ReproError):
    """Invalid storage-device configuration (non-positive bandwidth, ...)."""


class PartitioningError(ReproError):
    """A partitioner was configured or driven incorrectly."""


class BalanceError(PartitioningError):
    """The hard balance cap cannot be satisfied (e.g. ``alpha * |E| < |E|``)."""


class WireError(PartitioningError):
    """A distributed-runner wire-protocol failure.

    Covers the transport layer (peer closed the connection, recv timeout,
    refused connect) and the framing layer (bad magic, CRC mismatch,
    truncated frame, protocol-version mismatch).  Derives from
    :class:`PartitioningError` so a worker death anywhere in a distributed
    run surfaces as the one typed error every runner already raises."""


class ConfigurationError(ReproError):
    """Invalid experiment or algorithm configuration values."""


class DatasetError(ReproError):
    """Unknown dataset name or invalid dataset scaling parameters."""


class ProcessingError(ReproError):
    """Distributed-processing simulator misuse (bad workload, bad cluster)."""
