"""Command-line interface: generate datasets, partition files, inspect graphs.

Mirrors the paper's deployment model ("2PS-L is implemented as a separate
process that reads the graph data as a file from a given storage, partitions
the edges, and writes back the partitioned graph data"):

- ``repro-partition generate`` — materialize a dataset stand-in as a binary
  edge list, or stream an external-memory R-MAT straight to disk
  (``--rmat-scale``, bounded memory at any scale);
- ``repro-partition partition`` — out-of-core partition a binary edge list
  and write per-edge assignments;
- ``repro-partition info`` — basic statistics of an edge-list file;
- ``repro-partition serve-export`` — persist a partitioning as a
  memory-mappable :class:`~repro.serving.store.PartitionStore` (from a
  ``partition --out`` assignment file, or partitioning inline);
- ``repro-partition lookup`` — answer vertex/edge placement queries
  against an exported store;
- ``repro-partition experiment`` — run a table/figure reproduction
  (delegates to :mod:`repro.experiments.__main__`).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.core import ParallelTwoPhase, TwoPhasePartitioner
from repro.core.distributed import DistributedRunner, serve_worker
from repro.core.runners import RUNNERS
from repro.errors import PartitioningError, ReproError
from repro.experiments.common import ALL_PARTITIONERS, make_partitioner
from repro.graph.datasets import DATASETS, load_dataset
from repro.graph.formats import write_binary_edge_list
from repro.graph.generators import rmat_edge_file
from repro.kernels import DEFAULT_BACKEND, available_backends, missing_backends
from repro.storage import hdd_device, page_cache_device, ssd_device
from repro.streaming import FileEdgeStream, load_partitioned, write_partitioned

_DEVICES = {"page-cache": page_cache_device, "ssd": ssd_device, "hdd": hdd_device}


def _cmd_generate(args) -> int:
    if (args.dataset is None) == (args.rmat_scale is None):
        raise ReproError(
            "generate: pass exactly one of --dataset (materialized "
            "stand-in) or --rmat-scale (external-memory R-MAT)"
        )
    if args.rmat_scale is not None:
        # Streams batches straight to disk — never holds the edge array.
        n, m = rmat_edge_file(
            args.out,
            args.rmat_scale,
            edge_factor=args.edge_factor,
            seed=args.seed,
            batch_edges=args.batch_edges,
        )
        print(
            f"wrote external-memory R-MAT: |V|={n} |E|={m} "
            f"({m * 8} bytes) -> {args.out}"
        )
        return 0
    graph = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    nbytes = write_binary_edge_list(graph, args.out)
    print(
        f"wrote {args.dataset} stand-in: |V|={graph.n_vertices} "
        f"|E|={graph.n_edges} ({nbytes} bytes) -> {args.out}"
    )
    return 0


#: Parallel modes per CLI algorithm name (only 2PS variants shard).
_PARALLEL_MODES = {"2PS-L": "linear", "2PS-HDRF": "hdrf"}


def _make_cli_partitioner(args):
    """Sequential partitioner by name, or its sharded parallel variant
    when any of ``--runner``/``--n-workers``/``--sync-interval``/
    ``--parallel-phase1`` asks for one (each flag alone activates the
    parallel path — none may be silently ignored)."""
    missing = missing_backends()
    if args.backend in missing:
        # An *explicit* request for an optional backend fails loudly;
        # only the library-level resolution degrades to the default
        # (see repro.kernels, "Optional backends").
        raise PartitioningError(
            f"kernel backend {args.backend!r} is unavailable on this "
            f"host: {missing[args.backend]}. Install the missing "
            f"dependency, or drop --backend to use the default "
            f"({DEFAULT_BACKEND!r})."
        )
    workers = getattr(args, "workers", None)
    parallel_flags = (args.runner, args.n_workers, args.sync_interval, workers)
    if all(flag is None for flag in parallel_flags) and not args.parallel_phase1:
        if not args.packed_state:
            return make_partitioner(args.algorithm, backend=args.backend)
        mode = _PARALLEL_MODES.get(args.algorithm)
        if mode is None:
            raise ReproError(
                f"--packed-state applies only to "
                f"{sorted(_PARALLEL_MODES)}, not {args.algorithm!r}"
            )
        return TwoPhasePartitioner(
            mode=mode, backend=args.backend, packed_state=True
        )
    mode = _PARALLEL_MODES.get(args.algorithm)
    if mode is None:
        raise ReproError(
            f"--runner/--n-workers/--sync-interval/--parallel-phase1 apply "
            f"only to {sorted(_PARALLEL_MODES)}, not {args.algorithm!r}"
        )
    runner = args.runner
    n_workers = args.n_workers
    if workers is not None:
        # --workers host:port,... names pre-started socket workers: it
        # implies the distributed runner and fixes the worker count.
        if runner not in (None, "distributed"):
            raise ReproError(
                f"--workers applies to --runner distributed, not {runner!r}"
            )
        specs = [spec for spec in workers.split(",") if spec]
        if n_workers is not None and n_workers != len(specs):
            raise ReproError(
                f"--n-workers {n_workers} contradicts the "
                f"{len(specs)} --workers specs"
            )
        runner = DistributedRunner(workers=specs)
        n_workers = len(specs)
    return ParallelTwoPhase(
        n_workers=n_workers if n_workers is not None else 4,
        sync_interval=(
            args.sync_interval if args.sync_interval is not None else 65536
        ),
        mode=mode,
        backend=args.backend,
        runner=runner or "simulated",
        parallel_phase1=args.parallel_phase1,
        packed_state=args.packed_state,
    )


def _cmd_partition(args) -> int:
    device = _DEVICES[args.device]() if args.device else None
    stream = FileEdgeStream(
        args.input,
        n_vertices=args.n_vertices,
        device=device,
        prefetch=args.prefetch,
    )
    partitioner = _make_cli_partitioner(args)
    result = partitioner.partition(
        stream,
        args.k,
        alpha=args.alpha,
        chunk_size=args.chunk_size,
        tune=args.tune,
    )
    print(f"partitioner       : {result.partitioner}")
    if args.backend:
        print(f"kernel backend    : {args.backend}")
    tuning = getattr(result.artifacts, "tuning", None)
    if tuning is not None:
        print(
            f"auto-tuned        : backend={tuning.backend} "
            f"chunk={tuning.chunk_size} sync={tuning.sync_interval} "
            f"(probe {tuning.probe_edges} edges)"
        )
    if "runner" in result.extras:
        kind = "measured" if result.extras["measured_wallclock"] else "modeled"
        print(f"runner            : {result.extras['runner']}")
        print(
            f"workers / syncs   : {result.extras['n_workers']} / "
            f"{result.extras['syncs']}"
        )
        print(
            f"parallel phase-2  : {result.extras['parallel_wall_s']:.4f} s "
            f"({kind})"
        )
        if result.extras.get("parallel_phase1"):
            # The serial runner runs Phase 1 sequentially (0 syncs), so
            # the count itself tells the truth about the sharding.
            print(
                f"phase-1 syncs     : {result.extras['phase1_syncs']}"
            )
    print(f"k / alpha         : {result.k} / {result.alpha}")
    print(f"edges / vertices  : {result.n_edges} / {result.n_vertices}")
    print(f"replication factor: {result.replication_factor:.4f}")
    print(f"measured alpha    : {result.measured_alpha:.4f}")
    print(f"wall seconds      : {result.wall_seconds:.4f}")
    print(f"model seconds     : {result.model_seconds():.4f}")
    print(f"state bytes       : {result.state_bytes}")
    if device is not None:
        print(
            f"simulated I/O     : {stream.stats.simulated_read_seconds:.4f} s "
            f"on {args.device}"
        )
    if args.out:
        result.assignments.astype("<i4").tofile(args.out)
        print(f"assignments       : {result.assignments.shape[0]} ids -> {args.out}")
    if args.out_dir:
        edges = stream.materialize().edges
        manifest = write_partitioned(
            args.out_dir, edges, result.assignments, args.k, result.n_vertices
        )
        print(
            f"partitioned data  : {sum(manifest['edge_counts'])} edges in "
            f"{args.k} files -> {args.out_dir}"
        )
    return 0


def _cmd_worker(args) -> int:
    """Run a standalone distributed-partitioning socket worker."""

    def ready(host: str, port: int) -> None:
        # Machine-readable bound address, flushed before accepting, so
        # scripts can scrape the port a port-0 worker actually got.
        print(f"worker listening on {host}:{port}", flush=True)

    served = serve_worker(
        host=args.host,
        port=args.port,
        max_sessions=args.max_sessions,
        ready=ready,
    )
    print(f"worker served {served} session(s)")
    return 0


def _cmd_process(args) -> int:
    """Run a simulated distributed workload over partitioned output."""
    from repro.processing import (
        ConnectedComponents,
        GnnEpoch,
        PageRank,
        PartitionedGraph,
        PregelEngine,
    )

    graphs, manifest = load_partitioned(args.dir)
    k = manifest["k"]
    n = manifest.get("n_vertices")
    pieces = [g.edges for g in graphs if g.n_edges]
    edges = np.concatenate(pieces)
    assignments = np.concatenate(
        [
            np.full(g.n_edges, p, dtype=np.int32)
            for p, g in enumerate(graphs)
            if g.n_edges
        ]
    )
    if n is None:
        n = int(edges.max()) + 1
    pgraph = PartitionedGraph(edges, assignments, k, n)
    workloads = {
        "pagerank": lambda: PageRank(),
        "components": lambda: ConnectedComponents(),
        "gnn": lambda: GnnEpoch(),
    }
    workload = workloads[args.workload]()
    _, report = PregelEngine().run(
        pgraph, workload, max_supersteps=args.supersteps
    )
    print(f"workload          : {args.workload}")
    print(f"workers (k)       : {k}")
    print(f"replication factor: {pgraph.replication_factor():.4f}")
    print(f"supersteps        : {report.supersteps}")
    print(f"converged         : {report.converged}")
    print(f"messages          : {report.total_messages}")
    print(f"simulated seconds : {report.total_seconds:.3f}")
    return 0


def _cmd_serve_export(args) -> int:
    """Persist a partitioning as a memory-mappable lookup store."""
    from repro.serving import PartitionStore

    edges = np.fromfile(args.input, dtype="<u4").reshape(-1, 2)
    if args.assignments is not None:
        # Pipeline hand-off: consume the int32 vector `partition --out`
        # wrote, rebuilding replicas/sizes — no re-partitioning.
        assignments = np.fromfile(args.assignments, dtype="<i4")
        store = PartitionStore.from_assignments(
            args.store,
            edges,
            assignments,
            args.k,
            alpha=args.alpha,
            n_vertices=args.n_vertices,
            partitioner=args.algorithm,
        )
    else:
        stream = FileEdgeStream(args.input, n_vertices=args.n_vertices)
        partitioner = make_partitioner(args.algorithm)
        result = partitioner.partition(stream, args.k, alpha=args.alpha)
        store = PartitionStore.write(args.store, result, edges)
    print(f"store             : {store.directory}")
    print(f"k / vertices      : {store.k} / {store.n_vertices}")
    print(f"edges             : {store.n_edges}")
    print(f"store bytes       : {store.nbytes()}")
    return 0


def _cmd_lookup(args) -> int:
    """Serve placement queries from an exported partition store."""
    from repro.serving import LookupService, PartitionStore

    store = PartitionStore.open(args.store)
    if args.verify:
        store.verify()
        print("checksums         : OK")
    svc = LookupService(store)
    if args.vertex:
        ids = np.asarray(args.vertex, dtype=np.int64)
        routed = svc.vertex_partitions(ids, hint=args.hint)
        for v, p in zip(ids.tolist(), routed.tolist()):
            replicas = svc.replica_set(v).tolist()
            print(f"vertex {v} -> partition {p} (replicas {replicas})")
    if args.edge:
        u, v = args.edge
        print(f"edge ({u}, {v}) -> partition {svc.edge_partition(u, v)}")
    return 0


def _cmd_info(args) -> int:
    stream = FileEdgeStream(args.input)
    n_seen = -1
    m = 0
    for chunk in stream.chunks():
        m += chunk.shape[0]
        if chunk.size:
            n_seen = max(n_seen, int(chunk.max()))
    print(f"edges       : {m}")
    print(f"max vertex  : {n_seen}")
    print(f"bytes       : {m * 8}")
    return 0


def _cmd_experiment(args) -> int:
    """Delegate to the experiment dispatcher."""
    from repro.experiments.__main__ import main as experiments_main

    argv = [args.name]
    if args.scale is not None:
        argv += ["--scale", str(args.scale)]
    return experiments_main(argv)


def _cmd_list(args) -> int:
    print("datasets:")
    for spec in DATASETS.values():
        print(
            f"  {spec.name:4s} {spec.kind:6s} paper |E|={spec.paper_edges:>14,d} "
            f"stand-in |E|~{spec.standin_edges:>9,d}"
        )
    print("algorithms:")
    for name in ALL_PARTITIONERS:
        print(f"  {name}")
    return 0


def _chunk_size_arg(value: str):
    """``--chunk-size`` parser: a positive integer or the string 'auto'."""
    if value == "auto":
        return "auto"
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {value!r}"
        ) from None


def build_parser() -> argparse.ArgumentParser:
    """The repro-partition argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-partition",
        description="2PS-L out-of-core edge partitioning toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="write a dataset stand-in to disk")
    gen.add_argument("--dataset", default=None, choices=sorted(DATASETS))
    gen.add_argument("--scale", type=float, default=1.0)
    gen.add_argument("--seed", type=int, default=7)
    gen.add_argument(
        "--rmat-scale",
        type=int,
        default=None,
        help="generate an R-MAT graph of 2**SCALE vertices streamed "
        "straight to disk in bounded memory (instead of --dataset)",
    )
    gen.add_argument(
        "--edge-factor",
        type=int,
        default=16,
        help="edges per vertex for --rmat-scale (default 16)",
    )
    gen.add_argument(
        "--batch-edges",
        type=int,
        default=1 << 20,
        help="generation batch size for --rmat-scale; bounds peak memory",
    )
    gen.add_argument("--out", required=True)
    gen.set_defaults(func=_cmd_generate)

    part = sub.add_parser("partition", help="partition a binary edge list")
    part.add_argument("--input", required=True)
    part.add_argument(
        "--algorithm", default="2PS-L", choices=sorted(ALL_PARTITIONERS)
    )
    part.add_argument("--k", type=int, required=True)
    part.add_argument("--alpha", type=float, default=1.05)
    part.add_argument("--n-vertices", type=int, default=None)
    part.add_argument(
        "--backend",
        # Known-but-unavailable optional backends (e.g. numba without
        # its dependency) stay listed so the request reaches the clear
        # PartitioningError instead of an argparse usage error.
        choices=sorted(set(available_backends()) | set(missing_backends())),
        default=None,
        help="kernel backend for the streaming passes "
        f"(default: {DEFAULT_BACKEND}; backends are bit-exact)",
    )
    part.add_argument(
        "--chunk-size",
        type=_chunk_size_arg,
        default=None,
        help="edges per stream chunk for every pass, or 'auto' to derive "
        "one from |V| and k (perf knob only)",
    )
    part.add_argument(
        "--tune",
        choices=("auto",),
        default=None,
        help="probe the stream head and auto-pick execution knobs "
        "(backend / chunk size / sync interval); decisions are "
        "deterministic and bit-exact with an untuned run",
    )
    part.add_argument(
        "--runner",
        choices=sorted(RUNNERS),
        default=None,
        help="execution runner for the sharded parallel path (2PS-L / "
        "2PS-HDRF only); 'process' runs real multiprocessing workers "
        "over shared-memory state",
    )
    part.add_argument(
        "--n-workers",
        type=int,
        default=None,
        help="parallel partitioner instances (implies the parallel path; "
        "default 4 when --runner is given)",
    )
    part.add_argument(
        "--workers",
        default=None,
        metavar="HOST:PORT,...",
        help="comma-separated addresses of pre-started distributed "
        "workers (the 'worker' subcommand); implies --runner "
        "distributed with one shard per address and needs a "
        "file-backed --input (workers stream their own shards)",
    )
    part.add_argument(
        "--sync-interval",
        type=int,
        default=None,
        help="edges per worker between state synchronizations (implies "
        "the parallel path; default 65536 when it is active)",
    )
    part.add_argument(
        "--parallel-phase1",
        action="store_true",
        help="shard the Phase-1 degree and clustering passes through the "
        "runner too (implies the parallel path; bit-exact with the "
        "sequential Phase 1 at --n-workers 1)",
    )
    part.add_argument(
        "--packed-state",
        action="store_true",
        help="store the replica matrix bit-packed (ceil(k/8) bytes per "
        "vertex; 2PS-L / 2PS-HDRF only, bit-exact with dense)",
    )
    part.add_argument(
        "--prefetch",
        action="store_true",
        help="double-buffer file reads through a background thread "
        "(wall-clock knob only; chunks and I/O accounting are identical)",
    )
    part.add_argument("--device", choices=sorted(_DEVICES), default=None)
    part.add_argument("--out", default=None, help="write int32 assignments")
    part.add_argument(
        "--out-dir",
        default=None,
        help="write the partitioned graph (one edge file per partition + manifest)",
    )
    part.set_defaults(func=_cmd_partition)

    wrk = sub.add_parser(
        "worker",
        help="run a distributed-partitioning worker server "
        "(pair with partition --workers host:port,...)",
    )
    wrk.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (default loopback; use 0.0.0.0 to "
        "accept coordinators from other hosts)",
    )
    wrk.add_argument(
        "--port",
        type=int,
        default=0,
        help="port to bind (default 0: the OS picks one, printed on stdout)",
    )
    wrk.add_argument(
        "--max-sessions",
        type=int,
        default=None,
        help="exit after serving this many coordinator sessions "
        "(default: serve until killed)",
    )
    wrk.set_defaults(func=_cmd_worker)

    proc = sub.add_parser(
        "process", help="run a simulated distributed workload on partitioned data"
    )
    proc.add_argument("--dir", required=True, help="partitioned output directory")
    proc.add_argument(
        "--workload",
        choices=("pagerank", "components", "gnn"),
        default="pagerank",
    )
    proc.add_argument("--supersteps", type=int, default=30)
    proc.set_defaults(func=_cmd_process)

    info = sub.add_parser("info", help="statistics of a binary edge list")
    info.add_argument("--input", required=True)
    info.set_defaults(func=_cmd_info)

    exp_store = sub.add_parser(
        "serve-export",
        help="persist a partitioning as a memory-mappable lookup store",
    )
    exp_store.add_argument("--input", required=True, help="binary edge list")
    exp_store.add_argument("--k", type=int, required=True)
    exp_store.add_argument("--alpha", type=float, default=1.05)
    exp_store.add_argument("--n-vertices", type=int, default=None)
    exp_store.add_argument(
        "--algorithm", default="2PS-L", choices=sorted(ALL_PARTITIONERS)
    )
    exp_store.add_argument(
        "--assignments",
        default=None,
        help="int32 assignment file from `partition --out`; when given, "
        "replicas and sizes are rebuilt from it instead of re-partitioning",
    )
    exp_store.add_argument("--store", required=True, help="store directory")
    exp_store.set_defaults(func=_cmd_serve_export)

    lkp = sub.add_parser(
        "lookup", help="query vertex/edge placement from an exported store"
    )
    lkp.add_argument("--store", required=True, help="store directory")
    lkp.add_argument(
        "--vertex",
        type=int,
        nargs="+",
        default=None,
        help="vertex id(s) to route (batched when several are given)",
    )
    lkp.add_argument(
        "--hint",
        type=int,
        default=None,
        help="caller partition: preferred when the vertex has a replica there",
    )
    lkp.add_argument(
        "--edge",
        type=int,
        nargs=2,
        metavar=("U", "V"),
        default=None,
        help="edge endpoints to look up",
    )
    lkp.add_argument(
        "--verify",
        action="store_true",
        help="recompute the store's CRC-32 checksums before serving",
    )
    lkp.set_defaults(func=_cmd_lookup)

    exp = sub.add_parser(
        "experiment", help="regenerate a paper table/figure (or 'all')"
    )
    exp.add_argument("name", help="experiment id, e.g. figure2, table4, all")
    exp.add_argument("--scale", type=float, default=None)
    exp.set_defaults(func=_cmd_experiment)

    lst = sub.add_parser("list", help="list datasets and algorithms")
    lst.set_defaults(func=_cmd_list)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
