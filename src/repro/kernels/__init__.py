"""Backend-dispatched chunk-kernel execution layer for streaming passes.

Every streaming pass of the toolkit — degree counting, Phase-1 clustering,
2PS-L pre-partitioning, remaining-edge scoring, and the stateless hash
baselines — consumes the edge stream as numpy ``(c, 2)`` chunks.  This
package turns "what happens to a chunk" into a pluggable *kernel backend*
so the same algorithm can run as a slow, obviously-correct per-edge loop
or as vectorized numpy array code:

- ``python`` — the reference backend.  Pure per-edge Python loops with the
  exact control flow of the paper's pseudocode.  It is the semantic ground
  truth that every other backend is property-tested against.
- ``numpy`` — the default backend.  Chunk-vectorized kernels: per-chunk
  ``np.bincount`` for degrees, gather/mask/scatter for the pre-partition
  pass, vectorized splitmix64 for the stateless baselines, and
  conflict-free sub-batching for the stateful clustering and scoring
  passes (see below).
- ``numba`` — an *optional* compiled backend
  (:mod:`repro.kernels.numba_backend`): the numpy chunk orchestration
  with the serial conflict loops (Phase-1 clustering, the 2PS-L scoring
  pass, the 2PS-HDRF argmax, the classic HDRF baseline) replaced by
  ``numba.njit``-compiled per-edge kernels.  Registered only when the
  numba import succeeds; see *Optional backends* below for the fallback
  contract.
- ``numba-parallel`` — ``numba`` plus ``numba.prange`` execution of the
  conflict-free sub-batches (the 2PS-L scoring batch and the Phase-1
  migration batch), registered and missing together with ``numba``.
  See *Parallel sub-batch determinism* below for the rules that keep it
  bit-exact.

Backend contract
----------------
A backend subclasses :class:`~repro.kernels.base.KernelBackend` and must
be **bit-exact** with the ``python`` reference backend: for any stream,
chunk size, ``k`` and ``alpha``, every pass must produce identical outputs
(degree arrays, cluster ids and volumes, per-edge partition assignments,
replication bits, partition sizes) *and* identical machine-neutral cost
counts.  Chunk size is therefore a pure performance knob, never a
semantics knob.  The equivalence property tests in
``tests/test_kernels.py`` enforce this contract on random multigraphs,
sweeping ``chunk_size`` through degenerate values (1, primes, larger than
the edge count).

The tricky part of the contract is the *stateful* passes, where an edge's
decision depends on state mutated by earlier edges.  The ``numpy`` backend
preserves serial semantics with two techniques:

- *Conflict-free sub-batching* (Phase-1 clustering, 2PS-L scoring): an
  edge can be scored/migrated vectorized only when no other edge in the
  chunk touches the same mutable state (vertex replica rows for scoring;
  vertices *and* clusters for Phase-1 migration), and processing it out of
  order is provably equivalent; every colliding edge falls through to the
  serial reference kernel, in stream order.
- *Speculate-verify-repair* (the 2PS-HDRF remaining pass, where every
  edge mutates the partition sizes every other edge's balance term
  reads, so no conflict-free subset exists): block decisions are guessed
  vectorized, each edge's exact serial-order inputs are reconstructed
  vectorized (prefix counts for sizes, a segmented prefix-OR for replica
  rows), and re-scoring confirms a prefix of provably-serial decisions;
  the unverified tail runs serially.  The serial path itself uses an
  exact scalar engine (``_HdrfScalarEngine``) that collapses the k-way
  argmax to at most four candidates.

In both techniques, a whole block falls back to the serial kernel
whenever any partition could hit the hard balance cap inside it (the
remaining capacity ``capacity - max(sizes)`` is smaller than the block's
candidate count), because cap overflow makes decisions order-dependent
through the masking / hash / least-loaded fallback chains.

Parallel sub-batch determinism
------------------------------
A backend may execute a conflict-free sub-batch with *thread-level*
parallelism (the ``numba-parallel`` backend runs the hooks
``_apply_remaining_batch`` and ``_migrate_batch`` under
``numba.prange``) only under these rules, which make the schedule
unobservable:

- every parallel row must read and write state no other row of the
  region touches — exactly the conflict-freedom invariant the sub-batch
  filters already establish (pairwise-disjoint endpoint replica rows for
  scoring; block-unique vertices *and* block-private clusters for
  Phase-1 migration);
- any cross-row aggregate must be an **order-insensitive reduction**
  (integer sums, ``np.bincount`` over the per-row outputs) or must be
  serialized outside the parallel region — float accumulation across
  rows is *not* order-insensitive and is therefore banned inside a
  parallel region;
- when the parallel runtime is absent the same kernel body must run
  serially (``prange`` degrades to ``range``), so the fallback is
  deterministic by construction, not by luck.

Under these rules parallel execution is bit-identical to the serial
backends for every schedule and thread count;
``tests/test_numba_backend.py`` pins ``numba-parallel`` against
``numba`` and the reference.

Auto-tuning determinism
-----------------------
The probe-window tuner (:mod:`repro.tuning`, ``tune="auto"``) picks
``{backend, chunk_size, sync_interval}`` before a run.  Its contract:

- decisions are pure functions of the probe data, the declared stream
  shape (``|E|``, ``|V|``, ``k``), the seed, and the *set* of available
  backends — never of wall-clock measurements — so a fixed seed + stream
  always yields the same decision;
- every knob it may change is semantics-free under the contracts above:
  backends are bit-exact by this package's contract, ``chunk_size`` is a
  pure performance knob, and ``sync_interval`` is only tuned when it
  cannot change results (single-worker or serial-runner schedules);
- therefore a tuned run is bit-exact with the corresponding untuned run
  — enforced by the differential harness's ``tune`` dimension
  (``tests/differential.py``).

Phase-1 merge ops (parallel barriers)
-------------------------------------
The sharded Phase 1 (``ParallelTwoPhase(parallel_phase1=True)``) runs the
degree and clustering passes per shard window and folds worker results at
barriers through two backend ops.  A new backend must reproduce both
**bit for bit** (they decide cluster ids, and cluster ids feed every
downstream pass):

- ``merge_phase1_degrees(partials, n_hint)`` — element-wise integer sum
  of per-shard partial degree vectors, grown to ``n_hint``.  The merge is
  **associative and commutative** (int64 addition), so any merge tree or
  worker order is exact; runners exploit this by collecting partials in
  whatever completion order is convenient.
- ``merge_phase1_clustering(v2c, volumes, worker_states, degrees)`` — an
  **ordered left fold** of worker deltas against the pre-barrier snapshot
  ``(v2c, volumes)``.  Worker ``w``'s export was produced from the
  snapshot, so its fresh cluster ids occupy ``[len(volumes),
  len(volumes_w))``; the fold remaps them to one global sequence in
  worker order, resolves per-vertex conflicts first-worker-wins, and
  recomputes merged volumes exactly as the sum of member true degrees
  (the Algorithm-1 invariant, so over-cap overshoot from stale windows is
  carried through without drift).  The fold is **associative over the
  ordered worker sequence** — deltas are mutually independent, so any
  grouping that preserves worker order gives the same result — but **not
  commutative**: reordering workers changes both the conflict winners and
  the fresh-id remap.  Every runner therefore merges in ascending worker
  index; a backend (or runner) that merges in any other order breaks the
  ``ProcessRunner == SimulatedRunner`` contract.
- ``clustering_load(v2c, volumes, degrees)`` — the inverse of
  ``clustering_export``: an independent backend-native state from
  exported arrays, used to hand each worker the stale snapshot before a
  window.  ``load(export(st))`` must round-trip exactly.

``tests/test_kernels.py`` (``TestPhase1MergeOps``) pins the twins against
each other on randomized barrier scenarios; the randomized differential
harness (``tests/differential.py``) pins the full pipeline across
runners, backends and seeds.

The distributed runner (``repro.core.distributed``) rides these exact
ops over its wire protocol: workers ship ``clustering_export`` payloads
and partial degree vectors as typed wire frames, and the coordinator
folds them with the same ``merge_phase1_degrees`` /
``merge_phase1_clustering`` calls in the same ascending-worker order —
so the ordered-fold contract above is also the wire contract.  Phase-2
delta barriers likewise reuse the shared-memory merge semantics: the
socket path (``extract_replica_delta`` -> frames ->
``merge_replica_wire_deltas`` -> ``apply_replica_refresh``) is
property-pinned bit-exact against in-place ``merge_replica_deltas``
(``tests/test_state.py``), which is what lets ``DistributedRunner``
join the ``SimulatedRunner == ProcessRunner`` equality class without
any backend changes.  Backends never see sockets; a backend correct
under this contract is distributed-correct for free.

Packed replica rows (out-of-core states)
----------------------------------------
``PartitionState(..., packed=True)`` stores the replica matrix as
bit-packed rows (``(k + 7) // 8`` little-bitorder bytes per vertex, the
``np.packbits(..., bitorder="little")`` layout) behind
:class:`~repro.partitioning.state.PackedReplicaMatrix`.  Kernels never
see the byte layout: the wrapper speaks the same indexing protocol as
the dense bool matrix — ``replicas[rows, cols]`` bit gathers,
``replicas[rows]`` row gathers, ``replicas[us, ps] = True`` duplicate-
safe bit scatters, ``sum``/``any``/``copy``/``__array__`` — so a
backend written against the dense protocol runs packed states
unchanged.  The contract additions for backends that bypass the
protocol with raw-``ndarray`` tricks:

- detect packed storage with ``getattr(replicas, "packed", None)`` and
  either handle the packed rows natively (the row bytes ARE the
  ``np.packbits`` encoding — ``_HdrfScalarEngine._pack_row`` just reads
  them) or route to a protocol-speaking twin, the way the ``numba``
  backend's remaining passes delegate to their inherited numpy
  implementations for non-``ndarray`` replica matrices;
- bit-*clear* writes don't exist: replica bits are monotone within a
  run, and ``PackedReplicaMatrix.__setitem__`` rejects anything but
  ``True`` scatters (barrier refreshes assign whole rows instead);
- tail bits (``k`` not a byte multiple) must stay zero — popcount-based
  metrics (``sum``) trust them;
- packed and dense states must stay **bit-exact** for any stream,
  chunk size and runner: the huge-shape tier of the differential
  harness (``tests/differential.py --out-of-core``) and
  ``tests/test_state.py`` pin this across the backend matrix.

Writing a backend
-----------------
1. Subclass :class:`~repro.kernels.base.KernelBackend` (or an existing
   backend — ``NumpyBackend`` subclasses ``PythonBackend`` and overrides
   only the passes it vectorizes, inheriting the rest).
2. Override any subset of the pass methods: ``degree_pass``,
   ``clustering_true_pass``, ``clustering_partial_pass``,
   ``prepartition_pass``, ``remaining_pass_linear``,
   ``remaining_pass_hdrf``, ``hdrf_baseline_pass``, ``stateless_pass``.
   Keep the serial fallback
   path for conflicting edges — that is what makes correctness local —
   and route order-sensitive decisions through the shared twins
   (``PythonBackend._fallback_partition`` for the hash/least-loaded
   chain, ``PythonBackend.hdrf_choose`` for the HDRF argmax) so float
   arithmetic and tie-breaks can never diverge between backends.
3. Register it: ``register_backend("numba", NumbaBackend)``.  The name
   becomes valid everywhere a ``backend=`` parameter or the CLI
   ``--backend`` flag is accepted.
4. Run the equivalence suite against it.  A backend is correct only when
   it passes **all** of:

   - ``tests/test_kernels.py`` — per-pass property sweep against the
     reference backend over random multigraphs and hub-heavy R-MAT,
     with ``chunk_size`` through degenerate values (1, primes, larger
     than ``|E|``), ``alpha`` down to 1.0 (cap guard) and
     ``hdrf_lambda`` through 0 (degenerate balance term);
   - ``tests/test_parallel_kernels.py`` — the same kernels dispatched
     through the sharded parallel path (stale state views, sync-window
     streams, barrier merges), plus ``FileEdgeStream`` vs
     ``InMemoryEdgeStream`` source parity;
   - ``benchmarks/run_bench.py --smoke`` — end-to-end bit-exactness on
     a 65k-edge R-MAT plus the speedup gates (CI runs exactly this).

   Equality is *byte-level*: assignments, replica bits, partition sizes,
   cluster state **and** machine-neutral cost counters.  Add the backend
   name to the sweep lists (they enumerate ``available_backends()``, so
   registration before test collection usually suffices).

The ``numba`` backend follows exactly this recipe: it keeps the numpy
chunk orchestration (and inherits the merge ops unchanged) and replaces
only the serial conflict kernels with compiled per-edge loops that are
line-for-line transliterations of the reference bodies.

Optional backends
-----------------
A backend whose dependency may be absent (today: ``numba``) registers
through :func:`_register_optional_backends` at import time.  When the
dependency imports, the backend behaves like any other registry entry.
When it does not:

- the name is *known but missing*: it appears in :func:`missing_backends`
  (name -> human-readable reason) and **not** in
  :func:`available_backends`, so equivalence sweeps and the benchmark
  matrix never enumerate a backend that cannot run;
- :func:`get_backend` on the missing name degrades to the
  :data:`DEFAULT_BACKEND` with a one-time ``RuntimeWarning`` — library
  callers (partitioner constructors, runner workers) keep working, just
  without the speedup.  Workers of a parallel run never hit the warning
  at all: ``ParallelTwoPhase`` ships the *resolved* backend name to the
  runner session;
- explicit user-facing requests stay loud: the CLI raises a
  :class:`~repro.errors.PartitioningError` for ``--backend <missing>``
  instead of silently falling back (``repro.cli``).

Registering the name manually (``register_backend("numba", ...)``) clears
the missing state — that is how the tests pin the numba kernel logic in
its interpreted mode on hosts without numba.
"""

from __future__ import annotations

import warnings

from repro.errors import ConfigurationError
from repro.kernels.base import ClusteringState, KernelBackend, TwoPhaseContext
from repro.kernels.python_backend import PythonBackend
from repro.kernels.numpy_backend import NumpyBackend

#: Name of the backend used when none is requested explicitly.
DEFAULT_BACKEND = "numpy"

_REGISTRY: dict[str, type[KernelBackend]] = {}
_INSTANCES: dict[str, KernelBackend] = {}

#: Optional backends whose dependency is absent: name -> reason.  Kept
#: disjoint from ``_REGISTRY`` by construction.
_MISSING: dict[str, str] = {}

#: Missing-backend names whose fallback warning already fired (one-time).
_FALLBACK_WARNED: set[str] = set()


def register_backend(name: str, cls: type[KernelBackend]) -> None:
    """Register a kernel backend class under ``name`` (see module docs).

    The registry key must equal ``cls.name``: results record the
    backend by ``cls.name``, and the parallel path ships the *resolved*
    instance name to runner workers (which look it up again), so an
    alias registration would produce runs that cannot name their own
    backend.
    """
    if not issubclass(cls, KernelBackend):
        raise ConfigurationError(
            f"backend {name!r} must subclass KernelBackend, got {cls!r}"
        )
    if cls.name != name:
        raise ConfigurationError(
            f"backend registry key {name!r} must equal {cls.__name__}.name "
            f"({cls.name!r}); aliases would break resolved-name lookups"
        )
    _REGISTRY[name] = cls
    _INSTANCES.pop(name, None)
    _MISSING.pop(name, None)
    _FALLBACK_WARNED.discard(name)


def available_backends() -> tuple[str, ...]:
    """Registered backend names, reference backend first."""
    return tuple(sorted(_REGISTRY, key=lambda n: (n != "python", n)))


def missing_backends() -> dict[str, str]:
    """Known-but-unavailable optional backends -> human-readable reason.

    Disjoint from :func:`available_backends`; see *Optional backends* in
    the module docs for how :func:`get_backend` treats these names.
    """
    return dict(_MISSING)


def get_backend(name: str | None = None) -> KernelBackend:
    """Resolve a backend name (``None`` -> :data:`DEFAULT_BACKEND`).

    Backends are stateless between runs, so instances are shared.  A
    known-but-unavailable optional backend (see :func:`missing_backends`)
    resolves to the :data:`DEFAULT_BACKEND` with a one-time
    ``RuntimeWarning`` naming the missing dependency.

    Raises
    ------
    ConfigurationError
        For unknown names (message lists the registry).
    """
    key = DEFAULT_BACKEND if name is None else str(name)
    if key not in _REGISTRY and key in _MISSING:
        if key not in _FALLBACK_WARNED:
            _FALLBACK_WARNED.add(key)
            warnings.warn(
                f"kernel backend {key!r} is unavailable on this host "
                f"({_MISSING[key]}); falling back to the "
                f"{DEFAULT_BACKEND!r} backend",
                RuntimeWarning,
                stacklevel=2,
            )
        key = DEFAULT_BACKEND
    if key not in _REGISTRY:
        raise ConfigurationError(
            f"unknown kernel backend {key!r}; available: {list(available_backends())}"
        )
    if key not in _INSTANCES:
        _INSTANCES[key] = _REGISTRY[key]()
    return _INSTANCES[key]


def _register_optional_backends() -> None:
    """(Re-)detect optional compiled backends.

    Runs at import; tests re-run it after monkeypatching the numba
    import to exercise the absence path on hosts where numba is
    installed.  Re-detection fully reconciles the registered / missing /
    warned state in both directions.
    """
    from repro.kernels import numba_backend

    if numba_backend.numba_available():
        register_backend("numba", numba_backend.NumbaBackend)
        register_backend("numba-parallel", numba_backend.NumbaParallelBackend)
    else:
        reason = (
            numba_backend.unavailable_reason() or "numba is not installed"
        )
        for name in ("numba", "numba-parallel"):
            _REGISTRY.pop(name, None)
            _INSTANCES.pop(name, None)
            _MISSING[name] = reason
            _FALLBACK_WARNED.discard(name)


register_backend("python", PythonBackend)
register_backend("numpy", NumpyBackend)
_register_optional_backends()

__all__ = [
    "DEFAULT_BACKEND",
    "ClusteringState",
    "KernelBackend",
    "NumpyBackend",
    "PythonBackend",
    "TwoPhaseContext",
    "available_backends",
    "get_backend",
    "missing_backends",
    "register_backend",
]
