"""The ``python`` reference backend: per-edge pure-Python kernels.

This backend is the semantic ground truth.  Every pass follows the
paper's pseudocode edge by edge, with hot-loop state held in plain Python
lists (scalar indexing on lists is several times faster than on numpy
arrays).  Vectorized backends are property-tested for bit-exact
equivalence against it — keep this code boring and obviously correct.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import ClusteringState, KernelBackend, TwoPhaseContext
from repro.partitioning.hashutil import splitmix64
from repro.partitioning.state import LeastLoadedTracker


class PythonBackend(KernelBackend):
    """Per-edge reference kernels (see module docstring)."""

    name = "python"

    # ------------------------------------------------------------------
    # stateless passes
    # ------------------------------------------------------------------
    def degree_pass(self, stream, n_hint: int | None = None) -> np.ndarray:
        deg: list[int] = [0] * (int(n_hint) if n_hint else 0)
        for chunk in stream.chunks():
            for u, v in chunk.tolist():
                top = u if u >= v else v
                if top >= len(deg):
                    deg.extend([0] * (top + 1 - len(deg)))
                deg[u] += 1
                deg[v] += 1
        return np.asarray(deg, dtype=np.int64)

    def stateless_pass(self, stream, map_chunk, state, assignments) -> None:
        idx = 0
        for chunk in stream.chunks():
            for row in range(chunk.shape[0]):
                u = chunk[row : row + 1, 0]
                v = chunk[row : row + 1, 1]
                parts = map_chunk(u, v)
                state.scatter_edges(u, v, parts)
                assignments[idx] = parts[0]
                idx += 1

    # ------------------------------------------------------------------
    # Phase 1: streaming clustering
    # ------------------------------------------------------------------
    def clustering_init(self, degrees: np.ndarray) -> ClusteringState:
        return ClusteringState(
            v2c=[-1] * len(degrees), vol=[], deg=degrees.tolist()
        )

    def clustering_export(self, st: ClusteringState):
        return (
            np.asarray(st.v2c, dtype=np.int64),
            np.asarray(st.vol, dtype=np.int64),
            np.asarray(st.deg, dtype=np.int64),
        )

    def clustering_load(self, v2c, volumes, degrees) -> ClusteringState:
        return ClusteringState(
            v2c=np.asarray(v2c, dtype=np.int64).tolist(),
            vol=np.asarray(volumes, dtype=np.int64).tolist(),
            deg=np.asarray(degrees, dtype=np.int64).tolist(),
        )

    # ------------------------------------------------------------------
    # Phase-1 barrier merges (reference twins; see base-class docs)
    # ------------------------------------------------------------------
    def merge_phase1_degrees(self, partials, n_hint=None) -> np.ndarray:
        length = int(n_hint) if n_hint else 0
        for partial in partials:
            length = max(length, len(partial))
        out = [0] * length
        for partial in partials:
            for i, d in enumerate(
                partial.tolist() if hasattr(partial, "tolist") else partial
            ):
                out[i] += d
        return np.asarray(out, dtype=np.int64)

    def merge_phase1_clustering(self, v2c, volumes, worker_states, degrees):
        base = len(volumes)
        snapshot = np.asarray(v2c, dtype=np.int64).tolist()
        merged = list(snapshot)
        claimed = [False] * len(merged)
        offset = base
        for v2c_w, vol_w in worker_states:
            shift = offset - base
            wl = np.asarray(v2c_w, dtype=np.int64).tolist()
            for i, c in enumerate(wl):
                if c != snapshot[i] and not claimed[i]:
                    merged[i] = c + shift if c >= base else c
                    claimed[i] = True
            offset += len(vol_w) - base
        vol = [0] * offset
        degl = np.asarray(degrees, dtype=np.int64).tolist()
        for i, c in enumerate(merged):
            if c >= 0:
                vol[c] += degl[i]
        return (
            np.asarray(merged, dtype=np.int64),
            np.asarray(vol, dtype=np.int64),
        )

    @staticmethod
    def true_degree_edges(v2c, vol, deg, pairs, cap) -> int:
        """Reference Algorithm-1 body over ``(u, v)`` pairs on list state;
        returns the number of cluster updates.  Shared with the numpy
        backend, which falls back to this kernel when a pass turns out to
        be serial-dominated."""
        updates = 0
        for u, v in pairs:
            cu = v2c[u]
            if cu < 0:
                cu = len(vol)
                v2c[u] = cu
                vol.append(deg[u])
                updates += 1
            cv = v2c[v]
            if cv < 0:
                cv = len(vol)
                v2c[v] = cv
                vol.append(deg[v])
                updates += 1
            if cu == cv:
                continue
            vol_u = vol[cu]
            vol_v = vol[cv]
            if vol_u <= cap and vol_v <= cap:
                # v_s: endpoint whose cluster (without it) is smaller.
                if vol_u - deg[u] <= vol_v - deg[v]:
                    vs, cs, cl, ds = u, cu, cv, deg[u]
                else:
                    vs, cs, cl, ds = v, cv, cu, deg[v]
                if vol[cl] + ds <= cap:
                    vol[cl] += ds
                    vol[cs] -= ds
                    v2c[vs] = cl
                    updates += 1
        return updates

    @staticmethod
    def partial_degree_edges(v2c, vol, deg, pairs, cap) -> int:
        """Reference Hollocou body (degrees counted on the fly) over
        ``(u, v)`` pairs on list state; returns the update count.

        Volumes are maintained incrementally (+1 per endpoint occurrence),
        so a cluster's volume equals the sum of its members' *partial*
        degrees observed so far — exactly the quantity Hollocou's
        algorithm compares.
        """
        updates = 0
        for u, v in pairs:
            deg[u] += 1
            deg[v] += 1
            cu = v2c[u]
            if cu < 0:
                cu = len(vol)
                v2c[u] = cu
                vol.append(0)
            cv = v2c[v]
            if cv < 0:
                cv = len(vol)
                v2c[v] = cv
                vol.append(0)
            vol[cu] += 1
            vol[cv] += 1
            if cu == cv:
                continue
            vol_u = vol[cu]
            vol_v = vol[cv]
            if vol_u <= cap and vol_v <= cap:
                if vol_u - deg[u] <= vol_v - deg[v]:
                    vs, cs, cl, ds = u, cu, cv, deg[u]
                else:
                    vs, cs, cl, ds = v, cv, cu, deg[v]
                if vol[cl] + ds <= cap:
                    vol[cl] += ds
                    vol[cs] -= ds
                    v2c[vs] = cl
                    updates += 1
        return updates

    def clustering_true_pass(self, stream, st, cap, cost) -> None:
        updates = 0
        edges = 0
        for chunk in stream.chunks():
            edges += chunk.shape[0]
            updates += self.true_degree_edges(
                st.v2c, st.vol, st.deg, chunk.tolist(), cap
            )
        if cost is not None:
            cost.cluster_updates += updates
            cost.edges_streamed += edges

    def clustering_partial_pass(self, stream, st, cap, cost) -> None:
        updates = 0
        edges = 0
        for chunk in stream.chunks():
            edges += chunk.shape[0]
            updates += self.partial_degree_edges(
                st.v2c, st.vol, st.deg, chunk.tolist(), cap
            )
        if cost is not None:
            cost.cluster_updates += updates
            cost.edges_streamed += edges

    # ------------------------------------------------------------------
    # Phase 2: 2PS-L partitioning passes
    # ------------------------------------------------------------------
    @staticmethod
    def _fallback_partition(
        u, v, deg, sizes, capacity, k, hash_seed, cost, least_loaded
    ) -> int:
        """Hash on the higher-degree endpoint; least-loaded as last resort.

        The reference implementation of the order-sensitive fallback
        chain — every *interpreted* backend's serial path must route
        through it so the chain cannot diverge between backends.  One
        exception by necessity: the jitted
        ``numba_backend._remaining_linear_kernel`` inlines this chain
        (compiled code cannot call back into Python); any change here
        must be mirrored there in lockstep, and the cross-backend
        equivalence suite pins the pair.  ``least_loaded`` is a
        zero-argument callable (e.g. ``LeastLoadedTracker.argmin`` or an
        ``np.argmin`` closure) returning the smallest-index minimum of
        the live sizes.
        """
        hv = u if deg[u] >= deg[v] else v
        p = int(splitmix64(hv, hash_seed) % np.uint64(k))
        cost.hash_evaluations += 1
        if sizes[p] >= capacity:
            p = least_loaded()
        return p

    def prepartition_pass(self, stream, ctx: TwoPhaseContext) -> int:
        v2c = ctx.v2c.tolist()
        c2p = ctx.c2p.tolist()
        deg = ctx.degrees.tolist()
        replicas = ctx.state.replicas
        capacity = ctx.state.capacity
        sizes = ctx.state.sizes.tolist()
        least_loaded = LeastLoadedTracker(sizes).argmin
        assignments = ctx.assignments
        k, cost, seed = ctx.k, ctx.cost, ctx.hash_seed
        idx = 0
        n_pre = 0
        for chunk in stream.chunks():
            for u, v in chunk.tolist():
                c1 = v2c[u]
                c2 = v2c[v]
                p1 = c2p[c1]
                if c1 == c2 or p1 == c2p[c2]:
                    p = p1
                    if sizes[p] >= capacity:
                        p = self._fallback_partition(
                            u, v, deg, sizes, capacity, k, seed, cost,
                            least_loaded,
                        )
                    sizes[p] += 1
                    replicas[u, p] = True
                    replicas[v, p] = True
                    assignments[idx] = p
                    n_pre += 1
                idx += 1
        ctx.state.sizes[:] = sizes
        cost.edges_streamed += stream.n_edges
        return n_pre

    def remaining_pass_linear(self, stream, ctx: TwoPhaseContext) -> None:
        v2c = ctx.v2c.tolist()
        c2p = ctx.c2p.tolist()
        vol = ctx.volumes.tolist()
        deg = ctx.degrees.tolist()
        replicas = ctx.state.replicas
        capacity = ctx.state.capacity
        sizes = ctx.state.sizes.tolist()
        least_loaded = LeastLoadedTracker(sizes).argmin
        assignments = ctx.assignments
        k, cost, seed = ctx.k, ctx.cost, ctx.hash_seed
        idx = 0
        n_scored = 0
        for chunk in stream.chunks():
            for u, v in chunk.tolist():
                c1 = v2c[u]
                c2 = v2c[v]
                p1 = c2p[c1]
                p2 = c2p[c2]
                if c1 == c2 or p1 == p2:
                    idx += 1  # pre-partitioned in the previous pass
                    continue
                du = deg[u]
                dv = deg[v]
                dsum = du + dv
                vol1 = vol[c1]
                vol2 = vol[c2]
                vsum = vol1 + vol2
                # Score candidate p1: c1 is mapped to p1 (and c2 is not).
                s1 = vol1 / vsum if vsum else 0.0
                if replicas[u, p1]:
                    s1 += 2.0 - du / dsum
                if replicas[v, p1]:
                    s1 += 2.0 - dv / dsum
                # Score candidate p2 symmetrically.
                s2 = vol2 / vsum if vsum else 0.0
                if replicas[u, p2]:
                    s2 += 2.0 - du / dsum
                if replicas[v, p2]:
                    s2 += 2.0 - dv / dsum
                n_scored += 2
                p = p1 if s1 >= s2 else p2
                if sizes[p] >= capacity:
                    p = self._fallback_partition(
                        u, v, deg, sizes, capacity, k, seed, cost,
                        least_loaded,
                    )
                sizes[p] += 1
                replicas[u, p] = True
                replicas[v, p] = True
                assignments[idx] = p
                idx += 1
        ctx.state.sizes[:] = sizes
        cost.score_evaluations += n_scored
        cost.edges_streamed += stream.n_edges

    @staticmethod
    def hdrf_choose(
        u_row, v_row, theta_u, sizes_np, capacity, lam, eps
    ) -> int:
        """One HDRF argmax over all k partitions — the scoring twin.

        ``u_row``/``v_row`` are the live boolean replica rows of the two
        endpoints, ``theta_u = d_u / (d_u + d_v)`` (true or partial
        degrees, caller's choice), ``sizes_np`` the float64 view of the
        live partition sizes.  Partitions at the hard cap are masked to
        ``-inf`` before the argmax (first-index tie-break, as
        ``np.argmax``).

        This is the reference implementation of the HDRF decision — the
        reference 2PS-HDRF pass, the ``numpy`` backend's serial fallback
        and the classic HDRF baseline all route through it, so the
        score arithmetic (and therefore its float rounding) cannot
        diverge between them.  One exception by necessity: the jitted
        ``numba_backend._remaining_hdrf_kernel`` inlines these exact
        expressions (compiled code cannot call back into Python); any
        change here must be mirrored there in lockstep, and the
        cross-backend equivalence suite pins the pair.
        """
        scores = u_row * (2.0 - theta_u) + v_row * (1.0 + theta_u)
        maxs = sizes_np.max()
        mins = sizes_np.min()
        scores = scores + lam * (maxs - sizes_np) / (eps + maxs - mins)
        scores[sizes_np >= capacity] = -np.inf
        return int(np.argmax(scores))

    def remaining_pass_hdrf(self, stream, ctx: TwoPhaseContext) -> None:
        """2PS-HDRF: full HDRF scoring over all k partitions (Section V-D)."""
        from repro.core.scoring import HDRF_EPSILON

        v2c = ctx.v2c.tolist()
        c2p = ctx.c2p.tolist()
        deg = ctx.degrees.tolist()
        replicas = ctx.state.replicas
        capacity = ctx.state.capacity
        sizes = ctx.state.sizes.tolist()
        assignments = ctx.assignments
        k, cost = ctx.k, ctx.cost
        lam = ctx.hdrf_lambda
        choose = self.hdrf_choose
        sizes_np = np.asarray(sizes, dtype=np.float64)
        idx = 0
        n_scored = 0
        for chunk in stream.chunks():
            for u, v in chunk.tolist():
                c1 = v2c[u]
                c2 = v2c[v]
                if c1 == c2 or c2p[c1] == c2p[c2]:
                    idx += 1
                    continue
                du = deg[u]
                dv = deg[v]
                theta_u = du / (du + dv)
                p = choose(
                    replicas[u], replicas[v], theta_u, sizes_np, capacity,
                    lam, HDRF_EPSILON,
                )
                n_scored += k
                sizes[p] += 1
                sizes_np[p] += 1.0
                replicas[u, p] = True
                replicas[v, p] = True
                assignments[idx] = p
                idx += 1
        ctx.state.sizes[:] = sizes
        cost.score_evaluations += n_scored
        cost.edges_streamed += stream.n_edges

    # ------------------------------------------------------------------
    # Classic streaming baselines
    # ------------------------------------------------------------------
    def hdrf_baseline_pass(self, stream, ctx: TwoPhaseContext) -> np.ndarray:
        """Classic HDRF (CIKM'15): partial-degree theta, full argmax."""
        from repro.core.scoring import HDRF_EPSILON

        replicas = ctx.state.replicas
        capacity = ctx.state.capacity
        sizes = ctx.state.sizes.tolist()
        assignments = ctx.assignments
        k, cost = ctx.k, ctx.cost
        lam = ctx.hdrf_lambda
        choose = self.hdrf_choose
        sizes_np = np.asarray(sizes, dtype=np.float64)
        partial = [0] * ctx.state.n_vertices
        idx = 0
        for chunk in stream.chunks():
            for u, v in chunk.tolist():
                partial[u] += 1
                partial[v] += 1
                du = partial[u]
                dv = partial[v]
                theta_u = du / (du + dv)
                p = choose(
                    replicas[u], replicas[v], theta_u, sizes_np, capacity,
                    lam, HDRF_EPSILON,
                )
                sizes[p] += 1
                sizes_np[p] += 1.0
                replicas[u, p] = True
                replicas[v, p] = True
                assignments[idx] = p
                idx += 1
        ctx.state.sizes[:] = sizes
        cost.score_evaluations += k * stream.n_edges
        cost.edges_streamed += stream.n_edges
        return np.asarray(partial, dtype=np.int64)
