"""The ``numpy`` backend: chunk-vectorized kernels (the default).

Embarrassingly-batchable passes (degrees, pre-partitioning, stateless
hashing) are fully vectorized.  The stateful passes (Phase-1 clustering
and the remaining-edge scoring pass) use *conflict-free sub-batching*: the
edges of a chunk whose mutable state cannot collide with any other edge of
the chunk are processed as one array operation, everything else falls
through to the per-edge serial kernel in stream order.  The result is
bit-exact with the ``python`` reference backend — see the package
docstring for the argument and ``tests/test_kernels.py`` for the
enforcement.

Why the sub-batching is exact, in short:

- *Scoring pass*: an edge only reads/writes the replica-matrix rows of its
  two endpoints (volumes and degrees are frozen in this pass).  An edge
  whose endpoints make their chunk-first appearance on itself therefore
  reads state no other chunk edge can have written, and writes state no
  earlier chunk edge can read — so scoring all such edges against the
  chunk-entry state commutes with the serial order.  Partition sizes only
  feed the hard-cap fallback; a chunk is batched only when
  ``capacity - max(sizes)`` exceeds the chunk's candidate count, which
  makes the fallback provably unreachable either way.
- *Clustering pass*: migrations also touch the two clusters' volumes, and
  a serially-processed edge can only ever touch clusters reachable from
  the pre-chunk cluster ids of chunk edges (a migration moves a vertex
  between the two clusters of its edge).  So an edge is batched only when
  its endpoints are chunk-unique *and* its two pre-chunk cluster ids
  appear nowhere else in the chunk.  New-cluster creation stays serial so
  cluster ids are allocated in exactly the reference order.
- *2PS-HDRF remaining pass*: every edge mutates the partition sizes that
  every other edge's balance term reads, so no conflict-free subset
  exists at all; this pass uses speculate-verify-repair blocks plus an
  exact scalar engine instead (see ``_hdrf_block`` and
  ``_HdrfScalarEngine``).
"""

from __future__ import annotations

from bisect import insort

import numpy as np

from repro.kernels.base import ClusteringState, Int64Buffer, TwoPhaseContext
from repro.kernels.python_backend import PythonBackend

#: Internal sub-batch size for the *stateful* passes.  Conflict detection
#: happens within one block, so smaller blocks mean fewer vertex/cluster
#: collisions and a larger vectorized share — but more per-block numpy
#: overhead.  512 won a sweep on a 1M-edge R-MAT (hubs collide at any
#: block size; the long tail stops colliding around this scale).  Stream
#: chunk boundaries are semantically irrelevant, so re-blocking a chunk
#: internally cannot change results.
STATEFUL_BLOCK = 512

#: Clustering demotes to the list kernel when the serial share of the
#: last this-many blocks exceeds 40% (see ``clustering_true_pass``).
_DEMOTE_WINDOW_BLOCKS = 4

#: Sub-batch size of the speculative 2PS-HDRF remaining kernel.  Smaller
#: than STATEFUL_BLOCK: every edge of this pass mutates the partition
#: sizes that feed the balance term, so convergence of the speculation
#: (see ``_hdrf_block``) degrades with block length.
HDRF_BLOCK = 256

#: Speculation rounds before ``_hdrf_block`` gives the unverified tail to
#: the serial scalar engine.  Each round confirms at least one more edge,
#: so this bounds the vectorized work per block; the rolling demotion in
#: ``remaining_pass_hdrf`` turns speculation off entirely when it keeps
#: failing to converge.
HDRF_SPECULATION_ROUNDS = 6


class NumpyBackend(PythonBackend):
    """Vectorized kernels (see module docstring for the batching rules).

    The 2PS-HDRF remaining pass is the hardest to batch — every edge
    mutates the partition sizes that feed every other edge's balance
    term — and uses speculation instead of conflict filtering: decisions
    for a whole block are guessed vectorized, then *verified* by exactly
    reconstructing each edge's serial-order inputs (running sizes via a
    prefix count, running replica bits via a segmented prefix-OR over
    endpoint occurrences) and re-scoring; the first mismatching edge is
    corrected and the tail re-speculated, so the accepted decisions are
    provably the serial ones."""

    name = "numpy"

    # ------------------------------------------------------------------
    # stateless passes
    # ------------------------------------------------------------------
    def degree_pass(self, stream, n_hint: int | None = None) -> np.ndarray:
        deg = np.zeros(int(n_hint) if n_hint else 0, dtype=np.int64)
        for chunk in stream.chunks():
            if chunk.size == 0:
                continue
            counts = np.bincount(chunk.ravel(), minlength=deg.shape[0])
            if counts.shape[0] > deg.shape[0]:
                counts[: deg.shape[0]] += deg
                deg = counts.astype(np.int64, copy=False)
            else:
                deg += counts
        return deg

    def stateless_pass(self, stream, map_chunk, state, assignments) -> None:
        idx = 0
        for chunk in stream.chunks():
            u = chunk[:, 0]
            v = chunk[:, 1]
            parts = map_chunk(u, v)
            state.scatter_edges(u, v, parts)
            assignments[idx : idx + chunk.shape[0]] = parts
            idx += chunk.shape[0]

    # ------------------------------------------------------------------
    # Phase 1: streaming clustering
    # ------------------------------------------------------------------
    def clustering_init(self, degrees: np.ndarray) -> ClusteringState:
        return ClusteringState(
            v2c=np.full(len(degrees), -1, dtype=np.int64),
            vol=Int64Buffer(),
            deg=degrees.astype(np.int64, copy=True),
        )

    def clustering_export(self, st: ClusteringState):
        # The state may be in array mode or (after a serial-heavy pass
        # demoted it) in list mode.
        if isinstance(st.v2c, list):
            return (
                np.asarray(st.v2c, dtype=np.int64),
                np.asarray(st.vol, dtype=np.int64),
                np.asarray(st.deg, dtype=np.int64),
            )
        return st.v2c, st.vol.view().copy(), st.deg

    def clustering_load(self, v2c, volumes, degrees) -> ClusteringState:
        # deg may alias the input (no copy): true-degree passes never
        # write it, and loads happen once per sync window — see the
        # base-class contract.
        return ClusteringState(
            v2c=np.array(v2c, dtype=np.int64, copy=True),
            vol=Int64Buffer.from_array(np.asarray(volumes, dtype=np.int64)),
            deg=np.asarray(degrees, dtype=np.int64),
        )

    # ------------------------------------------------------------------
    # Phase-1 barrier merges (vectorized twins of the reference)
    # ------------------------------------------------------------------
    def merge_phase1_degrees(self, partials, n_hint=None) -> np.ndarray:
        length = int(n_hint) if n_hint else 0
        for partial in partials:
            length = max(length, int(len(partial)))
        out = np.zeros(length, dtype=np.int64)
        for partial in partials:
            out[: len(partial)] += np.asarray(partial, dtype=np.int64)
        return out

    def merge_phase1_clustering(self, v2c, volumes, worker_states, degrees):
        base = int(len(volumes))
        snapshot = np.asarray(v2c, dtype=np.int64)
        merged = snapshot.copy()
        claimed = np.zeros(merged.shape[0], dtype=bool)
        offset = base
        for v2c_w, vol_w in worker_states:
            v2c_w = np.asarray(v2c_w, dtype=np.int64)
            changed = (v2c_w != snapshot) & ~claimed
            if changed.any():
                vals = v2c_w[changed]
                if offset != base:
                    vals = np.where(vals >= base, vals + (offset - base), vals)
                merged[changed] = vals
                claimed |= changed
            offset += int(len(vol_w)) - base
        assigned = merged >= 0
        # Integer-exact despite the float weights: true degrees and their
        # partial sums stay far below 2**53.
        vol = np.bincount(
            merged[assigned],
            weights=np.asarray(degrees, dtype=np.int64)[assigned],
            minlength=offset,
        ).astype(np.int64)
        return merged, vol

    @staticmethod
    def _promote_clustering_state(st: ClusteringState) -> None:
        """List mode -> array mode (start of a vectorized pass)."""
        if isinstance(st.v2c, list):
            st.v2c = np.asarray(st.v2c, dtype=np.int64)
            buf = Int64Buffer(max(len(st.vol), 1))
            for value in st.vol:
                buf.append(value)
            st.vol = buf
            st.deg = np.asarray(st.deg, dtype=np.int64)

    @staticmethod
    def _demote_clustering_state(st: ClusteringState) -> None:
        """Array mode -> list mode (serial-dominated pass)."""
        if not isinstance(st.v2c, list):
            st.v2c = st.v2c.tolist()
            st.vol = st.vol.view().tolist()
            st.deg = st.deg.tolist()

    def clustering_true_pass(self, stream, st, cap, cost) -> None:
        """Sub-batched Algorithm-1 pass with adaptive serial fallback.

        Each pass starts in vectorized block mode.  Blocks that provably
        cannot mutate any state are skipped wholesale (the common case
        when re-streaming an almost-converged clustering); otherwise the
        conflict-free share is batched and the rest runs serially.  When
        the running serial share shows the vectorization is not paying
        for itself — hub-dominated streams collide on vertices *and*
        clusters in nearly every block — the pass demotes the state to
        plain lists and continues with the reference kernel, so the
        numpy backend never loses to the ``python`` backend by more than
        the detection overhead of a few leading blocks.
        """
        self._promote_clustering_state(st)
        updates = 0
        edges = 0
        window_serial = 0
        window_seen = 0
        window_blocks = 0
        vector_mode = True
        for chunk in stream.chunks():
            c = chunk.shape[0]
            edges += c
            start = 0
            if vector_mode:
                while start < c:
                    blk = chunk[start : start + STATEFUL_BLOCK]
                    start += blk.shape[0]
                    upd, n_serial = self._cluster_block(st, blk, cap)
                    updates += upd
                    window_serial += n_serial
                    window_seen += blk.shape[0]
                    window_blocks += 1
                    if window_blocks == _DEMOTE_WINDOW_BLOCKS:
                        # Rolling decision: if the last few blocks were
                        # serial-dominated, vectorization is not paying
                        # for itself — demote mid-chunk and finish the
                        # pass on the list kernel.  (The first pass over
                        # a fresh clustering always demotes fast: cluster
                        # creation is inherently serial.  Re-streaming
                        # passes re-promote at pass start and typically
                        # stay vectorized via immutable-block skips.)
                        if window_serial > 0.4 * window_seen:
                            self._demote_clustering_state(st)
                            vector_mode = False
                            break
                        window_serial = 0
                        window_seen = 0
                        window_blocks = 0
            if not vector_mode and start < c:
                updates += self.true_degree_edges(
                    st.v2c, st.vol, st.deg, chunk[start:].tolist(), cap
                )
        if cost is not None:
            cost.cluster_updates += updates
            cost.edges_streamed += edges

    def _cluster_block(self, st, blk, cap) -> tuple[int, int]:
        """One sub-batch of the true-degree clustering pass.

        Returns ``(updates, serial_edge_count)``.  Vectorized classes, in
        order of application:

        - *Immutable blocks*: if, under pre-block state, no edge would
          create a cluster or pass the migration checks, then no edge can
          mutate anything — so runtime state equals pre-block state for
          every edge and the whole block is one vectorized no-op.
        - *Frozen no-ops*: an edge whose (pre-block) endpoint cluster
          volume exceeds the cap can do nothing — an over-cap cluster can
          neither gain nor lose members (both migration checks require
          volumes within the cap), so its members are pinned for the rest
          of the pass.  Needs no uniqueness condition because the outcome
          is state-independent.
        - *Same-cluster no-ops* with block-unique vertices.
        - *Batched migrations*: block-unique vertices and block-private
          clusters (counted over the edges that could actually mutate).
        - Everything else: the serial reference kernel, in stream order.
        """
        v2c, vol, deg = st.v2c, st.vol, st.deg
        u = blk[:, 0]
        v = blk[:, 1]
        cu = v2c[u]
        cv = v2c[v]
        assigned = (cu >= 0) & (cv >= 0)
        vols = vol.view()
        if bool(assigned.all()) and len(vol):
            differs = cu != cv
            if not differs.any():
                return 0, 0
            vol_u = vols[cu]
            vol_v = vols[cv]
            du = deg[u]
            dv = deg[v]
            ds = np.where((vol_u - du) <= (vol_v - dv), du, dv)
            target = np.where((vol_u - du) <= (vol_v - dv), vol_v, vol_u)
            could_migrate = (
                differs
                & (vol_u <= cap)
                & (vol_v <= cap)
                & (target + ds <= cap)
            )
            if not could_migrate.any():
                return 0, 0  # immutable block: all edges are no-ops
            frozen = (vol_u > cap) | (vol_v > cap)
        elif len(vol) and cap != np.inf:
            frozen = assigned & (
                (vols[np.maximum(cu, 0)] > cap)
                | (vols[np.maximum(cv, 0)] > cap)
            )
        else:
            frozen = np.zeros(blk.shape[0], dtype=bool)
        # Block-unique vertices: batched edges must own their state.
        uniq, counts = np.unique(blk.ravel(), return_counts=True)
        occ_u = counts[np.searchsorted(uniq, u)]
        occ_v = counts[np.searchsorted(uniq, v)]
        vert_unique = np.where(u == v, occ_u == 2, (occ_u == 1) & (occ_v == 1))
        skip = frozen | (vert_unique & assigned & (cu == cv))
        active = ~skip
        if not active.any():
            return 0, 0
        au = u[active]
        av = v[active]
        acu = cu[active]
        acv = cv[active]
        # Cluster privacy over the active (possibly-mutating) edges only:
        # guaranteed no-ops can never write, so they cannot leak their
        # cluster ids into the block's reachable set.
        act_c = np.concatenate([acu, acv])
        c_uniq, c_counts = np.unique(act_c, return_counts=True)
        cc_u = c_counts[np.searchsorted(c_uniq, acu)]
        cc_v = c_counts[np.searchsorted(c_uniq, acv)]
        mig = (
            vert_unique[active]
            & (acu >= 0)
            & (acv >= 0)
            & (acu != acv)
            & (cc_u == 1)
            & (cc_v == 1)
        )
        updates = 0
        if mig.any():
            updates += self._migrate_batch(
                v2c, vol, deg, au[mig], av[mig], acu[mig], acv[mig], cap
            )
        serial = ~mig
        n_serial = int(serial.sum())
        if n_serial:
            # The reference kernel runs unchanged over the array state:
            # v2c/vol/deg share the same indexable protocol as lists.
            updates += self.true_degree_edges(
                v2c, vol, deg,
                zip(au[serial].tolist(), av[serial].tolist()),
                cap,
            )
        return updates, n_serial

    @staticmethod
    def _migrate_batch(v2c, vol, deg, u, v, cu, cv, cap) -> int:
        """Vectorized Algorithm-1 migration over conflict-free edges."""
        vols = vol.view()
        vol_u = vols[cu]
        vol_v = vols[cv]
        du = deg[u]
        dv = deg[v]
        ok = (vol_u <= cap) & (vol_v <= cap)
        small_u = (vol_u - du) <= (vol_v - dv)
        vs = np.where(small_u, u, v)
        cs = np.where(small_u, cu, cv)
        cl = np.where(small_u, cv, cu)
        ds = np.where(small_u, du, dv)
        apply = ok & (vols[cl] + ds <= cap)
        if not apply.any():
            return 0
        # Cluster ids are chunk-private, so the scatters are collision-free.
        vols[cl[apply]] += ds[apply]
        vols[cs[apply]] -= ds[apply]
        v2c[vs[apply]] = cl[apply]
        return int(apply.sum())

    def clustering_partial_pass(self, stream, st, cap, cost) -> None:
        """Hollocou ablation pass: on-the-fly degree updates couple every
        edge, so there is no conflict-free batch to extract — demote to
        list state and run the reference kernel."""
        self._demote_clustering_state(st)
        super().clustering_partial_pass(stream, st, cap, cost)

    # ------------------------------------------------------------------
    # Phase 2: 2PS-L partitioning passes
    # ------------------------------------------------------------------
    def prepartition_pass(self, stream, ctx: TwoPhaseContext) -> int:
        v2c, c2p = ctx.v2c, ctx.c2p
        sizes = ctx.state.sizes
        replicas = ctx.state.replicas
        capacity = ctx.state.capacity
        assignments = ctx.assignments
        k = ctx.k
        idx = 0
        n_pre = 0
        for chunk in stream.chunks():
            c = chunk.shape[0]
            if c == 0:
                continue
            u = chunk[:, 0]
            v = chunk[:, 1]
            cu = v2c[u]
            cv = v2c[v]
            p1 = c2p[cu]
            mask = (cu == cv) | (p1 == c2p[cv])
            if mask.any():
                tu = u[mask]
                tv = v[mask]
                tp = p1[mask]
                counts = np.bincount(tp, minlength=k)
                if int((sizes + counts).max()) <= capacity:
                    # No edge can hit the cap: pure gather/scatter.
                    sizes += counts
                    replicas[tu, tp] = True
                    replicas[tv, tp] = True
                    assignments[idx : idx + c][mask] = tp
                    n_pre += int(tp.shape[0])
                else:
                    n_pre += self._prepartition_spill(
                        ctx, tu, tv, tp, idx + np.flatnonzero(mask)
                    )
            idx += c
        ctx.cost.edges_streamed += stream.n_edges
        return n_pre

    def _prepartition_spill(self, ctx, tu, tv, tp, positions) -> int:
        """Cap-aware tail of the pre-partition pass.

        The prefix of edges that provably stays below the hard cap in
        serial order is still scattered vectorized; from the first edge
        that can hit the cap onward, the serial reference kernel runs
        (the hash/least-loaded fallback is order-dependent).
        """
        sizes = ctx.state.sizes
        replicas = ctx.state.replicas
        capacity = ctx.state.capacity
        deg = ctx.degrees
        k, cost, seed = ctx.k, ctx.cost, ctx.hash_seed
        n = tp.shape[0]
        # Rank of each edge within its target-partition group, in order.
        order = np.argsort(tp, kind="stable")
        sorted_tp = tp[order]
        boundary = np.empty(n, dtype=bool)
        boundary[0] = True
        boundary[1:] = sorted_tp[1:] != sorted_tp[:-1]
        group_starts = np.maximum.accumulate(
            np.where(boundary, np.arange(n), 0)
        )
        rank = np.empty(n, dtype=np.int64)
        rank[order] = np.arange(n) - group_starts
        safe = rank < (capacity - sizes)[tp]
        unsafe = np.flatnonzero(~safe)
        # Every edge can be safe even though the caller saw a possible cap
        # hit: a stale parallel view may record an over-cap partition that
        # receives no edge in this block.  Then the whole block scatters.
        j = int(unsafe[0]) if unsafe.size else n
        if j:
            pp = tp[:j]
            sizes += np.bincount(pp, minlength=k)
            replicas[tu[:j], pp] = True
            replicas[tv[:j], pp] = True
            ctx.assignments[positions[:j]] = pp

        def least_loaded() -> int:
            return int(np.argmin(sizes))

        for i in range(j, n):
            uu = int(tu[i])
            vv = int(tv[i])
            p = int(tp[i])
            if sizes[p] >= capacity:
                p = self._fallback_partition(
                    uu, vv, deg, sizes, capacity, k, seed, cost, least_loaded
                )
            sizes[p] += 1
            replicas[uu, p] = True
            replicas[vv, p] = True
            ctx.assignments[positions[i]] = p
        return n

    def remaining_pass_linear(self, stream, ctx: TwoPhaseContext) -> None:
        v2c, c2p = ctx.v2c, ctx.c2p
        idx = 0
        n_scored = 0
        for chunk in stream.chunks():
            c = chunk.shape[0]
            if c == 0:
                continue
            u = chunk[:, 0]
            v = chunk[:, 1]
            cu = v2c[u]
            cv = v2c[v]
            p1 = c2p[cu]
            p2 = c2p[cv]
            rem = ~((cu == cv) | (p1 == p2))
            nrem = int(rem.sum())
            if nrem:
                n_scored += 2 * nrem
                ru = u[rem]
                rv = v[rem]
                rp1 = p1[rem]
                rp2 = p2[rem]
                positions = idx + np.flatnonzero(rem)
                # Score components that are frozen in this pass (degrees,
                # cluster volumes): vectorized once for the whole chunk so
                # the serial conflict path runs at list speed.
                r1, r2, term_u, term_v = self._score_terms(
                    ctx, ru, rv, cu[rem], cv[rem]
                )
                for s in range(0, nrem, STATEFUL_BLOCK):
                    e = s + STATEFUL_BLOCK
                    self._remaining_block(
                        ctx,
                        ru[s:e],
                        rv[s:e],
                        rp1[s:e],
                        rp2[s:e],
                        positions[s:e],
                        r1[s:e],
                        r2[s:e],
                        term_u[s:e],
                        term_v[s:e],
                    )
            idx += c
        ctx.cost.score_evaluations += n_scored
        ctx.cost.edges_streamed += stream.n_edges

    @staticmethod
    def _score_terms(ctx, ru, rv, rcu, rcv):
        """The state-independent parts of the two-candidate score."""
        du = ctx.degrees[ru]
        dv = ctx.degrees[rv]
        dsum = (du + dv).astype(np.float64)
        vol1 = ctx.volumes[rcu]
        vol2 = ctx.volumes[rcv]
        vsum = (vol1 + vol2).astype(np.float64)
        nonzero = vsum > 0
        with np.errstate(divide="ignore", invalid="ignore"):
            r1 = np.where(nonzero, vol1 / vsum, 0.0)
            r2 = np.where(nonzero, vol2 / vsum, 0.0)
            term_u = 2.0 - du / dsum
            term_v = 2.0 - dv / dsum
        return r1, r2, term_u, term_v

    def _remaining_block(
        self, ctx, ru, rv, rp1, rp2, positions, r1, r2, term_u, term_v
    ) -> None:
        """One sub-batch of the scoring pass.

        Edges whose endpoints make their block-first appearance on the
        edge itself are scored as one array operation (their replica rows
        cannot have been written by an earlier block edge, and their
        writes cannot be read by one); the rest runs serially in stream
        order.  If the hard cap is reachable within the block, the whole
        block runs serially — cap overflow makes every decision
        order-dependent through the hash/least-loaded fallback.
        """
        sizes = ctx.state.sizes
        nrem = ru.shape[0]
        if ctx.state.capacity - int(sizes.max()) < nrem:
            self._remaining_serial(
                ctx, ru, rv, rp1, rp2, positions, r1, r2, term_u, term_v,
                np.arange(nrem),
            )
            return
        ids = np.empty(2 * nrem, dtype=np.int64)
        ids[0::2] = ru
        ids[1::2] = rv
        uniq, first_pos = np.unique(ids, return_index=True)
        first_edge = first_pos // 2
        eidx = np.arange(nrem)
        conflict = (first_edge[np.searchsorted(uniq, ru)] < eidx) | (
            first_edge[np.searchsorted(uniq, rv)] < eidx
        )
        batch = ~conflict
        if batch.any():
            bu = ru[batch]
            bv = rv[batch]
            p = self._apply_remaining_batch(
                ctx, bu, bv, rp1[batch], rp2[batch],
                r1[batch], r2[batch], term_u[batch], term_v[batch],
            )
            sizes += np.bincount(p, minlength=ctx.k)
            ctx.assignments[positions[batch]] = p
        if conflict.any():
            self._remaining_serial(
                ctx, ru, rv, rp1, rp2, positions, r1, r2, term_u, term_v,
                np.flatnonzero(conflict),
            )

    def _apply_remaining_batch(
        self, ctx, bu, bv, bp1, bp2, br1, br2, btu, btv
    ) -> np.ndarray:
        """Score and apply one conflict-free sub-batch of the linear
        remaining pass; returns the chosen partitions.

        The batch rows have pairwise-disjoint endpoint pairs (the caller
        filtered on block-first appearance), so every row reads and
        writes replica-matrix state no other row touches — the rows are
        order-independent and a parallel backend may override this hook
        with a ``prange`` kernel.  Size updates and assignment scatters
        stay with the caller (order-insensitive reductions, per the
        package determinism rules).
        """
        replicas = ctx.state.replicas
        # Same association order as the reference: ratio, +u, +v.
        s1 = br1 + replicas[bu, bp1] * btu + replicas[bv, bp1] * btv
        s2 = br2 + replicas[bu, bp2] * btu + replicas[bv, bp2] * btv
        p = np.where(s1 >= s2, bp1, bp2)
        replicas[bu, p] = True
        replicas[bv, p] = True
        return p

    def _remaining_serial(
        self, ctx, ru, rv, rp1, rp2, positions, r1, r2, term_u, term_v,
        indices,
    ) -> None:
        """Per-edge reference scoring, in stream order, over the
        precomputed state-independent score components."""
        replicas = ctx.state.replicas
        sizes = ctx.state.sizes
        capacity = ctx.state.capacity
        deg = ctx.degrees
        k, cost, seed = ctx.k, ctx.cost, ctx.hash_seed
        assignments = ctx.assignments
        lu = ru.tolist()
        lv = rv.tolist()
        lp1 = rp1.tolist()
        lp2 = rp2.tolist()
        lr1 = r1.tolist()
        lr2 = r2.tolist()
        ltu = term_u.tolist()
        ltv = term_v.tolist()
        lpos = positions.tolist()

        def least_loaded() -> int:
            return int(np.argmin(sizes))

        for i in indices.tolist():
            u = lu[i]
            v = lv[i]
            p1 = lp1[i]
            p2 = lp2[i]
            tu = ltu[i]
            tv = ltv[i]
            s1 = lr1[i]
            if replicas[u, p1]:
                s1 += tu
            if replicas[v, p1]:
                s1 += tv
            s2 = lr2[i]
            if replicas[u, p2]:
                s2 += tu
            if replicas[v, p2]:
                s2 += tv
            p = p1 if s1 >= s2 else p2
            if sizes[p] >= capacity:
                p = self._fallback_partition(
                    u, v, deg, sizes, capacity, k, seed, cost, least_loaded
                )
            sizes[p] += 1
            replicas[u, p] = True
            replicas[v, p] = True
            assignments[lpos[i]] = p

    # ------------------------------------------------------------------
    # 2PS-HDRF remaining pass: blocked speculation + scalar engine
    # ------------------------------------------------------------------
    def remaining_pass_hdrf(self, stream, ctx: TwoPhaseContext) -> None:
        from repro.core.scoring import HDRF_EPSILON

        if ctx.hdrf_lambda <= 0.0:
            # Degenerate balance weight: the scalar engine's complement
            # shortcut (scores strictly ordered by partition size) needs
            # lam > 0, so run the reference kernel outright.
            super().remaining_pass_hdrf(stream, ctx)
            return
        v2c, c2p = ctx.v2c, ctx.c2p
        degrees = ctx.degrees
        engine = _HdrfScalarEngine(ctx, HDRF_EPSILON)
        if stream.n_edges > 4 * ctx.state.replicas.shape[0]:
            # Long pass over a comparatively small vertex set: one
            # vectorized packing beats per-vertex lazy misses.  Short
            # sync-window dispatches (the parallel path) stay lazy.
            engine.pack_all()
        speculate = True
        win_edges = 0
        win_batched = 0
        idx = 0
        n_rem = 0
        for chunk in stream.chunks():
            c = chunk.shape[0]
            if c == 0:
                continue
            u = chunk[:, 0]
            v = chunk[:, 1]
            cu = v2c[u]
            cv = v2c[v]
            rem = ~((cu == cv) | (c2p[cu] == c2p[cv]))
            nrem = int(rem.sum())
            if nrem:
                n_rem += nrem
                ru = u[rem]
                rv = v[rem]
                positions = idx + np.flatnonzero(rem)
                # theta is frozen in this pass (true degrees): vectorized
                # once, bit-identical to the reference per-edge division.
                theta = degrees[ru] / (degrees[ru] + degrees[rv])
                for s in range(0, nrem, HDRF_BLOCK):
                    e = s + HDRF_BLOCK
                    batched = self._hdrf_block(
                        ctx, engine, ru[s:e], rv[s:e], positions[s:e],
                        theta[s:e], HDRF_EPSILON, speculate,
                    )
                    if speculate:
                        win_edges += min(HDRF_BLOCK, nrem - s)
                        win_batched += batched
                        if win_edges >= 8 * HDRF_BLOCK:
                            # Rolling decision, like the clustering
                            # demotion: when speculation keeps failing to
                            # verify (balance-dominated streams make the
                            # decisions inherently serial), stop paying
                            # for it and let the scalar engine carry.
                            speculate = win_batched >= 0.25 * win_edges
                            win_edges = 0
                            win_batched = 0
            idx += c
        engine.flush()
        ctx.cost.score_evaluations += ctx.k * n_rem
        ctx.cost.edges_streamed += stream.n_edges

    def _hdrf_block(
        self, ctx, engine, bu, bv, positions, theta, eps, speculate
    ) -> int:
        """One sub-batch of the 2PS-HDRF remaining pass; returns the
        number of edges decided by verified vectorized speculation.

        Unlike the linear pass, *every* edge of this pass mutates state
        every other edge reads (the balance term runs over the live
        partition sizes), so there is no conflict-free subset to simply
        extract.  Instead the block's decisions are *speculated*
        vectorized — a k-way score matrix under pre-block state — and
        then verified against an exact vectorized reconstruction of each
        edge's serial-order inputs:

        - running sizes before edge ``i`` = pre-block sizes + an
          exclusive prefix count of the speculated decisions;
        - running replica rows = pre-block rows OR-ed with the decisions
          of earlier block edges sharing an endpoint (a segmented
          exclusive prefix-OR over endpoint occurrences grouped by
          vertex id).

        Re-scoring under those inputs uses the exact float expressions
        of the reference twin, so a row whose re-scored argmax equals
        its speculated decision — with every row before it equally
        confirmed — provably carries the serial decision (induction over
        the prefix).  The first mismatching row is corrected (its inputs
        were already exact) and the tail re-speculated; each round
        verifies at least one more row, and after
        ``HDRF_SPECULATION_ROUNDS`` the unverified tail goes to the
        serial scalar engine.  Cap reachability demotes the whole block
        to serial upfront, exactly like the linear pass.
        """
        b = bu.shape[0]
        if not speculate:
            self._hdrf_serial(ctx, engine, bu, bv, positions, theta, 0)
            return 0
        engine.flush()
        sizes = ctx.state.sizes
        if ctx.state.capacity - int(sizes.max()) < b:
            self._hdrf_serial(ctx, engine, bu, bv, positions, theta, 0)
            return 0
        replicas = ctx.state.replicas
        k = ctx.k
        lam = ctx.hdrf_lambda
        tu = 2.0 - theta
        tv = 1.0 + theta
        ru0 = replicas[bu]
        rv0 = replicas[bv]
        rep0 = ru0 * tu[:, None] + rv0 * tv[:, None]
        s0 = sizes.astype(np.float64)
        # Occurrence bookkeeping for the running-replica reconstruction:
        # endpoint occurrences in stream order, grouped by vertex id.
        ids = np.empty(2 * b, dtype=np.int64)
        ids[0::2] = bu
        ids[1::2] = bv
        order = np.argsort(ids, kind="stable")
        has_dups = np.unique(ids).shape[0] < 2 * b
        if has_dups:
            gids = ids[order]
            occ_edge = np.repeat(np.arange(b), 2)[order]
            t = np.arange(2 * b)
            new_group = np.empty(2 * b, dtype=bool)
            new_group[0] = True
            new_group[1:] = gids[1:] != gids[:-1]
            gstart = np.maximum.accumulate(np.where(new_group, t, 0))
            # Both occurrences of a self-loop edge sit adjacent in its
            # group; the second must not see the first (an edge reads
            # its replica rows before writing them).
            same_edge_prev = np.zeros(2 * b, dtype=bool)
            same_edge_prev[1:] = ~new_group[1:] & (
                occ_edge[1:] == occ_edge[:-1]
            )
            self_rows = np.flatnonzero(same_edge_prev)
        # Initial speculation: every edge scored under pre-block state.
        maxs = s0.max()
        mins = s0.min()
        bal0 = lam * (maxs - s0) / (eps + maxs - mins)
        p = np.argmax(rep0 + bal0[None, :], axis=1)
        part_range = np.arange(k)
        verified = 0
        for _ in range(HDRF_SPECULATION_ROUNDS):
            onehot = p[:, None] == part_range
            before = np.cumsum(onehot, axis=0) - onehot
            S = s0[None, :] + before
            M = S.max(axis=1)
            m_ = S.min(axis=1)
            if has_dups:
                occ_p = np.repeat(p, 2)[order]
                pbits = occ_p[:, None] == part_range
                # Segmented inclusive prefix-OR (Hillis-Steele; the RHS
                # fancy index copies, so the in-place OR cannot alias).
                shift = 1
                while shift < 2 * b:
                    rows = np.flatnonzero(t - gstart >= shift)
                    pbits[rows] |= pbits[rows - shift]
                    shift <<= 1
                vis = np.zeros_like(pbits)
                vis[1:][~new_group[1:]] = pbits[:-1][~new_group[1:]]
                if self_rows.size:
                    vis[self_rows] = vis[self_rows - 1]
                vis_orig = np.empty_like(vis)
                vis_orig[order] = vis
                rep = (ru0 | vis_orig[0::2]) * tu[:, None] + (
                    rv0 | vis_orig[1::2]
                ) * tv[:, None]
            else:
                rep = rep0
            scores = rep + lam * (M[:, None] - S) / (eps + M - m_)[:, None]
            p_new = np.argmax(scores, axis=1)
            agree = p_new == p
            if agree.all():
                verified = b
                break
            i0 = int(np.argmin(agree))
            p[i0:] = p_new[i0:]
            verified = i0 + 1
        if verified:
            vp = p[:verified]
            sizes += np.bincount(vp, minlength=k)
            replicas[bu[:verified], vp] = True
            replicas[bv[:verified], vp] = True
            ctx.assignments[positions[:verified]] = vp
            engine.note_batch(bu[:verified], bv[:verified], vp)
        if verified < b:
            self._hdrf_serial(ctx, engine, bu, bv, positions, theta, verified)
        return verified

    @staticmethod
    def _hdrf_serial(ctx, engine, bu, bv, positions, theta, start) -> None:
        """Per-edge serial decisions through the scalar engine for the
        rows of a block the speculation did not verify."""
        if start >= bu.shape[0]:
            return
        ps = engine.run_serial(bu, bv, theta, start)
        ctx.assignments[positions[start:]] = ps
        engine.defer(bu[start:], bv[start:], ps)

    # ------------------------------------------------------------------
    # Classic streaming baselines
    # ------------------------------------------------------------------
    def hdrf_baseline_pass(self, stream, ctx: TwoPhaseContext) -> np.ndarray:
        """Blocked classic HDRF via the speculate-verify-repair machinery.

        The 2PS-HDRF block kernel takes a *per-edge* theta array, and the
        baseline's partial-degree updates are decision-independent — so
        the per-edge partial degrees at decision time can be
        reconstructed exactly before any decision is made: each
        endpoint's counter equals the pre-block count plus its inclusive
        occurrence rank within the block (both endpoints of a self-loop
        land on the same counter, handled by counting interleaved
        endpoint slots).  With theta exact, :meth:`_hdrf_block` and the
        scalar engine apply unchanged and the accepted decisions are
        provably the serial reference ones.
        """
        from repro.core.scoring import HDRF_EPSILON

        if ctx.hdrf_lambda <= 0.0:
            # Same degenerate-balance demotion as remaining_pass_hdrf:
            # the scalar engine's category collapse needs lam > 0.
            return super().hdrf_baseline_pass(stream, ctx)
        n = int(ctx.state.n_vertices)
        engine = _HdrfScalarEngine(ctx, HDRF_EPSILON)
        if stream.n_edges > 4 * n:
            engine.pack_all()
        partial = np.zeros(n, dtype=np.int64)
        speculate = True
        win_edges = 0
        win_batched = 0
        idx = 0
        for chunk in stream.chunks():
            c = chunk.shape[0]
            if c == 0:
                continue
            u = np.ascontiguousarray(chunk[:, 0])
            v = np.ascontiguousarray(chunk[:, 1])
            positions = idx + np.arange(c)
            for s in range(0, c, HDRF_BLOCK):
                e = min(s + HDRF_BLOCK, c)
                bu = u[s:e]
                bv = v[s:e]
                b = e - s
                # Inclusive occurrence ranks over interleaved endpoint
                # slots (u at even, v at odd positions), grouped by
                # vertex id via one stable argsort.
                ids = np.empty(2 * b, dtype=np.int64)
                ids[0::2] = bu
                ids[1::2] = bv
                order = np.argsort(ids, kind="stable")
                t = np.arange(2 * b)
                gids = ids[order]
                new_group = np.empty(2 * b, dtype=bool)
                new_group[0] = True
                new_group[1:] = gids[1:] != gids[:-1]
                gstart = np.maximum.accumulate(np.where(new_group, t, 0))
                inc = np.empty(2 * b, dtype=np.int64)
                inc[order] = t - gstart + 1
                # A self-loop bumps u's counter twice before scoring; its
                # even slot only counted the first bump.
                du = partial[bu] + inc[0::2] + (bu == bv)
                dv = partial[bv] + inc[1::2]
                theta = du / (du + dv)
                batched = self._hdrf_block(
                    ctx, engine, bu, bv, positions[s:e], theta,
                    HDRF_EPSILON, speculate,
                )
                partial += np.bincount(ids, minlength=n)
                if speculate:
                    win_edges += b
                    win_batched += batched
                    if win_edges >= 8 * HDRF_BLOCK:
                        # Rolling demotion, as in remaining_pass_hdrf.
                        speculate = win_batched >= 0.25 * win_edges
                        win_edges = 0
                        win_batched = 0
            idx += c
        engine.flush()
        ctx.cost.score_evaluations += ctx.k * stream.n_edges
        ctx.cost.edges_streamed += stream.n_edges
        return partial


class _HdrfScalarEngine:
    """Scalar mirror of the live 2PS-HDRF pass state.

    The HDRF argmax reads the two endpoints' replica rows and every
    partition's size; evaluated with per-edge numpy calls (the
    reference) that is a dozen kernel launches per edge, and a naive
    scalar loop is O(k).  This engine gets the decision down to a
    handful of Python operations per edge by exploiting the score's
    structure.  For one edge the replication term takes only four
    values — ``tu + tv`` (both endpoints replicated), ``tu``, ``tv``,
    and ``0.0`` — and within one such *category* the score differs only
    by the balance term, which is strictly decreasing in the partition
    size (``lam > 0``; strict because consecutive integer sizes are
    orders of magnitude above one float ulp apart).  Hence only the
    lowest-indexed minimum-size partition of each category can enter
    the argmax set, and the full k-way argmax collapses to at most four
    exactly-scored candidates.

    State kept per pass:

    - per-vertex replica rows as int bitmasks (``masks``), packed
      *lazily* on first touch — construction stays O(k), so the
      parallel path can afford one engine per sync window;
    - per-size-level partition bitmasks (``levels``) plus the sorted
      list of occupied sizes (``order``), so "lowest-indexed minimum-
      size partition inside bitmask X below the cap" is a couple of int
      operations;
    - ties are exact: within a category equal sizes give bit-equal
      scores (lowest set bit wins, as ``np.argmax``), across categories
      float-equal candidate scores resolve by partition index.

    Decisions are made against the engine's scalar state; the matching
    numpy-state updates (replica matrix, size vector) are *deferred* and
    applied vectorized by :meth:`flush` — before a speculative block
    reads the numpy state, and at the end of the pass — so the serial
    hot loop performs no numpy writes at all.
    """

    __slots__ = (
        "lam", "eps", "capacity", "replicas", "np_sizes", "masks",
        "sizes", "levels", "order", "all_mask", "pending",
    )

    def __init__(self, ctx, eps) -> None:
        self.lam = ctx.hdrf_lambda
        self.eps = eps
        self.capacity = ctx.state.capacity
        self.replicas = ctx.state.replicas
        self.np_sizes = ctx.state.sizes
        self.masks: dict[int, int] = {}
        self.all_mask = (1 << ctx.k) - 1
        self.sizes = ctx.state.sizes.tolist()
        levels: dict[int, int] = {}
        for p, s in enumerate(self.sizes):
            levels[s] = levels.get(s, 0) | (1 << p)
        self.levels = levels
        self.order = sorted(levels)
        self.pending: list[tuple] = []

    def _pack_row(self, vertex) -> int:
        """Pack one replica row into an int bitmask (first touch only)."""
        packed = getattr(self.replicas, "packed", None)
        if packed is not None:
            # Bit-packed rows already ARE the little-endian mask bytes.
            return int.from_bytes(packed[vertex].tobytes(), "little")
        row = np.packbits(self.replicas[vertex], bitorder="little")
        return int.from_bytes(row.tobytes(), "little")

    def pack_all(self) -> None:
        """Eagerly pack every replica row in one vectorized pass,
        densifying ``masks`` from dict to list (plain indexing in the
        hot loop).  Worth it only when the pass will touch most vertices
        (the caller decides); already-cached masks win over the fresh
        packing.
        """
        packed = getattr(self.replicas, "packed", None)
        if packed is None:
            packed = np.packbits(self.replicas, axis=1, bitorder="little")
        dense = [
            int.from_bytes(row.tobytes(), "little") for row in packed
        ]
        for vertex, mask in self.masks.items():
            dense[vertex] = mask
        self.masks = dense

    def note_batch(self, bu, bv, bp) -> None:
        """Absorb a vectorized block apply (numpy state already updated)."""
        masks = self.masks
        if isinstance(masks, list):
            for u, v, p in zip(bu.tolist(), bv.tolist(), bp.tolist()):
                bit = 1 << p
                masks[u] |= bit
                masks[v] |= bit
                self._bump(p, bit)
            return
        pack = self._pack_row
        for u, v, p in zip(bu.tolist(), bv.tolist(), bp.tolist()):
            bit = 1 << p
            mu = masks.get(u)
            # The numpy replica row already carries this batch's bit, so
            # a fresh pack absorbs it; the |= is only for cached masks.
            masks[u] = (pack(u) if mu is None else mu) | bit
            mv = masks.get(v)
            masks[v] = (pack(v) if mv is None else mv) | bit
            self._bump(p, bit)

    def defer(self, bu, bv, bp) -> None:
        """Queue numpy-state updates for a serially-decided segment."""
        self.pending.append((bu, bv, bp))

    def flush(self) -> None:
        """Apply deferred segments to the numpy replica matrix / sizes."""
        if not self.pending:
            return
        us = np.concatenate([seg[0] for seg in self.pending])
        vs = np.concatenate([seg[1] for seg in self.pending])
        ps = np.concatenate([seg[2] for seg in self.pending])
        self.pending.clear()
        self.replicas[us, ps] = True
        self.replicas[vs, ps] = True
        self.np_sizes += np.bincount(ps, minlength=self.np_sizes.shape[0])

    def _bump(self, p, bit) -> None:
        """Move partition ``p`` one size level up."""
        sizes = self.sizes
        s = sizes[p]
        sizes[p] = s + 1
        levels = self.levels
        rest = levels[s] & ~bit
        if rest:
            levels[s] = rest
        else:
            del levels[s]
            self.order.remove(s)
        s1 = s + 1
        if s1 in levels:
            levels[s1] |= bit
        else:
            levels[s1] = bit
            insort(self.order, s1)

    def run_serial(self, bu, bv, theta, start) -> np.ndarray:
        """Decide rows ``start..`` of a block serially; returns their
        partitions.  numpy-state updates are deferred (the caller routes
        them through :meth:`defer`; :meth:`flush` applies them).

        The four replication categories are unrolled inline — this is
        the hot loop of the whole 2PS-HDRF pipeline, so it trades
        repetition for zero per-edge function-call overhead.
        """
        lu = bu.tolist()
        lv = bv.tolist()
        lt = theta.tolist()
        masks = self.masks
        dense = isinstance(masks, list)
        masks_get = None if dense else masks.get
        pack = self._pack_row
        levels = self.levels
        order = self.order
        sizes = self.sizes
        lam = self.lam
        eps = self.eps
        cap = self.capacity
        all_mask = self.all_mask
        out = []
        append = out.append
        for i in range(start, len(lu)):
            u = lu[i]
            v = lv[i]
            if dense:
                mu = masks[u]
                mv = masks[v]
            else:
                mu = masks_get(u)
                if mu is None:
                    mu = pack(u)
                    masks[u] = mu
                mv = masks_get(v)
                if mv is None:
                    mv = pack(v)
                    masks[v] = mv
            X = mu & mv
            m0 = order[0]
            if X and m0 < cap:
                L = levels[m0] & X
                if L:
                    # Dominance fast path: a both-replicated partition at
                    # the global minimum size has the maximal balance term
                    # on top of the maximal replication term, beating any
                    # other partition by at least min(tu, tv) >= 1.0 —
                    # orders of magnitude above float rounding, so no
                    # score needs computing at all.
                    best_p = (L & -L).bit_length() - 1
                    bit = 1 << best_p
                    masks[u] = mu | bit
                    masks[v] = masks[v] | bit
                    s = sizes[best_p]
                    sizes[best_p] = s + 1
                    rest = levels[s] & ~bit
                    if rest:
                        levels[s] = rest
                    else:
                        del levels[s]
                        order.remove(s)
                    s1 = s + 1
                    if s1 in levels:
                        levels[s1] |= bit
                    else:
                        levels[s1] = bit
                        insort(order, s1)
                    append(best_p)
                    continue
            th = lt[i]
            Mf = float(order[-1])
            denom = (eps + Mf) - float(m0)
            tu = 2.0 - th
            tv = 1.0 + th
            best_p = -1
            best_s = 0.0
            if X:  # both endpoints replicated: rep = tu + tv
                for s in order:
                    if s >= cap:
                        break
                    L = levels[s] & X
                    if L:
                        best_p = (L & -L).bit_length() - 1
                        best_s = (tu + tv) + lam * (Mf - float(s)) / denom
                        break
            X = mu & ~mv
            if X:  # u replicated only: rep = tu (+ 0.0 is exact)
                for s in order:
                    if s >= cap:
                        break
                    L = levels[s] & X
                    if L:
                        score = tu + lam * (Mf - float(s)) / denom
                        if best_p < 0 or score > best_s:
                            best_p = (L & -L).bit_length() - 1
                            best_s = score
                        elif score == best_s:
                            p = (L & -L).bit_length() - 1
                            if p < best_p:
                                best_p = p
                        break
            X = mv & ~mu
            if X:  # v replicated only: rep = tv
                for s in order:
                    if s >= cap:
                        break
                    L = levels[s] & X
                    if L:
                        score = tv + lam * (Mf - float(s)) / denom
                        if best_p < 0 or score > best_s:
                            best_p = (L & -L).bit_length() - 1
                            best_s = score
                        elif score == best_s:
                            p = (L & -L).bit_length() - 1
                            if p < best_p:
                                best_p = p
                        break
            X = all_mask & ~(mu | mv)
            if X:  # neither replicated: rep = 0.0, score = balance term
                for s in order:
                    if s >= cap:
                        break
                    L = levels[s] & X
                    if L:
                        score = lam * (Mf - float(s)) / denom
                        if best_p < 0 or score > best_s:
                            best_p = (L & -L).bit_length() - 1
                            best_s = score
                        elif score == best_s:
                            p = (L & -L).bit_length() - 1
                            if p < best_p:
                                best_p = p
                        break
            if best_p < 0:
                best_p = 0  # every partition at the cap: argmax of -inf
            bit = 1 << best_p
            masks[u] |= bit
            masks[v] |= bit
            s = sizes[best_p]
            sizes[best_p] = s + 1
            rest = levels[s] & ~bit
            if rest:
                levels[s] = rest
            else:
                del levels[s]
                order.remove(s)
            s1 = s + 1
            if s1 in levels:
                levels[s1] |= bit
            else:
                levels[s1] = bit
                insort(order, s1)
            append(best_p)
        return np.asarray(out, dtype=np.int64)
