"""Kernel-backend contracts shared by all backends.

See the :mod:`repro.kernels` package docstring for the backend contract
(bit-exactness against the ``python`` reference backend) and for how to
add a backend.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.metrics.runtime import CostCounter
from repro.partitioning.state import PartitionState


class Int64Buffer:
    """Append-friendly int64 array (amortized O(1) appends).

    Phase-1 clustering allocates cluster ids sequentially; this buffer
    gives the numpy backend list-like appends while keeping the contents
    gatherable as a contiguous array view.
    """

    __slots__ = ("_buf", "_n")

    def __init__(self, initial_capacity: int = 1024) -> None:
        self._buf = np.zeros(max(int(initial_capacity), 1), dtype=np.int64)
        self._n = 0

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, i: int):
        return self._buf[i]

    def __setitem__(self, i: int, value) -> None:
        self._buf[i] = value

    def append(self, value) -> None:
        if self._n == self._buf.shape[0]:
            grown = np.zeros(self._buf.shape[0] * 2, dtype=np.int64)
            grown[: self._n] = self._buf
            self._buf = grown
        self._buf[self._n] = value
        self._n += 1

    def view(self) -> np.ndarray:
        """Live array view of the filled prefix (invalidated by appends)."""
        return self._buf[: self._n]

    def reserve(self, capacity: int) -> np.ndarray:
        """Grow the backing array to at least ``capacity`` slots and
        return it.

        For kernels that append by writing past the filled prefix
        directly (the compiled clustering loops of the ``numba``
        backend): reserve a safe bound up front, hand the raw backing
        array to the kernel, then publish the new fill count with
        :meth:`set_length`.  The returned array is the live backing
        store — earlier views are invalidated exactly as by ``append``.
        """
        capacity = int(capacity)
        if capacity > self._buf.shape[0]:
            grown = np.zeros(
                max(capacity, self._buf.shape[0] * 2), dtype=np.int64
            )
            grown[: self._n] = self._buf[: self._n]
            self._buf = grown
        return self._buf

    def set_length(self, n: int) -> None:
        """Publish ``n`` filled slots after direct writes into
        :meth:`reserve`'s array (``n`` must not exceed its capacity)."""
        n = int(n)
        if not 0 <= n <= self._buf.shape[0]:
            raise ValueError(
                f"length {n} outside the reserved capacity "
                f"{self._buf.shape[0]}"
            )
        self._n = n

    @classmethod
    def from_array(cls, values: np.ndarray) -> "Int64Buffer":
        """Buffer pre-filled with ``values`` (copied)."""
        buf = cls(max(int(values.shape[0]), 1))
        buf._buf[: values.shape[0]] = values
        buf._n = int(values.shape[0])
        return buf


@dataclass
class ClusteringState:
    """Mutable Phase-1 state; concrete field types are backend-owned.

    The ``python`` backend stores plain lists (fast scalar indexing), the
    ``numpy`` backend stores arrays / :class:`Int64Buffer`.  Only the
    owning backend may touch the fields; everyone else goes through
    :meth:`KernelBackend.clustering_export`.
    """

    v2c: object
    vol: object
    deg: object


@dataclass
class TwoPhaseContext:
    """Shared read/write state of the 2PS-L Phase-2 streaming passes.

    ``v2c``/``c2p``/``volumes``/``degrees`` are read-only int64 arrays in
    these passes; ``state`` (replica bits + sizes + hard cap),
    ``assignments`` and ``cost`` are mutated in place.
    """

    k: int
    v2c: np.ndarray
    c2p: np.ndarray
    volumes: np.ndarray
    degrees: np.ndarray
    state: PartitionState
    assignments: np.ndarray
    hash_seed: int
    cost: CostCounter
    hdrf_lambda: float = 1.1


class KernelBackend(ABC):
    """One implementation of every streaming pass (see package docs).

    All passes consume the stream through ``stream.chunks()`` so the
    stream's ``default_chunk_size`` is the single chunk-size knob.

    Passes must only rely on ``stream.chunks()`` and ``stream.n_edges``
    (plus ``stream.n_vertices`` for the degree pass): the sharded
    parallel partitioner dispatches every Phase-2 pass on lightweight
    sync-window sub-streams that expose exactly that surface, with
    ``ctx.assignments`` sliced to the window.  Since backends are
    bit-exact across chunk boundaries, window boundaries are free too —
    that is what makes ``ParallelTwoPhase(n_workers=1)`` bit-exact with
    the sequential pipeline.
    """

    #: Registry name; subclasses override.
    name: str = "abstract"

    # ------------------------------------------------------------------
    # stateless passes
    # ------------------------------------------------------------------
    @abstractmethod
    def degree_pass(self, stream, n_hint: int | None = None) -> np.ndarray:
        """Count every endpoint occurrence in one streaming pass.

        Returns an int64 array of length ``max(n_hint, max_id + 1)``.
        """

    @abstractmethod
    def stateless_pass(
        self,
        stream,
        map_chunk: Callable[[np.ndarray, np.ndarray], np.ndarray],
        state: PartitionState,
        assignments: np.ndarray,
    ) -> None:
        """Drive a stateless hash partitioner over the stream.

        ``map_chunk(u, v)`` maps endpoint arrays to an int32 partition
        array; it must be vectorized *and* well-defined on length-1 inputs
        (the reference backend calls it per edge).  Replica bits and sizes
        are recorded through ``state.scatter_edges``.
        """

    # ------------------------------------------------------------------
    # Phase 1: streaming clustering
    # ------------------------------------------------------------------
    @abstractmethod
    def clustering_init(self, degrees: np.ndarray) -> ClusteringState:
        """Fresh clustering state for ``len(degrees)`` vertices."""

    @abstractmethod
    def clustering_true_pass(
        self, stream, st: ClusteringState, cap: float, cost: CostCounter | None
    ) -> None:
        """One Algorithm-1 pass with known true degrees."""

    @abstractmethod
    def clustering_partial_pass(
        self, stream, st: ClusteringState, cap: float, cost: CostCounter | None
    ) -> None:
        """One original-Hollocou pass (degrees counted on the fly)."""

    @abstractmethod
    def clustering_export(
        self, st: ClusteringState
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Snapshot ``(v2c, volumes, degrees)`` as int64 arrays."""

    @abstractmethod
    def clustering_load(
        self, v2c: np.ndarray, volumes: np.ndarray, degrees: np.ndarray
    ) -> ClusteringState:
        """Backend-native state from exported arrays (inverse of export).

        ``v2c``/``volumes`` in the returned state are independent copies
        (mutating them must not touch the input arrays); ``degrees`` MAY
        alias the input, because the true-degree passes the parallel path
        dispatches never write it (loading happens once per sync window,
        so an O(|V|) degree copy per window would dominate small
        windows).  Loaded state is therefore only valid for true-degree
        passes — ``clustering_partial_pass`` mutates degrees and must
        never run on it.  This is how the parallel Phase-1 path hands
        each worker a stale snapshot of the merged global clustering
        before a sync window.
        """

    # ------------------------------------------------------------------
    # Phase-1 barrier merges (parallel path; see package docs for the
    # associativity / commutativity contract a backend must satisfy)
    # ------------------------------------------------------------------
    @abstractmethod
    def merge_phase1_degrees(
        self, partials, n_hint: int | None = None
    ) -> np.ndarray:
        """Merge per-shard partial degree vectors into one int64 array.

        The merge is an element-wise integer sum over vectors of possibly
        different lengths (each partial stops at its shard's max vertex
        id), grown to at least ``n_hint``.  Integer addition is associative
        *and* commutative, so any merge order is bit-exact.
        """

    @abstractmethod
    def merge_phase1_clustering(
        self,
        v2c: np.ndarray,
        volumes: np.ndarray,
        worker_states,
        degrees: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """One clustering barrier: fold worker deltas into the global state.

        ``worker_states`` is the **ordered** (ascending worker index) list
        of ``(v2c_w, volumes_w)`` exports, each produced by running one
        sync window from the shared snapshot ``(v2c, volumes)``; a worker's
        fresh cluster ids occupy ``[len(volumes), len(volumes_w))``.  The
        merge (same result required of every backend, bit for bit):

        - fresh ids are remapped to a single global sequence in worker
          order (worker ``w``'s ``j``-th fresh cluster becomes
          ``len(volumes) + sum of earlier workers' fresh counts + j``);
        - per vertex, the **first** worker in order whose assignment
          differs from the snapshot wins; later claims are dropped and
          unchanged vertices keep the snapshot assignment;
        - merged volumes are recomputed exactly as the sum of member true
          degrees (the Algorithm-1 invariant), so emptied and conflicted
          fresh clusters end at volume 0.

        Returns the merged ``(v2c, volumes)``.  See the package docstring
        for why this fold is associative over the ordered worker sequence
        but not commutative.
        """

    # ------------------------------------------------------------------
    # Phase 2: 2PS-L partitioning passes
    # ------------------------------------------------------------------
    @abstractmethod
    def prepartition_pass(self, stream, ctx: TwoPhaseContext) -> int:
        """Algorithm 2 lines 16-26; returns the number of edges assigned."""

    @abstractmethod
    def remaining_pass_linear(self, stream, ctx: TwoPhaseContext) -> None:
        """Algorithm 2 lines 27-44, two-candidate constant-time scoring."""

    @abstractmethod
    def remaining_pass_hdrf(self, stream, ctx: TwoPhaseContext) -> None:
        """2PS-HDRF: full HDRF scoring over all k partitions."""

    # ------------------------------------------------------------------
    # Classic streaming baselines
    # ------------------------------------------------------------------
    @abstractmethod
    def hdrf_baseline_pass(self, stream, ctx: TwoPhaseContext) -> np.ndarray:
        """The classic HDRF baseline (CIKM'15) in one streaming pass.

        Unlike :meth:`remaining_pass_hdrf`, every edge participates (there
        is no pre-partitioning), and the degrees feeding ``theta`` are
        *partial*: each endpoint's counter is incremented before the edge
        is scored, exactly as in the original algorithm.  The increments
        are decision-independent, so a batched backend may reconstruct the
        per-edge partial degrees ahead of the decisions.

        ``ctx.v2c``/``c2p``/``volumes``/``degrees`` are unused (pass empty
        arrays); ``ctx.state``, ``ctx.assignments`` and ``ctx.cost`` are
        mutated in place (``edges_streamed += |E|`` and
        ``score_evaluations += k * |E|``, preserving the baseline's
        O(|E| * k) operation count).  Returns the final int64 partial-
        degree array (for the caller's state-bytes accounting).
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"
