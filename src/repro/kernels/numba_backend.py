"""The ``numba`` backend: JIT-compiled serial conflict kernels.

The ``numpy`` backend vectorizes everything that provably commutes with
serial order and falls back to per-edge Python for the rest.  On
hub-heavy streams that serial share dominates: the 2PS-L remaining
(scoring) pass ends up only marginally faster than the reference, and the
Phase-1 clustering pass adaptively demotes itself to the list kernel.
This backend keeps the numpy *chunk orchestration* — streaming, gathers,
the embarrassingly-batchable degree / pre-partition / stateless passes
are inherited unchanged — and replaces exactly those serial conflict
loops with ``numba.njit``-compiled per-edge kernels:

- the Phase-1 clustering bodies (Algorithm 1 with true degrees and the
  Hollocou partial-degree ablation), run serially over every chunk — the
  compiled loop needs no conflict detection at all because it *is* the
  serial order;
- the 2PS-L remaining scoring loop, including the splitmix64 hash /
  least-loaded fallback chain;
- the 2PS-HDRF remaining pass as a compiled k-way argmax per edge (the
  role the category-collapsed ``_HdrfScalarEngine`` plays for the numpy
  backend).

Bit-exactness (the backend contract of :mod:`repro.kernels`) holds
because every kernel below is a line-for-line transliteration of the
``python`` reference bodies: the same float expressions in the same
association order, the same integer comparisons against the hard cap,
the same first-index tie-breaks.  All inputs stay far below 2**53, so
int64 -> float64 promotions are exact, and the kernels are compiled with
``fastmath=False`` so IEEE semantics are preserved.

Optional dependency
-------------------
``numba`` is *optional*.  Detection is lazy and memoized
(:func:`numba_available` probes via ``find_spec`` without importing, so
processes that never touch this backend never pay the numba/llvmlite
startup cost; :func:`load_numba` performs the real import on first
kernel-table build); when numba is absent the backend is reported to the
registry as *missing* and :func:`repro.kernels.get_backend` falls back
to the ``numpy`` backend with a one-time warning.  The kernels
themselves are plain nopython-style Python functions, so a
:class:`NumbaBackend` constructed *directly* still runs them interpreted
— slowly, but bit-exactly.  The equivalence tests use exactly that mode
(``tests/test_numba_backend.py``) to pin the kernel logic on hosts
without numba; with numba installed the same tests exercise the jitted
code paths.

Compilation happens once per process, on first kernel use
(:func:`_kernel_table` memoizes the jitted dispatchers), with
``cache=True`` so repeated processes — e.g. the ``ProcessRunner`` pool
workers, which resolve the backend by name from a picklable payload —
reuse the on-disk compilation cache instead of recompiling.  Backend
instances carry no state and pickle trivially.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.numpy_backend import NumpyBackend

#: splitmix64 constants, imported from the one definition site so the
#: inlined hash chain in ``_remaining_linear_kernel`` can never drift
#: from the reference ``hashutil.splitmix64``.  Module-level
#: ``np.uint64`` scalars keep the jitted kernels in pure uint64
#: arithmetic (mixed signed/unsigned would promote to float64).
from repro.partitioning.hashutil import _C1, _C2, _GOLDEN

_S30 = np.uint64(30)
_S27 = np.uint64(27)
_S31 = np.uint64(31)

_UNSET = object()
#: Memoized probe result (``None`` = not probed yet).
_AVAILABLE: bool | None = None
#: Memoized import result (module or ``None``); only the kernel-table
#: build forces the real import.
_NUMBA = _UNSET
_NUMBA_REASON: str | None = None


def numba_available() -> bool:
    """True when the optional numba dependency is present.

    Probes with ``importlib.util.find_spec`` — no import — so the
    registry's import-time detection never pays the numba/llvmlite
    startup cost in processes that only ever use the other backends;
    the real import is deferred to the first kernel-table build.
    Memoized; tests force the absence path by resetting ``_AVAILABLE``
    / ``_NUMBA`` while the import machinery is monkeypatched to fail
    (``sys.modules["numba"] = None`` defeats the probe and the import
    alike).
    """
    global _AVAILABLE, _NUMBA_REASON
    if _NUMBA is not _UNSET:
        return _NUMBA is not None  # a real import already settled it
    if _AVAILABLE is None:
        import importlib.util

        try:
            spec = importlib.util.find_spec("numba")
        except (ImportError, ValueError) as exc:
            spec = None
            _NUMBA_REASON = (
                f"the numba probe failed: {type(exc).__name__}: {exc}"
            )
        else:
            if spec is None:
                _NUMBA_REASON = "numba is not installed"
        _AVAILABLE = spec is not None
        if _AVAILABLE:
            _NUMBA_REASON = None
    return _AVAILABLE


def load_numba():
    """Import numba once (memoized); returns the module or ``None``.

    Called only when a kernel table is actually built.  A probe-positive
    host whose import nonetheless fails (broken install) degrades to the
    interpreted kernels — still bit-exact, just slow — and records the
    reason.
    """
    global _NUMBA, _NUMBA_REASON, _AVAILABLE
    if _NUMBA is _UNSET:
        if not numba_available():
            _NUMBA = None
        else:
            try:
                import numba
            except Exception as exc:  # noqa: BLE001 - any import failure
                _NUMBA = None
                _AVAILABLE = False
                _NUMBA_REASON = (
                    f"the numba import failed: {type(exc).__name__}: {exc}"
                )
            else:
                _NUMBA = numba
                _NUMBA_REASON = None
    return _NUMBA


def unavailable_reason() -> str | None:
    """Why numba is unavailable (``None`` when it is present)."""
    numba_available()
    return _NUMBA_REASON


# ----------------------------------------------------------------------
# kernel bodies: nopython-style transliterations of the reference loops.
# Written against numpy arrays only (no Python containers, no closures)
# so one source serves both the jitted and the interpreted mode.
# ----------------------------------------------------------------------
def _cluster_true_kernel(us, vs, v2c, vol, n_vol, deg, cap):
    """Algorithm-1 body with known true degrees over one chunk.

    ``vol`` is the pre-reserved cluster-volume buffer filled up to
    ``n_vol``; returns ``(updates, new_n_vol)``.
    """
    updates = 0
    for i in range(us.shape[0]):
        u = us[i]
        v = vs[i]
        cu = v2c[u]
        if cu < 0:
            cu = n_vol
            v2c[u] = cu
            vol[n_vol] = deg[u]
            n_vol += 1
            updates += 1
        cv = v2c[v]
        if cv < 0:
            cv = n_vol
            v2c[v] = cv
            vol[n_vol] = deg[v]
            n_vol += 1
            updates += 1
        if cu == cv:
            continue
        vol_u = vol[cu]
        vol_v = vol[cv]
        if vol_u <= cap and vol_v <= cap:
            # v_s: endpoint whose cluster (without it) is smaller.
            if vol_u - deg[u] <= vol_v - deg[v]:
                vs_ = u
                cs = cu
                cl = cv
                ds = deg[u]
            else:
                vs_ = v
                cs = cv
                cl = cu
                ds = deg[v]
            if vol[cl] + ds <= cap:
                vol[cl] += ds
                vol[cs] -= ds
                v2c[vs_] = cl
                updates += 1
    return updates, n_vol


def _cluster_partial_kernel(us, vs, v2c, vol, n_vol, deg, cap):
    """Hollocou body (degrees counted on the fly) over one chunk."""
    updates = 0
    for i in range(us.shape[0]):
        u = us[i]
        v = vs[i]
        deg[u] += 1
        deg[v] += 1
        cu = v2c[u]
        if cu < 0:
            cu = n_vol
            v2c[u] = cu
            vol[n_vol] = 0
            n_vol += 1
        cv = v2c[v]
        if cv < 0:
            cv = n_vol
            v2c[v] = cv
            vol[n_vol] = 0
            n_vol += 1
        vol[cu] += 1
        vol[cv] += 1
        if cu == cv:
            continue
        vol_u = vol[cu]
        vol_v = vol[cv]
        if vol_u <= cap and vol_v <= cap:
            if vol_u - deg[u] <= vol_v - deg[v]:
                vs_ = u
                cs = cu
                cl = cv
                ds = deg[u]
            else:
                vs_ = v
                cs = cv
                cl = cu
                ds = deg[v]
            if vol[cl] + ds <= cap:
                vol[cl] += ds
                vol[cs] -= ds
                v2c[vs_] = cl
                updates += 1
    return updates, n_vol


def _remaining_linear_kernel(
    us, vs, v2c, c2p, volumes, degrees, replicas, sizes, capacity, k, seed,
    assignments,
):
    """2PS-L remaining (scoring) pass over one chunk; returns
    ``(scored_edges * 2, hash_evaluations)``.

    The fallback chain is the splitmix64 hash on the higher-degree
    endpoint, then the lowest-indexed least-loaded partition — the exact
    twin of ``PythonBackend._fallback_partition``.
    """
    n_scored = 0
    n_hash = 0
    for i in range(us.shape[0]):
        u = us[i]
        v = vs[i]
        c1 = v2c[u]
        c2 = v2c[v]
        p1 = c2p[c1]
        p2 = c2p[c2]
        if c1 == c2 or p1 == p2:
            continue  # pre-partitioned in the previous pass
        du = degrees[u]
        dv = degrees[v]
        dsum = du + dv
        vol1 = volumes[c1]
        vol2 = volumes[c2]
        vsum = vol1 + vol2
        # Score candidate p1: c1 is mapped to p1 (and c2 is not); the
        # same association order as the reference: ratio, +u, +v.
        if vsum != 0:
            s1 = vol1 / vsum
            s2 = vol2 / vsum
        else:
            s1 = 0.0
            s2 = 0.0
        if replicas[u, p1]:
            s1 += 2.0 - du / dsum
        if replicas[v, p1]:
            s1 += 2.0 - dv / dsum
        if replicas[u, p2]:
            s2 += 2.0 - du / dsum
        if replicas[v, p2]:
            s2 += 2.0 - dv / dsum
        n_scored += 2
        p = p1 if s1 >= s2 else p2
        if sizes[p] >= capacity:
            hv = u if du >= dv else v
            x = np.uint64(hv) + _GOLDEN + np.uint64(seed)
            x = (x ^ (x >> _S30)) * _C1
            x = (x ^ (x >> _S27)) * _C2
            x = x ^ (x >> _S31)
            p = np.int64(x % np.uint64(k))
            n_hash += 1
            if sizes[p] >= capacity:
                best = 0
                for q in range(1, k):
                    if sizes[q] < sizes[best]:
                        best = q
                p = best
        sizes[p] += 1
        replicas[u, p] = True
        replicas[v, p] = True
        assignments[i] = p
    return n_scored, n_hash


def _remaining_hdrf_kernel(
    us, vs, v2c, c2p, degrees, replicas, sizes, capacity, k, lam, eps,
    assignments,
):
    """2PS-HDRF remaining pass over one chunk; returns the edges scored.

    A compiled k-way argmax per edge with the exact float expressions of
    ``PythonBackend.hdrf_choose`` (replication term added before the
    balance term, partitions at the hard cap masked to ``-inf``,
    first-index tie-break as ``np.argmax``).
    """
    n_rem = 0
    for i in range(us.shape[0]):
        u = us[i]
        v = vs[i]
        c1 = v2c[u]
        c2 = v2c[v]
        if c1 == c2 or c2p[c1] == c2p[c2]:
            continue
        du = degrees[u]
        dv = degrees[v]
        theta_u = du / (du + dv)
        tu = 2.0 - theta_u
        tv = 1.0 + theta_u
        maxs = sizes[0]
        mins = sizes[0]
        for q in range(1, k):
            s = sizes[q]
            if s > maxs:
                maxs = s
            if s < mins:
                mins = s
        max_f = float(maxs)
        denom = (eps + max_f) - float(mins)
        best_p = 0
        best_s = -np.inf
        for q in range(k):
            if sizes[q] >= capacity:
                score = -np.inf
            else:
                rep = 0.0
                if replicas[u, q]:
                    rep += tu
                if replicas[v, q]:
                    rep += tv
                score = rep + (lam * (max_f - float(sizes[q]))) / denom
            if q == 0 or score > best_s:
                best_p = q
                best_s = score
        n_rem += 1
        sizes[best_p] += 1
        replicas[u, best_p] = True
        replicas[v, best_p] = True
        assignments[i] = best_p
    return n_rem


def _hdrf_baseline_kernel(
    us, vs, partial, replicas, sizes, capacity, k, lam, eps, assignments
):
    """Classic HDRF baseline over one chunk (CIKM'15).

    The ``remaining_hdrf`` argmax with two differences that make it the
    baseline: partial degrees are bumped before each edge is scored
    (``theta`` uses the running counters, not frozen true degrees), and
    every edge participates — there is no pre-partitioning filter.
    """
    for i in range(us.shape[0]):
        u = us[i]
        v = vs[i]
        partial[u] += 1
        partial[v] += 1
        du = partial[u]
        dv = partial[v]
        theta_u = du / (du + dv)
        tu = 2.0 - theta_u
        tv = 1.0 + theta_u
        maxs = sizes[0]
        mins = sizes[0]
        for q in range(1, k):
            s = sizes[q]
            if s > maxs:
                maxs = s
            if s < mins:
                mins = s
        max_f = float(maxs)
        denom = (eps + max_f) - float(mins)
        best_p = 0
        best_s = -np.inf
        for q in range(k):
            if sizes[q] >= capacity:
                score = -np.inf
            else:
                rep = 0.0
                if replicas[u, q]:
                    rep += tu
                if replicas[v, q]:
                    rep += tv
                score = rep + (lam * (max_f - float(sizes[q]))) / denom
            if q == 0 or score > best_s:
                best_p = q
                best_s = score
        sizes[best_p] += 1
        replicas[u, best_p] = True
        replicas[v, best_p] = True
        assignments[i] = best_p
    return 0


#: Interpreted-mode stand-in for ``numba.prange``; rebound to the real
#: ``numba.prange`` by ``_kernel_table`` before the parallel bodies are
#: jitted.  Plain ``range`` keeps the interpreted kernels serial — the
#: documented deterministic fallback of the ``numba-parallel`` backend.
prange = range


def _remaining_batch_kernel(
    bu, bv, bp1, bp2, br1, br2, btu, btv, replicas, out_p
):
    """Conflict-free sub-batch of the 2PS-L scoring pass, row-parallel.

    The caller guarantees pairwise-disjoint endpoint pairs, so each row
    reads and writes replica rows no other row touches — iterations are
    independent and the ``prange`` schedule cannot change results.  Size
    updates and assignment scatters stay with the caller (order-
    insensitive reductions, per the package determinism rules).
    """
    for i in prange(bu.shape[0]):
        u = bu[i]
        v = bv[i]
        p1 = bp1[i]
        p2 = bp2[i]
        # Same association order as the reference: ratio, +u, +v.
        s1 = br1[i]
        if replicas[u, p1]:
            s1 += btu[i]
        if replicas[v, p1]:
            s1 += btv[i]
        s2 = br2[i]
        if replicas[u, p2]:
            s2 += btu[i]
        if replicas[v, p2]:
            s2 += btv[i]
        p = p1 if s1 >= s2 else p2
        replicas[u, p] = True
        replicas[v, p] = True
        out_p[i] = p
    return 0


def _cluster_migrate_kernel(v2c, vols, deg, u, v, cu, cv, cap):
    """Conflict-free Algorithm-1 migrations, row-parallel.

    The caller guarantees block-unique vertices and block-private
    cluster ids, so each row's volume reads/writes touch clusters no
    other row can reach; the applied count is a scalar ``+`` reduction
    (order-insensitive by integer associativity).
    """
    applied = 0
    for i in prange(u.shape[0]):
        vol_u = vols[cu[i]]
        vol_v = vols[cv[i]]
        du = deg[u[i]]
        dv = deg[v[i]]
        if vol_u <= cap and vol_v <= cap:
            # v_s: endpoint whose cluster (without it) is smaller.
            if vol_u - du <= vol_v - dv:
                vs_ = u[i]
                cs = cu[i]
                cl = cv[i]
                ds = du
            else:
                vs_ = v[i]
                cs = cv[i]
                cl = cu[i]
                ds = dv
            if vols[cl] + ds <= cap:
                vols[cl] += ds
                vols[cs] -= ds
                v2c[vs_] = cl
                applied += 1
    return applied


_KERNEL_BODIES = {
    "cluster_true": _cluster_true_kernel,
    "cluster_partial": _cluster_partial_kernel,
    "remaining_linear": _remaining_linear_kernel,
    "remaining_hdrf": _remaining_hdrf_kernel,
    "hdrf_baseline": _hdrf_baseline_kernel,
}

#: Bodies compiled with ``parallel=True`` (``prange`` over independent
#: rows).  Kept apart from the serial bodies so the jit options differ;
#: interpreted mode serves them as-is (``prange`` is ``range`` then).
_PARALLEL_KERNEL_BODIES = {
    "remaining_batch": _remaining_batch_kernel,
    "cluster_migrate": _cluster_migrate_kernel,
}

_KERNELS: dict | None = None
_KERNELS_SOURCE = _UNSET


def _kernel_table() -> dict:
    """The kernel dispatch table, jitted when numba is importable.

    Memoized per process: with numba this is the compile-once-per-process
    point (``cache=True`` additionally persists the compilation to disk,
    so pool workers and repeated runs skip even that); without numba the
    plain interpreted bodies are returned — the documented slow-but-exact
    mode the equivalence tests rely on.  The memo is keyed on the
    *detection result*, so when re-detection flips the numba state (the
    monkeypatched-absence tests) the table rebuilds instead of serving
    kernels from the stale mode.
    """
    global _KERNELS, _KERNELS_SOURCE, prange
    numba = load_numba()
    if _KERNELS is None or _KERNELS_SOURCE is not numba:
        if numba is None:
            _KERNELS = dict(_KERNEL_BODIES)
            _KERNELS.update(_PARALLEL_KERNEL_BODIES)
        else:
            # Rebind the module-global ``prange`` before jitting: numba
            # resolves globals at compile time, so the parallel bodies
            # pick up the real ``numba.prange`` (outside jitted code it
            # degrades to ``range``, keeping interpreted reuse safe).
            prange = numba.prange
            _KERNELS = {
                name: numba.njit(cache=True, fastmath=False)(body)
                for name, body in _KERNEL_BODIES.items()
            }
            _KERNELS.update(
                {
                    name: numba.njit(
                        cache=True, fastmath=False, parallel=True
                    )(body)
                    for name, body in _PARALLEL_KERNEL_BODIES.items()
                }
            )
        _KERNELS_SOURCE = numba
    return _KERNELS


class NumbaBackend(NumpyBackend):
    """Compiled serial conflict kernels (see the module docstring).

    Inherits the numpy chunk orchestration for every embarrassingly-
    batchable pass (degrees, pre-partitioning, stateless hashing) and
    the Phase-1 barrier merge ops; overrides only the serial-dominated
    stateful passes with per-edge compiled loops.
    """

    name = "numba"

    # ------------------------------------------------------------------
    # Phase 1: streaming clustering (serial compiled loop, no batching)
    # ------------------------------------------------------------------
    def _clustering_pass(self, stream, st, cap, cost, kernel_name) -> None:
        self._promote_clustering_state(st)
        kernel = _kernel_table()[kernel_name]
        cap = float(cap)
        updates = 0
        edges = 0
        for chunk in stream.chunks():
            c = chunk.shape[0]
            edges += c
            if c == 0:
                continue
            buf = st.vol
            # Every edge opens at most two fresh clusters, so reserving
            # 2 * c slots makes the in-kernel appends bounds-safe.
            vol_arr = buf.reserve(len(buf) + 2 * c)
            upd, n_vol = kernel(
                np.ascontiguousarray(chunk[:, 0]),
                np.ascontiguousarray(chunk[:, 1]),
                st.v2c,
                vol_arr,
                len(buf),
                st.deg,
                cap,
            )
            buf.set_length(int(n_vol))
            updates += int(upd)
        if cost is not None:
            cost.cluster_updates += updates
            cost.edges_streamed += edges

    def clustering_true_pass(self, stream, st, cap, cost) -> None:
        self._clustering_pass(stream, st, cap, cost, "cluster_true")

    def clustering_partial_pass(self, stream, st, cap, cost) -> None:
        self._clustering_pass(stream, st, cap, cost, "cluster_partial")

    # ------------------------------------------------------------------
    # Phase 2: remaining passes (compiled per-edge decision loops)
    # ------------------------------------------------------------------
    def remaining_pass_linear(self, stream, ctx) -> None:
        if not isinstance(ctx.state.replicas, np.ndarray):
            # Bit-packed replica state: the jitted per-edge loop addresses
            # a dense bool matrix; the inherited numpy pass speaks the
            # packed indexing protocol and is bit-exact by contract.
            return super().remaining_pass_linear(stream, ctx)
        kernel = _kernel_table()["remaining_linear"]
        replicas = ctx.state.replicas
        sizes = ctx.state.sizes
        capacity = int(ctx.state.capacity)
        idx = 0
        n_scored = 0
        n_hash = 0
        # The uint64 hash wraps by design; in interpreted mode numpy
        # scalar overflow would warn (jitted code wraps silently).
        with np.errstate(over="ignore"):
            for chunk in stream.chunks():
                c = chunk.shape[0]
                if c:
                    ns, nh = kernel(
                        np.ascontiguousarray(chunk[:, 0]),
                        np.ascontiguousarray(chunk[:, 1]),
                        ctx.v2c,
                        ctx.c2p,
                        ctx.volumes,
                        ctx.degrees,
                        replicas,
                        sizes,
                        capacity,
                        ctx.k,
                        ctx.hash_seed,
                        ctx.assignments[idx : idx + c],
                    )
                    n_scored += int(ns)
                    n_hash += int(nh)
                idx += c
        ctx.cost.score_evaluations += n_scored
        ctx.cost.hash_evaluations += n_hash
        ctx.cost.edges_streamed += stream.n_edges

    def remaining_pass_hdrf(self, stream, ctx) -> None:
        if not isinstance(ctx.state.replicas, np.ndarray):
            # Same packed-state fallback as remaining_pass_linear.
            return super().remaining_pass_hdrf(stream, ctx)
        from repro.core.scoring import HDRF_EPSILON

        kernel = _kernel_table()["remaining_hdrf"]
        replicas = ctx.state.replicas
        sizes = ctx.state.sizes
        capacity = int(ctx.state.capacity)
        lam = float(ctx.hdrf_lambda)
        idx = 0
        n_rem = 0
        for chunk in stream.chunks():
            c = chunk.shape[0]
            if c:
                n_rem += int(
                    kernel(
                        np.ascontiguousarray(chunk[:, 0]),
                        np.ascontiguousarray(chunk[:, 1]),
                        ctx.v2c,
                        ctx.c2p,
                        ctx.degrees,
                        replicas,
                        sizes,
                        capacity,
                        ctx.k,
                        lam,
                        HDRF_EPSILON,
                        ctx.assignments[idx : idx + c],
                    )
                )
            idx += c
        ctx.cost.score_evaluations += ctx.k * n_rem
        ctx.cost.edges_streamed += stream.n_edges

    # ------------------------------------------------------------------
    # Classic streaming baselines (compiled per-edge argmax loop)
    # ------------------------------------------------------------------
    def hdrf_baseline_pass(self, stream, ctx) -> np.ndarray:
        if not isinstance(ctx.state.replicas, np.ndarray):
            # Same packed-state fallback as the remaining passes.
            return super().hdrf_baseline_pass(stream, ctx)
        from repro.core.scoring import HDRF_EPSILON

        kernel = _kernel_table()["hdrf_baseline"]
        partial = np.zeros(int(ctx.state.n_vertices), dtype=np.int64)
        replicas = ctx.state.replicas
        sizes = ctx.state.sizes
        capacity = int(ctx.state.capacity)
        lam = float(ctx.hdrf_lambda)
        idx = 0
        for chunk in stream.chunks():
            c = chunk.shape[0]
            if c:
                kernel(
                    np.ascontiguousarray(chunk[:, 0]),
                    np.ascontiguousarray(chunk[:, 1]),
                    partial,
                    replicas,
                    sizes,
                    capacity,
                    ctx.k,
                    lam,
                    HDRF_EPSILON,
                    ctx.assignments[idx : idx + c],
                )
            idx += c
        ctx.cost.score_evaluations += ctx.k * stream.n_edges
        ctx.cost.edges_streamed += stream.n_edges
        return partial


class NumbaParallelBackend(NumbaBackend):
    """``numba`` plus ``prange`` over the conflict-free sub-batches.

    The serial compiled loops of :class:`NumbaBackend` are already the
    fastest path for the conflict-*dominated* work; what they leave on
    the table is the conflict-free share the ``numpy`` backend batches —
    those rows are provably order-independent, so they can run on all
    cores.  This backend therefore routes the 2PS-L remaining pass and
    the Phase-1 true-degree pass through the *numpy* sub-batch
    orchestration and overrides exactly the two conflict-free hooks with
    ``parallel=True`` kernels (``prange`` over rows); the serial residue
    of each block still runs the reference kernels.  Determinism: every
    parallel region writes disjoint state per row and all reductions are
    order-insensitive (see the package determinism rules), so results
    are bit-identical to the serial ``numba`` backend — pinned by
    ``tests/test_numba_backend.py``.  Without numba the hooks run
    interpreted with ``prange == range``: the documented serial
    fallback.
    """

    name = "numba-parallel"

    # ------------------------------------------------------------------
    # Phase 1: numpy sub-batch orchestration + parallel migration hook
    # ------------------------------------------------------------------
    def clustering_true_pass(self, stream, st, cap, cost) -> None:
        # Bypass NumbaBackend's serial compiled loop: the numpy blocked
        # pass extracts the conflict-free migrations this backend
        # parallelizes.
        NumpyBackend.clustering_true_pass(self, stream, st, cap, cost)

    def _migrate_batch(self, v2c, vol, deg, u, v, cu, cv, cap) -> int:
        kernel = _kernel_table()["cluster_migrate"]
        return int(
            kernel(v2c, vol.view(), deg, u, v, cu, cv, float(cap))
        )

    # ------------------------------------------------------------------
    # Phase 2: numpy sub-batch orchestration + parallel batch hook
    # ------------------------------------------------------------------
    def remaining_pass_linear(self, stream, ctx) -> None:
        NumpyBackend.remaining_pass_linear(self, stream, ctx)

    def _apply_remaining_batch(
        self, ctx, bu, bv, bp1, bp2, br1, br2, btu, btv
    ) -> np.ndarray:
        replicas = ctx.state.replicas
        if not isinstance(replicas, np.ndarray):
            # Bit-packed replica state: the compiled kernel addresses a
            # dense bool matrix; the numpy hook speaks the packed
            # indexing protocol and is bit-exact by contract.
            return super()._apply_remaining_batch(
                ctx, bu, bv, bp1, bp2, br1, br2, btu, btv
            )
        kernel = _kernel_table()["remaining_batch"]
        out_p = np.empty(bu.shape[0], dtype=np.int64)
        kernel(
            bu,
            bv,
            np.ascontiguousarray(bp1),
            np.ascontiguousarray(bp2),
            br1,
            br2,
            btu,
            btv,
            replicas,
            out_p,
        )
        return out_p
