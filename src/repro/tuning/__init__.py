"""Online auto-tuning of execution knobs at stream start.

``partition(..., tune="auto")`` runs a short *probe* over the head of the
edge stream before the real passes start, derives a handful of cheap
stream features, and picks values for the three pure execution knobs:

- ``backend`` — the kernel backend (prefer a compiled backend when the
  optional dependency is importable, else the vectorized default);
- ``chunk_size`` — the streaming chunk granularity, starting from
  :func:`repro.streaming.stream.auto_chunk_size` and shrunk when the
  probe shows heavy endpoint duplication (conflict-dense chunks degrade
  the speculate-verify sub-batching, so smaller chunks win);
- ``sync_interval`` — the parallel runner's barrier period, tuned **only
  when it is semantics-free** (a single worker, or the serial runner,
  where the state view is never stale).

Determinism contract (pinned by ``tests/test_tuning.py`` and the
differential harness's ``tune`` dimension):

- decisions are pure functions of the probe data, the declared stream
  shape (``|E|``, ``|V|``, ``k``), the tuner seed and the set of
  available backends — **never** of wall-clock measurements, so the same
  stream always tunes the same way;
- every tuned knob is semantics-free by the kernel-backend / runner
  contracts, so a tuned run is bit-exact with an untuned one (same
  assignments, replicas, sizes and operation counts);
- knobs the caller pinned are never overridden: an explicit ``backend``
  stays, an integer ``chunk_size`` stays, and ``sync_interval`` is left
  alone whenever staleness could change results.

The probe reads a bounded prefix of the stream (at most
:data:`PROBE_SPAN_EDGES` edges) and samples :data:`PROBE_WINDOWS` windows
at splitmix64-seeded offsets inside it, so tuning cost is O(1) in
``|E|``.  Probe I/O goes through the normal ``chunks()`` path and is
charged to the stream's ``IOStats`` / simulated device like any other
(partial) pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.kernels import available_backends
from repro.partitioning.hashutil import splitmix64
from repro.streaming.stream import AUTO_CHUNK_MIN, auto_chunk_size

#: Seed mixed into the probe-window offsets, decorrelating the tuner from
#: every other splitmix64 consumer (hash fallback, stateless baselines).
TUNER_SEED = 0x2B5

#: Edges per probe window and number of seeded windows sampled.
PROBE_WINDOW_EDGES = 4_096
PROBE_WINDOWS = 4

#: Prefix of the stream the probe may touch; bounds tuning cost at O(1)
#: in ``|E|``.
PROBE_SPAN_EDGES = 65_536

#: Endpoint-duplication thresholds: above the first the base chunk size
#: is halved, above the second it is quartered (conflict-dense chunks
#: make the verify-repair path dominate, so smaller chunks win).
DUP_RATE_HALF = 0.25
DUP_RATE_QUARTER = 0.50

#: Tuned ``sync_interval`` as a multiple of the chunk size (only applied
#: when barrier frequency is semantics-free; fewer barriers, same bits).
SYNC_CHUNK_MULTIPLE = 4

#: Backend preference order when the caller left the backend unpinned.
BACKEND_PREFERENCE = ("numba", "numpy")


@dataclass(frozen=True)
class TuningDecision:
    """Knob choices of one auto-tuning probe.

    ``None`` for a knob means "left alone" — either the caller pinned it
    or tuning it would not be semantics-free.  Recorded verbatim in
    :attr:`repro.partitioning.base.PartitionArtifacts.tuning` and in the
    ``tuning`` section of the kernel benchmark snapshot.
    """

    backend: str | None
    chunk_size: int | None
    sync_interval: int | None
    probe_edges: int
    features: dict = field(default_factory=dict)

    def summary(self) -> dict:
        """JSON-friendly record for benchmark snapshots and logs."""
        return {
            "backend": self.backend,
            "chunk_size": self.chunk_size,
            "sync_interval": self.sync_interval,
            "probe_edges": self.probe_edges,
            "features": dict(self.features),
        }


def probe_features(stream, k: int, seed: int = TUNER_SEED) -> dict:
    """Deterministic stream features from a bounded, seeded probe.

    Reads the first ``min(|E|,`` :data:`PROBE_SPAN_EDGES` ``)`` edges,
    samples :data:`PROBE_WINDOWS` windows of
    :data:`PROBE_WINDOW_EDGES` edges at splitmix64-seeded offsets within
    that prefix, and computes:

    - ``dup_rate`` — fraction of probe endpoints that repeat an endpoint
      already seen in the probe (conflict density proxy);
    - ``hub_rate`` — share of the single most frequent endpoint (skew
      proxy);
    - the declared shape (``n_edges``, ``n_vertices``, ``k``) and the
      probe size actually used.
    """
    span = min(int(stream.n_edges), PROBE_SPAN_EDGES)
    rows = []
    seen = 0
    for chunk in stream.chunks(chunk_size=PROBE_WINDOW_EDGES):
        take = min(chunk.shape[0], span - seen)
        rows.append(np.array(chunk[:take], dtype=np.int64))
        seen += take
        if seen >= span:
            break
    prefix = np.concatenate(rows) if rows else np.zeros((0, 2), np.int64)

    window = min(PROBE_WINDOW_EDGES, span)
    max_offset = span - window
    offsets = (
        splitmix64(np.arange(PROBE_WINDOWS, dtype=np.int64), seed=seed)
        % np.uint64(max_offset + 1)
    ).astype(np.int64)
    ids = np.concatenate(
        [prefix[o : o + window].ravel() for o in offsets]
    )
    uniq, counts = np.unique(ids, return_counts=True)
    total = max(int(ids.size), 1)
    return {
        "dup_rate": 1.0 - uniq.size / total,
        "hub_rate": int(counts.max(initial=0)) / total,
        "probe_edges": int(ids.size // 2),
        "n_edges": int(stream.n_edges),
        "n_vertices": (
            None if stream.n_vertices is None else int(stream.n_vertices)
        ),
        "k": int(k),
    }


def tune_run(partitioner, stream, k: int, chunk_size) -> TuningDecision:
    """Probe ``stream`` and decide knobs for one ``partition`` run.

    ``chunk_size`` is the run's *resolved-but-unapplied* chunk request
    (``None``, ``"auto"``, or a pinned integer) — only ``None``/``"auto"``
    are tuned.  The partitioner's own ``backend`` attribute gates backend
    tuning, and ``sync_interval`` is only tuned when the partitioner has
    one *and* staleness cannot arise (``n_workers == 1`` or the serial
    runner).  Decisions are pure functions of the probe (see the module
    docstring); no timing is involved.
    """
    features = probe_features(stream, k)
    backends = available_backends()
    features["available_backends"] = list(backends)

    backend = None
    if getattr(partitioner, "backend", None) is None:
        for candidate in BACKEND_PREFERENCE:
            if candidate in backends:
                backend = candidate
                break

    chunk = None
    if chunk_size in (None, "auto"):
        base = auto_chunk_size(stream.n_vertices, k)
        if features["dup_rate"] > DUP_RATE_QUARTER:
            base //= 4
        elif features["dup_rate"] > DUP_RATE_HALF:
            base //= 2
        chunk = max(int(base), AUTO_CHUNK_MIN)

    sync_interval = None
    runner_kind = getattr(getattr(partitioner, "runner", None), "kind", None)
    if hasattr(partitioner, "sync_interval") and (
        getattr(partitioner, "n_workers", 1) == 1 or runner_kind == "serial"
    ):
        # Semantics-free regime: a lone worker (or the serial runner)
        # never sees stale state, so stretching the barrier period only
        # removes merge overhead.  Never shrink below the caller's value.
        reference = chunk if chunk is not None else auto_chunk_size(
            stream.n_vertices, k
        )
        sync_interval = max(
            int(partitioner.sync_interval), SYNC_CHUNK_MULTIPLE * int(reference)
        )

    return TuningDecision(
        backend=backend,
        chunk_size=chunk,
        sync_interval=sync_interval,
        probe_edges=features["probe_edges"],
        features=features,
    )
