"""Metrics: replication factor, balance, memory models, cost accounting.

These are the quantities the paper reports for every experiment:
replication factor and measured imbalance (Figures 2, 4, 7, 9), memory
overhead (Figure 4c/f/i/l/o/r/u, Table II), and run-time — both wall-clock
and the machine-neutral operation-count model that makes the O(|E|) vs
O(|E| * k) shapes visible independent of interpreter speed.
"""

from repro.metrics.replication import (
    replication_factor,
    replication_factor_from_assignments,
    vertex_cover_sizes,
)
from repro.metrics.balance import (
    measured_alpha,
    partition_sizes,
    validate_partition,
)
from repro.metrics.memory import (
    analytic_state_bytes,
    measured_state_bytes,
)
from repro.metrics.runtime import CostCounter, CostModel, PhaseTimer

__all__ = [
    "replication_factor",
    "replication_factor_from_assignments",
    "vertex_cover_sizes",
    "measured_alpha",
    "partition_sizes",
    "validate_partition",
    "analytic_state_bytes",
    "measured_state_bytes",
    "CostCounter",
    "CostModel",
    "PhaseTimer",
]
