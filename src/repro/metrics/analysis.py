"""Deeper analysis utilities: clustering quality, partition anatomy.

Used by the clustering experiment and by users evaluating Phase-1 output:

- :func:`clustering_modularity` — Newman modularity of a vertex clustering
  (the standard community-quality score; Hollocou et al. evaluate on it);
- :func:`intra_cluster_edge_fraction` — the quantity that directly drives
  2PS-L's pre-partitioning ratio (Figure 6);
- :func:`partition_anatomy` — per-partition breakdown of a finished edge
  partitioning (sizes, cover sets, internal-edge fractions).
"""

from __future__ import annotations

import numpy as np

from repro.errors import PartitioningError


def clustering_modularity(graph, v2c: np.ndarray) -> float:
    """Newman modularity ``Q = sum_c (e_c / m - (vol_c / 2m)^2)``.

    ``e_c`` counts intra-cluster edges, ``vol_c`` the degree volume of
    cluster ``c``.  Unclustered vertices (v2c < 0) form singletons.
    Range is (-0.5, 1]; 0 is the random baseline.
    """
    v2c = np.asarray(v2c)
    if v2c.shape[0] != graph.n_vertices:
        raise PartitioningError(
            f"v2c has {v2c.shape[0]} entries for {graph.n_vertices} vertices"
        )
    m = graph.n_edges
    if m == 0:
        return 0.0
    # Remap so every vertex has a cluster (singletons for the unassigned).
    labels = v2c.copy()
    unassigned = labels < 0
    if unassigned.any():
        base = labels.max() + 1 if (labels >= 0).any() else 0
        labels[unassigned] = base + np.arange(int(unassigned.sum()))
    n_clusters = int(labels.max()) + 1
    intra = np.zeros(n_clusters, dtype=np.float64)
    lu = labels[graph.edges[:, 0]]
    lv = labels[graph.edges[:, 1]]
    same = lu == lv
    np.add.at(intra, lu[same], 1.0)
    volumes = np.zeros(n_clusters, dtype=np.float64)
    np.add.at(volumes, labels, graph.degrees)
    return float((intra / m - (volumes / (2.0 * m)) ** 2).sum())


def intra_cluster_edge_fraction(graph, v2c: np.ndarray) -> float:
    """Fraction of edges whose endpoints share a cluster."""
    v2c = np.asarray(v2c)
    if graph.n_edges == 0:
        return 0.0
    lu = v2c[graph.edges[:, 0]]
    lv = v2c[graph.edges[:, 1]]
    valid = (lu >= 0) & (lv >= 0)
    return float(((lu == lv) & valid).mean())


def cluster_size_histogram(v2c: np.ndarray) -> np.ndarray:
    """Sizes (member counts) of the non-empty clusters, descending."""
    v2c = np.asarray(v2c)
    used = v2c[v2c >= 0]
    if used.size == 0:
        return np.zeros(0, dtype=np.int64)
    sizes = np.bincount(used)
    sizes = sizes[sizes > 0]
    return np.sort(sizes)[::-1]


def partition_anatomy(
    edges: np.ndarray, assignments: np.ndarray, k: int, n_vertices: int
) -> list[dict]:
    """Per-partition report: edges, cover size, internal-vertex fraction.

    A vertex is *internal* to partition p if all of its edges live on p —
    internal vertices need no synchronization in distributed processing.
    """
    edges = np.asarray(edges)
    assignments = np.asarray(assignments)
    if edges.shape[0] != assignments.shape[0]:
        raise PartitioningError("edges/assignments length mismatch")
    present = np.zeros((n_vertices, k), dtype=bool)
    present[edges[:, 0], assignments] = True
    present[edges[:, 1], assignments] = True
    replica_counts = present.sum(axis=1)
    rows = []
    for p in range(k):
        covered = present[:, p]
        internal = covered & (replica_counts == 1)
        n_cov = int(covered.sum())
        rows.append(
            {
                "partition": p,
                "edges": int((assignments == p).sum()),
                "cover": n_cov,
                "internal_vertices": int(internal.sum()),
                "internal_fraction": float(internal.sum()) / n_cov if n_cov else 0.0,
            }
        )
    return rows
