"""Replication-factor metrics (the paper's primary quality measure).

``RF(p_1..p_k) = (1/|V|) * sum_i |V(p_i)|`` where ``V(p_i)`` is the set of
vertices adjacent to an edge of partition ``p_i`` (Section II-A).  Two
independent implementations are provided — one from the partitioner's state
matrix, one recomputed from raw ``(edges, assignments)`` — and the test
suite cross-checks them against each other.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PartitioningError


def vertex_cover_sizes(
    edges: np.ndarray, assignments: np.ndarray, k: int, n_vertices: int
) -> np.ndarray:
    """``|V(p_i)|`` per partition, recomputed from scratch.

    Parameters
    ----------
    edges:
        ``(m, 2)`` edge array in stream order.
    assignments:
        Partition id per edge, aligned with ``edges``.
    k, n_vertices:
        Partition count and vertex-id space.
    """
    edges = np.asarray(edges)
    assignments = np.asarray(assignments)
    if edges.shape[0] != assignments.shape[0]:
        raise PartitioningError(
            f"{edges.shape[0]} edges but {assignments.shape[0]} assignments"
        )
    if edges.size and (assignments.min() < 0 or assignments.max() >= k):
        raise PartitioningError("assignment out of range [0, k)")
    covers = np.zeros(k, dtype=np.int64)
    present = np.zeros((n_vertices, k), dtype=bool)
    present[edges[:, 0], assignments] = True
    present[edges[:, 1], assignments] = True
    covers = present.sum(axis=0).astype(np.int64)
    return covers


def replication_factor_from_assignments(
    edges: np.ndarray, assignments: np.ndarray, k: int, n_vertices: int
) -> float:
    """Replication factor recomputed from raw assignments.

    Normalized by the number of *covered* vertices (vertices adjacent to at
    least one edge), as in the reference implementation — so an edgeless
    graph yields 0 and any valid partitioning yields RF >= 1.
    """
    edges = np.asarray(edges)
    if edges.shape[0] == 0:
        return 0.0
    covered = np.zeros(n_vertices, dtype=bool)
    covered[edges[:, 0]] = True
    covered[edges[:, 1]] = True
    total = vertex_cover_sizes(edges, assignments, k, n_vertices).sum()
    return float(total) / int(covered.sum())


def replication_factor(state) -> float:
    """Replication factor straight from a :class:`PartitionState`."""
    return state.replication_factor()


def replica_histogram(
    edges: np.ndarray, assignments: np.ndarray, k: int, n_vertices: int
) -> np.ndarray:
    """Histogram over replica counts: ``out[r]`` = #vertices with r replicas.

    Useful for analyzing *who* gets cut — 2PS-L should concentrate
    replication on high-degree, inter-cluster vertices.
    """
    edges = np.asarray(edges)
    present = np.zeros((n_vertices, k), dtype=bool)
    present[edges[:, 0], np.asarray(assignments)] = True
    present[edges[:, 1], np.asarray(assignments)] = True
    counts = present.sum(axis=1)
    return np.bincount(counts, minlength=k + 1)
