"""Run-time accounting: wall-clock phase timers and the operation-count model.

The paper's central claim is about *asymptotics*: 2PS-L performs O(|E|)
work while HDRF/ADWISE perform O(|E| * k) score evaluations.  A pure-Python
reproduction cannot compare wall-clock seconds against the authors' C++, so
every partitioner additionally counts its abstract operations in a
:class:`CostCounter`.  A :class:`CostModel` converts counts into
machine-neutral "model seconds" using per-operation costs calibrated to the
paper's hardware; the *shape* of every run-time figure (flat in k for 2PS-L,
linear in k for HDRF) is exact in this model, and tests assert it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass


@dataclass
class CostCounter:
    """Abstract operation counts accumulated by a partitioner run.

    Attributes
    ----------
    edges_streamed:
        Total edges delivered across all passes (degree + clustering +
        partitioning).
    score_evaluations:
        Number of (edge, partition) scoring-function evaluations — the
        quantity that makes stateful streaming O(|E| * k).
    hash_evaluations:
        Constant-time hash assignments (stateless path and fallbacks).
    cluster_updates:
        Volume/assignment updates during streaming clustering.
    heap_operations:
        Priority-queue operations (cluster mapping, NE expansion).
    refinement_moves:
        Vertex moves during multilevel refinement (METIS-like baseline).
    expansion_scans:
        Adjacency positions visited by neighborhood expansion (NE family)
        and multilevel coarsening — the dominant in-memory work term.
    """

    edges_streamed: int = 0
    score_evaluations: int = 0
    hash_evaluations: int = 0
    cluster_updates: int = 0
    heap_operations: int = 0
    refinement_moves: int = 0
    expansion_scans: int = 0

    def merged_with(self, other: "CostCounter") -> "CostCounter":
        """Element-wise sum of two counters."""
        return CostCounter(
            edges_streamed=self.edges_streamed + other.edges_streamed,
            score_evaluations=self.score_evaluations + other.score_evaluations,
            hash_evaluations=self.hash_evaluations + other.hash_evaluations,
            cluster_updates=self.cluster_updates + other.cluster_updates,
            heap_operations=self.heap_operations + other.heap_operations,
            refinement_moves=self.refinement_moves + other.refinement_moves,
            expansion_scans=self.expansion_scans + other.expansion_scans,
        )

    def total_operations(self) -> int:
        """Sum of all counted operations."""
        return (
            self.edges_streamed
            + self.score_evaluations
            + self.hash_evaluations
            + self.cluster_updates
            + self.heap_operations
            + self.refinement_moves
            + self.expansion_scans
        )


@dataclass(frozen=True)
class CostModel:
    """Per-operation costs (seconds) for the machine-neutral run-time model.

    Defaults are calibrated so that DBH on the OK graph at the paper's
    scale would take single-digit seconds and HDRF at k=256 takes minutes —
    the magnitudes of Figure 2b.  Only *ratios* matter for the reproduced
    claims; tests rely exclusively on shape, not absolute values.
    """

    stream_edge: float = 45e-9
    score_evaluation: float = 18e-9
    hash_evaluation: float = 20e-9
    cluster_update: float = 30e-9
    heap_operation: float = 80e-9
    refinement_move: float = 120e-9
    expansion_scan: float = 220e-9

    def seconds(self, counter: CostCounter) -> float:
        """Model seconds for a full run described by ``counter``."""
        return (
            counter.edges_streamed * self.stream_edge
            + counter.score_evaluations * self.score_evaluation
            + counter.hash_evaluations * self.hash_evaluation
            + counter.cluster_updates * self.cluster_update
            + counter.heap_operations * self.heap_operation
            + counter.refinement_moves * self.refinement_move
            + counter.expansion_scans * self.expansion_scan
        )


class PhaseTimer:
    """Accumulates wall-clock seconds per named phase.

    Used for the Figure 5 phase breakdown (degree / clustering /
    partitioning).  Phases may be entered repeatedly; times accumulate.

    Example
    -------
    >>> timer = PhaseTimer()
    >>> with timer.phase("degree"):
    ...     pass
    >>> sorted(timer.totals) == ['degree']
    True
    """

    def __init__(self) -> None:
        self.totals: dict[str, float] = {}

    def phase(self, name: str) -> "_PhaseContext":
        """Context manager measuring one phase occurrence."""
        return _PhaseContext(self, name)

    def add(self, name: str, seconds: float) -> None:
        """Manually add time to a phase."""
        self.totals[name] = self.totals.get(name, 0.0) + seconds

    def total(self) -> float:
        """Sum across all phases."""
        return sum(self.totals.values())

    def fractions(self) -> dict[str, float]:
        """Per-phase share of the total (empty dict when nothing timed)."""
        total = self.total()
        if total <= 0:
            return {}
        return {name: t / total for name, t in self.totals.items()}


class _PhaseContext:
    """Context-manager helper for :class:`PhaseTimer`."""

    def __init__(self, timer: PhaseTimer, name: str) -> None:
        self._timer = timer
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_PhaseContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._timer.add(self._name, time.perf_counter() - self._start)
