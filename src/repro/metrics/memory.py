"""Memory-footprint models (paper Table II and Figure 4 memory plots).

Two views are provided:

- *measured*: the actual bytes of a partitioner's live state objects
  (replication matrix, degree/cluster arrays, buffers, materialized graph).
- *analytic*: the closed-form Table II space complexities instantiated with
  concrete element sizes, used to reproduce the Table II comparison and to
  sanity-check the measurements.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

#: Bytes per int32 id (the paper's partitioners use 32-bit vertex ids).
ID_BYTES = 4


def analytic_state_bytes(
    kind: str,
    n_vertices: int,
    n_edges: int,
    k: int,
    buffer_edges: int = 0,
) -> int:
    """Closed-form state size in bytes for a partitioner class.

    Parameters
    ----------
    kind:
        One of ``"2ps-l"``, ``"hdrf"``, ``"adwise"``, ``"dbh"``, ``"grid"``,
        ``"in-memory"`` — the rows of Table II.
    n_vertices, n_edges, k:
        Problem dimensions.
    buffer_edges:
        ADWISE buffer size ``b``.

    Notes
    -----
    - Stateful streaming (2PS-L, HDRF): replication bit matrix ``|V| * k``
      bits plus O(|V|) id arrays.  2PS-L additionally keeps degrees, cluster
      volumes and the vertex-to-cluster map — all O(|V|).
    - DBH: only the degree array, O(|V|).
    - Grid: O(1).
    - In-memory: at least the edge list, >= O(|E|).
    """
    key = kind.lower()
    bit_matrix = (n_vertices * k + 7) // 8
    if key in ("2ps-l", "2ps-hdrf"):
        per_vertex = 3 * ID_BYTES * n_vertices  # degrees, v2c, cluster volumes
        per_cluster = 2 * ID_BYTES * n_vertices  # c2p + per-partition volume bound
        return bit_matrix + per_vertex + per_cluster + ID_BYTES * k
    if key == "hdrf":
        return bit_matrix + ID_BYTES * n_vertices + ID_BYTES * k
    if key == "adwise":
        return (
            bit_matrix
            + ID_BYTES * n_vertices
            + ID_BYTES * k
            + 2 * ID_BYTES * buffer_edges
        )
    if key == "dbh":
        return ID_BYTES * n_vertices
    if key == "grid":
        return ID_BYTES * k  # partition counters only; independent of |V|, |E|
    if key == "in-memory":
        return 2 * ID_BYTES * n_edges
    raise ConfigurationError(f"unknown partitioner kind {kind!r}")


def measured_state_bytes(*objects) -> int:
    """Sum the measured byte footprint of live state objects.

    Accepts any mix of numpy arrays, objects exposing ``nbytes()`` (e.g.
    :class:`~repro.partitioning.state.PartitionState`) or ``nbytes``
    attributes, plain lists of ints (8 bytes per element assumed), and
    ``None`` (skipped).
    """
    total = 0
    for obj in objects:
        if obj is None:
            continue
        nbytes = getattr(obj, "nbytes", None)
        if callable(nbytes):
            total += int(nbytes())
        elif nbytes is not None:
            total += int(nbytes)
        elif isinstance(obj, (list, tuple)):
            total += 8 * len(obj)
        else:
            raise ConfigurationError(
                f"cannot measure memory of {type(obj).__name__}"
            )
    return total
