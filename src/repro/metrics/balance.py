"""Balance metrics and partition validation.

The balancing constraint of Section II-A: every partition must hold at most
``alpha * |E| / k`` edges.  Stateless partitioners (DBH, Grid) cannot
enforce it, so — exactly like the paper's plots, which annotate the measured
alpha when the constraint is missed — we *measure* alpha for every run and
let experiments report violations.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PartitioningError


def partition_sizes(assignments: np.ndarray, k: int) -> np.ndarray:
    """Edge count per partition."""
    assignments = np.asarray(assignments)
    if assignments.size and (assignments.min() < 0 or assignments.max() >= k):
        raise PartitioningError("assignment out of range [0, k)")
    return np.bincount(assignments, minlength=k).astype(np.int64)


def measured_alpha(assignments: np.ndarray, k: int) -> float:
    """Observed imbalance ``max_i |p_i| / (|E| / k)`` (1.0 = perfect)."""
    assignments = np.asarray(assignments)
    m = assignments.shape[0]
    if m == 0:
        return 1.0
    return float(partition_sizes(assignments, k).max()) * k / m


def validate_partition(
    edges: np.ndarray,
    assignments: np.ndarray,
    k: int,
    alpha: float | None = None,
) -> None:
    """Assert that ``assignments`` is a valid edge partitioning.

    Checks that every edge has exactly one assignment in ``[0, k)`` and —
    when ``alpha`` is given — that the hard cap
    ``max(floor(alpha * m / k), ceil(m / k))`` holds.

    Raises
    ------
    PartitioningError
        On any violation; the message names the failing condition.
    """
    edges = np.asarray(edges)
    assignments = np.asarray(assignments)
    if edges.shape[0] != assignments.shape[0]:
        raise PartitioningError(
            f"{edges.shape[0]} edges but {assignments.shape[0]} assignments"
        )
    if assignments.size == 0:
        return
    if assignments.min() < 0:
        raise PartitioningError("an edge is unassigned (negative partition id)")
    if assignments.max() >= k:
        raise PartitioningError(
            f"assignment {int(assignments.max())} out of range for k={k}"
        )
    if alpha is not None:
        m = edges.shape[0]
        cap = max(int(np.floor(alpha * m / k)), int(np.ceil(m / k)))
        sizes = partition_sizes(assignments, k)
        if sizes.max() > cap:
            raise PartitioningError(
                f"balance violated: largest partition {int(sizes.max())} "
                f"exceeds cap {cap} (alpha={alpha}, m={m}, k={k})"
            )


def balance_summary(assignments: np.ndarray, k: int) -> dict:
    """Min / max / mean partition size and measured alpha, as a dict."""
    sizes = partition_sizes(assignments, k)
    m = int(np.asarray(assignments).shape[0])
    return {
        "min": int(sizes.min()),
        "max": int(sizes.max()),
        "mean": m / k if k else 0.0,
        "alpha": measured_alpha(assignments, k),
    }
