"""Simulated storage devices.

A :class:`StorageDevice` turns byte counts into *simulated read seconds*
using a sequential-read bandwidth, optionally front-ended by a
:class:`~repro.storage.pagecache.PageCache`.  The default bandwidths are the
paper's fio measurements (Section V-F): 938 MB/s for the SSD and 158 MB/s
for the HDD; the page-cache device is effectively infinite bandwidth.
"""

from __future__ import annotations

from repro.errors import StorageError
from repro.storage.pagecache import PageCache

#: Sequential read bandwidth measured by the paper with fio (bytes/second).
SSD_BANDWIDTH = 938_000_000.0
HDD_BANDWIDTH = 158_000_000.0
#: Effective bandwidth when serving from the OS page cache.  Reads still
#: cost memory bandwidth; 10 GB/s keeps the model strictly positive without
#: affecting any comparison.
PAGE_CACHE_BANDWIDTH = 10_000_000_000.0


class SimulatedClock:
    """Accumulates simulated seconds; shared by device and experiment."""

    def __init__(self) -> None:
        self._elapsed = 0.0

    @property
    def elapsed(self) -> float:
        return self._elapsed

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise StorageError(f"cannot advance clock by {seconds}")
        self._elapsed += seconds

    def reset(self) -> None:
        self._elapsed = 0.0


class StorageDevice:
    """A sequential-read storage device with an optional page cache.

    Parameters
    ----------
    name:
        Label used in reports ("page-cache", "ssd", "hdd").
    bandwidth:
        Sequential-read bandwidth in bytes/second (must be positive).
    cache:
        Optional :class:`PageCache`.  Cache hits are charged at
        page-cache bandwidth instead of device bandwidth.
    clock:
        Optional shared clock; a private one is created otherwise.
    """

    def __init__(
        self,
        name: str,
        bandwidth: float,
        cache: PageCache | None = None,
        clock: SimulatedClock | None = None,
    ) -> None:
        if bandwidth <= 0:
            raise StorageError(f"bandwidth must be positive, got {bandwidth}")
        self.name = name
        self.bandwidth = float(bandwidth)
        self.cache = cache
        self.clock = clock if clock is not None else SimulatedClock()

    # ------------------------------------------------------------------
    def read_time(self, nbytes: int) -> float:
        """Raw device time for ``nbytes`` with no cache involvement."""
        if nbytes < 0:
            raise StorageError(f"cannot read negative bytes: {nbytes}")
        return nbytes / self.bandwidth

    def charge_read(self, path: str, nbytes: int) -> float:
        """Charge a sequential read and return the simulated seconds.

        When a cache is attached, the cached fraction is charged at
        page-cache bandwidth and only misses hit the device.
        """
        if self.cache is None:
            seconds = self.read_time(nbytes)
        else:
            hit, miss = self.cache.read(path, nbytes)
            seconds = hit / PAGE_CACHE_BANDWIDTH + miss / self.bandwidth
        self.clock.advance(seconds)
        return seconds

    def begin_pass(self, path: str) -> None:
        """Signal the start of a new sequential pass over ``path``."""
        if self.cache is not None:
            self.cache.begin_pass(path)

    def drop_page_cache(self) -> None:
        """Emulate the paper's between-pass ``drop_caches`` invocation."""
        if self.cache is not None:
            self.cache.drop()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StorageDevice({self.name}, {self.bandwidth / 1e6:.0f} MB/s)"


# ----------------------------------------------------------------------
# Factory helpers matching the paper's three storage configurations.
# ----------------------------------------------------------------------

def page_cache_device(clock: SimulatedClock | None = None) -> StorageDevice:
    """All reads served at page-cache speed (the paper's cached runs)."""
    return StorageDevice("page-cache", PAGE_CACHE_BANDWIDTH, clock=clock)


def ssd_device(
    cold_every_pass: bool = True, clock: SimulatedClock | None = None
) -> StorageDevice:
    """SSD at the paper's measured 938 MB/s.

    With ``cold_every_pass`` (the paper drops caches between passes) no
    cache is attached, so every pass pays full device time.
    """
    cache = None if cold_every_pass else PageCache()
    return StorageDevice("ssd", SSD_BANDWIDTH, cache=cache, clock=clock)


def hdd_device(
    cold_every_pass: bool = True, clock: SimulatedClock | None = None
) -> StorageDevice:
    """HDD at the paper's measured 158 MB/s."""
    cache = None if cold_every_pass else PageCache()
    return StorageDevice("hdd", HDD_BANDWIDTH, cache=cache, clock=clock)
