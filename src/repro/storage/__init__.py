"""Storage substrate: simulated devices and page-cache model.

The paper's Section V-F measures partitioning time when the graph is read
from page cache, a local SSD (938 MB/s sequential) and a local HDD
(158 MB/s), dropping the OS page cache between streaming passes to force
cold reads.  We have no control over host storage, so this package models
the same setup: a :class:`~repro.storage.devices.StorageDevice` with a
sequential-read bandwidth, an optional :class:`~repro.storage.pagecache.PageCache`
in front of it, and an explicit :func:`drop_page_cache` emulation.  Streams
charge *simulated seconds* per byte; wall-clock compute time is tracked
separately, and the Table V experiment adds the two.
"""

from repro.storage.devices import (
    HDD_BANDWIDTH,
    SSD_BANDWIDTH,
    SimulatedClock,
    StorageDevice,
    hdd_device,
    page_cache_device,
    ssd_device,
)
from repro.storage.pagecache import PageCache

__all__ = [
    "StorageDevice",
    "SimulatedClock",
    "PageCache",
    "ssd_device",
    "hdd_device",
    "page_cache_device",
    "SSD_BANDWIDTH",
    "HDD_BANDWIDTH",
]
