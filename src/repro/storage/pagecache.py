"""OS page-cache model.

Tracks, per file, how many bytes are currently resident in cache.  Reads are
served from cache as far as possible (free) and from the backing device for
the remainder (charged), after which the newly read bytes become resident —
a faithful model of sequential streaming through the Linux page cache at
whole-pass granularity.  :meth:`PageCache.drop` emulates
``echo 3 > /proc/sys/vm/drop_caches``, which the paper uses between passes to
force cold reads (Section V-F).
"""

from __future__ import annotations

from repro.errors import StorageError


class PageCache:
    """A capacity-bounded page cache over named files.

    Parameters
    ----------
    capacity_bytes:
        Total cache capacity; ``None`` means unbounded (the paper's 528 GB
        machine caches every evaluated graph fully except the largest).
    """

    def __init__(self, capacity_bytes: int | None = None) -> None:
        if capacity_bytes is not None and capacity_bytes < 0:
            raise StorageError(
                f"capacity_bytes must be >= 0 or None, got {capacity_bytes}"
            )
        self.capacity_bytes = capacity_bytes
        self._resident: dict[str, int] = {}
        self._cursor: dict[str, int] = {}

    # ------------------------------------------------------------------
    def resident_bytes(self, path: str | None = None) -> int:
        """Bytes currently cached for ``path`` (or in total)."""
        if path is None:
            return sum(self._resident.values())
        return self._resident.get(path, 0)

    def begin_pass(self, path: str) -> None:
        """Reset the sequential-read cursor for a new pass over ``path``."""
        self._cursor[path] = 0

    def read(self, path: str, nbytes: int) -> tuple[int, int]:
        """Account a sequential read of ``nbytes`` from ``path``.

        Returns
        -------
        (hit_bytes, miss_bytes):
            Bytes served from cache vs bytes that must come from the device.
        """
        if nbytes < 0:
            raise StorageError(f"cannot read negative bytes: {nbytes}")
        pos = self._cursor.get(path, 0)
        cached = self._resident.get(path, 0)
        hit = max(0, min(cached - pos, nbytes))
        miss = nbytes - hit
        self._cursor[path] = pos + nbytes
        if miss > 0:
            self._admit(path, pos + nbytes)
        return hit, miss

    def drop(self) -> None:
        """Drop the entire cache (the paper's between-pass cache flush)."""
        self._resident.clear()
        self._cursor.clear()

    # ------------------------------------------------------------------
    def _admit(self, path: str, high_water: int) -> None:
        """Mark ``path`` resident up to ``high_water`` bytes, within capacity."""
        current = self._resident.get(path, 0)
        if high_water <= current:
            return
        if self.capacity_bytes is None:
            self._resident[path] = high_water
            return
        others = sum(v for k, v in self._resident.items() if k != path)
        allowed = max(0, self.capacity_bytes - others)
        # Admission never evicts the file's own resident bytes: when the
        # shared budget leaves ``allowed`` below what is already cached
        # (e.g. after a capacity cut modeling memory pressure), the
        # residency stays put instead of shrinking.
        self._resident[path] = max(current, min(high_water, allowed))
