"""Experiment runners: one module per table/figure of the paper.

Each module exposes ``run(...) -> ExperimentResult`` plus a ``main()`` that
prints the reproduced rows next to the paper's reported shape.  The
``python -m repro.experiments <name>`` entry point dispatches to them; see
``python -m repro.experiments --list``.
"""

from repro.experiments.common import (
    ALL_PARTITIONERS,
    ExperimentResult,
    make_partitioner,
    run_one,
)
from repro.experiments.report import format_table, render_result

__all__ = [
    "ALL_PARTITIONERS",
    "ExperimentResult",
    "make_partitioner",
    "run_one",
    "format_table",
    "render_result",
]
