"""Figure 4: full performance matrix — RF / run-time / memory, all systems.

The paper's main evaluation: every partitioner on every dataset at
k in {4, 32, 128, 256}, reporting replication factor, run-time and memory
overhead (21 sub-plots).  Reproduced on the synthetic stand-ins.

Paper shape claims checked by the bench suite on this experiment's rows:

- 2PS-L run-time (model) flat in k; fastest stateful partitioner;
- only DBH is consistently faster than 2PS-L;
- 2PS-L RF below HDRF/ADWISE on web graphs; in-memory partitioners (NE,
  METIS, HEP-100) reach lower RF at higher run-time and memory;
- DBH RF far above 2PS-L on web graphs (paper: up to 6.4x on GSH).

ADWISE is skipped at k > 32 by default — the paper itself aborted ADWISE
runs after their run-time bound (it is the slowest system in Figure 4) and
our buffered implementation is similarly the slowest.
"""

from __future__ import annotations

from repro.experiments.common import (
    FIGURE4_PARTITIONERS,
    ExperimentResult,
    run_one,
)

DEFAULT_DATASETS = ("OK", "IT", "TW", "FR", "UK", "GSH", "WDC")
DEFAULT_KS = (4, 32, 128, 256)

#: Combinations the paper marks as failed; we run them anyway but tag the
#: rows so reports can annotate like the plots do ("SNE FAIL", "NE FAIL").
PAPER_FAILURES = {
    ("SNE", 128): "SNE FAIL (paper)",
    ("SNE", 256): "SNE FAIL (paper)",
    ("NE", 128): "NE FAIL on IT/TW/FR/UK (paper)",
    ("NE", 256): "NE FAIL on IT/TW/FR/UK (paper)",
}


def run(
    scale: float = 0.1,
    datasets=DEFAULT_DATASETS,
    ks=DEFAULT_KS,
    partitioners=FIGURE4_PARTITIONERS,
    include_slow: bool = False,
) -> ExperimentResult:
    """Run the full matrix; ``include_slow`` also runs ADWISE at k > 32."""
    rows = []
    for dataset in datasets:
        for k in ks:
            for name in partitioners:
                if name == "ADWISE" and k > 32 and not include_slow:
                    rows.append(
                        {
                            "partitioner": name,
                            "dataset": dataset,
                            "k": k,
                            "status": "SKIPPED (slowest system; cf. paper's "
                            "aborted ADWISE runs)",
                        }
                    )
                    continue
                row = run_one(name, dataset, k, scale=scale)
                tag = PAPER_FAILURES.get((name, k))
                if tag:
                    row["paper_status"] = tag
                rows.append(row)
    return ExperimentResult(
        experiment="figure4",
        title=f"Figure 4: full performance matrix (scale={scale})",
        rows=rows,
        paper_reference=(
            "at k=256 on TW, 2PS-L is 12.3x faster than HDRF, 630x faster "
            "than ADWISE, 2500x faster than METIS; only DBH is faster"
        ),
        notes=(
            "Run-time comparisons use model_s (operation counts). Memory is "
            "the measured partitioner state in bytes."
        ),
    )


def main() -> None:  # pragma: no cover - thin CLI wrapper
    from repro.experiments.report import render_result

    print(
        render_result(
            run(),
            columns=[
                "dataset",
                "k",
                "partitioner",
                "rf",
                "alpha",
                "wall_s",
                "model_s",
                "mem_bytes",
                "status",
                "paper_status",
            ],
        )
    )
