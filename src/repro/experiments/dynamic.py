"""Extension experiment: dynamic-graph updates (paper Section VI).

Quantifies the incremental 2PS-L variant: starting from a batch
partitioning, apply growing amounts of random edge churn (inserts and
deletes) and track the replication factor against (a) the frozen
incremental state and (b) a fresh batch re-partitioning of the mutated
graph — the quality an operator recovers by re-running 2PS-L.
"""

from __future__ import annotations

import numpy as np

from repro.core import IncrementalPartitioner, TwoPhasePartitioner
from repro.experiments.common import ExperimentResult
from repro.graph.datasets import load_dataset
from repro.graph.graph import Graph


def run(
    scale: float = 0.15,
    dataset: str = "IT",
    k: int = 16,
    churn_steps=(0.0, 0.05, 0.1, 0.2, 0.4),
    seed: int = 3,
) -> ExperimentResult:
    """Sweep churn (fraction of |E| updated) and compare RF curves."""
    graph = load_dataset(dataset, scale=scale)
    base = TwoPhasePartitioner(keep_state=True).partition(graph, k)
    inc = IncrementalPartitioner.from_result(base)
    inc.attach_edges(graph.edges, base.assignments)
    rng = np.random.default_rng(seed)

    rows = []
    inserted: list[tuple[int, int]] = []
    applied = 0
    for churn in churn_steps:
        target = int(churn * graph.n_edges)
        while applied < target:
            u, v = (int(x) for x in rng.integers(0, graph.n_vertices, 2))
            inc.insert(u, v)
            inserted.append((u, v))
            applied += 1
        # Batch re-partition of the mutated graph for comparison.
        if inserted:
            mutated = Graph(
                np.concatenate(
                    [graph.edges, np.asarray(inserted, dtype=np.int64)]
                ),
                graph.n_vertices,
            )
        else:
            mutated = graph
        fresh = TwoPhasePartitioner().partition(mutated, k)
        rows.append(
            {
                "churn": churn,
                "updates": applied,
                "incremental_rf": round(inc.replication_factor(), 4),
                "batch_rf": round(fresh.replication_factor, 4),
                "rf_gap": round(
                    inc.replication_factor() / fresh.replication_factor, 4
                ),
                "staleness": round(inc.staleness, 4),
            }
        )
    return ExperimentResult(
        experiment="dynamic",
        title=f"Dynamic updates on {dataset} (k={k}): incremental vs re-batch",
        rows=rows,
        paper_reference=(
            "Section VI: 2PS-L 'could be transformed into an incremental "
            "algorithm to efficiently handle dynamic graphs'"
        ),
        notes=(
            "rf_gap is the price of not re-partitioning; it grows with "
            "churn and tells operators when to re-run the batch algorithm."
        ),
    )


def main() -> None:  # pragma: no cover - thin CLI wrapper
    from repro.experiments.report import render_result

    print(render_result(run()))
