"""Table III: the dataset inventory — paper graphs vs synthetic stand-ins.

Reports, for every dataset of the paper (plus WI from Table IV), the
original |V| / |E| / type next to the stand-in actually used in this
reproduction, including measured structural properties (max degree,
intra-community edge fraction where a planted structure exists).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.graph.datasets import DATASETS, load_dataset


def run(scale: float = 1.0) -> ExperimentResult:
    """Build the dataset mapping table."""
    rows = []
    for spec in DATASETS.values():
        graph = load_dataset(spec.name, scale=scale)
        degrees = graph.degrees
        rows.append(
            {
                "name": spec.name,
                "full_name": spec.full_name,
                "type": spec.kind,
                "paper_V": spec.paper_vertices,
                "paper_E": spec.paper_edges,
                "standin_V": graph.n_vertices,
                "standin_E": graph.n_edges,
                "max_degree": int(degrees.max()),
                "mean_degree": round(float(degrees.mean()), 1),
                "degree_skew": round(
                    float(degrees.max()) / max(float(degrees.mean()), 1e-9), 1
                ),
            }
        )
    return ExperimentResult(
        experiment="table3",
        title=f"Table III: datasets (paper vs stand-in, scale={scale})",
        rows=rows,
        paper_reference="OK 3.1M/117M ... WDC 1.7B/64B (binary edge lists)",
        notes=(
            "Stand-ins preserve the structural class (power-law social vs "
            "clusterable web), not absolute size; see DESIGN.md section 3."
        ),
    )


def main() -> None:  # pragma: no cover - thin CLI wrapper
    from repro.experiments.report import render_result

    print(render_result(run()))
