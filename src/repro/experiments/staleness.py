"""Extension experiment: CuSP-style parallel partitioning staleness.

The paper (Section VI) notes that parallelizing streaming partitioning
"comes with a cost, as staleness in state synchronization of multiple
partitioner instances can lead to lower partitioning quality."  This
experiment quantifies that trade-off for sharded 2PS-L: sweep the
synchronization interval and report replication factor, measured balance,
sync count, and the modeled parallel wall-clock.
"""

from __future__ import annotations

from repro.core import ParallelTwoPhase, TwoPhasePartitioner
from repro.experiments.common import ExperimentResult
from repro.graph.datasets import load_dataset


def run(
    scale: float = 0.15,
    dataset: str = "OK",
    k: int = 16,
    n_workers: int = 4,
    intervals=(64, 256, 1024, 4096, 16384),
) -> ExperimentResult:
    """Sweep the sync interval of the sharded partitioner."""
    graph = load_dataset(dataset, scale=scale)
    sequential = TwoPhasePartitioner().partition(graph, k)
    rows = [
        {
            "config": "sequential",
            "sync_interval": 0,
            "rf": round(sequential.replication_factor, 4),
            "alpha": round(sequential.measured_alpha, 4),
            "syncs": 0,
            "parallel_wall_s": round(sequential.wall_seconds, 4),
        }
    ]
    for interval in intervals:
        result = ParallelTwoPhase(
            n_workers=n_workers, sync_interval=interval
        ).partition(graph, k)
        rows.append(
            {
                "config": f"{n_workers}w",
                "sync_interval": interval,
                "rf": round(result.replication_factor, 4),
                "alpha": round(result.measured_alpha, 4),
                "syncs": result.extras["syncs"],
                "parallel_wall_s": round(result.extras["parallel_wall_s"], 4),
            }
        )
    return ExperimentResult(
        experiment="staleness",
        title=(
            f"CuSP-style sharding on {dataset} (k={k}, {n_workers} workers): "
            "sync interval vs quality"
        ),
        rows=rows,
        paper_reference=(
            "Section VI: 'staleness in state synchronization of multiple "
            "partitioner instances can lead to lower partitioning quality'"
        ),
        notes=(
            "Fewer syncs = faster parallel wall-clock but staler replica "
            "views; balance can also drift above alpha within a window."
        ),
    )


def main() -> None:  # pragma: no cover - thin CLI wrapper
    from repro.experiments.report import render_result

    print(render_result(run()))
