"""Table I: time-complexity comparison — validated empirically.

The paper's Table I states asymptotic classes.  We *measure* them: for the
main streaming systems we fit how the operation count grows (a) in |E| at
fixed k and (b) in k at fixed |E|.  A partitioner is O(|E|) iff doubling
|E| doubles its operations and growing k leaves them flat; O(|E| * k) iff
operations also scale with k.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, make_partitioner
from repro.graph.datasets import load_dataset

SYSTEMS = ("2PS-L", "HDRF", "DBH", "Greedy")
PAPER_CLASSES = {
    "2PS-L": "O(|E|)",
    "HDRF": "O(|E| * k)",
    "DBH": "O(|E|)",
    "Greedy": "O(|E| * k)",
    "ADWISE": "O(|E| * k)",
    "Grid": "O(|E|)",
}


def _ops(name: str, graph, k: int) -> int:
    result = make_partitioner(name).partition(graph, k)
    return result.cost.total_operations()


def run(scale: float = 0.1, dataset: str = "OK") -> ExperimentResult:
    """Measure operation-count scaling in |E| and in k."""
    small = load_dataset(dataset, scale=scale)
    large = load_dataset(dataset, scale=scale * 2)
    k_lo, k_hi = 8, 64
    rows = []
    for name in SYSTEMS:
        ops_small = _ops(name, small, k_lo)
        ops_large = _ops(name, large, k_lo)
        ops_klo = ops_small
        ops_khi = _ops(name, small, k_hi)
        edge_scaling = ops_large / ops_small  # ~2 if linear in |E|
        k_scaling = ops_khi / ops_klo  # ~1 if independent of k, ~8 if O(k)
        measured = (
            "O(|E|)"
            if k_scaling < 2.0
            else "O(|E| * k)"
        )
        rows.append(
            {
                "partitioner": name,
                "ops_at_|E|": ops_small,
                "ops_at_2|E|": ops_large,
                "edge_scaling": round(edge_scaling, 2),
                "k_scaling_8x": round(k_scaling, 2),
                "measured_class": measured,
                "paper_class": PAPER_CLASSES[name],
                "match": measured == PAPER_CLASSES[name],
            }
        )
    return ExperimentResult(
        experiment="table1",
        title="Table I: time complexity (empirical validation)",
        rows=rows,
        paper_reference=(
            "2PS-L O(|E|); HDRF/ADWISE O(|E|*k); DBH/Grid O(|E|); "
            "in-memory partitioners higher"
        ),
        notes=(
            "edge_scaling ~2 means linear in |E|; k_scaling_8x ~1 means "
            "independent of k, ~8 means linear in k."
        ),
    )


def main() -> None:  # pragma: no cover - thin CLI wrapper
    from repro.experiments.report import render_result

    print(render_result(run()))
