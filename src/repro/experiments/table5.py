"""Table V: partitioning time from different storage devices.

The paper drops the page cache between streaming passes and measures
2PS-L's end-to-end partitioning time reading from page cache, SSD
(938 MB/s) and HDD (158 MB/s).  Result: SSD costs +7-40 %, HDD +54-308 %,
with web graphs penalized more (higher pre-partitioning share means I/O is
a larger fraction of their total).

Reproduction: each stand-in is serialized to the paper's binary edge-list
format and streamed through :class:`~repro.streaming.stream.FileEdgeStream`
charged against the simulated device.  Total time = operation-count model
(compute) + simulated read seconds (I/O); the reported percentages are the
device slowdown relative to the page-cache run.
"""

from __future__ import annotations

import os
import tempfile

from repro.core import TwoPhasePartitioner
from repro.experiments.common import ExperimentResult
from repro.graph.datasets import load_dataset
from repro.graph.formats import write_binary_edge_list
from repro.storage import hdd_device, page_cache_device, ssd_device
from repro.streaming import FileEdgeStream

DEFAULT_DATASETS = ("OK", "IT", "TW", "FR", "UK", "GSH", "WDC")

#: The paper's measured slowdowns for side-by-side reading.
PAPER_SLOWDOWNS = {
    "OK": {"ssd": 0.22, "hdd": 1.59},
    "IT": {"ssd": 0.40, "hdd": 3.08},
    "TW": {"ssd": 0.12, "hdd": 0.93},
    "FR": {"ssd": 0.07, "hdd": 0.54},
    "UK": {"ssd": 0.34, "hdd": 2.85},
    "GSH": {"ssd": 0.13, "hdd": 2.00},
    "WDC": {"ssd": 0.14, "hdd": 2.14},
}

DEVICE_FACTORIES = {
    "page-cache": page_cache_device,
    "ssd": ssd_device,
    "hdd": hdd_device,
}


def _run_device(path: str, n_vertices: int, device, k: int) -> tuple[float, float]:
    """One full 2PS-L run from ``path`` on ``device``; returns (compute, io)."""
    stream = FileEdgeStream(path, n_vertices=n_vertices, device=device)
    result = TwoPhasePartitioner().partition(stream, k)
    return result.model_seconds(), stream.stats.simulated_read_seconds


def run(
    scale: float = 0.25, datasets=DEFAULT_DATASETS, k: int = 32
) -> ExperimentResult:
    """Compare page-cache / SSD / HDD partitioning time per dataset."""
    rows = []
    with tempfile.TemporaryDirectory() as tmp:
        for dataset in datasets:
            graph = load_dataset(dataset, scale=scale)
            path = os.path.join(tmp, f"{dataset}.bin")
            write_binary_edge_list(graph, path)
            totals = {}
            for device_name, factory in DEVICE_FACTORIES.items():
                compute_s, io_s = _run_device(
                    path, graph.n_vertices, factory(), k
                )
                totals[device_name] = compute_s + io_s
            base = totals["page-cache"]
            paper = PAPER_SLOWDOWNS.get(dataset, {})
            rows.append(
                {
                    "dataset": dataset,
                    "page_cache_s": round(base, 4),
                    "ssd_s": round(totals["ssd"], 4),
                    "ssd_slowdown": round(totals["ssd"] / base - 1.0, 3),
                    "hdd_s": round(totals["hdd"], 4),
                    "hdd_slowdown": round(totals["hdd"] / base - 1.0, 3),
                    "paper_ssd_slowdown": paper.get("ssd"),
                    "paper_hdd_slowdown": paper.get("hdd"),
                }
            )
    return ExperimentResult(
        experiment="table5",
        title=f"Table V: partitioning time by storage device (k={k})",
        rows=rows,
        paper_reference=(
            "SSD +7-40 %, HDD +54-308 % over page cache; web graphs hit harder"
        ),
        notes=(
            "Compute = operation-count model; I/O = simulated device read "
            "time over the real binary edge-list byte counts (5 passes: "
            "degree, clustering, pre-partition, remaining + re-check)."
        ),
    )


def main() -> None:  # pragma: no cover - thin CLI wrapper
    from repro.experiments.report import render_result

    print(render_result(run()))
