"""Figure 6: ratio of pre-partitioned vs remaining edges at k=32.

In 2PS-L's second phase, "pre-partitioned" edges (endpoints in the same
cluster, or in clusters mapped to the same partition) are assigned without
scoring.  The paper shows pre-partitioning *dominates on web graphs* while
social networks leave the majority to the scoring pass — the structural
signature that web graphs cluster better.
"""

from __future__ import annotations

from repro.core import TwoPhasePartitioner
from repro.experiments.common import ExperimentResult
from repro.graph.datasets import DATASETS, load_dataset

DEFAULT_DATASETS = ("OK", "IT", "TW", "FR", "UK", "GSH", "WDC")


def run(
    scale: float = 0.25, datasets=DEFAULT_DATASETS, k: int = 32
) -> ExperimentResult:
    """Measure the pre-partitioned edge fraction per dataset."""
    rows = []
    for dataset in datasets:
        graph = load_dataset(dataset, scale=scale)
        result = TwoPhasePartitioner(clustering_passes=1).partition(graph, k)
        pre = result.extras["prepartitioned_edges"]
        rem = result.extras["remaining_edges"]
        rows.append(
            {
                "dataset": dataset,
                "type": DATASETS[dataset].kind,
                "prepartitioned_frac": round(pre / graph.n_edges, 3),
                "remaining_frac": round(rem / graph.n_edges, 3),
                "n_edges": graph.n_edges,
            }
        )
    return ExperimentResult(
        experiment="figure6",
        title=f"Figure 6: pre-partitioned vs remaining edges at k={k}",
        rows=rows,
        paper_reference=(
            "pre-partitioning dominates on web graphs (IT/UK/GSH/WDC), "
            "remaining-edge scoring dominates on social networks (OK/TW/FR)"
        ),
    )


def main() -> None:  # pragma: no cover - thin CLI wrapper
    from repro.experiments.report import render_result

    print(render_result(run()))
