"""Section I motivation: edge partitioning beats vertex partitioning on
power-law graphs.

Not a numbered figure, but the paper's opening argument (citing Bourse et
al. [9]): "when the distribution of vertex degrees in a graph is highly
skewed ... edge partitioning is more effective than vertex partitioning in
finding good cuts."  We partition the same power-law stand-in with the
streaming vertex partitioners (Hash, LDG, FENNEL, converted to the induced
edge placement) and with the edge partitioners (DBH, HDRF, 2PS-L), and
compare replication factors on one axis.
"""

from __future__ import annotations

from repro.baselines import DBH, HDRF
from repro.core import TwoPhasePartitioner
from repro.experiments.common import ExperimentResult
from repro.graph.datasets import load_dataset
from repro.metrics import measured_alpha, replication_factor_from_assignments
from repro.vertexpart import (
    Fennel,
    HashVertices,
    LinearDeterministicGreedy,
    derived_edge_assignment,
    edge_cut_fraction,
    vertex_balance,
)


def run(scale: float = 0.25, dataset: str = "TW", k: int = 32) -> ExperimentResult:
    """Vertex vs edge partitioning on a heavily skewed graph."""
    graph = load_dataset(dataset, scale=scale)
    rows = []
    for partitioner in (HashVertices(), LinearDeterministicGreedy(), Fennel()):
        vres = partitioner.partition(graph, k)
        induced = derived_edge_assignment(graph.edges, vres.parts, k)
        rows.append(
            {
                "family": "vertex",
                "partitioner": vres.partitioner,
                "rf": round(
                    replication_factor_from_assignments(
                        graph.edges, induced, k, graph.n_vertices
                    ),
                    3,
                ),
                "edge_cut": round(edge_cut_fraction(graph.edges, vres.parts), 3),
                "vertex_balance": round(vertex_balance(vres.parts, k), 3),
                # The decisive column on skewed graphs: a vertex-balanced
                # placement leaves *edges* (i.e. work) wildly imbalanced.
                "edge_alpha": round(measured_alpha(induced, k), 3),
            }
        )
    for partitioner in (DBH(), HDRF(), TwoPhasePartitioner()):
        eres = partitioner.partition(graph, k)
        rows.append(
            {
                "family": "edge",
                "partitioner": eres.partitioner,
                "rf": round(eres.replication_factor, 3),
                "edge_cut": None,
                "vertex_balance": None,
                "edge_alpha": round(eres.measured_alpha, 3),
            }
        )
    return ExperimentResult(
        experiment="motivation",
        title=f"Section I: vertex vs edge partitioning on {dataset} (k={k})",
        rows=rows,
        paper_reference=(
            "on power-law graphs, edge partitioning (vertex cuts) yields "
            "lower replication than vertex partitioning (edge cuts) [9]"
        ),
        notes=(
            "Vertex partitionings are converted to their induced edge "
            "placement so replication factors are directly comparable. "
            "The skew shows in edge_alpha: greedy vertex partitioners "
            "reach a low RF only by loading one machine with many times "
            "its balanced edge share (hub concentration), while edge "
            "partitioners hold edge_alpha <= 1.05 — the reason edge "
            "partitioning wins on power-law graphs."
        ),
    )


def main() -> None:  # pragma: no cover - thin CLI wrapper
    from repro.experiments.report import render_result

    print(render_result(run()))
