"""Table II: space-complexity comparison — validated empirically.

We measure each partitioner's live state bytes at two vertex counts and
two k values.  The Table II classes predict: stateful streaming systems
(2PS-L, HDRF) scale with |V| * k; DBH with |V| only; Grid O(1); in-memory
systems with |E|.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, make_partitioner
from repro.graph.datasets import load_dataset
from repro.metrics.memory import analytic_state_bytes

SYSTEMS = ("2PS-L", "HDRF", "DBH", "Grid", "NE")
PAPER_CLASSES = {
    "2PS-L": "O(|V| * k)",
    "HDRF": "O(|V| * k)",
    "ADWISE": "O(|V| * k + b)",
    "DBH": "O(|V|)",
    "Grid": "O(1)",
    "NE": ">= O(|E|)",
}
ANALYTIC_KIND = {
    "2PS-L": "2ps-l",
    "HDRF": "hdrf",
    "DBH": "dbh",
    "Grid": "grid",
    "NE": "in-memory",
}


def _bytes(name: str, graph, k: int) -> int:
    return make_partitioner(name).partition(graph, k).state_bytes


def run(scale: float = 0.05, dataset: str = "OK") -> ExperimentResult:
    """Measure state bytes across (|V|, k) and compare with Table II."""
    small = load_dataset(dataset, scale=scale)
    large = load_dataset(dataset, scale=scale * 2)
    k_lo, k_hi = 8, 256
    rows = []
    for name in SYSTEMS:
        b_small = _bytes(name, small, k_lo)
        b_large = _bytes(name, large, k_lo)
        b_khi = _bytes(name, small, k_hi)
        rows.append(
            {
                "partitioner": name,
                "bytes(V,k=8)": b_small,
                "bytes(2V,k=8)": b_large,
                "bytes(V,k=256)": b_khi,
                "k_scaling_32x": round(b_khi / b_small, 2) if b_small else "-",
                "analytic_bytes": analytic_state_bytes(
                    ANALYTIC_KIND[name], small.n_vertices, small.n_edges, k_lo
                ),
                "paper_class": PAPER_CLASSES[name],
            }
        )
    return ExperimentResult(
        experiment="table2",
        title="Table II: space complexity (empirical validation)",
        rows=rows,
        paper_reference=(
            "2PS-L and HDRF O(|V|*k); DBH O(|V|); Grid O(1); in-memory >= O(|E|)"
        ),
        notes=(
            "k_scaling_32x well above 1 indicates O(|V|*k) replication "
            "state; exactly 1 indicates k-independent state."
        ),
    )


def main() -> None:  # pragma: no cover - thin CLI wrapper
    from repro.experiments.report import render_result

    print(render_result(run()))
