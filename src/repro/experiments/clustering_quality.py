"""Extension experiment: Phase-1 clustering quality across configurations.

Section III-A argues the clustering phase must (a) find real communities
and (b) keep cluster volumes bounded so Phase 2 can balance them.  This
experiment measures both, sweeping the volume-cap factor and the number of
streaming passes on a social and a web stand-in, reporting Newman
modularity, the intra-cluster edge fraction (the driver of Figure 6's
pre-partitioning ratio), cluster counts, and the resulting 2PS-L
replication factor.
"""

from __future__ import annotations

from repro.core import TwoPhasePartitioner
from repro.core.clustering import StreamingClustering, default_volume_cap
from repro.experiments.common import ExperimentResult
from repro.graph.datasets import load_dataset
from repro.metrics.analysis import (
    clustering_modularity,
    intra_cluster_edge_fraction,
)
from repro.streaming import InMemoryEdgeStream


def run(
    scale: float = 0.15,
    datasets=("OK", "IT"),
    k: int = 32,
    cap_factors=(0.25, 0.5, 1.0, 2.0),
    passes_list=(1, 3),
) -> ExperimentResult:
    """Sweep (cap factor, passes) and measure clustering + partitioning."""
    rows = []
    for dataset in datasets:
        graph = load_dataset(dataset, scale=scale)
        for factor in cap_factors:
            for passes in passes_list:
                cap = default_volume_cap(graph.n_edges, k, factor)
                clustering = StreamingClustering(
                    n_passes=passes, volume_cap=cap
                ).run(InMemoryEdgeStream(graph), degrees=graph.degrees)
                result = TwoPhasePartitioner(
                    volume_cap_factor=factor, clustering_passes=passes
                ).partition(graph, k)
                rows.append(
                    {
                        "dataset": dataset,
                        "cap_factor": factor,
                        "passes": passes,
                        "modularity": round(
                            clustering_modularity(graph, clustering.v2c), 4
                        ),
                        "intra_frac": round(
                            intra_cluster_edge_fraction(graph, clustering.v2c),
                            4,
                        ),
                        "clusters": clustering.n_nonempty_clusters,
                        "rf": round(result.replication_factor, 3),
                    }
                )
    return ExperimentResult(
        experiment="clustering",
        title=f"Phase-1 clustering quality sweep (k={k})",
        rows=rows,
        paper_reference=(
            "Section III-A: bounded volumes are required for balance; "
            "clustering quality drives partitioning quality"
        ),
        notes=(
            "intra_frac is the share of edges eligible for pre-partitioning "
            "when clusters co-locate; rf is the end quality of 2PS-L with "
            "that configuration."
        ),
    )


def main() -> None:  # pragma: no cover - thin CLI wrapper
    from repro.experiments.report import render_result

    print(render_result(run()))
