"""Experiment dispatcher: ``python -m repro.experiments <name> [options]``.

``--list`` enumerates every reproducible table/figure; ``all`` runs the
complete suite (several minutes at the default scale).
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import report
from repro.experiments import (  # noqa: F401 - imported for dispatch
    clustering_quality,
    dynamic,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    hypergraphs,
    motivation,
    staleness,
    table1,
    table2,
    table3,
    table4,
    table5,
)

EXPERIMENTS = {
    "figure1": figure1,
    "figure2": figure2,
    "figure3": figure3,
    "figure4": figure4,
    "figure5": figure5,
    "figure6": figure6,
    "figure7": figure7,
    "figure8": figure8,
    "figure9": figure9,
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "table5": table5,
    # Beyond the paper's numbered exhibits:
    "motivation": motivation,  # Section I: vertex vs edge partitioning
    "dynamic": dynamic,  # Section VI: incremental updates
    "staleness": staleness,  # Section VI: CuSP-style parallel sharding
    "hypergraphs": hypergraphs,  # Section VII: hypergraph generalization
    "clustering": clustering_quality,  # Section III-A: Phase-1 quality sweep
}

#: Experiments whose run() accepts a scale parameter.
SCALED = {
    name
    for name in EXPERIMENTS
    if name not in ("figure1", "figure3", "hypergraphs")
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help="experiment id (figure1..figure9, table1..table5) or 'all'",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="dataset scale factor (default: per-experiment)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments"
    )
    args = parser.parse_args(argv)

    if args.list or not args.experiment:
        for name, module in EXPERIMENTS.items():
            doc = (module.__doc__ or "").strip().splitlines()[0]
            print(f"{name:10s} {doc}")
        return 0

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        if name not in EXPERIMENTS:
            print(
                f"unknown experiment {name!r}; use --list", file=sys.stderr
            )
            return 2
        module = EXPERIMENTS[name]
        kwargs = {}
        if args.scale is not None and name in SCALED:
            kwargs["scale"] = args.scale
        result = module.run(**kwargs)
        print(report.render_result(result))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
