"""Figure 3: clustering-aware vs clustering-agnostic cuts (concept figure).

The paper's Figure 3 shows a two-cluster toy graph where a
clustering-agnostic 2-way edge partitioning cuts 4 vertices while a
clustering-aware one cuts only 2.  We make that concrete: partition the toy
graph with a clustering-agnostic baseline (Random hashing) and with 2PS-L,
and report the number of cut (replicated) vertices each produces.
"""

from __future__ import annotations

from repro.baselines import RandomHash
from repro.core import TwoPhasePartitioner
from repro.experiments.common import ExperimentResult
from repro.graph.generators import two_cluster_toy_graph


def cut_vertices(result) -> int:
    """Vertices replicated on more than one partition (the 'cut size')."""
    return int((result.state.replica_counts() > 1).sum())


def run() -> ExperimentResult:
    """2-way partition the Figure 3 toy graph, aware vs agnostic."""
    graph = two_cluster_toy_graph()
    rows = []
    # Volume cap sized so each 4-clique is one cluster (factor 2 => cap =
    # 2 * |E| / k = 16, one clique's volume is 14).
    aware = TwoPhasePartitioner(volume_cap_factor=2.0).partition(graph, 2)
    rows.append(
        {
            "strategy": "clustering-aware (2PS-L)",
            "cut_vertices": cut_vertices(aware),
            "rf": round(aware.replication_factor, 3),
        }
    )
    agnostic = RandomHash(seed=1).partition(graph, 2)
    rows.append(
        {
            "strategy": "clustering-agnostic (random hash)",
            "cut_vertices": cut_vertices(agnostic),
            "rf": round(agnostic.replication_factor, 3),
        }
    )
    return ExperimentResult(
        experiment="figure3",
        title="Figure 3: cut size on the two-cluster toy graph (k=2)",
        rows=rows,
        paper_reference="clustering-aware cut size 2 vs clustering-agnostic 4",
        notes=(
            "The toy graph is the paper's illustration: two 4-cliques joined "
            "by two bridge edges."
        ),
    )


def main() -> None:  # pragma: no cover - thin CLI wrapper
    from repro.experiments.report import render_result

    print(render_result(run()))
