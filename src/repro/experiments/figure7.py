"""Figure 7: replication factor vs number of clustering passes (k=32).

Re-streaming repeats the clustering pass with retained state.  The paper
finds modest RF gains (up to ~3.5 % reduction over 8 passes) on OK, IT,
TW, FR — enough to matter in some deployments, not enough to be the
default.  Values are normalized to the single-pass RF, as in the plot.
"""

from __future__ import annotations

from repro.core import TwoPhasePartitioner
from repro.experiments.common import ExperimentResult
from repro.graph.datasets import load_dataset

DEFAULT_DATASETS = ("OK", "IT", "TW", "FR")
DEFAULT_PASSES = (1, 2, 3, 4, 5, 6, 7, 8)


def run(
    scale: float = 0.25, datasets=DEFAULT_DATASETS, passes=DEFAULT_PASSES, k: int = 32
) -> ExperimentResult:
    """Sweep clustering passes and report normalized RF."""
    rows = []
    for dataset in datasets:
        graph = load_dataset(dataset, scale=scale)
        base_rf = None
        for n_passes in passes:
            result = TwoPhasePartitioner(clustering_passes=n_passes).partition(
                graph, k
            )
            rf = result.replication_factor
            if base_rf is None:
                base_rf = rf
            rows.append(
                {
                    "dataset": dataset,
                    "passes": n_passes,
                    "rf": round(rf, 4),
                    "normalized_rf": round(rf / base_rf, 4),
                }
            )
    return ExperimentResult(
        experiment="figure7",
        title=f"Figure 7: normalized RF vs clustering passes at k={k}",
        rows=rows,
        paper_reference="normalized RF in [0.96, 1.02]; gains up to ~3.5 %",
    )


def main() -> None:  # pragma: no cover - thin CLI wrapper
    from repro.experiments.report import render_result

    print(render_result(run()))
