"""Figure 5: relative run-time of the 2PS-L phases at k=32.

The paper splits 2PS-L's total run-time into degree computation (7-20 %),
clustering (16-22 %) and partitioning (58-77 %), and observes that web
graphs spend relatively less time in the partitioning phase because
pre-partitioning (cheaper per edge than scoring) dominates there.
"""

from __future__ import annotations

from repro.core import TwoPhasePartitioner
from repro.experiments.common import ExperimentResult
from repro.graph.datasets import load_dataset

DEFAULT_DATASETS = ("OK", "IT", "TW", "FR", "UK", "GSH", "WDC")


def run(
    scale: float = 0.25, datasets=DEFAULT_DATASETS, k: int = 32
) -> ExperimentResult:
    """Measure the per-phase wall-clock split of a single-pass 2PS-L run."""
    rows = []
    for dataset in datasets:
        graph = load_dataset(dataset, scale=scale)
        result = TwoPhasePartitioner(clustering_passes=1).partition(graph, k)
        totals = result.timer.totals
        # The paper groups mapping+prepartition+scoring as "Partitioning".
        degree = totals.get("degree", 0.0)
        clustering = totals.get("clustering", 0.0)
        partitioning = (
            totals.get("mapping", 0.0)
            + totals.get("prepartition", 0.0)
            + totals.get("partitioning", 0.0)
        )
        total = degree + clustering + partitioning
        rows.append(
            {
                "dataset": dataset,
                "degree_frac": round(degree / total, 3),
                "clustering_frac": round(clustering / total, 3),
                "partitioning_frac": round(partitioning / total, 3),
                "total_wall_s": round(total, 4),
            }
        )
    return ExperimentResult(
        experiment="figure5",
        title=f"Figure 5: 2PS-L phase breakdown at k={k} (scale={scale})",
        rows=rows,
        paper_reference=(
            "degree 7-20 %, clustering 16-22 %, partitioning 58-77 %; web "
            "graphs spend a smaller fraction in partitioning"
        ),
        notes="Wall-clock fractions of the pure-Python implementation.",
    )


def main() -> None:  # pragma: no cover - thin CLI wrapper
    from repro.experiments.report import render_result

    print(render_result(run()))
