"""Extension experiment: 2PS-L generalized to hypergraphs (Section VII).

The paper's conclusion names hypergraph generalization as future work.
This experiment runs the 2PS-L-H prototype against the streaming min-max
baseline (Alistarh et al.) and stateless hashing on planted-community
hypergraphs across k, reporting replication factor, balance, and the
scoring cost that separates linear-time from O(|H| * k) behaviour.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.hypergraph import (
    HashHyperedges,
    MinMaxStreaming,
    TwoPhaseHypergraphPartitioner,
    planted_hypergraph,
)


def run(
    n_communities: int = 40,
    community_size: int = 20,
    n_hyperedges: int = 6000,
    ks=(4, 16, 64),
    seed: int = 11,
) -> ExperimentResult:
    """Compare the three hyperedge partitioners across k."""
    hypergraph = planted_hypergraph(
        n_communities, community_size, n_hyperedges, seed=seed
    )
    rows = []
    for k in ks:
        for partitioner in (
            TwoPhaseHypergraphPartitioner(),
            MinMaxStreaming(),
            HashHyperedges(),
        ):
            result = partitioner.partition(hypergraph, k)
            rows.append(
                {
                    "partitioner": result.partitioner,
                    "k": k,
                    "rf": round(result.replication_factor, 3),
                    "alpha": round(result.measured_alpha, 3),
                    "score_evals": result.cost.score_evaluations,
                    "evals_per_hyperedge": round(
                        result.cost.score_evaluations
                        / hypergraph.n_hyperedges,
                        2,
                    ),
                }
            )
    return ExperimentResult(
        experiment="hypergraphs",
        title=(
            f"Hypergraph partitioning (|V|={n_communities * community_size}, "
            f"|H|={n_hyperedges})"
        ),
        rows=rows,
        paper_reference=(
            "Section VII: 'we plan to investigate the generalization of "
            "2PS-L to hypergraphs'"
        ),
        notes=(
            "2PS-L-H scores <= 2 candidates per hyperedge at every k; "
            "MinMax scores all k (the HDRF-like cost profile)."
        ),
    )


def main() -> None:  # pragma: no cover - thin CLI wrapper
    from repro.experiments.report import render_result

    print(render_result(run()))
