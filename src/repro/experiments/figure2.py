"""Figure 2: 2PS-L vs HDRF vs DBH on OK across partition counts.

Paper claims reproduced here:

- (a) replication factor: 2PS-L lowest at every k, HDRF in the middle,
  DBH worst (and DBH misses the balance constraint — alpha annotation);
- (b) run-time: DBH flat and fastest; HDRF grows ~linearly with k;
  2PS-L flat in k (the headline linear-run-time claim) and far below HDRF
  at large k.

Run-time shape is asserted on the machine-neutral operation-count model
(``model_s``); wall-clock is reported alongside.
"""

from __future__ import annotations

from repro.experiments.common import (
    FIGURE2_PARTITIONERS,
    ExperimentResult,
    run_one,
)

DEFAULT_KS = (4, 32, 128, 256)


def run(scale: float = 1.0, ks=DEFAULT_KS, dataset: str = "OK") -> ExperimentResult:
    """Sweep k for the three partitioners on the OK stand-in."""
    rows = []
    for k in ks:
        for name in FIGURE2_PARTITIONERS:
            rows.append(run_one(name, dataset, k, scale=scale))
    return ExperimentResult(
        experiment="figure2",
        title=f"Figure 2: RF and run-time on {dataset} (scale={scale})",
        rows=rows,
        paper_reference=(
            "at k=256 on OK: HDRF >5 min, DBH 7 s, 2PS-L 21 s; RF(2PS-L) < "
            "RF(HDRF) < RF(DBH) with DBH at alpha=1.26"
        ),
        notes=(
            "Run-time shape claims hold on model_s (operation counts); "
            "2PS-L model_s is flat in k while HDRF grows linearly."
        ),
    )


def main() -> None:  # pragma: no cover - thin CLI wrapper
    from repro.experiments.report import render_result

    print(
        render_result(
            run(),
            columns=["partitioner", "k", "rf", "alpha", "wall_s", "model_s"],
        )
    )
