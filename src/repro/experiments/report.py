"""Plain-text table rendering for experiment results.

The experiments print ASCII tables whose rows correspond 1:1 to the
paper's plotted series / table cells, so paper-vs-reproduction comparison
is a visual diff.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult


def format_table(
    rows: list[dict], columns: list[str] | None = None, title: str = ""
) -> str:
    """Render ``rows`` as a fixed-width ASCII table.

    Parameters
    ----------
    rows:
        List of dicts; missing cells render blank.
    columns:
        Column order; defaults to the union of keys in first-seen order.
    title:
        Optional heading line.
    """
    if not rows:
        return f"{title}\n(no rows)\n" if title else "(no rows)\n"
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    widths = {c: len(str(c)) for c in columns}
    rendered: list[list[str]] = []
    for row in rows:
        cells = []
        for c in columns:
            value = row.get(c, "")
            if isinstance(value, float):
                text = f"{value:.4g}"
            else:
                text = str(value)
            widths[c] = max(widths[c], len(text))
            cells.append(text)
        rendered.append(cells)
    header = "  ".join(str(c).ljust(widths[c]) for c in columns)
    rule = "-" * len(header)
    lines = []
    if title:
        lines.extend([title, "=" * len(title)])
    lines.extend([header, rule])
    for cells in rendered:
        lines.append(
            "  ".join(cell.ljust(widths[c]) for cell, c in zip(cells, columns))
        )
    return "\n".join(lines) + "\n"


def render_result(result: ExperimentResult, columns: list[str] | None = None) -> str:
    """Full report block for one experiment: title, table, paper reference."""
    parts = [format_table(result.rows, columns=columns, title=result.title)]
    if result.paper_reference:
        parts.append(f"Paper reports: {result.paper_reference}")
    if result.notes:
        parts.append(f"Notes: {result.notes}")
    return "\n".join(parts) + "\n"
