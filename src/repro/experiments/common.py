"""Shared experiment infrastructure.

Provides the partitioner registry (string name -> configured instance), a
uniform single-run helper producing a flat metrics row, and the
:class:`ExperimentResult` container that every figure/table module returns.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines import (
    DBH,
    HDRF,
    HEP,
    Adwise,
    DistributedNE,
    Greedy,
    Grid,
    MetisLike,
    NeighborhoodExpansion,
    RandomHash,
    StreamingNE,
)
from repro.core import TwoPhasePartitioner
from repro.errors import ConfigurationError
from repro.graph.datasets import load_dataset
from repro.metrics import validate_partition

#: Factory per canonical partitioner name.  Callables so that every run
#: gets a fresh, stateless instance.
ALL_PARTITIONERS: dict[str, callable] = {
    "2PS-L": lambda: TwoPhasePartitioner(),
    "2PS-HDRF": lambda: TwoPhasePartitioner(mode="hdrf"),
    "HDRF": lambda: HDRF(),
    "DBH": lambda: DBH(),
    "Grid": lambda: Grid(),
    "Random": lambda: RandomHash(),
    "Greedy": lambda: Greedy(),
    "ADWISE": lambda: Adwise(buffer_size=128),
    "NE": lambda: NeighborhoodExpansion(),
    "SNE": lambda: StreamingNE(),
    "DNE": lambda: DistributedNE(),
    "METIS": lambda: MetisLike(),
    "HEP-1": lambda: HEP(tau=1.0),
    "HEP-10": lambda: HEP(tau=10.0),
    "HEP-100": lambda: HEP(tau=100.0),
}

#: The streaming subset used in the paper's figure 2.
FIGURE2_PARTITIONERS = ("2PS-L", "HDRF", "DBH")

#: The full figure-4 line-up (paper Figure 4 legend order).
FIGURE4_PARTITIONERS = (
    "2PS-L",
    "ADWISE",
    "HDRF",
    "DBH",
    "SNE",
    "HEP-1",
    "HEP-10",
    "HEP-100",
    "NE",
    "DNE",
    "METIS",
)


def make_partitioner(
    name: str,
    backend: str | None = None,
    chunk_size: int | None = None,
):
    """Instantiate a partitioner by canonical name.

    Parameters
    ----------
    name:
        Canonical partitioner name (see :data:`ALL_PARTITIONERS`).
    backend:
        Kernel backend (:mod:`repro.kernels`) for partitioners that are
        kernel-driven (2PS-L/2PS-HDRF and the stateless baselines).
    chunk_size:
        Stream chunk size for partitioners that expose one.

    Raises
    ------
    ConfigurationError
        For unknown names (message lists the registry), or when a
        ``backend``/``chunk_size`` override is requested for a
        partitioner that does not support it.
    """
    try:
        factory = ALL_PARTITIONERS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown partitioner {name!r}; available: {sorted(ALL_PARTITIONERS)}"
        ) from None
    partitioner = factory()
    for attr, value in (("backend", backend), ("chunk_size", chunk_size)):
        if value is None:
            continue
        if not hasattr(partitioner, attr):
            raise ConfigurationError(
                f"partitioner {name!r} does not support a {attr} override"
            )
        setattr(partitioner, attr, value)
    return partitioner


def run_one(
    partitioner_name: str,
    dataset: str,
    k: int,
    scale: float = 1.0,
    alpha: float = 1.05,
) -> dict:
    """Run one (partitioner, dataset, k) cell and return a metrics row.

    The assignment is validated (full coverage, ids in range) before the
    row is returned; balance is *measured*, not asserted, because the
    stateless baselines cannot enforce it (the paper annotates their alpha
    in the plots instead).
    """
    graph = load_dataset(dataset, scale=scale)
    partitioner = make_partitioner(partitioner_name)
    result = partitioner.partition(graph, k, alpha=alpha)
    validate_partition(graph.edges, result.assignments, k, alpha=None)
    row = {
        "partitioner": result.partitioner,
        "dataset": dataset,
        "k": k,
        "rf": round(result.replication_factor, 3),
        "alpha": round(result.measured_alpha, 3),
        "wall_s": round(result.wall_seconds, 4),
        "model_s": round(result.model_seconds(), 4),
        "mem_bytes": result.state_bytes,
    }
    row.update(
        {
            f"phase_{name}": round(seconds, 4)
            for name, seconds in result.timer.totals.items()
        }
    )
    for key in ("prepartitioned_edges", "remaining_edges", "n_clusters"):
        if key in result.extras:
            row[key] = result.extras[key]
    return row


@dataclass
class ExperimentResult:
    """Output of one experiment module.

    Attributes
    ----------
    experiment:
        Identifier ("figure2", "table4", ...).
    title:
        Human-readable title matching the paper's caption.
    rows:
        Flat metric dicts (one per plotted point / table cell).
    paper_reference:
        What the paper reports, for side-by-side reading.
    notes:
        Reproduction caveats (substitutions, scaling).
    """

    experiment: str
    title: str
    rows: list = field(default_factory=list)
    paper_reference: str = ""
    notes: str = ""

    def rows_for(self, **filters) -> list:
        """Rows matching all ``column=value`` filters."""
        out = []
        for row in self.rows:
            if all(row.get(key) == value for key, value in filters.items()):
                out.append(row)
        return out

    def column(self, name: str, **filters) -> list:
        """Values of one column over the filtered rows."""
        return [row[name] for row in self.rows_for(**filters) if name in row]
