"""Figure 1: size of the largest real-world graph per landmark publication.

The paper's Figure 1 is literature metadata (no algorithm involved): the
number of edges of the largest real-world graph used by landmark
distributed graph processing / partitioning publications, 2012-2021,
showing exponential growth.  We reproduce it as the same data series, taken
from the cited publications.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult

#: (year, system, venue, largest real-world graph, edges).
LANDMARK_GRAPHS = [
    (2012, "PowerGraph", "OSDI", "twitter-2010", 1_500_000_000),
    (2012, "GraphChi", "OSDI", "twitter-2010", 1_500_000_000),
    (2013, "GraphBuilder/Grid", "GRADES", "twitter-2010", 1_500_000_000),
    (2014, "GraphX", "OSDI", "uk-2007-05", 3_700_000_000),
    (2015, "HDRF", "CIKM", "twitter-2010", 1_500_000_000),
    (2016, "Gemini", "OSDI", "clueweb-12", 42_000_000_000),
    (2017, "Mosaic", "EuroSys", "hyperlink14", 64_000_000_000),
    (2017, "NE", "KDD", "com-friendster", 1_800_000_000),
    (2018, "ADWISE", "ICDCS", "uk-2007-05", 3_700_000_000),
    (2019, "DNE", "VLDB", "hyperlink14", 64_000_000_000),
    (2020, "CuSP-era systems", "IPDPS", "wdc-2014", 64_000_000_000),
    (2021, "HEP", "SIGMOD", "gsh-2015", 34_000_000_000),
    (2022, "2PS-L (this paper)", "ICDE", "wdc-2014", 64_000_000_000),
]


def run() -> ExperimentResult:
    """Build the Figure 1 data series (largest graph per year)."""
    rows = []
    best_per_year: dict[int, int] = {}
    for year, system, venue, graph, edges in LANDMARK_GRAPHS:
        rows.append(
            {
                "year": year,
                "system": system,
                "venue": venue,
                "graph": graph,
                "edges": edges,
            }
        )
        best_per_year[year] = max(best_per_year.get(year, 0), edges)
    for row in rows:
        row["year_max_edges"] = best_per_year[row["year"]]
    return ExperimentResult(
        experiment="figure1",
        title="Figure 1: largest real-world graph in landmark publications",
        rows=rows,
        paper_reference=(
            "monotone growth from ~1.5B edges (2012) to 64B edges (WDC, 2017+)"
        ),
        notes="Literature metadata reproduced from the cited publications.",
    )


def main() -> None:  # pragma: no cover - thin CLI wrapper
    from repro.experiments.report import render_result

    print(render_result(run()))
