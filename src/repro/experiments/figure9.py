"""Figure 9: 2PS-HDRF normalized to 2PS-L (RF and run-time).

2PS-HDRF replaces the linear two-candidate scoring of Phase 2 Step 3 with
the full HDRF score over all k partitions.  The paper reports:

- RF improves by up to 50 % (normalized RF in ~[0.5, 1.0]);
- run-time grows with k: roughly parity at k=4 and up to ~12x at k=256.

Both are reproduced here; run-time uses the operation-count model, where
the k-dependence is exact.
"""

from __future__ import annotations

from repro.core import TwoPhasePartitioner
from repro.experiments.common import ExperimentResult
from repro.graph.datasets import load_dataset

DEFAULT_DATASETS = ("OK", "IT", "TW", "FR")
DEFAULT_KS = (4, 32, 128, 256)


def run(
    scale: float = 0.25, datasets=DEFAULT_DATASETS, ks=DEFAULT_KS
) -> ExperimentResult:
    """Compare 2PS-HDRF against 2PS-L per (dataset, k)."""
    rows = []
    for dataset in datasets:
        graph = load_dataset(dataset, scale=scale)
        for k in ks:
            base = TwoPhasePartitioner(mode="linear").partition(graph, k)
            variant = TwoPhasePartitioner(mode="hdrf").partition(graph, k)
            rows.append(
                {
                    "dataset": dataset,
                    "k": k,
                    "rf_2psl": round(base.replication_factor, 3),
                    "rf_2pshdrf": round(variant.replication_factor, 3),
                    "normalized_rf": round(
                        variant.replication_factor / base.replication_factor, 4
                    ),
                    "normalized_model_time": round(
                        variant.model_seconds() / base.model_seconds(), 3
                    ),
                    "normalized_wall_time": round(
                        variant.wall_seconds / base.wall_seconds, 3
                    ),
                }
            )
    return ExperimentResult(
        experiment="figure9",
        title="Figure 9: 2PS-HDRF normalized to 2PS-L",
        rows=rows,
        paper_reference=(
            "normalized RF down to ~0.5; normalized run-time ~1x at k=4 "
            "rising to ~12x at k=256"
        ),
    )


def main() -> None:  # pragma: no cover - thin CLI wrapper
    from repro.experiments.report import render_result

    print(render_result(run()))
