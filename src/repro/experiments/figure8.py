"""Figure 8: total 2PS-L run-time vs number of clustering passes (k=32).

The companion to Figure 7: re-streaming adds one clustering pass per
iteration but clustering is only ~16-22 % of the total, so 8 passes only
roughly *double* the total run-time (paper: "the increase in run-time is
not proportional to the number of streaming passes").  Values normalized
to single-pass total, reported for both wall-clock and the operation-count
model.
"""

from __future__ import annotations

from repro.core import TwoPhasePartitioner
from repro.experiments.common import ExperimentResult
from repro.graph.datasets import load_dataset

DEFAULT_DATASETS = ("OK", "IT", "TW", "FR")
DEFAULT_PASSES = (1, 2, 3, 4, 5, 6, 7, 8)


def run(
    scale: float = 0.25, datasets=DEFAULT_DATASETS, passes=DEFAULT_PASSES, k: int = 32
) -> ExperimentResult:
    """Sweep clustering passes and report normalized total run-time."""
    rows = []
    for dataset in datasets:
        graph = load_dataset(dataset, scale=scale)
        base_wall = base_model = None
        for n_passes in passes:
            result = TwoPhasePartitioner(clustering_passes=n_passes).partition(
                graph, k
            )
            wall = result.wall_seconds
            model = result.model_seconds()
            if base_wall is None:
                base_wall, base_model = wall, model
            rows.append(
                {
                    "dataset": dataset,
                    "passes": n_passes,
                    "wall_s": round(wall, 4),
                    "normalized_wall": round(wall / base_wall, 4),
                    "normalized_model": round(model / base_model, 4),
                }
            )
    return ExperimentResult(
        experiment="figure8",
        title=f"Figure 8: normalized total run-time vs clustering passes (k={k})",
        rows=rows,
        paper_reference=(
            "8 passes roughly double the total run-time (normalized ~2.0-2.5)"
        ),
    )


def main() -> None:  # pragma: no cover - thin CLI wrapper
    from repro.experiments.report import render_result

    print(render_result(run()))
