"""Table IV: end-to-end partitioning + distributed PageRank time.

The paper's key application result: neither the best-quality partitioner
(SNE/HEP-1) nor the fastest (DBH) minimizes the *total* of partitioning
time plus graph-processing time — 2PS-L does, because it is nearly as fast
as hashing while achieving a competitive replication factor.

We reproduce the study on the OK and WI stand-ins at k=32 with the
simulated GraphX cluster (100 PageRank iterations, as in the paper).
Partitioning time uses the machine-neutral operation-count model (the
paper's numbers are C++); processing time is the simulator's cost model.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, make_partitioner
from repro.graph.datasets import load_dataset
from repro.processing import PageRank, PartitionedGraph, PregelEngine

SYSTEMS = ("2PS-L", "2PS-HDRF", "HDRF", "DBH", "SNE", "HEP-1")

#: The paper's Table IV (seconds) for side-by-side reading.
PAPER_TABLE4 = {
    ("2PS-L", "OK"): {"rf": 9.00, "part": 20, "pr": 240, "total": 260},
    ("2PS-L", "WI"): {"rf": 4.55, "part": 80, "pr": 786, "total": 866},
    ("2PS-HDRF", "OK"): {"rf": 7.04, "part": 50, "pr": 228, "total": 278},
    ("2PS-HDRF", "WI"): {"rf": 2.78, "part": 166, "pr": 730, "total": 896},
    ("HDRF", "OK"): {"rf": 10.78, "part": 52, "pr": 246, "total": 298},
    ("HDRF", "WI"): {"rf": 3.98, "part": 220, "pr": 769, "total": 989},
    ("DBH", "OK"): {"rf": 12.42, "part": 6, "pr": 285, "total": 291},
    ("DBH", "WI"): {"rf": 5.72, "part": 28, "pr": None, "total": None},
    ("SNE", "OK"): {"rf": 4.57, "part": 110, "pr": 230, "total": 340},
    ("SNE", "WI"): {"rf": 2.21, "part": 574, "pr": 621, "total": 1195},
    ("HEP-1", "OK"): {"rf": 4.52, "part": 45, "pr": 261, "total": 306},
    ("HEP-1", "WI"): {"rf": 2.59, "part": 244, "pr": 632, "total": 876},
}


def run(
    scale: float = 0.25,
    datasets=("OK", "WI"),
    k: int = 32,
    pagerank_iters: int = 100,
    systems=SYSTEMS,
) -> ExperimentResult:
    """Partition, then run simulated PageRank; report the time budget.

    Both time columns are extrapolated to paper scale: the stand-in is
    ``ratio`` times smaller than the paper's graph, partitioning operation
    counts and cluster traffic both scale linearly in |E|, so we multiply
    the model partitioning time by ``ratio`` and run the simulator on a
    ``ratio``-times slower :meth:`ClusterSpec.paper_cluster`.
    """
    from repro.graph.datasets import DATASETS
    from repro.processing.cost import ClusterSpec

    rows = []
    for dataset in datasets:
        graph = load_dataset(dataset, scale=scale)
        ratio = DATASETS[dataset].paper_edges / graph.n_edges
        engine = PregelEngine(ClusterSpec.paper_cluster().scaled(ratio))
        for name in systems:
            result = make_partitioner(name).partition(graph, k)
            pgraph = PartitionedGraph(
                graph.edges, result.assignments, k, graph.n_vertices
            )
            _, report = engine.run(
                pgraph, PageRank(), max_supersteps=pagerank_iters
            )
            part_s = result.model_seconds() * ratio
            paper = PAPER_TABLE4.get((name, dataset), {})
            rows.append(
                {
                    "partitioner": name,
                    "dataset": dataset,
                    "rf": round(result.replication_factor, 2),
                    "partition_s": round(part_s, 2),
                    "pagerank_s": round(report.total_seconds, 2),
                    "total_s": round(part_s + report.total_seconds, 2),
                    "paper_rf": paper.get("rf"),
                    "paper_total_s": paper.get("total"),
                }
            )
    return ExperimentResult(
        experiment="table4",
        title=f"Table IV: partitioning + PageRank time at k={k} (scale={scale})",
        rows=rows,
        paper_reference=(
            "total run-time always lowest with 2PS-L (OK: 260 s, WI: 866 s); "
            "DBH fails on WI due to excessive shuffle"
        ),
        notes=(
            "partition_s is the operation-count model; pagerank_s is the "
            "simulated cluster time for 100 iterations."
        ),
    )


def main() -> None:  # pragma: no cover - thin CLI wrapper
    from repro.experiments.report import render_result

    print(render_result(run()))
