"""Online lookup service over a :class:`~repro.serving.store.PartitionStore`.

:class:`LookupService` answers the three questions a distributed
execution engine asks a partition map at run time:

* ``vertex_partitions(v)`` — which partition(s) hold a replica of ``v``,
  routed to a single partition id;
* ``edge_partition(u, v)`` — which partition owns edge ``(u, v)``;
* ``replica_set(v)`` — the full replica list of ``v``.

Every query has a scalar form and a batched-numpy form (pass an array,
get an array); the batched paths are fully vectorized against the
memory-mapped store arrays.

LRU hot-vertex cache
--------------------
Vertex queries decode a bit-packed replica row into a dense boolean row.
Real workloads are heavily skewed, so the service keeps the ``cache_size``
most-recently-used decoded rows in an ordered-dict LRU (a hit moves the
row to the MRU end; an insert past capacity evicts the LRU end).
``cache_size=0`` disables caching.  Batched vertex queries decode
straight off the mapped plane and bypass the cache — a vectorized gather
is already cheaper than per-id bookkeeping — so ``cache_info()`` counts
scalar traffic only.

Routing semantics
-----------------
``vertex_partitions`` reduces a replica set to one partition id:

* with a ``hint`` (the caller's own partition): the hint itself iff the
  vertex has a replica there — co-locating the read with the caller —
  else fall through to the default rule;
* default: the **least-loaded** replica partition by the store's
  per-partition edge counts (``sizes``), ties broken by lowest id so
  routing is deterministic;
* a vertex with no replicas (never touched by any edge) routes to -1,
  as does an unknown edge in ``edge_partition``.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.errors import PartitioningError
from repro.serving.store import PartitionStore, edge_keys


class LookupService:
    """Serve partition lookups from a store with an LRU hot-vertex cache.

    Parameters
    ----------
    store:
        An open (or freshly written) :class:`PartitionStore`.
    cache_size:
        Maximum number of decoded replica rows kept hot (0 disables).
    """

    def __init__(self, store: PartitionStore, cache_size: int = 4096) -> None:
        if cache_size < 0:
            raise PartitioningError(
                f"cache_size must be >= 0, got {cache_size}"
            )
        self.store = store
        self.k = store.k
        self.n_vertices = store.n_vertices
        self.cache_size = int(cache_size)
        self._cache: OrderedDict[int, np.ndarray] = OrderedDict()
        self._hits = 0
        self._misses = 0
        # Load signal for least-loaded routing; plain int64 copy (k is
        # tiny) so routing never touches the mapped file.
        self._sizes = np.asarray(store.sizes, dtype=np.int64).copy()

    # ------------------------------------------------------------------
    # replica rows
    def _row(self, v: int) -> np.ndarray:
        """Dense boolean replica row of vertex ``v``, via the LRU cache."""
        if not 0 <= v < self.n_vertices:
            raise PartitioningError(
                f"vertex {v} outside [0, {self.n_vertices})"
            )
        if self.cache_size:
            row = self._cache.get(v)
            if row is not None:
                self._hits += 1
                self._cache.move_to_end(v)
                return row
            self._misses += 1
        row = np.unpackbits(
            self.store.replicas.packed[v], bitorder="little"
        )[: self.k].astype(bool)
        row.setflags(write=False)
        if self.cache_size:
            self._cache[v] = row
            if len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
        return row

    def _rows(self, ids: np.ndarray) -> np.ndarray:
        """Dense boolean rows ``(len(ids), k)`` — vectorized, uncached."""
        if ids.size and (
            int(ids.min()) < 0 or int(ids.max()) >= self.n_vertices
        ):
            raise PartitioningError(
                f"vertex ids outside [0, {self.n_vertices})"
            )
        plane = self.store.replicas.packed[ids]
        return np.unpackbits(plane, axis=1, bitorder="little")[
            :, : self.k
        ].astype(bool)

    def replica_set(self, v) -> np.ndarray:
        """Partition ids holding a replica of ``v`` (ascending)."""
        return np.flatnonzero(self._row(int(v)))

    # ------------------------------------------------------------------
    # routing
    def _route_rows(self, rows: np.ndarray, hint) -> np.ndarray:
        """Reduce dense replica rows to one partition id each."""
        # Least-loaded replica: mask non-replicas to +inf load, argmin.
        load = np.where(rows, self._sizes[np.newaxis, :], np.inf)
        routed = np.argmin(load, axis=1).astype(np.int64)
        any_replica = rows.any(axis=1)
        routed[~any_replica] = -1
        if hint is not None:
            hint = np.asarray(hint, dtype=np.int64)
            if hint.ndim == 0:
                hint = np.broadcast_to(hint, routed.shape)
            at_hint = np.take_along_axis(
                rows, np.clip(hint, 0, self.k - 1)[:, np.newaxis], axis=1
            )[:, 0] & (hint >= 0) & (hint < self.k)
            routed = np.where(at_hint, hint, routed)
        return routed

    def vertex_partitions(self, ids, hint=None):
        """Route vertex ``ids`` to a serving partition each.

        Scalar in → scalar ``int`` out; array in → ``int64`` array out.
        ``hint`` (scalar or per-id array) is preferred when the vertex
        has a replica there; otherwise the least-loaded replica wins.
        """
        ids_arr = np.asarray(ids, dtype=np.int64)
        if ids_arr.ndim == 0:
            row = self._row(int(ids_arr))
            return int(self._route_rows(row[np.newaxis, :], hint)[0])
        return self._route_rows(self._rows(ids_arr), hint)

    # ------------------------------------------------------------------
    # edges
    def edge_partition(self, u, v):
        """Partition owning edge ``(u, v)``; -1 when the edge is unknown.

        Scalar in → scalar ``int`` out; array in → ``int64`` array out.
        Duplicate edges serve the first stream occurrence's partition.
        """
        keys = edge_keys(u, v)
        scalar = keys.ndim == 0
        keys = np.atleast_1d(keys)
        pos = np.searchsorted(self.store.edge_keys, keys, side="left")
        pos_c = np.minimum(pos, len(self.store.edge_keys) - 1)
        found = (
            (pos < len(self.store.edge_keys))
            & (np.asarray(self.store.edge_keys)[pos_c] == keys)
            if len(self.store.edge_keys)
            else np.zeros(keys.shape, dtype=bool)
        )
        parts = np.full(keys.shape, -1, dtype=np.int64)
        if found.any():
            parts[found] = np.asarray(self.store.edge_parts)[pos[found]]
        return int(parts[0]) if scalar else parts

    # ------------------------------------------------------------------
    # cache introspection
    def cache_info(self) -> dict:
        """Scalar-path cache counters: hits, misses, current size, capacity."""
        return {
            "hits": self._hits,
            "misses": self._misses,
            "size": len(self._cache),
            "capacity": self.cache_size,
        }

    def cache_clear(self) -> None:
        """Drop every cached row and reset the hit/miss counters."""
        self._cache.clear()
        self._hits = 0
        self._misses = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LookupService(k={self.k}, n={self.n_vertices}, "
            f"cache={len(self._cache)}/{self.cache_size})"
        )
