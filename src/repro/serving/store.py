"""Zero-copy persistent partition store (``repro-partition-store-v1``).

:class:`PartitionStore` is the offline/online hand-off of the serving
layer: :meth:`PartitionStore.write` persists a completed
:class:`~repro.partitioning.base.PartitionResult` to a directory of flat
binary arrays plus a JSON manifest, and :meth:`PartitionStore.open` maps
those arrays back with ``np.memmap`` — no parsing, no copies, open cost
O(1) in ``|V|`` and ``|E|`` (the OS pages data in on first touch).

Store format (version 1)
------------------------
A store directory holds one file per array, little-endian, C-order:

``assignments.bin``
    ``<i4 (m,)`` — partition id per edge, in original stream order.
``edge_keys.bin``
    ``<u8 (m,)`` — ``(u << 32) | v`` per edge, **sorted ascending**
    (ties keep stream order: the sort is stable), so edge→partition
    lookups are one ``np.searchsorted`` against a memory-mapped array.
``edge_parts.bin``
    ``<i4 (m,)`` — partition id per sorted edge key.  A multigraph can
    carry the same ``(u, v)`` pair with different assignments; lookups
    deterministically serve the **first stream occurrence** (the stable
    sort keeps it first in its run of duplicates).
``replicas.bin``
    ``<u1 (n, ceil(k/8))`` — the replica matrix, always stored
    bit-packed in the :class:`~repro.partitioning.state.
    PackedReplicaMatrix` layout (little bit order, tail bits zero).
    Dense-state results are packed on write; packed-state results copy
    their plane verbatim, so both representations produce byte-identical
    stores.  On open the plane is wrapped back in
    ``PackedReplicaMatrix``, whose dense-protocol indexing serves reads
    straight off the mapped pages.
``degrees.bin``
    ``<i8 (n,)`` — vertex degrees (endpoint counts over the stored
    edges, the same quantity the degree pass computes).
``sizes.bin``
    ``<i8 (k,)`` — edge count per partition (the routing load signal).
``c2p.bin`` (optional)
    ``<i8 (n_clusters,)`` — the cluster→partition map, present when the
    result carried Phase-1 artifacts (``keep_state=True``).

Manifest and versioning rule
----------------------------
``manifest.json`` records the format tag, an integer ``version``, the
run dimensions (``k``, ``alpha``, ``n_vertices``, ``n_edges``,
``partitioner``) and, per array, its file name, dtype, shape and CRC-32.
Readers accept a manifest iff the format tag matches and ``version`` is
exactly :data:`STORE_VERSION`; any future layout change bumps the
version, so older readers fail loudly instead of mis-mapping bytes.
:meth:`PartitionStore.open` validates every file's *size* against its
declared dtype/shape (an O(1) stat per file, catching truncation before
a single page is touched); the CRC-32s are verified on demand by
:meth:`PartitionStore.verify`, which streams every file once — kept out
of ``open`` so opening stays O(1) in the data size.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path

import numpy as np

from repro.errors import FormatError, PartitioningError
from repro.partitioning.state import PackedReplicaMatrix, packed_row_bytes

MANIFEST_NAME = "manifest.json"

STORE_FORMAT = "repro-partition-store"

#: Manifest version this reader understands (exact match required).
STORE_VERSION = 1

#: Required arrays of a v1 store: name -> (file, dtype).
_REQUIRED = {
    "assignments": ("assignments.bin", "<i4"),
    "edge_keys": ("edge_keys.bin", "<u8"),
    "edge_parts": ("edge_parts.bin", "<i4"),
    "replicas": ("replicas.bin", "<u1"),
    "degrees": ("degrees.bin", "<i8"),
    "sizes": ("sizes.bin", "<i8"),
}

#: Optional arrays: name -> (file, dtype).
_OPTIONAL = {"c2p": ("c2p.bin", "<i8")}


def edge_keys(us, vs) -> np.ndarray:
    """``(u << 32) | v`` lookup keys as ``uint64`` (vectorized)."""
    us = np.asarray(us, dtype=np.uint64)
    vs = np.asarray(vs, dtype=np.uint64)
    return (us << np.uint64(32)) | vs


def _file_crc32(path: Path, chunk_bytes: int = 1 << 22) -> int:
    """Streaming CRC-32 of a file (bounded memory)."""
    crc = 0
    with open(path, "rb") as fh:
        while True:
            chunk = fh.read(chunk_bytes)
            if not chunk:
                return crc
            crc = zlib.crc32(chunk, crc)


def _write_array(directory: Path, name: str, arr: np.ndarray) -> dict:
    """Write one array file and return its manifest entry."""
    fname, dtype = (_REQUIRED | _OPTIONAL)[name]
    data = np.ascontiguousarray(arr, dtype=dtype)
    path = directory / fname
    path.write_bytes(data.tobytes())
    return {
        "file": fname,
        "dtype": dtype,
        "shape": list(data.shape),
        "crc32": _file_crc32(path),
    }


class PartitionStore:
    """A partition run persisted to disk and reopened memory-mapped.

    Build with :meth:`write` (from a :class:`~repro.partitioning.base.
    PartitionResult` plus its edges) or :meth:`open` (from a store
    directory).  All array attributes of an opened store are read-only
    ``np.memmap`` views (``replicas`` wraps its mapped bit plane in
    :class:`~repro.partitioning.state.PackedReplicaMatrix`); a written
    store holds ordinary in-memory arrays with identical values, so the
    two are interchangeable for reads.
    """

    def __init__(self, directory, manifest: dict, arrays: dict) -> None:
        self.directory = Path(directory)
        self.manifest = manifest
        self.k = int(manifest["k"])
        self.alpha = float(manifest["alpha"])
        self.n_vertices = int(manifest["n_vertices"])
        self.n_edges = int(manifest["n_edges"])
        self.partitioner = manifest.get("partitioner")
        self.assignments = arrays["assignments"]
        self.edge_keys = arrays["edge_keys"]
        self.edge_parts = arrays["edge_parts"]
        self.replicas = PackedReplicaMatrix(arrays["replicas"], self.k)
        self.degrees = arrays["degrees"]
        self.sizes = arrays["sizes"]
        self.c2p = arrays.get("c2p")

    # ------------------------------------------------------------------
    @classmethod
    def write(cls, directory, result, edges) -> "PartitionStore":
        """Persist ``result`` (with its ``(m, 2)`` edge array) to disk.

        ``edges`` must be the edge array the result's assignments are
        aligned with (stream order).  Returns the written store (backed
        by the in-memory arrays, not the mapped files — reopen with
        :meth:`open` for the zero-copy view).

        Raises
        ------
        PartitioningError
            On an edges/assignments length mismatch or vertex ids
            outside the 32-bit key range.
        """
        state = result.state
        packed = getattr(state.replicas, "packed", None)
        if packed is None:
            plane = np.packbits(
                np.asarray(state.replicas, dtype=bool),
                axis=1, bitorder="little",
            )
            # packbits pads to whole bytes; pin the exact row width.
            plane = plane[:, : packed_row_bytes(result.k)]
        else:
            plane = packed
        c2p = getattr(result.artifacts, "c2p", None)
        return cls._write_arrays(
            directory,
            edges=edges,
            assignments=result.assignments,
            plane=plane,
            sizes=np.asarray(state.sizes, dtype=np.int64),
            k=result.k,
            alpha=result.alpha,
            n_vertices=result.n_vertices,
            partitioner=result.partitioner,
            c2p=c2p,
        )

    @classmethod
    def from_assignments(
        cls,
        directory,
        edges,
        assignments,
        k: int,
        alpha: float = 1.05,
        n_vertices: int | None = None,
        partitioner: str | None = None,
    ) -> "PartitionStore":
        """Build a store from raw per-edge ``assignments`` (no result).

        The CLI pipeline hand-off: ``partition --out`` persists only the
        ``int32`` assignment vector, and this constructor rebuilds the
        replica matrix (a vertex replicates on every partition an
        incident edge landed on) and partition sizes from it, so
        ``partition → serve-export`` needs no re-partitioning.
        """
        edges = np.asarray(edges)
        assignments = np.ascontiguousarray(assignments, dtype="<i4")
        if k <= 0:
            raise PartitioningError(f"k must be positive, got {k}")
        if edges.size and (int(edges.min()) < 0 or int(edges.max()) >> 32):
            # Checked before sizing the replica plane off edges.max().
            raise PartitioningError(
                "vertex ids must fit the 32-bit edge-key range [0, 2**32)"
            )
        if assignments.size and (
            int(assignments.min()) < 0 or int(assignments.max()) >= k
        ):
            raise PartitioningError(
                f"assignments contain partition ids outside [0, {k})"
            )
        if n_vertices is None:
            n_vertices = int(edges.max()) + 1 if edges.size else 0
        plane = np.zeros(
            (n_vertices, packed_row_bytes(k)), dtype=np.uint8
        )
        replicas = PackedReplicaMatrix(plane, k)
        if edges.size:
            replicas[edges[:, 0], assignments] = True
            replicas[edges[:, 1], assignments] = True
        return cls._write_arrays(
            directory,
            edges=edges,
            assignments=assignments,
            plane=plane,
            sizes=np.bincount(assignments, minlength=k).astype(np.int64),
            k=k,
            alpha=alpha,
            n_vertices=n_vertices,
            partitioner=partitioner,
            c2p=None,
        )

    @classmethod
    def _write_arrays(
        cls, directory, *, edges, assignments, plane, sizes, k, alpha,
        n_vertices, partitioner, c2p,
    ) -> "PartitionStore":
        edges = np.asarray(edges)
        assignments = np.asarray(assignments)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise PartitioningError(
                f"edges must be (m, 2), got shape {edges.shape}"
            )
        if edges.shape[0] != assignments.shape[0]:
            raise PartitioningError(
                f"{edges.shape[0]} edges vs "
                f"{assignments.shape[0]} assignments"
            )
        if edges.size and (
            int(edges.min()) < 0 or int(edges.max()) >> 32
        ):
            raise PartitioningError(
                "vertex ids must fit the 32-bit edge-key range [0, 2**32)"
            )
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)

        keys = edge_keys(edges[:, 0], edges[:, 1])
        # Stable: the first stream occurrence of a duplicate (u, v) pair
        # stays first in its run, so lookups serve it deterministically.
        order = np.argsort(keys, kind="stable")

        arrays = {
            "assignments": np.ascontiguousarray(assignments, "<i4"),
            "edge_keys": keys[order],
            "edge_parts": np.ascontiguousarray(assignments, "<i4")[order],
            "replicas": plane,
            "degrees": np.bincount(
                edges.reshape(-1), minlength=n_vertices
            ).astype(np.int64),
            "sizes": np.asarray(sizes, dtype=np.int64),
        }
        if c2p is not None:
            arrays["c2p"] = np.asarray(c2p, dtype=np.int64)

        entries = {
            name: _write_array(directory, name, arr)
            for name, arr in arrays.items()
        }
        manifest = {
            "format": STORE_FORMAT,
            "version": STORE_VERSION,
            "k": int(k),
            "alpha": float(alpha),
            "n_vertices": int(n_vertices),
            "n_edges": int(edges.shape[0]),
            "partitioner": partitioner,
            "packed_row_bytes": packed_row_bytes(int(k)),
            "arrays": entries,
        }
        (directory / MANIFEST_NAME).write_text(json.dumps(manifest, indent=2))
        return cls(directory, manifest, arrays)

    @classmethod
    def open(cls, directory) -> "PartitionStore":
        """Memory-map a store directory written by :meth:`write`.

        O(1) in the data size: the manifest is parsed, every file's size
        is checked against its declared dtype/shape, and the arrays are
        mapped read-only — no byte of array data is read here.

        Raises
        ------
        FormatError
            On a missing/foreign/future-versioned manifest, a missing
            array file, or a file whose size contradicts the manifest.
        """
        directory = Path(directory)
        manifest_path = directory / MANIFEST_NAME
        if not manifest_path.exists():
            raise FormatError(f"no store manifest at {manifest_path}")
        manifest = json.loads(manifest_path.read_text())
        if manifest.get("format") != STORE_FORMAT:
            raise FormatError(
                f"not a partition store: format "
                f"{manifest.get('format')!r}"
            )
        if manifest.get("version") != STORE_VERSION:
            raise FormatError(
                f"unsupported store version {manifest.get('version')!r} "
                f"(this reader understands version {STORE_VERSION})"
            )
        entries = manifest.get("arrays", {})
        missing = sorted(set(_REQUIRED) - set(entries))
        if missing:
            raise FormatError(f"store manifest lacks arrays: {missing}")
        arrays = {}
        for name, entry in entries.items():
            path = directory / entry["file"]
            if not path.exists():
                raise FormatError(f"store array file missing: {path}")
            shape = tuple(entry["shape"])
            dtype = np.dtype(entry["dtype"])
            expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
            actual = os.path.getsize(path)
            if actual != expected:
                raise FormatError(
                    f"{entry['file']}: {actual} bytes on disk, manifest "
                    f"declares {expected} ({dtype} x {shape})"
                )
            if expected == 0:
                arrays[name] = np.empty(shape, dtype=dtype)
            else:
                arrays[name] = np.memmap(
                    path, dtype=dtype, mode="r", shape=shape
                )
        return cls(directory, manifest, arrays)

    # ------------------------------------------------------------------
    def verify(self) -> None:
        """Recompute every array file's CRC-32 against the manifest.

        Streams each file once (bounded memory); kept separate from
        :meth:`open` so opening stays O(1) — run this after transport or
        on a corruption suspicion.

        Raises
        ------
        FormatError
            Naming the first file whose checksum diverges.
        """
        for name, entry in self.manifest["arrays"].items():
            path = self.directory / entry["file"]
            crc = _file_crc32(path)
            if crc != entry["crc32"]:
                raise FormatError(
                    f"{entry['file']}: CRC-32 {crc:#010x} != manifest "
                    f"{entry['crc32']:#010x} (corrupt store array "
                    f"{name!r})"
                )

    def nbytes(self) -> int:
        """Total bytes of the stored arrays (as declared by the manifest)."""
        total = 0
        for entry in self.manifest["arrays"].values():
            dtype = np.dtype(entry["dtype"])
            total += int(np.prod(entry["shape"], dtype=np.int64)) * (
                dtype.itemsize
            )
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PartitionStore(dir={str(self.directory)!r}, k={self.k}, "
            f"n={self.n_vertices}, m={self.n_edges})"
        )
