"""Partition-serving layer: persist a run, then serve lookups online.

This package closes the loop between offline partitioning and online
execution.  A completed :class:`~repro.partitioning.base.PartitionResult`
is persisted once with :meth:`PartitionStore.write
<repro.serving.store.PartitionStore.write>` and reopened memory-mapped
with :meth:`PartitionStore.open <repro.serving.store.PartitionStore.open>`
— O(1) in graph size, zero-copy — after which :class:`LookupService
<repro.serving.service.LookupService>` answers vertex/edge placement
queries at memory speed.

The store format (one flat binary file per array, bit-packed replica
matrix, sorted ``(u << 32) | v`` edge keys), the manifest versioning
rule (exact-match integer version; readers reject anything else), and
the checksum policy (O(1) size validation at open, CRC-32 via
``verify()`` on demand) are documented in :mod:`repro.serving.store`.
The LRU hot-vertex cache and the hint/least-loaded routing semantics
are documented in :mod:`repro.serving.service`.

Typical use::

    store = PartitionStore.write(path, result, graph.edges)   # offline
    svc = LookupService(PartitionStore.open(path))            # online
    svc.vertex_partitions(np.array([0, 1, 2]), hint=3)
    svc.edge_partition(u, v)
"""

from repro.serving.service import LookupService
from repro.serving.store import (
    STORE_FORMAT,
    STORE_VERSION,
    PartitionStore,
    edge_keys,
)

__all__ = [
    "STORE_FORMAT",
    "STORE_VERSION",
    "LookupService",
    "PartitionStore",
    "edge_keys",
]
