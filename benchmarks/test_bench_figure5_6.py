"""Figures 5 & 6 bench: 2PS-L phase breakdown and pre-partitioning ratio.

Asserted (paper Figures 5-6):

- the partitioning phase dominates the total run-time, the degree pass is
  the smallest of the three phases;
- pre-partitioning dominates on web graphs and not on social networks.
"""

from benchmarks.conftest import BENCH_SCALE
from repro.core import TwoPhasePartitioner
from repro.graph.datasets import load_dataset


def _run(dataset):
    graph = load_dataset(dataset, scale=BENCH_SCALE)
    return TwoPhasePartitioner().partition(graph, 32), graph


def test_bench_phase_breakdown_social(benchmark):
    result, _ = benchmark.pedantic(lambda: _run("OK"), rounds=3, iterations=1)
    totals = result.timer.totals
    partitioning = (
        totals["mapping"] + totals["prepartition"] + totals["partitioning"]
    )
    assert partitioning > totals["degree"]
    assert partitioning > totals["clustering"]


def test_bench_phase_breakdown_web(benchmark):
    result, _ = benchmark.pedantic(lambda: _run("IT"), rounds=3, iterations=1)
    totals = result.timer.totals
    partitioning = (
        totals["mapping"] + totals["prepartition"] + totals["partitioning"]
    )
    assert partitioning > totals["degree"]


def test_bench_prepartition_ratio(benchmark):
    def sweep():
        return {name: _run(name)[0:2] for name in ("OK", "TW", "IT", "UK", "GSH")}

    cells = benchmark.pedantic(sweep, rounds=1, iterations=1)
    frac = {
        name: result.extras["prepartitioned_edges"] / graph.n_edges
        for name, (result, graph) in cells.items()
    }
    # Web graphs pre-partition a large share of their edges ...
    for web in ("IT", "UK", "GSH"):
        assert frac[web] > 0.4, f"{web}: {frac[web]}"
    # ... social networks leave the majority to the scoring pass.
    for social in ("OK", "TW"):
        assert frac[social] < 0.35, f"{social}: {frac[social]}"
    # And every web graph pre-partitions more than every social network.
    assert min(frac["IT"], frac["UK"], frac["GSH"]) > max(frac["OK"], frac["TW"])
