"""Tables I & II bench: empirical complexity validation.

Asserted:

- Table I: 2PS-L and DBH operation counts are linear in |E| and flat in
  k; HDRF and Greedy are linear in |E| * k;
- Table II: 2PS-L/HDRF state grows with k (O(|V| * k)); DBH's does not
  (O(|V|)); Grid carries no per-vertex state; NE pays >= O(|E|).
"""

import pytest

from benchmarks.conftest import BENCH_SCALE, run_cached
from repro.experiments.common import make_partitioner
from repro.graph.datasets import load_dataset


def test_bench_time_complexity_in_edges(benchmark):
    def sweep():
        small = load_dataset("OK", scale=BENCH_SCALE)
        large = load_dataset("OK", scale=BENCH_SCALE * 2)
        out = {}
        for name in ("2PS-L", "HDRF", "DBH"):
            out[(name, "small")] = make_partitioner(name).partition(small, 8)
            out[(name, "large")] = make_partitioner(name).partition(large, 8)
        return out

    cells = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for name in ("2PS-L", "HDRF", "DBH"):
        ratio = (
            cells[(name, "large")].cost.total_operations()
            / cells[(name, "small")].cost.total_operations()
        )
        assert 1.6 < ratio < 2.6, f"{name} not linear in |E|: {ratio}"


def test_bench_time_complexity_in_k(benchmark):
    def sweep():
        return {
            (name, k): run_cached(name, "OK", k)
            for name in ("2PS-L", "HDRF", "DBH", "Greedy")
            for k in (8, 64)
        }

    cells = benchmark.pedantic(sweep, rounds=1, iterations=1)

    def k_ratio(name):
        return (
            cells[(name, 64)].cost.total_operations()
            / cells[(name, 8)].cost.total_operations()
        )

    assert k_ratio("2PS-L") < 1.7  # O(|E|): flat in k
    assert k_ratio("DBH") == pytest.approx(1.0)
    assert k_ratio("HDRF") > 5.0  # O(|E| * k)
    assert k_ratio("Greedy") > 5.0


def test_bench_space_complexity(benchmark):
    def sweep():
        return {
            (name, k): run_cached(name, "OK", k)
            for name in ("2PS-L", "HDRF", "DBH", "Grid")
            for k in (8, 128)
        } | {("NE", 8): run_cached("NE", "OK", 8)}

    cells = benchmark.pedantic(sweep, rounds=1, iterations=1)
    mem = {key: cell.state_bytes for key, cell in cells.items()}
    assert mem[("2PS-L", 128)] > 3 * mem[("2PS-L", 8)]
    assert mem[("HDRF", 128)] > 3 * mem[("HDRF", 8)]
    assert mem[("DBH", 128)] == mem[("DBH", 8)]
    assert mem[("Grid", 8)] == 0
    graph = load_dataset("OK", scale=BENCH_SCALE)
    assert mem[("NE", 8)] >= graph.edges.nbytes
