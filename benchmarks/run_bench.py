"""Kernel-backend throughput benchmark -> BENCH_kernels.json.

Runs the full 2PS-L pipeline with every registered kernel backend on a
synthetic R-MAT graph (Graph500 generator, >= 1M edges at the default
scale), verifies the backends produce bit-identical partitionings, and
records per-phase wall times and edges/sec so the perf trajectory of the
kernel layer is tracked from PR to PR.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py [--scale 16] [--k 32] \
        [--out BENCH_kernels.json]

The acceptance gate of the kernel-layer PR: the default ``numpy`` backend
must reach >= 5x edges/sec over the ``python`` reference backend on the
degree and pre-partition passes (``speedup_vs_python.degree`` /
``.prepartition`` in the output, summarized in ``meets_5x_target``).
"""

from __future__ import annotations

import argparse
import json
import platform
import time

import numpy as np

from repro.core import TwoPhasePartitioner
from repro.graph.generators import rmat_graph
from repro.kernels import DEFAULT_BACKEND, available_backends
from repro.streaming import InMemoryEdgeStream

#: Phases whose vectorization this PR is gated on.
GATED_PHASES = ("degree", "prepartition")


def run_backend(
    stream, backend: str, k: int, alpha: float, repeats: int
) -> dict:
    """Best of ``repeats`` full pipeline runs (wall-clock noise on shared
    machines easily exceeds the phase deltas being measured); returns the
    fastest run's timings plus its result for the cross-backend equality
    check."""
    best = None
    for _ in range(repeats):
        partitioner = TwoPhasePartitioner(backend=backend)
        start = time.perf_counter()
        result = partitioner.partition(stream, k, alpha=alpha)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best[0]:
            best = (elapsed, result)
    total, result = best
    m = result.n_edges
    phase_seconds = {
        name: round(seconds, 6) for name, seconds in result.timer.totals.items()
    }
    edges_per_s = {
        name: round(m / seconds) if seconds > 0 else None
        for name, seconds in result.timer.totals.items()
    }
    return {
        "result": result,
        "row": {
            "total_seconds": round(total, 4),
            "total_edges_per_s": round(m / total),
            "phase_seconds": phase_seconds,
            "phase_edges_per_s": edges_per_s,
            "replication_factor": round(result.replication_factor, 4),
            "measured_alpha": round(result.measured_alpha, 4),
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", type=int, default=16, help="R-MAT scale (2**scale vertices)"
    )
    parser.add_argument(
        "--edge-factor", type=int, default=16, help="edges per vertex"
    )
    parser.add_argument("--k", type=int, default=32)
    parser.add_argument("--alpha", type=float, default=1.05)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--repeats", type=int, default=3, help="runs per backend (best kept)"
    )
    parser.add_argument("--out", default="BENCH_kernels.json")
    args = parser.parse_args(argv)

    graph = rmat_graph(args.scale, edge_factor=args.edge_factor, seed=args.seed)
    stream = InMemoryEdgeStream(graph)
    print(
        f"R-MAT scale {args.scale}: |V|={graph.n_vertices:,} "
        f"|E|={graph.n_edges:,}, k={args.k}, alpha={args.alpha}"
    )

    runs = {}
    for backend in available_backends():
        runs[backend] = run_backend(
            stream, backend, args.k, args.alpha, args.repeats
        )
        row = runs[backend]["row"]
        print(
            f"  {backend:>8}: {row['total_seconds']:.2f}s total "
            f"({row['total_edges_per_s']:,} edges/s), phases: "
            + ", ".join(
                f"{k}={v:.3f}s" for k, v in row["phase_seconds"].items()
            )
        )

    reference = runs["python"]["result"]
    for backend, run in runs.items():
        if not np.array_equal(run["result"].assignments, reference.assignments):
            raise SystemExit(
                f"backend {backend!r} diverged from the reference assignment"
            )
    print("  all backends produced bit-identical assignments")

    speedups = {}
    ref_phases = runs["python"]["row"]["phase_seconds"]
    for backend in available_backends():
        if backend == "python":
            continue
        rows = runs[backend]["row"]["phase_seconds"]
        speedups[backend] = {
            name: round(ref_phases[name] / rows[name], 2)
            if rows[name] > 0
            else None
            for name in ref_phases
        }
        speedups[backend]["total"] = round(
            runs["python"]["row"]["total_seconds"]
            / runs[backend]["row"]["total_seconds"],
            2,
        )

    gate = speedups.get(DEFAULT_BACKEND, {})
    meets = all((gate.get(p) or 0) >= 5.0 for p in GATED_PHASES)
    payload = {
        "benchmark": "kernel-backend throughput (2PS-L full pipeline)",
        "graph": {
            "generator": "rmat",
            "scale": args.scale,
            "edge_factor": args.edge_factor,
            "seed": args.seed,
            "n_vertices": graph.n_vertices,
            "n_edges": graph.n_edges,
        },
        "k": args.k,
        "alpha": args.alpha,
        "repeats": args.repeats,
        "python_version": platform.python_version(),
        "numpy_version": np.__version__,
        "default_backend": DEFAULT_BACKEND,
        "backends": {name: run["row"] for name, run in runs.items()},
        "speedup_vs_python": speedups,
        "gated_phases": list(GATED_PHASES),
        "meets_5x_target": meets,
        "identical_assignments": True,
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")
    print(f"  speedups vs python: {json.dumps(speedups)}")
    print(f"  wrote {args.out} (meets_5x_target={meets})")
    return 0 if meets else 1


if __name__ == "__main__":
    raise SystemExit(main())
