"""Kernel-backend + parallel-runner benchmarks -> BENCH_kernels.json
and BENCH_parallel.json.

Runs three kernel-routed pipelines with every registered backend on a
synthetic R-MAT graph (Graph500 generator, >= 1M edges at the default
scale), verifies the backends produce bit-identical partitionings, and
records per-phase wall times and edges/sec so the perf trajectory of the
kernel layer is tracked from PR to PR:

- ``2psl``     — sequential 2PS-L (``TwoPhasePartitioner``)
- ``2pshdrf``  — sequential 2PS-HDRF (``mode="hdrf"``)
- ``parallel`` — sharded ``ParallelTwoPhase`` (kernel-dispatched windows)

It then runs the **parallel wall-clock** section: the sharded path with
``runner="process"`` (true ``multiprocessing`` workers over shared-memory
``PartitionState`` views) against the sequential numpy Phase-2 time, into
``BENCH_parallel.json``.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py [--scale 16] [--k 32] \
        [--out BENCH_kernels.json] [--smoke]

Exit status is non-zero unless every gate passes:

- speedup gates (default ``numpy`` backend vs the ``python`` reference):
  ``2psl`` degree and prepartition passes >= 5x, and the 2PS-HDRF
  remaining pass (``partitioning`` phase) >= 5x — the acceptance gate of
  the blocked HDRF kernel;
- correctness gates: all backends bit-identical per pipeline,
  ``ParallelTwoPhase(n_workers=1)`` bit-exact with sequential 2PS-L, the
  process runner bit-identical with the simulated runner under the same
  sync schedule (assignments, replicas, sizes, cost counters), and no
  shared-memory segment leaks after the process-runner runs;
- parallel wall-clock gate: *measured* Phase-2 speedup of the process
  runner at ``--n-workers`` (default 4) >= 1.8x sequential numpy.  The
  speedup gate is enforced only when the machine exposes at least
  ``n_workers`` usable CPUs — a 4-way wall-clock speedup cannot exist on
  fewer cores, so constrained hosts record the measurement with the gate
  marked ``skipped`` (the correctness gates above always apply);
- phase-1 wall-clock gate (``phase1_wallclock`` section): *measured*
  Phase-1 (degree + clustering) speedup of the sharded Phase 1
  (``parallel_phase1=True``) through the process runner >= 1.5x at
  ``--n-workers``, with the same CPU-count skip rule, plus the
  bit-exactness gates (``n_workers=1`` == sequential, process ==
  simulated under the same schedule);
- barrier-bytes gate (always enforced): the dirty-row delta barriers
  must broadcast strictly fewer replica-matrix cells than the full
  re-broadcast they replaced (``barrier_bytes`` section);
- distributed-runner gates (``distributed`` section of
  ``BENCH_parallel.json``): the socket-protocol runner over loopback
  workers must stay bit-identical with the simulated runner at
  ``--n-workers`` and with sequential 2PS-L at one worker, ship
  strictly fewer replica-plane bytes per barrier than a full-state
  re-broadcast, and leak no socket, worker process, or shared-memory
  segment (all always enforced); its measured Phase-2 wall-clock vs
  sequential numpy is enforced only on hosts with >= 2 usable CPUs
  and recorded-but-skipped elsewhere;
- out-of-core gates (``BENCH_storage.json``): the graph is generated
  straight to disk (:func:`repro.graph.generators.rmat_edge_file`, never
  holding the edge array in RAM) and partitioned from the file.  The
  bit-packed replica state must shrink peak state bytes >= 6x vs the
  dense bool matrix at the default ``k=32`` (always enforced), packed
  and dense — and prefetching and synchronous file streams, and the
  process runner over both — must stay bit-identical (always enforced),
  and the double-buffered prefetching stream must beat the synchronous
  stream's wall-clock.  The prefetch-overlap gate needs a second CPU for
  the reader thread to overlap with compute, so single-CPU hosts
  record-but-skip it, like the parallel wall-clock gates;
- numba gate (``numba`` section of ``BENCH_kernels.json``): the compiled
  ``numba`` backend must reach >= 2x the ``numpy`` backend on the 2PS-L
  *remaining* (scoring) pass over hub-heavy R-MAT — the serial-dominated
  stream the compiled kernels exist for — and stay bit-identical with
  it.  Like the CPU-count rule, the gate **records-but-skips** when the
  optional numba dependency is unavailable on the host, so numba-free
  environments keep an authoritative BENCH file without a red gate;
- batched-HDRF gate (``hdrf_baseline`` section of
  ``BENCH_kernels.json``): the kernel-routed HDRF baseline's ``numpy``
  backend must reach >= 3x the per-edge ``python`` reference on the
  partitioning pass of the >= 1M-edge R-MAT, bit-identical with it
  (ISSUE 8 acceptance gate).  The ``numba`` leg is recorded and checked
  for bit-exactness when the dependency is available, and
  records-but-skips when it is not — same rule as the numba section;
- tuning gate (``tuning`` section of ``BENCH_kernels.json``): a
  ``tune="auto"`` run must stay bit-identical with the untuned run
  (always enforced — the tuner only moves semantics-free knobs) and its
  wall-clock must stay within the probe-overhead budget of the untuned
  run.  The wall-clock leg needs an uncontended core to be measurable,
  so single-CPU hosts record-but-skip it, like the parallel gates.  The
  recorded :class:`~repro.tuning.TuningDecision` summary makes the
  chosen ``{backend, chunk_size, sync_interval}`` part of the nightly
  trend line.
- serving gates (``BENCH_serving.json``): the main run is persisted as a
  :class:`~repro.serving.store.PartitionStore`, reopened memory-mapped,
  and a seeded closed-loop load generator drives the
  :class:`~repro.serving.service.LookupService` (hot-set-skewed vertex
  routing, edge lookups with misses).  Every sampled lookup must be
  bit-exact with the in-memory result and the CRC-32 sweep must pass
  (always enforced); the batched-numpy path must reach >= 10x the
  scalar path's lookups/s (always enforced — a same-host ratio); and
  absolute lookups/s floors on both paths are enforced only on hosts
  with >= 2 usable CPUs, recorded-but-skipped elsewhere, like the
  parallel wall-clock gates.

``--smoke`` runs the same gates at a reduced scale (65k edges) with
proportionally relaxed speedup thresholds, so CI can check the kernel
layer in seconds without the full 1M-edge run.  ``--record-only``
(the nightly trend-tracking mode) records every gate outcome in the
BENCH payloads but only correctness failures affect the exit status.
The ``BENCH_*.json`` / ``BENCH_*_smoke.json`` files at the repo root
are **committed artifacts** — the authoritative per-PR snapshots of
these payloads.  After touching the kernel or runner layers, regenerate
them (full tier plus ``--smoke``) and commit the diff alongside the
code change so the trend line stays truthful.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import tempfile
import time

import numpy as np

from repro.core import ParallelTwoPhase, TwoPhasePartitioner
from repro.core.runners import live_shared_segments
from repro.graph.generators import rmat_edge_file, rmat_graph
from repro.kernels import DEFAULT_BACKEND, available_backends
from repro.streaming import FileEdgeStream, InMemoryEdgeStream

#: Speedup gates per pipeline: {config: {phase: threshold}}.  The smoke
#: thresholds are lower because vectorization amortizes less at 65k edges.
FULL_GATES = {
    "2psl": {"degree": 5.0, "prepartition": 5.0},
    "2pshdrf": {"partitioning": 5.0},
}
SMOKE_GATES = {
    "2psl": {"degree": 3.0, "prepartition": 3.0},
    "2pshdrf": {"partitioning": 2.0},
}

#: Measured Phase-2 speedup the process runner must reach at --n-workers
#: (ISSUE 3 acceptance gate).  The smoke threshold only asserts the
#: machinery is not pathologically slow: at 65k edges the per-window
#: compute is too small to amortize pool dispatch.
PARALLEL_GATE = 1.8
PARALLEL_SMOKE_GATE = 0.2

#: Measured Phase-1 (degree + clustering) speedup of the sharded Phase 1
#: through the process runner (ISSUE 4 acceptance gate; enforced only on
#: hosts with >= --n-workers usable CPUs, like the Phase-2 gate).
PHASE1_GATE = 1.5
PHASE1_SMOKE_GATE = 0.15

#: Measured Phase-2 speedup of the distributed (socket-protocol) runner
#: over loopback workers vs sequential numpy (ISSUE 10 acceptance gate;
#: enforced only on hosts with >= 2 usable CPUs — below that the wire
#: round-trips have no spare core to overlap with).  The bar is modest:
#: the section's point is that the wire protocol does not erase the
#: sharded speedup, not that sockets beat shared memory.  The smoke
#: threshold only asserts the machinery is not pathologically slow.
DISTRIBUTED_GATE = 1.05
DISTRIBUTED_SMOKE_GATE = 0.02

#: numba-vs-numpy speedup of the compiled 2PS-L remaining pass on
#: hub-heavy R-MAT (ISSUE 5 acceptance gate; recorded-but-skipped when
#: numba is unavailable).  The smoke threshold is relaxed: at 65k edges
#: per-chunk dispatch overhead amortizes much less.
NUMBA_GATE = 2.0
NUMBA_SMOKE_GATE = 1.2

#: numpy-vs-python speedup of the batched HDRF baseline pass (ISSUE 8
#: acceptance gate: the speculate-verify-repair machinery must carry the
#: per-edge reference baseline too).  The smoke threshold is relaxed
#: because the block machinery amortizes much less at 65k edges.
HDRF_BASELINE_GATE = 3.0
HDRF_BASELINE_SMOKE_GATE = 1.5

#: Wall-clock ratio (untuned / tuned) a ``tune="auto"`` run must keep:
#: the probe window is bounded, so tuning may not cost more than a
#: small fraction of the run.  Enforced only on hosts with >= 2 usable
#: CPUs — on a contended single core the ratio measures scheduler noise,
#: not probe overhead.  The smoke threshold is loose: at 65k edges the
#: probe is a visible fraction of the whole stream.
TUNING_GATE = 0.8
TUNING_SMOKE_GATE = 0.3

#: Peak-state-bytes reduction the bit-packed replica matrix must reach
#: against the dense bool matrix at the default k=32 (ISSUE 7 acceptance
#: gate; always enforced — the ratio is a storage-layout fact, not a
#: wall-clock measurement, so host throughput cannot hide a regression).
STORAGE_REDUCTION_GATE = 6.0

#: Wall-clock gain the double-buffered prefetching file stream must show
#: over the synchronous stream (reader thread overlaps decode + I/O with
#: kernel compute).  Needs a second CPU to overlap anything, so the gate
#: records-but-skips on single-CPU hosts.  The smoke threshold only
#: asserts prefetching is not pathologically slow: at 65k edges the
#: per-chunk compute is too small to hide behind.
PREFETCH_GATE = 1.02
PREFETCH_SMOKE_GATE = 0.3

#: Batched-over-scalar throughput ratio the lookup service must reach
#: (ISSUE 9 acceptance gate; always enforced — both paths run on the
#: same host back to back, so the ratio is host-independent).  The
#: vectorized row-gather path beats the per-call python loop by ~two
#: orders of magnitude; 10x leaves generous headroom.
SERVING_BATCH_GATE = 10.0
SERVING_BATCH_SMOKE_GATE = 10.0

#: Absolute lookup-throughput floors (lookups/s) of the closed-loop load
#: generator.  Wall-clock floors are host-dependent, so — like the
#: parallel wall-clock gates — they are enforced only on hosts with
#: >= 2 usable CPUs and record-but-skip elsewhere.  Floors sit ~4x
#: below the measured container numbers, so they catch an
#: order-of-magnitude serving regression without flaking on slow CI.
SERVING_SCALAR_QPS_GATE = 20_000.0
SERVING_SCALAR_QPS_SMOKE_GATE = 10_000.0
SERVING_BATCHED_QPS_GATE = 1_000_000.0
SERVING_BATCHED_QPS_SMOKE_GATE = 400_000.0

SMOKE_SCALE = 12


def usable_cpus() -> int:
    """CPUs this process may schedule on (affinity-aware)."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def run_config(partitioner_factory, stream, k, alpha, repeats) -> dict:
    """Best of ``repeats`` full pipeline runs (wall-clock noise on shared
    machines easily exceeds the phase deltas being measured); returns the
    fastest run's timings plus its result for the cross-backend equality
    check."""
    best = None
    for _ in range(repeats):
        partitioner = partitioner_factory()
        start = time.perf_counter()
        result = partitioner.partition(stream, k, alpha=alpha)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best[0]:
            best = (elapsed, result)
    total, result = best
    m = result.n_edges
    return {
        "result": result,
        "row": {
            "total_seconds": round(total, 4),
            "total_edges_per_s": round(m / total),
            "phase_seconds": {
                name: round(seconds, 6)
                for name, seconds in result.timer.totals.items()
            },
            "phase_edges_per_s": {
                name: round(m / seconds) if seconds > 0 else None
                for name, seconds in result.timer.totals.items()
            },
            "replication_factor": round(result.replication_factor, 4),
            "measured_alpha": round(result.measured_alpha, 4),
        },
    }


def assert_bit_exact(reference, other, label: str) -> None:
    if not (
        np.array_equal(reference.assignments, other.assignments)
        and np.array_equal(reference.state.replicas, other.state.replicas)
        and np.array_equal(reference.state.sizes, other.state.sizes)
        and reference.cost == other.cost
    ):
        raise SystemExit(f"equality gate failed: {label}")


def phase2_seconds(result) -> float:
    """Wall seconds of the two Phase-2 streaming passes of a run."""
    return result.timer.totals.get("prepartition", 0.0) + (
        result.timer.totals.get("partitioning", 0.0)
    )


def phase1_seconds(result) -> float:
    """Wall seconds of the Phase-1 streaming passes (degree + clustering)."""
    return result.timer.totals.get("degree", 0.0) + (
        result.timer.totals.get("clustering", 0.0)
    )


def measure_speedup_gate(
    label, seconds_fn, threshold, make_parallel, stream, args,
    sequential_result, repeats, cpus,
):
    """Shared gate machinery of the measured wall-clock sections.

    Runs the correctness pins (``ProcessRunner(n_workers=1)`` bit-exact
    with the sequential pipeline, ``ProcessRunner`` bit-identical with
    ``SimulatedRunner`` at the same schedule, zero leaked segments — all
    always enforced), keeps the best of ``repeats`` process runs by
    ``seconds_fn``, and applies the speedup threshold under the CPU-count
    skip rule.  Returns ``(best_result, gate_dict, seq_s, par_s)``.
    """
    simulated = make_parallel(args.n_workers, "simulated").partition(
        stream, args.k, alpha=args.alpha
    )
    single = make_parallel(1, "process").partition(
        stream, args.k, alpha=args.alpha
    )
    assert_bit_exact(
        sequential_result,
        single,
        f"{label}: ProcessRunner(n_workers=1) vs sequential 2PS-L",
    )
    best = None
    for _ in range(repeats):
        result = make_parallel(args.n_workers, "process").partition(
            stream, args.k, alpha=args.alpha
        )
        assert_bit_exact(
            simulated,
            result,
            f"{label}: ProcessRunner vs SimulatedRunner at "
            f"{args.n_workers} workers",
        )
        if best is None or seconds_fn(result) < seconds_fn(best):
            best = result
    leaked = sorted(live_shared_segments())
    if leaked:
        raise SystemExit(f"leaked shared-memory segments: {leaked}")
    seq_s = seconds_fn(sequential_result)
    par_s = seconds_fn(best)
    speedup = seq_s / par_s if par_s > 0 else 0.0
    enforced = cpus >= args.n_workers
    passed = speedup >= threshold if enforced else None
    gate = {
        "threshold": threshold,
        "speedup": round(speedup, 3),
        "enforced": enforced,
        "pass": passed,
        "skipped_reason": (
            None
            if enforced
            else f"{cpus} usable CPU(s) < n_workers={args.n_workers}: "
            "a wall-clock speedup gate is unmeasurable on this host"
        ),
    }
    state = "pass" if passed else ("SKIPPED" if passed is None else "FAIL")
    print(
        f"  {label}: {seq_s:.3f}s sequential -> {par_s:.3f}s at "
        f"{args.n_workers} workers ({speedup:.2f}x, gate {threshold}x: "
        f"{state}, {cpus} cpus)"
    )
    return best, gate, seq_s, par_s


def run_numba_section(args, scale: int, smoke: bool) -> tuple[dict, bool]:
    """The gated ``numba`` section of ``BENCH_kernels.json``.

    Hub-heavy R-MAT (skewed quadrant mass: hubs collide in nearly every
    block, so the numpy backend's conflict-free batching degrades toward
    the serial reference — exactly the stream the compiled kernels
    exist for), sequential 2PS-L, best-of-``repeats`` per backend; the
    gate compares the *remaining* ("partitioning" phase) wall time of
    the ``numba`` backend against ``numpy`` and requires bit-identical
    results.  When numba is unavailable the measurement is impossible:
    the section records the reason and the gate is marked skipped
    (``pass: null``), mirroring the CPU-count rule of the parallel
    wall-clock gates.  Returns ``(section, ok)``.
    """
    from repro.kernels import available_backends as _backends
    from repro.kernels import missing_backends

    threshold = NUMBA_SMOKE_GATE if smoke else NUMBA_GATE
    section = {
        "benchmark": "compiled numba kernels vs numpy "
        "(2PS-L remaining pass, hub-heavy R-MAT)",
        "graph": {
            "generator": "rmat-hub-heavy",
            "scale": scale,
            "edge_factor": args.edge_factor,
            "a": 0.7, "b": 0.12, "c": 0.12,
            "seed": args.seed,
        },
        "k": args.k,
        "alpha": args.alpha,
    }
    if "numba" not in _backends():
        # Checked before the graph exists: no point generating a
        # million-edge R-MAT just to record a skipped gate.
        reason = missing_backends().get("numba", "numba is not registered")
        section["available"] = False
        section["reason"] = reason
        section["gate"] = {
            "threshold": threshold,
            "speedup": None,
            "enforced": False,
            "pass": None,
            "skipped_reason": f"numba unavailable on this host: {reason}",
        }
        print(f"  numba section: SKIPPED (recorded; {reason})")
        return section, True
    graph = rmat_graph(
        scale, edge_factor=args.edge_factor, a=0.7, b=0.12, c=0.12,
        seed=args.seed,
    )
    section["graph"]["n_vertices"] = graph.n_vertices
    section["graph"]["n_edges"] = graph.n_edges
    # Warm-up outside the timed runs: the first kernel invocation in a
    # process pays the JIT compilation, which is not pass throughput.
    warm = rmat_graph(7, edge_factor=4, seed=2)
    TwoPhasePartitioner(backend="numba").partition(warm, args.k)
    repeats = 1 if smoke else args.repeats
    stream = InMemoryEdgeStream(graph)
    runs = {
        backend: run_config(
            lambda backend=backend: TwoPhasePartitioner(backend=backend),
            stream, args.k, args.alpha, repeats,
        )
        for backend in ("numpy", "numba")
    }
    assert_bit_exact(
        runs["numpy"]["result"], runs["numba"]["result"],
        "numba section: numba vs numpy on hub-heavy R-MAT",
    )
    numpy_s = runs["numpy"]["row"]["phase_seconds"]["partitioning"]
    numba_s = runs["numba"]["row"]["phase_seconds"]["partitioning"]
    speedup = numpy_s / numba_s if numba_s > 0 else 0.0
    passed = speedup >= threshold
    section["available"] = True
    section["backends"] = {b: run["row"] for b, run in runs.items()}
    section["remaining_pass_seconds"] = {
        "numpy": round(numpy_s, 6), "numba": round(numba_s, 6),
    }
    section["bit_exact_with_numpy"] = True
    section["gate"] = {
        "threshold": threshold,
        "speedup": round(speedup, 2),
        "enforced": True,
        "pass": passed,
        "skipped_reason": None,
    }
    print(
        f"  numba remaining pass (hub-heavy): {numpy_s:.3f}s numpy -> "
        f"{numba_s:.3f}s numba ({speedup:.2f}x, gate {threshold}x: "
        f"{'pass' if passed else 'FAIL'})"
    )
    return section, passed


def run_hdrf_baseline_section(
    args, graph, stream, smoke: bool
) -> tuple[dict, bool]:
    """The gated ``hdrf_baseline`` section of ``BENCH_kernels.json``.

    Runs the kernel-routed HDRF baseline (``repro.baselines.HDRF``) on
    the main R-MAT stream with the ``python`` per-edge reference and the
    batched ``numpy`` backend, requires bit-identical results (including
    the simulated cost counters) and >= ``HDRF_BASELINE_GATE``x on the
    partitioning pass.  The ``numba`` leg is measured and bit-exactness
    checked when the dependency is available; otherwise it is recorded
    as skipped, mirroring the numba section.  Returns ``(section, ok)``.
    """
    from repro.baselines import HDRF
    from repro.kernels import available_backends as _backends
    from repro.kernels import missing_backends

    threshold = HDRF_BASELINE_SMOKE_GATE if smoke else HDRF_BASELINE_GATE
    repeats = 1 if smoke else args.repeats
    legs = ["python", "numpy"]
    numba_available = "numba" in _backends()
    if numba_available:
        # First invocation pays the JIT compile; keep it out of the
        # timed runs.
        warm = rmat_graph(7, edge_factor=4, seed=2)
        HDRF(backend="numba").partition(warm, args.k)
        legs.append("numba")
    runs = {
        backend: run_config(
            lambda backend=backend: HDRF(backend=backend),
            stream, args.k, args.alpha, repeats,
        )
        for backend in legs
    }
    for backend in legs[1:]:
        assert_bit_exact(
            runs["python"]["result"], runs[backend]["result"],
            f"hdrf_baseline: backend {backend!r} vs python reference",
        )
    python_s = runs["python"]["row"]["phase_seconds"]["partitioning"]
    numpy_s = runs["numpy"]["row"]["phase_seconds"]["partitioning"]
    speedup = python_s / numpy_s if numpy_s > 0 else 0.0
    passed = speedup >= threshold
    section = {
        "benchmark": "batched HDRF baseline vs per-edge reference "
        "(kernel-routed, speculate-verify-repair)",
        "k": args.k,
        "alpha": args.alpha,
        "backends": {b: run["row"] for b, run in runs.items()},
        "partitioning_pass_seconds": {
            b: round(runs[b]["row"]["phase_seconds"]["partitioning"], 6)
            for b in legs
        },
        "bit_exact_with_python": True,
        "gate": {
            "threshold": threshold,
            "speedup": round(speedup, 2),
            "enforced": True,
            "pass": passed,
            "skipped_reason": None,
        },
    }
    if numba_available:
        numba_s = runs["numba"]["row"]["phase_seconds"]["partitioning"]
        section["numba_leg"] = {
            "available": True,
            "speedup_vs_python": round(
                python_s / numba_s if numba_s > 0 else 0.0, 2
            ),
            "bit_exact_with_python": True,
        }
    else:
        reason = missing_backends().get("numba", "numba is not registered")
        section["numba_leg"] = {
            "available": False,
            "skipped_reason": f"numba unavailable on this host: {reason}",
        }
    print(
        f"  hdrf baseline pass: {python_s:.3f}s python -> {numpy_s:.3f}s "
        f"numpy ({speedup:.2f}x, gate {threshold}x: "
        f"{'pass' if passed else 'FAIL'}; numba leg "
        + ("measured)" if numba_available else "skipped)")
    )
    return section, passed


def run_tuning_section(args, stream, smoke: bool) -> tuple[dict, bool]:
    """The gated ``tuning`` section of ``BENCH_kernels.json``.

    Runs the sequential 2PS-L pipeline untuned and with ``tune="auto"``,
    requires bit-identical results (always enforced: every tuned knob is
    semantics-free by contract), and checks the tuned run's wall-clock
    stays within the probe-overhead budget — enforced only on hosts
    with >= 2 usable CPUs, where the ratio measures probe overhead
    rather than scheduler contention.  The chosen
    :class:`~repro.tuning.TuningDecision` is recorded, plus the decision
    the tuner takes for a staleness-free ``ParallelTwoPhase`` (the
    regime where the ``sync_interval`` knob engages), so the nightly
    trend line tracks what the tuner actually picks.  Returns
    ``(section, ok)``.
    """
    from repro.tuning import tune_run

    cpus = usable_cpus()
    threshold = TUNING_SMOKE_GATE if smoke else TUNING_GATE
    repeats = 1 if smoke else args.repeats
    untuned = run_config(
        lambda: TwoPhasePartitioner(), stream, args.k, args.alpha, repeats
    )
    tuned = run_config(
        lambda: TwoPhasePartitioner(tune="auto"),
        stream, args.k, args.alpha, repeats,
    )
    assert_bit_exact(
        untuned["result"], tuned["result"],
        'tuning: tune="auto" vs untuned sequential 2PS-L',
    )
    decision = tuned["result"].artifacts.tuning
    # The serial-regime decision exercises the sync_interval knob too;
    # probe only, no extra partitioning run.
    serial_decision = tune_run(
        ParallelTwoPhase(n_workers=1, sync_interval=args.sync_interval),
        stream, args.k, None,
    )
    untuned_s = untuned["row"]["total_seconds"]
    tuned_s = tuned["row"]["total_seconds"]
    ratio = untuned_s / tuned_s if tuned_s > 0 else 0.0
    enforced = cpus >= 2
    passed = ratio >= threshold if enforced else None
    section = {
        "benchmark": 'probe-window auto-tuner (tune="auto") vs untuned '
        "sequential 2PS-L",
        "k": args.k,
        "alpha": args.alpha,
        "decision": decision.summary(),
        "serial_regime_decision": serial_decision.summary(),
        "untuned_seconds": round(untuned_s, 4),
        "tuned_seconds": round(tuned_s, 4),
        "overhead_ratio": round(ratio, 3),
        "bit_exact_with_untuned": True,
        "gate": {
            "threshold": threshold,
            "speedup": round(ratio, 3),
            "enforced": enforced,
            "pass": passed,
            "skipped_reason": (
                None
                if enforced
                else f"{cpus} usable CPU(s): the wall-clock overhead "
                "ratio measures scheduler contention on this host"
            ),
        },
    }
    state = "pass" if passed else ("SKIPPED" if passed is None else "FAIL")
    print(
        f"  tuning: {untuned_s:.3f}s untuned -> {tuned_s:.3f}s tuned "
        f"({ratio:.2f}x, gate {threshold}x: {state}, {cpus} cpus); "
        f"decision backend={decision.backend} chunk={decision.chunk_size} "
        f"serial-regime sync={serial_decision.sync_interval}"
    )
    return section, passed is not False


def run_distributed_section(
    stream, args, sequential_result, make_parallel, smoke: bool,
    cpus: int, repeats: int,
) -> tuple[dict, bool]:
    """The gated ``distributed`` section of ``BENCH_parallel.json``.

    Runs the socket-protocol runner (loopback workers, the same
    sync-window schedule) and checks, always enforced:

    - ``DistributedRunner(n_workers=1)`` bit-exact with the sequential
      pipeline and ``DistributedRunner`` bit-identical with
      ``SimulatedRunner`` at ``--n-workers`` under the same schedule;
    - the delta barrier ships strictly fewer replica-plane bytes than a
      full-state re-broadcast would (``barrier_plane_bytes`` vs
      ``barrier_full_bytes`` — the plane component is compared, because
      at small ``k`` the 8-byte row *indices* of the delta encoding can
      outweigh the rows themselves; the recorded ``barrier_delta_bytes``
      is the honest total including indices and sizes);
    - no leaked socket, worker process, or shared-memory segment.

    The measured Phase-2 speedup vs sequential numpy is enforced only on
    hosts with >= 2 usable CPUs and recorded-but-skipped elsewhere, like
    the other wall-clock gates.  Returns ``(section, ok)``.
    """
    from repro.core.distributed import (
        live_connections,
        live_worker_processes,
    )

    threshold = DISTRIBUTED_SMOKE_GATE if smoke else DISTRIBUTED_GATE
    simulated = make_parallel(args.n_workers, "simulated").partition(
        stream, args.k, alpha=args.alpha
    )
    single = make_parallel(1, "distributed").partition(
        stream, args.k, alpha=args.alpha
    )
    assert_bit_exact(
        sequential_result,
        single,
        "distributed: DistributedRunner(n_workers=1) vs sequential 2PS-L",
    )
    best = None
    for _ in range(repeats):
        result = make_parallel(args.n_workers, "distributed").partition(
            stream, args.k, alpha=args.alpha
        )
        assert_bit_exact(
            simulated,
            result,
            f"distributed: DistributedRunner vs SimulatedRunner at "
            f"{args.n_workers} workers",
        )
        if best is None or phase2_seconds(result) < phase2_seconds(best):
            best = result
    leaked = sorted(live_shared_segments())
    if leaked:
        raise SystemExit(f"leaked shared-memory segments: {leaked}")
    if live_connections() or live_worker_processes():
        raise SystemExit(
            "distributed: leaked wire connections or worker processes"
        )

    wire_stats = best.extras["wire"]
    plane = wire_stats["barrier_plane_bytes"]
    full = wire_stats["barrier_full_bytes"]
    wire_ok = 0 < plane < full
    print(
        f"  distributed barriers: {wire_stats['barrier_delta_bytes']:,} "
        f"delta bytes on the wire (plane component {plane:,}) vs "
        f"{full:,} full re-broadcast "
        + (
            f"({full / plane:.1f}x plane reduction)"
            if wire_ok
            else "(gate FAILED)"
        )
    )

    seq_s = phase2_seconds(sequential_result)
    par_s = phase2_seconds(best)
    speedup = seq_s / par_s if par_s > 0 else 0.0
    enforced = cpus >= 2
    passed = speedup >= threshold if enforced else None
    gate = {
        "threshold": threshold,
        "speedup": round(speedup, 3),
        "enforced": enforced,
        "pass": passed,
        "skipped_reason": (
            None
            if enforced
            else f"{cpus} usable CPU(s): loopback socket workers have "
            "no spare core to run on"
        ),
    }
    state = "pass" if passed else ("SKIPPED" if passed is None else "FAIL")
    print(
        f"  distributed wall-clock (phase 2): {seq_s:.3f}s sequential -> "
        f"{par_s:.3f}s at {args.n_workers} socket workers "
        f"({speedup:.2f}x, gate {threshold}x: {state}, {cpus} cpus)"
    )
    section = {
        "benchmark": "distributed runner (sync-window/delta-barrier "
        "protocol over loopback sockets)",
        "n_workers": args.n_workers,
        "sequential_phase2_seconds": round(seq_s, 4),
        "distributed_phase2_seconds": round(par_s, 4),
        "measured_phase2_speedup": gate["speedup"],
        "syncs": best.extras["syncs"],
        "wire": {
            "bytes_sent": wire_stats["bytes_sent"],
            "bytes_received": wire_stats["bytes_received"],
            "barrier_delta_bytes": wire_stats["barrier_delta_bytes"],
            "barrier_plane_bytes": plane,
            "barrier_full_bytes": full,
            "plane_reduction_factor": (
                round(full / plane, 2) if plane else None
            ),
            "gate": {"delta_below_full": wire_ok, "pass": wire_ok},
        },
        "gate": gate,
        "distributed_matches_simulated": True,
        "single_worker_matches_sequential": True,
        "leaked_segments": 0,
        "leaked_connections": 0,
        "leaked_worker_processes": 0,
    }
    return section, wire_ok and passed is not False


def run_parallel_wallclock(
    stream, graph, args, sequential_result, smoke: bool, out: str
) -> bool:
    """Measured process-runner wall-clock sections -> BENCH_parallel.json.

    Returns True when every applicable gate passes.  Correctness gates
    (see :func:`measure_speedup_gate`) and the barrier-bytes gate are
    always enforced; the speedup gates are enforced only on hosts with
    at least ``n_workers`` usable CPUs.
    """
    cpus = usable_cpus()
    repeats = 1 if smoke else args.repeats

    def parallel_factory(parallel_phase1):
        def make(n_workers, runner):
            return ParallelTwoPhase(
                n_workers=n_workers,
                sync_interval=args.sync_interval,
                backend=DEFAULT_BACKEND,
                runner=runner,
                parallel_phase1=parallel_phase1,
            )
        return make

    best, phase2_gate, seq_phase2, par_phase2 = measure_speedup_gate(
        "parallel wall-clock (phase 2)",
        phase2_seconds,
        PARALLEL_SMOKE_GATE if smoke else PARALLEL_GATE,
        parallel_factory(False),
        stream, args, sequential_result, repeats, cpus,
    )
    print(
        "  process runner is bit-exact with the simulated runner "
        "(and with sequential 2PS-L at 1 worker); no segment leaks"
    )

    # Barrier-bytes gate (always enforced): the dirty-row delta barriers
    # must broadcast strictly less than a full replica-matrix
    # re-broadcast.  Recorded in the payload either way so a failing run
    # still leaves an authoritative BENCH file.
    barrier_bytes = best.extras["barrier_bytes"]
    barrier_bytes_full = best.extras["barrier_bytes_full"]
    barrier_ok = 0 < barrier_bytes < barrier_bytes_full
    print(
        f"  delta barriers: {barrier_bytes:,} replica cells merged vs "
        f"{barrier_bytes_full:,} full re-broadcast "
        + (
            f"({barrier_bytes_full / barrier_bytes:.1f}x reduction)"
            if barrier_ok
            else "(gate FAILED)"
        )
    )

    # Phase-1 wall-clock section: the sharded degree + clustering passes
    # through the process runner, against the sequential Phase-1 time.
    best_phase1, phase1_gate, seq_phase1, par_phase1 = measure_speedup_gate(
        "phase-1 wall-clock",
        phase1_seconds,
        PHASE1_SMOKE_GATE if smoke else PHASE1_GATE,
        parallel_factory(True),
        stream, args, sequential_result, repeats, cpus,
    )

    distributed_section, distributed_ok = run_distributed_section(
        stream, args, sequential_result, parallel_factory(False),
        smoke, cpus, repeats,
    )

    payload = {
        "benchmark": "measured parallel Phase-2 wall-clock (process runner)",
        "graph": {
            "generator": "rmat",
            "n_vertices": graph.n_vertices,
            "n_edges": graph.n_edges,
        },
        "k": args.k,
        "alpha": args.alpha,
        "smoke": smoke,
        "repeats": repeats,
        "n_workers": args.n_workers,
        "sync_interval": args.sync_interval,
        "usable_cpus": cpus,
        "backend": DEFAULT_BACKEND,
        "sequential_phase2_seconds": round(seq_phase2, 4),
        "parallel_phase2_seconds": round(par_phase2, 4),
        "parallel_total_seconds": round(best.wall_seconds, 4),
        "measured_phase2_speedup": phase2_gate["speedup"],
        "syncs": best.extras["syncs"],
        "replication_factor": round(best.replication_factor, 4),
        "measured_alpha": round(best.measured_alpha, 4),
        "gate": phase2_gate,
        "barrier_bytes": {
            "delta": barrier_bytes,
            "full_rebroadcast": barrier_bytes_full,
            "reduction_factor": (
                round(barrier_bytes_full / barrier_bytes, 2)
                if barrier_bytes
                else None
            ),
            "gate": {"delta_below_full": barrier_ok, "pass": barrier_ok},
        },
        "phase1_wallclock": {
            "benchmark": "measured parallel Phase-1 wall-clock "
            "(degree + clustering, process runner)",
            "sequential_phase1_seconds": round(seq_phase1, 4),
            "parallel_phase1_seconds": round(par_phase1, 4),
            "measured_phase1_speedup": phase1_gate["speedup"],
            "phase1_syncs": best_phase1.extras["phase1_syncs"],
            "n_clusters": best_phase1.extras["n_clusters"],
            "replication_factor": round(
                best_phase1.replication_factor, 4
            ),
            "gate": phase1_gate,
            "process_matches_simulated": True,
            "single_worker_matches_sequential": True,
        },
        "distributed": distributed_section,
        "process_matches_simulated": True,
        "single_worker_matches_sequential": True,
        "leaked_segments": 0,
    }
    with open(out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")
    print(f"  wrote {out}")
    return (
        phase2_gate["pass"] is not False
        and phase1_gate["pass"] is not False
        and barrier_ok
        and distributed_ok
    )


def run_out_of_core_section(args, scale: int, smoke: bool, out: str) -> bool:
    """The out-of-core tier -> ``BENCH_storage.json``.

    Generates the R-MAT graph straight to a binary edge file in bounded
    memory (``rmat_edge_file`` — the edge array never exists in RAM),
    then partitions from the file:

    - packed-state gate (always enforced): bit-packed replica state
      >= ``STORAGE_REDUCTION_GATE``x smaller than the dense bool state,
      and bit-identical with it;
    - prefetch-overlap gate (skipped below 2 CPUs): the double-buffered
      prefetching stream beats the synchronous stream's wall-clock, and
      stays bit-identical with it;
    - process-runner pins (always enforced): packed state + prefetching
      stream through the process runner matches sequential dense at one
      worker and the simulated runner at ``--n-workers``, with zero
      leaked shared-memory segments.

    Returns True when every applicable gate passes.
    """
    cpus = usable_cpus()
    repeats = 1 if smoke else args.repeats
    reduction_gate = STORAGE_REDUCTION_GATE
    prefetch_gate = PREFETCH_SMOKE_GATE if smoke else PREFETCH_GATE

    with tempfile.TemporaryDirectory(prefix="bench_ooc_") as tmp:
        path = os.path.join(tmp, "rmat_external.bin")
        n, m = rmat_edge_file(
            path, scale, edge_factor=args.edge_factor, seed=args.seed
        )
        file_bytes = os.path.getsize(path)
        print(
            f"  external R-MAT scale {scale}: |V|={n:,} |E|={m:,} "
            f"({file_bytes:,} bytes on disk, never materialized)"
        )
        sync_stream = FileEdgeStream(path, n_vertices=n)
        prefetch_stream = FileEdgeStream(path, n_vertices=n, prefetch=True)

        dense = run_config(
            lambda: TwoPhasePartitioner(backend=DEFAULT_BACKEND),
            sync_stream, args.k, args.alpha, repeats,
        )
        packed = run_config(
            lambda: TwoPhasePartitioner(
                backend=DEFAULT_BACKEND, packed_state=True
            ),
            sync_stream, args.k, args.alpha, repeats,
        )
        assert_bit_exact(
            dense["result"], packed["result"],
            "out-of-core: packed state vs dense state (file stream)",
        )
        dense_bytes = dense["result"].state.nbytes()
        packed_bytes = packed["result"].state.nbytes()
        reduction = dense_bytes / packed_bytes if packed_bytes else 0.0
        reduction_ok = reduction >= reduction_gate
        print(
            f"  packed replica state: {dense_bytes:,} dense bytes -> "
            f"{packed_bytes:,} packed bytes ({reduction:.2f}x, gate "
            f"{reduction_gate}x: {'pass' if reduction_ok else 'FAIL'})"
        )

        prefetched = run_config(
            lambda: TwoPhasePartitioner(
                backend=DEFAULT_BACKEND, packed_state=True
            ),
            prefetch_stream, args.k, args.alpha, repeats,
        )
        assert_bit_exact(
            packed["result"], prefetched["result"],
            "out-of-core: prefetching stream vs synchronous stream",
        )
        sync_s = packed["row"]["total_seconds"]
        prefetch_s = prefetched["row"]["total_seconds"]
        overlap = sync_s / prefetch_s if prefetch_s > 0 else 0.0
        prefetch_enforced = cpus >= 2
        prefetch_ok = overlap >= prefetch_gate if prefetch_enforced else None
        state = (
            "pass" if prefetch_ok
            else ("SKIPPED" if prefetch_ok is None else "FAIL")
        )
        print(
            f"  prefetching stream: {sync_s:.3f}s sync -> {prefetch_s:.3f}s "
            f"prefetch ({overlap:.2f}x, gate {prefetch_gate}x: {state}, "
            f"{cpus} cpus)"
        )

        def make_parallel(n_workers, runner):
            return ParallelTwoPhase(
                n_workers=n_workers,
                sync_interval=args.sync_interval,
                backend=DEFAULT_BACKEND,
                runner=runner,
                packed_state=True,
            )

        single = make_parallel(1, "process").partition(
            prefetch_stream, args.k, alpha=args.alpha
        )
        assert_bit_exact(
            dense["result"], single,
            "out-of-core: ProcessRunner(n_workers=1, packed, prefetch) "
            "vs sequential dense",
        )
        simulated = make_parallel(args.n_workers, "simulated").partition(
            sync_stream, args.k, alpha=args.alpha
        )
        process = make_parallel(args.n_workers, "process").partition(
            prefetch_stream, args.k, alpha=args.alpha
        )
        assert_bit_exact(
            simulated, process,
            f"out-of-core: ProcessRunner vs SimulatedRunner at "
            f"{args.n_workers} workers (packed, prefetch)",
        )
        leaked = sorted(live_shared_segments())
        if leaked:
            raise SystemExit(f"leaked shared-memory segments: {leaked}")
        print(
            "  packed state + prefetching stream through the process "
            "runner is bit-exact with sequential dense and with the "
            "simulated runner; no segment leaks"
        )

    payload = {
        "benchmark": "out-of-core tier (packed replica state, "
        "external-memory R-MAT, prefetching file streams)",
        "graph": {
            "generator": "rmat-external",
            "scale": scale,
            "edge_factor": args.edge_factor,
            "seed": args.seed,
            "n_vertices": n,
            "n_edges": m,
            "file_bytes": file_bytes,
        },
        "k": args.k,
        "alpha": args.alpha,
        "smoke": smoke,
        "repeats": repeats,
        "n_workers": args.n_workers,
        "sync_interval": args.sync_interval,
        "usable_cpus": cpus,
        "backend": DEFAULT_BACKEND,
        "state_bytes": {
            "dense": dense_bytes,
            "packed": packed_bytes,
            "reduction_factor": round(reduction, 2),
            "gate": {
                "threshold": reduction_gate,
                "reduction": round(reduction, 2),
                "enforced": True,
                "pass": reduction_ok,
                "skipped_reason": None,
            },
        },
        "prefetch": {
            "sync_seconds": round(sync_s, 4),
            "prefetch_seconds": round(prefetch_s, 4),
            "overlap_gain": round(overlap, 3),
            "gate": {
                "threshold": prefetch_gate,
                "speedup": round(overlap, 3),
                "enforced": prefetch_enforced,
                "pass": prefetch_ok,
                "skipped_reason": (
                    None
                    if prefetch_enforced
                    else f"{cpus} usable CPU(s): the reader thread has "
                    "nothing to overlap with on a single-CPU host"
                ),
            },
        },
        "bit_exact": {
            "packed_vs_dense": True,
            "prefetch_vs_sync": True,
            "process_single_vs_sequential_dense": True,
            "process_vs_simulated": True,
        },
        "leaked_segments": 0,
    }
    with open(out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")
    print(f"  wrote {out}")
    return reduction_ok and prefetch_ok is not False


def run_serving_section(
    args, graph, sequential_result, smoke: bool, out: str
) -> bool:
    """The partition-serving tier -> ``BENCH_serving.json``.

    Persists the main R-MAT run as a :class:`PartitionStore`, reopens it
    memory-mapped, and drives a :class:`LookupService` with a **seeded
    closed-loop load generator** (next query issued when the previous
    answer lands): 90% of vertex queries hit a hot set — the skew the
    LRU cache exists for — and 20% of edge queries miss.  Records
    lookups/s plus p50/p99 latency for the scalar path and lookups/s for
    the batched-numpy path.

    Gates:

    - bit-exactness (always enforced): every sampled lookup served off
      the mmap-reopened store equals the answer derived directly from
      the in-memory :class:`PartitionResult` (replica rows, routing,
      edge ownership including misses), and the store's CRC-32 sweep
      passes;
    - batched >= ``SERVING_BATCH_GATE``x scalar lookups/s (always
      enforced: a same-host ratio);
    - absolute QPS floors on both paths, enforced only on hosts with
      >= 2 usable CPUs (recorded-but-skipped elsewhere, like the
      parallel wall-clock gates).

    Returns True when every applicable gate passes.
    """
    from repro.serving import LookupService, PartitionStore

    cpus = usable_cpus()
    batch_gate = SERVING_BATCH_SMOKE_GATE if smoke else SERVING_BATCH_GATE
    scalar_floor = (
        SERVING_SCALAR_QPS_SMOKE_GATE if smoke else SERVING_SCALAR_QPS_GATE
    )
    batched_floor = (
        SERVING_BATCHED_QPS_SMOKE_GATE if smoke else SERVING_BATCHED_QPS_GATE
    )
    n_scalar = 5_000 if smoke else 50_000
    n_batched = 100_000 if smoke else 1_000_000
    batch_size = 4096
    rng = np.random.default_rng(args.seed)

    with tempfile.TemporaryDirectory(prefix="bench_serving_") as tmp:
        path = os.path.join(tmp, "store")
        t0 = time.perf_counter()
        PartitionStore.write(path, sequential_result, graph.edges)
        write_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        store = PartitionStore.open(path)
        open_s = time.perf_counter() - t0
        store.verify()
        svc = LookupService(store, cache_size=4096)

        # -- seeded closed-loop load ----------------------------------
        n = graph.n_vertices
        hot = rng.integers(0, n, size=min(1024, n))
        hot_mask = rng.random(n_scalar) < 0.9
        vertex_queries = np.where(
            hot_mask,
            hot[rng.integers(0, hot.size, size=n_scalar)],
            rng.integers(0, n, size=n_scalar),
        ).astype(np.int64)
        edge_idx = rng.integers(0, graph.n_edges, size=n_scalar)
        edge_queries = graph.edges[edge_idx].astype(np.int64)
        # 20% misses: vertex ids above |V| never carry an edge.
        miss = rng.random(n_scalar) < 0.2
        edge_queries[miss, 0] = n + rng.integers(1, 1000, size=int(miss.sum()))

        latencies = np.empty(n_scalar, dtype=np.float64)
        for i, vid in enumerate(vertex_queries.tolist()):
            t = time.perf_counter_ns()
            svc.vertex_partitions(vid)
            latencies[i] = time.perf_counter_ns() - t
        scalar_s = float(latencies.sum()) * 1e-9
        scalar_qps = n_scalar / scalar_s if scalar_s > 0 else 0.0
        p50_us = float(np.percentile(latencies, 50)) / 1e3
        p99_us = float(np.percentile(latencies, 99)) / 1e3
        cache = svc.cache_info()

        t0 = time.perf_counter()
        for i, (u, v) in enumerate(edge_queries.tolist()):
            svc.edge_partition(u, v)
        edge_scalar_s = time.perf_counter() - t0
        edge_scalar_qps = (
            n_scalar / edge_scalar_s if edge_scalar_s > 0 else 0.0
        )

        # Batched path: same closed loop, one vectorized call per batch.
        batched_ids = np.where(
            rng.random(n_batched) < 0.9,
            hot[rng.integers(0, hot.size, size=n_batched)],
            rng.integers(0, n, size=n_batched),
        ).astype(np.int64)
        t0 = time.perf_counter()
        for start in range(0, n_batched, batch_size):
            svc.vertex_partitions(batched_ids[start : start + batch_size])
        batched_s = time.perf_counter() - t0
        batched_qps = n_batched / batched_s if batched_s > 0 else 0.0

        # -- bit-exactness against the in-memory result ---------------
        dense = np.asarray(sequential_result.state.replicas, dtype=bool)
        sizes = np.asarray(sequential_result.state.sizes, dtype=np.int64)
        sample = vertex_queries[:2048]
        rows = dense[sample]
        load = np.where(rows, sizes[np.newaxis, :], np.inf)
        expect = np.argmin(load, axis=1).astype(np.int64)
        expect[~rows.any(axis=1)] = -1
        got = svc.vertex_partitions(sample)
        got_scalar = np.array(
            [svc.vertex_partitions(int(v)) for v in sample[:256]]
        )
        keys = (
            graph.edges[:, 0].astype(np.uint64) << np.uint64(32)
        ) | graph.edges[:, 1].astype(np.uint64)
        order = np.argsort(keys, kind="stable")
        qk = (
            edge_queries[:, 0].astype(np.uint64) << np.uint64(32)
        ) | edge_queries[:, 1].astype(np.uint64)
        pos = np.searchsorted(keys[order], qk, side="left")
        pos_c = np.minimum(pos, graph.n_edges - 1)
        found = (pos < graph.n_edges) & (keys[order][pos_c] == qk)
        expect_edge = np.full(n_scalar, -1, dtype=np.int64)
        expect_edge[found] = sequential_result.assignments[
            order[pos[found]]
        ]
        got_edge = svc.edge_partition(edge_queries[:, 0], edge_queries[:, 1])
        if not (
            np.array_equal(got, expect)
            and np.array_equal(got_scalar, expect[:256])
            and np.array_equal(got_edge, expect_edge)
        ):
            raise SystemExit(
                "serving: mmap-reopened store diverges from the "
                "in-memory PartitionResult"
            )
        print(
            "  serving store is bit-exact with the in-memory result "
            "(vertex routing scalar+batched, edge ownership incl. "
            "misses); checksums OK"
        )

    batch_speedup = batched_qps / scalar_qps if scalar_qps > 0 else 0.0
    batch_ok = batch_speedup >= batch_gate
    qps_enforced = cpus >= 2
    scalar_ok = scalar_qps >= scalar_floor if qps_enforced else None
    batched_ok = batched_qps >= batched_floor if qps_enforced else None
    skip_reason = (
        None
        if qps_enforced
        else f"{cpus} usable CPU(s): absolute lookup-throughput floors "
        "measure scheduler contention on this host"
    )

    section = {
        "benchmark": "partition-serving lookups (mmap store + "
        "LookupService, seeded closed-loop load)",
        "graph": {
            "generator": "rmat",
            "n_vertices": graph.n_vertices,
            "n_edges": graph.n_edges,
        },
        "k": args.k,
        "alpha": args.alpha,
        "smoke": smoke,
        "seed": args.seed,
        "usable_cpus": cpus,
        "store": {
            "bytes": store.nbytes(),
            "write_seconds": round(write_s, 4),
            "open_seconds": round(open_s, 6),
            "checksums_ok": True,
        },
        "load": {
            "scalar_queries": n_scalar,
            "batched_queries": n_batched,
            "batch_size": batch_size,
            "hot_set": int(hot.size),
            "hot_fraction": 0.9,
            "edge_miss_fraction": 0.2,
        },
        "scalar": {
            "lookups_per_s": round(scalar_qps),
            "p50_us": round(p50_us, 2),
            "p99_us": round(p99_us, 2),
            "cache": cache,
        },
        "edge_scalar": {"lookups_per_s": round(edge_scalar_qps)},
        "batched": {"lookups_per_s": round(batched_qps)},
        "bit_exact_with_result": True,
        "gates": {
            "batched_vs_scalar": {
                "threshold": batch_gate,
                "speedup": round(batch_speedup, 1),
                "enforced": True,
                "pass": batch_ok,
                "skipped_reason": None,
            },
            "scalar_qps_floor": {
                "threshold": scalar_floor,
                "speedup": round(scalar_qps),
                "enforced": qps_enforced,
                "pass": scalar_ok,
                "skipped_reason": skip_reason,
            },
            "batched_qps_floor": {
                "threshold": batched_floor,
                "speedup": round(batched_qps),
                "enforced": qps_enforced,
                "pass": batched_ok,
                "skipped_reason": skip_reason,
            },
        },
    }
    state = "pass" if batch_ok else "FAIL"
    print(
        f"  serving: {scalar_qps:,.0f} scalar lookups/s "
        f"(p50 {p50_us:.1f}us, p99 {p99_us:.1f}us, "
        f"{cache['hits']}/{cache['hits'] + cache['misses']} cache hits) -> "
        f"{batched_qps:,.0f} batched ({batch_speedup:.0f}x, gate "
        f"{batch_gate}x: {state}); edge {edge_scalar_qps:,.0f}/s; "
        f"QPS floors {'enforced' if qps_enforced else 'SKIPPED'} "
        f"({cpus} cpus)"
    )
    payload = {"serving": section}
    with open(out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")
    print(f"  wrote {out}")
    return (
        batch_ok and scalar_ok is not False and batched_ok is not False
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", type=int, default=16, help="R-MAT scale (2**scale vertices)"
    )
    parser.add_argument(
        "--edge-factor", type=int, default=16, help="edges per vertex"
    )
    parser.add_argument("--k", type=int, default=32)
    parser.add_argument("--alpha", type=float, default=1.05)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--repeats", type=int, default=3, help="runs per backend (best kept)"
    )
    parser.add_argument("--n-workers", type=int, default=4)
    parser.add_argument("--sync-interval", type=int, default=65536)
    parser.add_argument("--out", default=None)
    parser.add_argument(
        "--parallel-out",
        default=None,
        help="output path of the parallel wall-clock section "
        "(default BENCH_parallel.json, or BENCH_parallel_smoke.json "
        "with --smoke)",
    )
    parser.add_argument(
        "--storage-out",
        default=None,
        help="output path of the out-of-core section "
        "(default BENCH_storage.json, or BENCH_storage_smoke.json "
        "with --smoke)",
    )
    parser.add_argument(
        "--serving-out",
        default=None,
        help="output path of the partition-serving section "
        "(default BENCH_serving.json, or BENCH_serving_smoke.json "
        "with --smoke)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"small-scale gate check (scale {SMOKE_SCALE}, 1 repeat, "
        "relaxed speedup thresholds)",
    )
    parser.add_argument(
        "--record-only",
        action="store_true",
        help="record every gate outcome in the BENCH files but exit 0 "
        "even when a *speedup threshold* misses (correctness gates — "
        "cross-backend bit-exactness, runner equality, segment leaks — "
        "still fail hard).  For trend-tracking runs (the nightly "
        "workflow) on hosts whose throughput is not under our control.  "
        "The BENCH_*.json snapshots at the repo root are committed "
        "artifacts: regenerate and commit them after kernel/runner "
        "changes so the recorded trend stays authoritative.",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        scale = min(args.scale, SMOKE_SCALE)
        repeats = 1
        gates = SMOKE_GATES
        out = args.out or "BENCH_kernels_smoke.json"
        parallel_out = args.parallel_out or "BENCH_parallel_smoke.json"
        storage_out = args.storage_out or "BENCH_storage_smoke.json"
        serving_out = args.serving_out or "BENCH_serving_smoke.json"
    else:
        scale = args.scale
        repeats = args.repeats
        gates = FULL_GATES
        out = args.out or "BENCH_kernels.json"
        parallel_out = args.parallel_out or "BENCH_parallel.json"
        storage_out = args.storage_out or "BENCH_storage.json"
        serving_out = args.serving_out or "BENCH_serving.json"

    graph = rmat_graph(scale, edge_factor=args.edge_factor, seed=args.seed)
    stream = InMemoryEdgeStream(graph)
    print(
        f"R-MAT scale {scale}: |V|={graph.n_vertices:,} "
        f"|E|={graph.n_edges:,}, k={args.k}, alpha={args.alpha}"
        + (" [smoke]" if args.smoke else "")
    )

    configs = {
        "2psl": lambda backend: TwoPhasePartitioner(backend=backend),
        "2pshdrf": lambda backend: TwoPhasePartitioner(
            mode="hdrf", backend=backend
        ),
        "parallel": lambda backend: ParallelTwoPhase(
            n_workers=args.n_workers,
            sync_interval=args.sync_interval,
            backend=backend,
        ),
    }

    payload_configs = {}
    results = {}
    for name, factory in configs.items():
        runs = {}
        for backend in available_backends():
            runs[backend] = run_config(
                lambda backend=backend: factory(backend),
                stream,
                args.k,
                args.alpha,
                repeats,
            )
            row = runs[backend]["row"]
            print(
                f"  {name:>9}/{backend:<7}: {row['total_seconds']:.2f}s total "
                f"({row['total_edges_per_s']:,} edges/s), phases: "
                + ", ".join(
                    f"{k}={v:.3f}s" for k, v in row["phase_seconds"].items()
                )
            )
        # Cross-backend equality: the kernel contract, enforced per run.
        reference = runs["python"]["result"]
        for backend, run in runs.items():
            assert_bit_exact(
                reference, run["result"], f"{name}: backend {backend!r}"
            )
        ref_phases = runs["python"]["row"]["phase_seconds"]
        speedups = {}
        for backend in available_backends():
            if backend == "python":
                continue
            rows = runs[backend]["row"]["phase_seconds"]
            speedups[backend] = {
                phase: round(ref_phases[phase] / rows[phase], 2)
                if rows[phase] > 0
                else None
                for phase in ref_phases
            }
            speedups[backend]["total"] = round(
                runs["python"]["row"]["total_seconds"]
                / runs[backend]["row"]["total_seconds"],
                2,
            )
        results[name] = runs
        payload_configs[name] = {
            "backends": {b: run["row"] for b, run in runs.items()},
            "speedup_vs_python": speedups,
        }
    print("  all pipelines produced bit-identical results across backends")

    # Differential gate: the kernel-routed parallel path with one worker
    # must be bit-exact with the sequential pipeline (any sync interval).
    single = ParallelTwoPhase(
        n_workers=1,
        sync_interval=args.sync_interval,
        backend=DEFAULT_BACKEND,
    ).partition(stream, args.k, alpha=args.alpha)
    assert_bit_exact(
        results["2psl"][DEFAULT_BACKEND]["result"],
        single,
        "ParallelTwoPhase(n_workers=1) vs sequential 2PS-L",
    )
    print("  parallel(n_workers=1) is bit-exact with sequential 2PS-L")

    gate_rows = {}
    meets = True
    for name, phases in gates.items():
        config_speedups = payload_configs[name]["speedup_vs_python"].get(
            DEFAULT_BACKEND, {}
        )
        for phase, threshold in phases.items():
            speedup = config_speedups.get(phase) or 0.0
            passed = speedup >= threshold
            meets = meets and passed
            gate_rows[f"{name}.{phase}"] = {
                "threshold": threshold,
                "speedup": speedup,
                "pass": passed,
            }

    numba_section, numba_ok = run_numba_section(args, scale, args.smoke)
    hdrf_section, hdrf_ok = run_hdrf_baseline_section(
        args, graph, stream, args.smoke
    )
    tuning_section, tuning_ok = run_tuning_section(args, stream, args.smoke)

    payload = {
        "benchmark": "kernel-backend throughput (2PS-L / 2PS-HDRF / parallel)",
        "graph": {
            "generator": "rmat",
            "scale": scale,
            "edge_factor": args.edge_factor,
            "seed": args.seed,
            "n_vertices": graph.n_vertices,
            "n_edges": graph.n_edges,
        },
        "k": args.k,
        "alpha": args.alpha,
        "repeats": repeats,
        "smoke": args.smoke,
        "n_workers": args.n_workers,
        "sync_interval": args.sync_interval,
        "python_version": platform.python_version(),
        "numpy_version": np.__version__,
        "default_backend": DEFAULT_BACKEND,
        "configs": payload_configs,
        "gates": gate_rows,
        "numba": numba_section,
        "hdrf_baseline": hdrf_section,
        "tuning": tuning_section,
        "identical_assignments": True,
        "parallel_matches_sequential": True,
        "meets_gates": meets and numba_ok and hdrf_ok and tuning_ok,
    }
    with open(out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")
    print(f"  gates: {json.dumps(gate_rows)}")
    print(
        f"  wrote {out} "
        f"(meets_gates={meets and numba_ok and hdrf_ok and tuning_ok})"
    )

    parallel_ok = run_parallel_wallclock(
        stream,
        graph,
        args,
        results["2psl"][DEFAULT_BACKEND]["result"],
        args.smoke,
        parallel_out,
    )
    storage_ok = run_out_of_core_section(args, scale, args.smoke, storage_out)
    serving_ok = run_serving_section(
        args,
        graph,
        results["2psl"][DEFAULT_BACKEND]["result"],
        args.smoke,
        serving_out,
    )
    if args.record_only:
        # Correctness failures raised SystemExit long before this point;
        # anything left is a speedup-threshold miss, recorded in the
        # BENCH payloads for the trend line.
        return 0
    return (
        0
        if meets and numba_ok and hdrf_ok and tuning_ok
        and parallel_ok and storage_ok and serving_ok
        else 1
    )


if __name__ == "__main__":
    raise SystemExit(main())
