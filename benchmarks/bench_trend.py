"""Bench-trend differ: fresh BENCH_*.json vs the committed snapshots.

The ``BENCH_*.json`` files at the repo root are committed artifacts —
the authoritative per-PR performance snapshots.  The nightly workflow
regenerates them on a hosted runner and this tool diffs the fresh
payloads against the committed baselines (``git show HEAD:<file>``),
reporting the relative drift of every shared numeric leaf into
``BENCH_trend_report.json``.

Strictly **record-only**: hosted-runner throughput is not under our
control, so drift is data for the trend line, not a gate — the exit
status is always 0 (barring an unreadable working-tree payload, which
means the bench itself failed).  Structural changes (keys added or
removed by a code change) are listed, not flagged.

Usage::

    PYTHONPATH=src python benchmarks/bench_trend.py \
        [--files BENCH_kernels.json ...] [--out BENCH_trend_report.json] \
        [--threshold 0.25]

``--threshold`` only controls which leaves land in the report's
``notable`` list (relative drift above it); everything is recorded
under ``leaves`` regardless.
"""

from __future__ import annotations

import argparse
import json
import subprocess

#: Snapshots diffed by default: every committed BENCH payload that the
#: nightly full-bench run regenerates.
DEFAULT_FILES = (
    "BENCH_kernels.json",
    "BENCH_parallel.json",
    "BENCH_storage.json",
    "BENCH_serving.json",
)


def numeric_leaves(node, prefix="") -> dict:
    """Flatten a JSON tree to {dotted.path: float} over numeric leaves.

    Booleans are excluded (gate outcomes are structure, not magnitude);
    list elements are indexed into the path.
    """
    leaves: dict[str, float] = {}
    if isinstance(node, bool) or node is None:
        return leaves
    if isinstance(node, (int, float)):
        leaves[prefix or "."] = float(node)
        return leaves
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            leaves.update(numeric_leaves(value, path))
    elif isinstance(node, list):
        for i, value in enumerate(node):
            leaves.update(numeric_leaves(value, f"{prefix}[{i}]"))
    return leaves


def committed_payload(path: str, ref: str = "HEAD"):
    """The committed baseline of ``path`` at ``ref`` (None if absent)."""
    proc = subprocess.run(
        ["git", "show", f"{ref}:{path}"],
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        return None
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError:
        return None


def diff_file(path: str, ref: str, threshold: float) -> dict:
    """One file's drift record (see the module docstring)."""
    try:
        with open(path) as fh:
            fresh = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        return {"status": "unreadable", "error": str(exc)}
    baseline = committed_payload(path, ref)
    if baseline is None:
        return {"status": "no-baseline", "ref": ref}
    fresh_leaves = numeric_leaves(fresh)
    base_leaves = numeric_leaves(baseline)
    shared = sorted(set(fresh_leaves) & set(base_leaves))
    leaves = {}
    notable = []
    for key in shared:
        old, new = base_leaves[key], fresh_leaves[key]
        drift = (new - old) / abs(old) if old else (0.0 if not new else None)
        leaves[key] = {
            "baseline": old,
            "fresh": new,
            "relative_drift": (
                round(drift, 4) if drift is not None else None
            ),
        }
        if drift is None or abs(drift) > threshold:
            notable.append(key)
    return {
        "status": "ok",
        "ref": ref,
        "compared_leaves": len(shared),
        "added_leaves": sorted(set(fresh_leaves) - set(base_leaves)),
        "removed_leaves": sorted(set(base_leaves) - set(fresh_leaves)),
        "notable": notable,
        "leaves": leaves,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--files", nargs="+", default=list(DEFAULT_FILES),
        help="BENCH payloads to diff (working tree vs committed)",
    )
    parser.add_argument(
        "--ref", default="HEAD",
        help="git ref of the committed baselines (default HEAD)",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.25,
        help="relative drift above which a leaf is listed as notable "
        "(record-only: never affects the exit status)",
    )
    parser.add_argument("--out", default="BENCH_trend_report.json")
    args = parser.parse_args(argv)

    report = {
        "tool": "bench_trend",
        "ref": args.ref,
        "threshold": args.threshold,
        "files": {
            path: diff_file(path, args.ref, args.threshold)
            for path in args.files
        },
    }
    unreadable = [
        path
        for path, entry in report["files"].items()
        if entry["status"] == "unreadable"
    ]
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")
    for path, entry in report["files"].items():
        if entry["status"] != "ok":
            print(f"  {path}: {entry['status']}")
            continue
        print(
            f"  {path}: {entry['compared_leaves']} leaves compared, "
            f"{len(entry['notable'])} drifted past "
            f"{args.threshold:.0%}, +{len(entry['added_leaves'])}/"
            f"-{len(entry['removed_leaves'])} structural"
        )
    print(f"  wrote {args.out} (record-only)")
    # Record-only by contract: drift never fails the run.  An unreadable
    # working-tree payload means the bench run itself broke — surface it.
    return 1 if unreadable else 0


if __name__ == "__main__":
    raise SystemExit(main())
