"""Ablation benches for the design choices DESIGN.md calls out.

These are not paper figures; they justify the algorithmic choices:

1. the **volume cap** is essential — uncapped clustering (pure Hollocou)
   snowballs and loses partitioning quality;
2. **true degrees** (the paper's extension) beat partial-degree clustering
   for the partitioning use case;
3. **pre-partitioning** (skipping the scoring pass for intra-cluster
   edges) does not cost quality;
4. the **Graham mapping** beats hashing clusters to partitions;
5. SNE's cross-drain **seed hints** (our coherence fix) matter.
"""

import numpy as np

from benchmarks.conftest import BENCH_SCALE
from repro.baselines import StreamingNE
from repro.core import TwoPhasePartitioner, graham_schedule
from repro.core.clustering import StreamingClustering, default_volume_cap
from repro.graph.datasets import load_dataset
from repro.partitioning.hashutil import hash_to_partition
from repro.streaming import InMemoryEdgeStream


def test_bench_volume_cap_ablation(benchmark):
    """Capped clustering must out-partition uncapped (Hollocou) clustering."""

    def sweep():
        graph = load_dataset("IT", scale=BENCH_SCALE)
        k = 32
        out = {}
        for label, factor in (("tuned", 0.5), ("loose", 8.0)):
            out[label] = TwoPhasePartitioner(volume_cap_factor=factor).partition(
                graph, k
            )
        return out

    cells = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert (
        cells["tuned"].replication_factor
        <= cells["loose"].replication_factor * 1.05
    )


def test_bench_true_vs_partial_degrees(benchmark):
    """The paper's true-degree extension yields bounded, usable clusters."""

    def sweep():
        graph = load_dataset("IT", scale=BENCH_SCALE)
        cap = default_volume_cap(graph.n_edges, 32)
        true = StreamingClustering(volume_cap=cap).run(
            InMemoryEdgeStream(graph), degrees=graph.degrees
        )
        partial = StreamingClustering(volume_cap=cap, use_true_degrees=False).run(
            InMemoryEdgeStream(graph), n_vertices=graph.n_vertices
        )
        return graph, true, partial

    graph, true, partial = benchmark.pedantic(sweep, rounds=1, iterations=1)

    def intra(result):
        v2c = result.v2c
        return (v2c[graph.edges[:, 0]] == v2c[graph.edges[:, 1]]).mean()

    # True-degree clustering recovers at least as much structure.
    assert intra(true) >= intra(partial) * 0.9
    # And its volume bookkeeping is exact (partial mode's is by design not).
    true.validate()


def test_bench_graham_vs_hashed_mapping(benchmark):
    """Graham's sorted-list mapping balances cluster volumes far better
    than hashing clusters to partitions."""

    def sweep():
        graph = load_dataset("UK", scale=BENCH_SCALE)
        k = 32
        cap = default_volume_cap(graph.n_edges, k)
        clustering = StreamingClustering(volume_cap=cap).run(
            InMemoryEdgeStream(graph), degrees=graph.degrees
        )
        _, graham_loads = graham_schedule(clustering.volumes, k)
        hashed = hash_to_partition(np.arange(clustering.n_clusters), k)
        hashed_loads = np.zeros(k, dtype=np.int64)
        np.add.at(hashed_loads, hashed, clustering.volumes)
        return graham_loads, hashed_loads

    graham_loads, hashed_loads = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert graham_loads.max() <= hashed_loads.max()
    # Graham is near-perfectly balanced on many mid-sized clusters.
    assert graham_loads.max() < 1.34 * graham_loads.mean() + 1


def test_bench_prepartitioning_not_harmful(benchmark):
    """Pre-partitioned edges (no scoring) do not degrade overall quality:
    2PS-L on a clusterable graph still beats its own scoring-only path on
    a structureless graph of the same size."""

    def sweep():
        web = load_dataset("GSH", scale=BENCH_SCALE)
        result = TwoPhasePartitioner().partition(web, 32)
        return web, result

    web, result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    pre_frac = result.extras["prepartitioned_edges"] / web.n_edges
    assert pre_frac > 0.5
    assert result.replication_factor < 5.0  # far below hashing levels


def test_bench_sne_seed_hint(benchmark):
    """SNE with expansion coherence (seed hints) on a sorted stream must
    land well below hashing-quality territory."""

    def sweep():
        graph = load_dataset("OK", scale=BENCH_SCALE)
        sne = StreamingNE().partition(graph, 32)
        from repro.baselines import DBH

        dbh = DBH().partition(graph, 32)
        return sne, dbh

    sne, dbh = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert sne.replication_factor < 0.75 * dbh.replication_factor
