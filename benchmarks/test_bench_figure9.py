"""Figure 9 bench: 2PS-HDRF vs 2PS-L.

Asserted (paper Figure 9 and Section V-D):

- quality: 2PS-HDRF's RF is at or below 2PS-L's (paper: up to 50 % lower);
- cost: roughly at parity at k=4, and an order of magnitude apart at
  k=128+ (paper: up to 12x at k=256).
"""

from benchmarks.conftest import BENCH_SCALE
from repro.core import TwoPhasePartitioner
from repro.graph.datasets import load_dataset


def _pair(dataset, k):
    graph = load_dataset(dataset, scale=BENCH_SCALE)
    linear = TwoPhasePartitioner(mode="linear").partition(graph, k)
    hdrf = TwoPhasePartitioner(mode="hdrf").partition(graph, k)
    return linear, hdrf


def test_bench_quality_improvement(benchmark):
    linear, hdrf = benchmark.pedantic(
        lambda: _pair("OK", 32), rounds=1, iterations=1
    )
    assert hdrf.replication_factor <= linear.replication_factor * 1.02
    assert hdrf.replication_factor >= linear.replication_factor * 0.4


def test_bench_cost_parity_at_small_k(benchmark):
    linear, hdrf = benchmark.pedantic(
        lambda: _pair("IT", 4), rounds=1, iterations=1
    )
    assert hdrf.model_seconds() < 3.0 * linear.model_seconds()


def test_bench_cost_gap_at_large_k(benchmark):
    linear, hdrf = benchmark.pedantic(
        lambda: _pair("OK", 128), rounds=1, iterations=1
    )
    assert hdrf.model_seconds() > 4.0 * linear.model_seconds()


def test_bench_score_eval_counts(benchmark):
    linear, hdrf = benchmark.pedantic(
        lambda: _pair("TW", 32), rounds=1, iterations=1
    )
    remaining = linear.extras["remaining_edges"]
    assert linear.cost.score_evaluations == 2 * remaining
    assert hdrf.cost.score_evaluations == 32 * hdrf.extras["remaining_edges"]
