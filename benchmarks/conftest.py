"""Shared helpers for the benchmark suite.

Each ``test_bench_*.py`` module regenerates one table/figure of the paper
at a reduced dataset scale and asserts the paper's *shape* claims (who
wins, by roughly what factor) inside the benchmarked tests, so that
``pytest benchmarks/ --benchmark-only`` both times the systems and checks
the reproduction.

``run_cached`` memoizes (partitioner, dataset, k, scale) cells so a cell
that several tests assert against is computed once per session.
"""

from __future__ import annotations

import gc
from functools import lru_cache

import pytest

from repro.experiments.common import make_partitioner
from repro.graph.datasets import load_dataset

#: Default dataset scale for benchmarks (kept modest: the full benchmark
#: suite should finish in a few minutes of pure Python).
BENCH_SCALE = 0.15


@lru_cache(maxsize=256)
def run_cached(name: str, dataset: str, k: int, scale: float = BENCH_SCALE):
    """Partition ``dataset`` at ``scale`` with partitioner ``name`` (cached)."""
    graph = load_dataset(dataset, scale=scale)
    return make_partitioner(name).partition(graph, k)


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


@pytest.fixture(autouse=True)
def _quiesce_gc():
    # The phase-breakdown tests compare single-round wall-clock sections
    # of ~10-50ms at smoke scale; a generation-2 cyclic-GC pass — whose
    # pause grows with every test module the surrounding session has
    # imported — landing inside one section flips those ratios.  Freeze
    # the session's live objects out of the collector for the duration
    # of each benchmark so its GC pauses only traverse what the bench
    # itself allocated.
    gc.collect()
    gc.freeze()
    try:
        yield
    finally:
        gc.unfreeze()
