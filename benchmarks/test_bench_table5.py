"""Table V bench: partitioning time from page cache vs SSD vs HDD.

Asserted (paper Table V): total time (compute + I/O) is ordered
page-cache < SSD < HDD; the SSD penalty stays moderate while the HDD
penalty is large (paper: SSD +7-40 %, HDD +54-308 %).
"""

import os
import tempfile

from benchmarks.conftest import BENCH_SCALE
from repro.core import TwoPhasePartitioner
from repro.graph.datasets import load_dataset
from repro.graph.formats import write_binary_edge_list
from repro.storage import hdd_device, page_cache_device, ssd_device
from repro.streaming import FileEdgeStream

DEVICES = {
    "page-cache": page_cache_device,
    "ssd": ssd_device,
    "hdd": hdd_device,
}


def _run_all_devices(dataset):
    graph = load_dataset(dataset, scale=BENCH_SCALE)
    totals = {}
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "g.bin")
        write_binary_edge_list(graph, path)
        for name, factory in DEVICES.items():
            stream = FileEdgeStream(
                path, n_vertices=graph.n_vertices, device=factory()
            )
            result = TwoPhasePartitioner().partition(stream, 32)
            totals[name] = (
                result.model_seconds() + stream.stats.simulated_read_seconds
            )
    return totals


def test_bench_storage_ordering_social(benchmark):
    totals = benchmark.pedantic(
        lambda: _run_all_devices("OK"), rounds=1, iterations=1
    )
    assert totals["page-cache"] < totals["ssd"] < totals["hdd"]


def test_bench_storage_penalty_band(benchmark):
    totals = benchmark.pedantic(
        lambda: _run_all_devices("IT"), rounds=1, iterations=1
    )
    ssd_penalty = totals["ssd"] / totals["page-cache"] - 1.0
    hdd_penalty = totals["hdd"] / totals["page-cache"] - 1.0
    # Paper band: SSD +0.07..0.40, HDD +0.54..3.08 — allow margin.
    assert 0.02 < ssd_penalty < 0.6
    assert 0.3 < hdd_penalty < 4.0
    assert hdd_penalty > 3.0 * ssd_penalty
