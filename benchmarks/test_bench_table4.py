"""Table IV bench: end-to-end partitioning + distributed PageRank.

Asserted (the paper's key application claim): among {2PS-L, 2PS-HDRF,
HDRF, DBH}, the *total* of partitioning time plus PageRank time is lowest
for 2PS-L — neither the fastest partitioner (DBH, poor quality) nor the
best-quality ones (slow partitioning) win end-to-end.
"""

from benchmarks.conftest import BENCH_SCALE
from repro.experiments.common import make_partitioner
from repro.graph.datasets import DATASETS, load_dataset
from repro.processing import PageRank, PartitionedGraph, PregelEngine
from repro.processing.cost import ClusterSpec

SYSTEMS = ("2PS-L", "2PS-HDRF", "HDRF", "DBH")


def _end_to_end(dataset, k=32, iters=100):
    graph = load_dataset(dataset, scale=BENCH_SCALE)
    ratio = DATASETS[dataset].paper_edges / graph.n_edges
    engine = PregelEngine(ClusterSpec.paper_cluster().scaled(ratio))
    totals = {}
    for name in SYSTEMS:
        result = make_partitioner(name).partition(graph, k)
        pgraph = PartitionedGraph(graph.edges, result.assignments, k, graph.n_vertices)
        _, report = engine.run(pgraph, PageRank(), max_supersteps=iters)
        totals[name] = {
            "partition": result.model_seconds() * ratio,
            "pagerank": report.total_seconds,
            "total": result.model_seconds() * ratio + report.total_seconds,
            "rf": result.replication_factor,
        }
    return totals


def test_bench_end_to_end_ok(benchmark):
    totals = benchmark.pedantic(lambda: _end_to_end("OK"), rounds=1, iterations=1)
    winner = min(totals, key=lambda name: totals[name]["total"])
    assert winner == "2PS-L", {n: round(t["total"], 1) for n, t in totals.items()}
    # DBH partitions fastest but loses overall on quality.
    assert totals["DBH"]["partition"] < totals["2PS-L"]["partition"]
    assert totals["DBH"]["total"] > totals["2PS-L"]["total"]


def test_bench_end_to_end_wi(benchmark):
    totals = benchmark.pedantic(lambda: _end_to_end("WI"), rounds=1, iterations=1)
    winner = min(totals, key=lambda name: totals[name]["total"])
    assert winner == "2PS-L", {n: round(t["total"], 1) for n, t in totals.items()}
    # 2PS-HDRF buys better RF with more partitioning time (paper Sec. V-D).
    assert totals["2PS-HDRF"]["rf"] <= totals["2PS-L"]["rf"]
    assert totals["2PS-HDRF"]["partition"] > totals["2PS-L"]["partition"]


def test_bench_pagerank_time_tracks_rf(benchmark):
    totals = benchmark.pedantic(
        lambda: _end_to_end("OK", iters=50), rounds=1, iterations=1
    )
    # Higher replication factor => more mirror traffic => slower PageRank.
    assert totals["DBH"]["rf"] > totals["2PS-L"]["rf"]
    assert totals["DBH"]["pagerank"] > totals["2PS-L"]["pagerank"]
