"""Figures 7 & 8 bench: the re-streaming trade-off.

Asserted (paper Figures 7-8):

- re-streaming changes the replication factor only modestly (the paper
  measures within ~3.5 % improvement; we allow a +/-10 % band at bench
  scale);
- 8 clustering passes do NOT cost 8x: the total operation count roughly
  doubles, because clustering is only a fraction of the pipeline.
"""

from benchmarks.conftest import BENCH_SCALE
from repro.core import TwoPhasePartitioner
from repro.graph.datasets import load_dataset

PASSES = (1, 2, 4, 8)


def _sweep(dataset):
    graph = load_dataset(dataset, scale=BENCH_SCALE)
    return {
        p: TwoPhasePartitioner(clustering_passes=p).partition(graph, 32)
        for p in PASSES
    }


def test_bench_restreaming_rf(benchmark):
    results = benchmark.pedantic(lambda: _sweep("IT"), rounds=1, iterations=1)
    base = results[1].replication_factor
    for p in PASSES:
        assert 0.9 * base <= results[p].replication_factor <= 1.1 * base


def test_bench_restreaming_runtime(benchmark):
    results = benchmark.pedantic(lambda: _sweep("OK"), rounds=1, iterations=1)
    base = results[1].model_seconds()
    eight = results[8].model_seconds()
    assert eight > base  # extra passes are not free
    assert eight < 3.5 * base  # ... but far below 8x (paper: ~2x)


def test_bench_restreaming_passes_accounted(benchmark):
    results = benchmark.pedantic(lambda: _sweep("FR"), rounds=1, iterations=1)
    # Streamed-edge counts grow exactly with the added clustering passes:
    # (3 + passes) full passes of the pipeline.
    m = results[1].n_edges
    for p in PASSES:
        assert results[p].cost.edges_streamed == (3 + p) * m
