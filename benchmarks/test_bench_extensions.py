"""Benches for the Section VI/VII extensions and the Section I motivation.

Shape claims:

- **motivation**: greedy vertex partitioners keep vertex balance but blow
  up edge balance on skewed graphs; edge partitioners hold alpha <= 1.05;
- **dynamic**: incremental updates keep RF within a band of re-batching;
- **staleness**: coarser sync = fewer barriers, bounded quality loss;
- **hypergraphs**: 2PS-L-H scores O(1) per hyperedge vs MinMax's O(k)
  while staying well below hashing's replication factor.
"""

from repro.experiments import dynamic, hypergraphs, motivation, staleness


def test_bench_motivation(benchmark):
    result = benchmark.pedantic(
        lambda: motivation.run(scale=0.1, k=16), rounds=1, iterations=1
    )
    ours = result.rows_for(partitioner="2PS-L")[0]
    assert ours["edge_alpha"] <= 1.06
    for row in result.rows_for(family="vertex"):
        if row["partitioner"] in ("LDG", "FENNEL"):
            assert row["edge_alpha"] > 1.3  # hub concentration
    hash_v = result.rows_for(partitioner="Hash-V")[0]
    assert ours["rf"] < hash_v["rf"]


def test_bench_dynamic_updates(benchmark):
    result = benchmark.pedantic(
        lambda: dynamic.run(scale=0.1, churn_steps=(0.0, 0.1, 0.3)),
        rounds=1,
        iterations=1,
    )
    for row in result.rows:
        assert row["rf_gap"] < 1.4
    assert result.rows[-1]["incremental_rf"] >= result.rows[0]["incremental_rf"]


def test_bench_staleness(benchmark):
    result = benchmark.pedantic(
        lambda: staleness.run(scale=0.1, intervals=(128, 2048, 16384)),
        rounds=1,
        iterations=1,
    )
    seq = result.rows[0]
    sharded = result.rows[1:]
    assert all(row["rf"] < seq["rf"] * 1.4 for row in sharded)
    syncs = [row["syncs"] for row in sharded]
    assert syncs == sorted(syncs, reverse=True)


def test_bench_hypergraph_partitioning(benchmark):
    result = benchmark.pedantic(
        lambda: hypergraphs.run(n_hyperedges=3000, ks=(8, 32)),
        rounds=1,
        iterations=1,
    )
    for k in (8, 32):
        two = result.rows_for(partitioner="2PS-L-H", k=k)[0]
        mm = result.rows_for(partitioner="MinMax", k=k)[0]
        hh = result.rows_for(partitioner="HashH", k=k)[0]
        assert two["evals_per_hyperedge"] <= 2.0
        assert mm["evals_per_hyperedge"] == k
        assert two["rf"] < hh["rf"]
        assert two["alpha"] <= 1.06
