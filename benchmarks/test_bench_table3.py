"""Table III bench: dataset stand-in generation.

Times the generators and asserts the structural contract of the stand-ins:
every paper dataset is covered, web graphs are clusterable, social graphs
are heavy-tailed, and the streams are source-sorted like real dumps.
"""

import numpy as np

from repro.graph.datasets import DATASETS, load_dataset


def test_bench_generate_all_standins(benchmark):
    def generate():
        load_dataset.cache_clear()
        return {name: load_dataset(name, scale=0.1) for name in DATASETS}

    graphs = benchmark.pedantic(generate, rounds=1, iterations=1)
    assert set(graphs) == set(DATASETS)
    for name, graph in graphs.items():
        spec = DATASETS[name]
        assert graph.n_edges > 0
        assert spec.paper_edges > graph.n_edges
        # Realistic dump order: sorted by source vertex.
        assert (np.diff(graph.edges[:, 0]) >= 0).all()
        if spec.kind == "web":
            comm = np.arange(graph.n_vertices) // 24
            intra = (comm[graph.edges[:, 0]] == comm[graph.edges[:, 1]]).mean()
            assert intra > 0.7, f"{name} lost its community structure"
        else:
            deg = graph.degrees
            assert deg.max() > 8 * deg.mean(), f"{name} lost its degree skew"


def test_bench_generation_is_deterministic(benchmark):
    def generate_twice():
        load_dataset.cache_clear()
        a = load_dataset("GSH", scale=0.1)
        load_dataset.cache_clear()
        b = load_dataset("GSH", scale=0.1)
        return a, b

    a, b = benchmark.pedantic(generate_twice, rounds=1, iterations=1)
    assert np.array_equal(a.edges, b.edges)
