"""Figure 2 bench: 2PS-L vs HDRF vs DBH on OK across k.

Shape claims asserted (paper Figure 2):

- run-time: 2PS-L's operation count is flat in k while HDRF's grows
  ~linearly; DBH is the fastest; at large k 2PS-L is far cheaper than HDRF;
- quality: 2PS-L and HDRF both far below DBH; DBH violates the balance
  constraint (measured alpha > 1.05) while the stateful systems hold it.
"""

from benchmarks.conftest import BENCH_SCALE, run_cached
from repro.experiments.common import make_partitioner
from repro.graph.datasets import load_dataset

KS = (4, 32, 128)


def _partition(name, k):
    graph = load_dataset("OK", scale=BENCH_SCALE)
    return make_partitioner(name).partition(graph, k)


def test_bench_2psl_k32(benchmark):
    result = benchmark.pedantic(lambda: _partition("2PS-L", 32), rounds=3, iterations=1)
    assert result.measured_alpha <= 1.06
    # Linear-time claim: <= 2 score evaluations per edge, any k.
    assert result.cost.score_evaluations <= 2 * result.n_edges


def test_bench_hdrf_k32(benchmark):
    result = benchmark.pedantic(lambda: _partition("HDRF", 32), rounds=3, iterations=1)
    assert result.cost.score_evaluations == 32 * result.n_edges
    assert result.measured_alpha <= 1.06


def test_bench_dbh_k32(benchmark):
    result = benchmark.pedantic(lambda: _partition("DBH", 32), rounds=3, iterations=1)
    assert result.cost.score_evaluations == 0


def test_bench_runtime_shape_across_k(benchmark):
    """2PS-L flat in k; HDRF ~linear in k; DBH fastest of all."""

    def sweep():
        return {
            (name, k): run_cached(name, "OK", k)
            for name in ("2PS-L", "HDRF", "DBH")
            for k in KS
        }

    cells = benchmark.pedantic(sweep, rounds=1, iterations=1)
    t = {key: cell.model_seconds() for key, cell in cells.items()}
    # 2PS-L: growing k 32x changes the model time by < 2x.
    assert t[("2PS-L", 128)] < 2.0 * t[("2PS-L", 4)]
    # HDRF: growing k 32x grows the model time by > 10x.
    assert t[("HDRF", 128)] > 10.0 * t[("HDRF", 4)]
    # At large k the gap is wide (paper: minutes vs seconds).
    assert t[("HDRF", 128)] > 5.0 * t[("2PS-L", 128)]
    # Only DBH is faster than 2PS-L.
    for k in KS:
        assert t[("DBH", k)] < t[("2PS-L", k)] < t[("HDRF", 128)]


def test_bench_quality_shape(benchmark):
    """RF: stateful systems beat DBH; DBH cannot hold the balance cap."""

    def sweep():
        return {name: run_cached(name, "OK", 32) for name in ("2PS-L", "HDRF", "DBH")}

    cells = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert cells["2PS-L"].replication_factor < cells["DBH"].replication_factor
    assert cells["HDRF"].replication_factor < cells["DBH"].replication_factor
    assert cells["2PS-L"].measured_alpha <= 1.06
    assert cells["DBH"].measured_alpha > 1.05  # the paper's alpha annotation
