"""Figure 4 bench: the full performance matrix, reduced to its shape claims.

Asserted (paper Figure 4 and Section V-A):

- 2PS-L is the fastest *stateful* partitioner (only DBH is faster);
- on web graphs DBH's RF is a multiple of 2PS-L's (paper: up to 6.4x on
  GSH at k=256; we assert > 2x at bench scale);
- in-memory quality leaders (NE / HEP-100) reach an RF at or below the
  streaming systems, at higher memory cost;
- stateful streaming memory is O(|V| * k): it grows with k, while DBH's
  does not.
"""

from benchmarks.conftest import run_cached

STATEFUL = ("2PS-L", "HDRF", "SNE", "HEP-1", "HEP-10", "HEP-100", "NE", "DNE", "METIS")


def test_bench_web_graph_matrix(benchmark):
    def sweep():
        return {
            name: run_cached(name, "GSH", 32)
            for name in ("2PS-L", "HDRF", "DBH", "NE", "HEP-100")
        }

    cells = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rf = {name: cell.replication_factor for name, cell in cells.items()}
    # DBH far worse than 2PS-L on web graphs.
    assert rf["DBH"] > 2.0 * rf["2PS-L"]
    # 2PS-L beats plain stateful streaming on clusterable graphs.
    assert rf["2PS-L"] < rf["HDRF"]
    # In-memory quality leaders at or below 2PS-L's RF (modest tolerance).
    assert min(rf["NE"], rf["HEP-100"]) < rf["2PS-L"] * 1.2


def test_bench_fastest_stateful(benchmark):
    def sweep():
        return {name: run_cached(name, "TW", 32) for name in STATEFUL + ("DBH",)}

    cells = benchmark.pedantic(sweep, rounds=1, iterations=1)
    t = {name: cell.model_seconds() for name, cell in cells.items()}
    for name in STATEFUL:
        if name == "2PS-L":
            continue
        assert t["2PS-L"] <= t[name], f"{name} should not beat 2PS-L"
    assert t["DBH"] < t["2PS-L"]  # only hashing is faster


def test_bench_memory_shape(benchmark):
    def sweep():
        return {
            ("2PS-L", k): run_cached("2PS-L", "OK", k) for k in (4, 128)
        } | {
            ("DBH", k): run_cached("DBH", "OK", k) for k in (4, 128)
        } | {("NE", 32): run_cached("NE", "OK", 32)}

    cells = benchmark.pedantic(sweep, rounds=1, iterations=1)
    mem = {key: cell.state_bytes for key, cell in cells.items()}
    # Stateful streaming memory grows with k (replication matrix).
    assert mem[("2PS-L", 128)] > 2 * mem[("2PS-L", 4)]
    # DBH's degree array does not.
    assert mem[("DBH", 128)] == mem[("DBH", 4)]
    # In-memory partitioning pays for the materialized edge list.
    assert mem[("NE", 32)] > mem[("2PS-L", 4)]


def test_bench_k256_runtime_gap(benchmark):
    """At k=256 the 2PS-L vs HDRF gap is an order of magnitude (paper:
    12.3x on TW)."""

    def sweep():
        return {name: run_cached(name, "TW", 256) for name in ("2PS-L", "HDRF")}

    cells = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert (
        cells["HDRF"].model_seconds() > 8.0 * cells["2PS-L"].model_seconds()
    )
