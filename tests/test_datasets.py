"""Unit tests for the dataset stand-in registry."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.graph.datasets import DATASETS, dataset_table_rows, load_dataset


class TestRegistry:
    def test_all_paper_datasets_present(self):
        for name in ("OK", "IT", "TW", "FR", "UK", "GSH", "WDC", "WI"):
            assert name in DATASETS

    def test_kinds(self):
        assert DATASETS["OK"].kind == "social"
        assert DATASETS["IT"].kind == "web"
        assert DATASETS["WDC"].kind == "web"

    def test_paper_sizes_recorded(self):
        assert DATASETS["OK"].paper_edges == 117_000_000
        assert DATASETS["WDC"].paper_edges == 64_000_000_000

    def test_size_ordering_preserved_within_web_family(self):
        web = [DATASETS[n] for n in ("IT", "UK", "GSH", "WDC")]
        paper_order = sorted(web, key=lambda s: s.paper_edges)
        standin_order = sorted(web, key=lambda s: s.standin_edges)
        assert paper_order == standin_order


class TestLoadDataset:
    def test_unknown_name(self):
        with pytest.raises(DatasetError):
            load_dataset("NOPE")

    def test_bad_scale(self):
        with pytest.raises(DatasetError):
            load_dataset("OK", scale=0)

    def test_case_insensitive(self):
        a = load_dataset("ok", scale=0.02)
        b = load_dataset("OK", scale=0.02)
        assert a.n_edges == b.n_edges

    def test_deterministic(self):
        a = load_dataset("IT", scale=0.02)
        b = load_dataset("IT", scale=0.02)
        assert np.array_equal(a.edges, b.edges)

    def test_scale_changes_size(self):
        small = load_dataset("OK", scale=0.02)
        large = load_dataset("OK", scale=0.04)
        assert large.n_edges > small.n_edges

    def test_stream_is_source_sorted(self):
        g = load_dataset("UK", scale=0.05)
        src = g.edges[:, 0]
        assert (np.diff(src) >= 0).all()

    def test_web_standin_is_clusterable(self):
        g = load_dataset("IT", scale=0.1)
        comm = np.arange(g.n_vertices) // 24
        intra = (comm[g.edges[:, 0]] == comm[g.edges[:, 1]]).mean()
        assert intra > 0.75

    def test_social_standin_is_skewed(self):
        g = load_dataset("TW", scale=0.1)
        assert g.degrees.max() > 10 * g.degrees.mean()


class TestTableRows:
    def test_rows_cover_registry(self):
        rows = dataset_table_rows(scale=0.02)
        assert {r["name"] for r in rows} == set(DATASETS)

    def test_rows_have_both_sizes(self):
        rows = dataset_table_rows(scale=0.02)
        for row in rows:
            assert row["paper_E"] > row["standin_E"]
            assert row["standin_V"] > 0
