"""Unit tests for Phase 1: streaming clustering (paper Algorithm 1)."""

import numpy as np
import pytest

from repro.core.clustering import (
    ClusteringResult,
    StreamingClustering,
    default_volume_cap,
)
from repro.errors import ConfigurationError
from repro.metrics.runtime import CostCounter
from repro.streaming import InMemoryEdgeStream


def cluster(graph, cap=None, passes=1, cost=None):
    stream = InMemoryEdgeStream(graph)
    return StreamingClustering(n_passes=passes, volume_cap=cap).run(
        stream, degrees=graph.degrees, cost=cost
    )


class TestBasics:
    def test_every_streamed_vertex_gets_a_cluster(self, powerlaw_graph):
        result = cluster(powerlaw_graph)
        touched = np.unique(powerlaw_graph.edges)
        assert (result.v2c[touched] >= 0).all()

    def test_isolated_vertices_stay_unclustered(self):
        from repro.graph import Graph

        g = Graph([(0, 1)], n_vertices=5)
        result = cluster(g)
        assert result.v2c[4] == -1

    def test_volume_invariant(self, powerlaw_graph):
        result = cluster(powerlaw_graph, cap=200.0)
        result.validate()  # volume == sum of member degrees

    def test_volume_invariant_unbounded(self, community_graph):
        result = cluster(community_graph)
        result.validate()

    def test_cap_respected(self, powerlaw_graph):
        cap = 150.0
        result = cluster(powerlaw_graph, cap=cap)
        # New singleton clusters may exceed the cap only if a single vertex
        # degree does; migrations never push volumes beyond the cap.
        max_deg = powerlaw_graph.degrees.max()
        assert result.volumes.max() <= max(cap, max_deg)

    def test_requires_degrees_in_true_mode(self, toy_graph):
        with pytest.raises(ConfigurationError):
            StreamingClustering().run(InMemoryEdgeStream(toy_graph))

    def test_rejects_bad_passes(self):
        with pytest.raises(ConfigurationError):
            StreamingClustering(n_passes=0)

    def test_rejects_bad_cap(self):
        with pytest.raises(ConfigurationError):
            StreamingClustering(volume_cap=0)


class TestQuality:
    def test_unbounded_coalesces_more_than_bounded(self, clique_ring):
        """Without a cap, volume-priority migration coalesces clusters
        (on dense graphs it snowballs into a single mega-cluster; on a
        sparse ring it still merges strictly further than a capped run)."""
        unbounded = cluster(clique_ring)
        bounded = cluster(clique_ring, cap=30.0)
        assert unbounded.n_nonempty_clusters < bounded.n_nonempty_clusters
        assert unbounded.volumes.max() > bounded.volumes.max()

    def test_bounded_recovers_cliques(self, clique_ring):
        cap = 2.0 * 8 * 7 / 2  # about one clique's volume x2
        result = cluster(clique_ring, cap=cap)
        v2c = result.v2c
        intra = (v2c[clique_ring.edges[:, 0]] == v2c[clique_ring.edges[:, 1]]).mean()
        assert intra > 0.6
        assert result.n_nonempty_clusters > 3

    def test_separates_toy_clusters(self, toy_graph):
        result = cluster(toy_graph, cap=16.0)
        v2c = result.v2c
        # The two 4-cliques must be internally coherent.
        assert len(set(v2c[:4].tolist())) == 1
        assert len(set(v2c[4:].tolist())) == 1

    def test_restreaming_does_not_regress_much(self, community_graph):
        cap = default_volume_cap(community_graph.n_edges, 8)
        one = cluster(community_graph, cap=cap, passes=1)
        many = cluster(community_graph, cap=cap, passes=4)

        def intra(result):
            v2c = result.v2c
            e = community_graph.edges
            return (v2c[e[:, 0]] == v2c[e[:, 1]]).mean()

        assert intra(many) >= intra(one) - 0.05


class TestRestreaming:
    def test_passes_recorded(self, powerlaw_graph):
        result = cluster(powerlaw_graph, cap=100.0, passes=3)
        assert result.passes == 3

    def test_restreaming_keeps_invariant(self, powerlaw_graph):
        result = cluster(powerlaw_graph, cap=100.0, passes=5)
        result.validate()

    def test_restreaming_consumes_more_edges(self, powerlaw_graph):
        cost1 = CostCounter()
        cost3 = CostCounter()
        cluster(powerlaw_graph, cap=100.0, passes=1, cost=cost1)
        cluster(powerlaw_graph, cap=100.0, passes=3, cost=cost3)
        assert cost3.edges_streamed == 3 * cost1.edges_streamed


class TestPartialDegreeMode:
    def test_runs_without_degree_array(self, powerlaw_graph):
        stream = InMemoryEdgeStream(powerlaw_graph)
        result = StreamingClustering(use_true_degrees=False).run(
            stream, n_vertices=powerlaw_graph.n_vertices
        )
        touched = np.unique(powerlaw_graph.edges)
        assert (result.v2c[touched] >= 0).all()

    def test_final_partial_degrees_match_true(self, powerlaw_graph):
        stream = InMemoryEdgeStream(powerlaw_graph)
        result = StreamingClustering(use_true_degrees=False).run(
            stream, n_vertices=powerlaw_graph.n_vertices
        )
        assert np.array_equal(result.degrees, powerlaw_graph.degrees)

    def test_requires_vertex_count(self, powerlaw_graph):
        stream = InMemoryEdgeStream(powerlaw_graph.edges)
        with pytest.raises(ConfigurationError):
            StreamingClustering(use_true_degrees=False).run(stream)


class TestResultObject:
    def test_n_clusters_counts_allocated(self, toy_graph):
        result = cluster(toy_graph, cap=16.0)
        assert result.n_clusters >= result.n_nonempty_clusters

    def test_validate_detects_corruption(self, toy_graph):
        result = cluster(toy_graph, cap=16.0)
        bad = ClusteringResult(
            v2c=result.v2c,
            volumes=result.volumes + 1,
            degrees=result.degrees,
            volume_cap=result.volume_cap,
            passes=1,
        )
        with pytest.raises(AssertionError):
            bad.validate()


class TestDefaultVolumeCap:
    def test_formula(self):
        assert default_volume_cap(1000, 10, factor=0.5) == 50.0

    def test_rejects_bad_k(self):
        with pytest.raises(ConfigurationError):
            default_volume_cap(1000, 0)
