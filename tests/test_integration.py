"""Integration tests: full pipelines across modules.

These exercise the library the way a downstream user would: generate ->
serialize -> stream out-of-core -> partition -> validate -> process.
"""

import numpy as np
import pytest

from repro.baselines import DBH, HDRF, HEP
from repro.core import TwoPhasePartitioner
from repro.graph import load_dataset
from repro.graph.formats import write_binary_edge_list
from repro.metrics import (
    measured_alpha,
    replication_factor_from_assignments,
    validate_partition,
)
from repro.processing import (
    ConnectedComponents,
    PageRank,
    PartitionedGraph,
    PregelEngine,
)
from repro.storage import hdd_device, page_cache_device, ssd_device
from repro.streaming import FileEdgeStream

from tests.conftest import ALL_PARTITIONER_FACTORIES, CAP_ENFORCING


class TestEveryPartitionerContract:
    """The cross-cutting contract: every partitioner, same rules."""

    @pytest.mark.parametrize("name", sorted(ALL_PARTITIONER_FACTORIES))
    def test_full_coverage_and_validity(self, name, social_graph):
        result = ALL_PARTITIONER_FACTORIES[name]().partition(social_graph, 8)
        validate_partition(social_graph.edges, result.assignments, 8)
        assert result.n_edges == social_graph.n_edges

    @pytest.mark.parametrize("name", sorted(CAP_ENFORCING))
    def test_balance_cap_where_promised(self, name, social_graph):
        result = ALL_PARTITIONER_FACTORIES[name]().partition(social_graph, 8)
        assert result.sizes.max() <= result.state.capacity

    @pytest.mark.parametrize("name", sorted(ALL_PARTITIONER_FACTORIES))
    def test_rf_consistency(self, name, community_graph):
        result = ALL_PARTITIONER_FACTORIES[name]().partition(community_graph, 4)
        recomputed = replication_factor_from_assignments(
            community_graph.edges,
            result.assignments,
            4,
            community_graph.n_vertices,
        )
        assert recomputed == pytest.approx(result.replication_factor)


class TestOutOfCorePipeline:
    def test_file_to_partition_to_processing(self, tmp_path):
        graph = load_dataset("IT", scale=0.05)
        path = tmp_path / "it.bin"
        write_binary_edge_list(graph, path)

        stream = FileEdgeStream(path, n_vertices=graph.n_vertices)
        result = TwoPhasePartitioner().partition(stream, 8)
        validate_partition(graph.edges, result.assignments, 8, alpha=1.05)

        pgraph = PartitionedGraph(graph.edges, result.assignments, 8, graph.n_vertices)
        values, report = PregelEngine().run(pgraph, PageRank(), max_supersteps=10)
        assert report.supersteps == 10
        assert values.sum() == pytest.approx(1.0, abs=1e-6)

    def test_storage_devices_affect_time_not_result(self, tmp_path):
        graph = load_dataset("OK", scale=0.05)
        path = tmp_path / "ok.bin"
        write_binary_edge_list(graph, path)
        outcomes = {}
        times = {}
        for factory in (page_cache_device, ssd_device, hdd_device):
            device = factory()
            stream = FileEdgeStream(path, n_vertices=graph.n_vertices, device=device)
            result = TwoPhasePartitioner().partition(stream, 4)
            outcomes[device.name] = result.assignments
            times[device.name] = stream.stats.simulated_read_seconds
        assert np.array_equal(outcomes["page-cache"], outcomes["ssd"])
        assert np.array_equal(outcomes["ssd"], outcomes["hdd"])
        assert times["page-cache"] < times["ssd"] < times["hdd"]


class TestEndToEndComparison:
    def test_quality_hierarchy_on_web_graph(self):
        """The paper's Figure 4 quality ordering on a clusterable graph."""
        graph = load_dataset("IT", scale=0.1)
        rf = {}
        for name, factory in (
            ("2PS-L", TwoPhasePartitioner),
            ("HDRF", HDRF),
            ("DBH", DBH),
        ):
            rf[name] = factory().partition(graph, 16).replication_factor
        assert rf["2PS-L"] < rf["HDRF"] < rf["DBH"]

    def test_processing_time_tracks_rf(self):
        graph = load_dataset("IT", scale=0.05)
        engine = PregelEngine()
        totals = {}
        for name, factory in (("2PS-L", TwoPhasePartitioner), ("DBH", DBH)):
            result = factory().partition(graph, 8)
            pgraph = PartitionedGraph(
                graph.edges, result.assignments, 8, graph.n_vertices
            )
            _, report = engine.run(pgraph, PageRank(), max_supersteps=10)
            totals[name] = report.comm_seconds
        assert totals["2PS-L"] < totals["DBH"]

    def test_connected_components_on_partitioned_dataset(self):
        graph = load_dataset("UK", scale=0.05)
        result = HEP(tau=10.0).partition(graph, 4)
        pgraph = PartitionedGraph(graph.edges, result.assignments, 4, graph.n_vertices)
        labels, report = PregelEngine().run(
            pgraph, ConnectedComponents(), max_supersteps=300
        )
        assert report.converged

    def test_measured_alpha_reported_for_stateless(self):
        """Stateless partitioners may violate alpha; we must report it."""
        graph = load_dataset("OK", scale=0.05)
        result = DBH().partition(graph, 32)
        alpha = measured_alpha(result.assignments, 32)
        assert alpha == pytest.approx(result.measured_alpha)
        assert alpha > 1.0


class TestRestreamingEndToEnd:
    def test_more_passes_do_not_break_anything(self):
        graph = load_dataset("FR", scale=0.05)
        base = TwoPhasePartitioner(clustering_passes=1).partition(graph, 8)
        multi = TwoPhasePartitioner(clustering_passes=4).partition(graph, 8)
        validate_partition(graph.edges, multi.assignments, 8, alpha=1.05)
        # Re-streaming changes RF by a few percent at most (paper Fig. 7).
        assert multi.replication_factor < base.replication_factor * 1.2
