"""Unit and behaviour tests for the full 2PS-L pipeline (Algorithm 2)."""

import numpy as np
import pytest

from repro.core import TwoPhasePartitioner
from repro.errors import ConfigurationError, PartitioningError
from repro.graph.formats import write_binary_edge_list
from repro.metrics import validate_partition
from repro.streaming import FileEdgeStream, InMemoryEdgeStream


class TestContract:
    def test_valid_partitioning(self, social_graph):
        result = TwoPhasePartitioner().partition(social_graph, 8)
        validate_partition(social_graph.edges, result.assignments, 8, alpha=1.05)

    def test_hard_balance_cap(self, powerlaw_graph):
        for k in (2, 7, 16):
            result = TwoPhasePartitioner().partition(powerlaw_graph, k)
            cap = result.state.capacity
            assert result.sizes.max() <= cap

    def test_rejects_empty_stream(self):
        with pytest.raises(PartitioningError):
            TwoPhasePartitioner().partition(
                np.empty((0, 2), dtype=int), 4, n_vertices=4
            )

    def test_rejects_k_one(self, toy_graph):
        with pytest.raises(PartitioningError):
            TwoPhasePartitioner().partition(toy_graph, 1)

    def test_rejects_bad_mode(self):
        with pytest.raises(ConfigurationError):
            TwoPhasePartitioner(mode="quadratic")

    def test_rejects_bad_cap_factor(self):
        with pytest.raises(ConfigurationError):
            TwoPhasePartitioner(volume_cap_factor=0)

    def test_deterministic(self, social_graph):
        a = TwoPhasePartitioner().partition(social_graph, 8)
        b = TwoPhasePartitioner().partition(social_graph, 8)
        assert np.array_equal(a.assignments, b.assignments)


class TestPhases:
    def test_all_phases_timed(self, social_graph):
        result = TwoPhasePartitioner().partition(social_graph, 8)
        for phase in (
            "degree", "clustering", "mapping", "prepartition", "partitioning"
        ):
            assert phase in result.timer.totals

    def test_extras_account_for_all_edges(self, social_graph):
        result = TwoPhasePartitioner().partition(social_graph, 8)
        pre = result.extras["prepartitioned_edges"]
        rem = result.extras["remaining_edges"]
        assert pre + rem == social_graph.n_edges
        assert pre > 0

    def test_clusterable_graph_prepartitions_more(self, clique_ring, powerlaw_graph):
        ring = TwoPhasePartitioner().partition(clique_ring, 4)
        plaw = TwoPhasePartitioner().partition(powerlaw_graph, 4)
        ring_frac = ring.extras["prepartitioned_edges"] / clique_ring.n_edges
        plaw_frac = plaw.extras["prepartitioned_edges"] / powerlaw_graph.n_edges
        assert ring_frac > plaw_frac

    def test_restreaming_configured(self, social_graph):
        result = TwoPhasePartitioner(clustering_passes=3).partition(social_graph, 8)
        assert result.extras["clustering_passes"] == 3


class TestLinearTimeClaim:
    def test_score_evaluations_at_most_two_per_edge(self, social_graph):
        """The core claim: scoring work is independent of k."""
        for k in (4, 32, 64):
            result = TwoPhasePartitioner().partition(social_graph, k)
            assert result.cost.score_evaluations <= 2 * social_graph.n_edges

    def test_model_time_flat_in_k(self, social_graph):
        t4 = TwoPhasePartitioner().partition(social_graph, 4).model_seconds()
        t64 = TwoPhasePartitioner().partition(social_graph, 64).model_seconds()
        assert t64 < 2.0 * t4

    def test_hdrf_mode_scales_with_k(self, social_graph):
        t4 = TwoPhasePartitioner(mode="hdrf").partition(social_graph, 4)
        t64 = TwoPhasePartitioner(mode="hdrf").partition(social_graph, 64)
        assert t64.cost.score_evaluations > 8 * t4.cost.score_evaluations


class TestQuality:
    def test_beats_random_on_clusterable_graph(self, clique_ring):
        from repro.baselines import RandomHash

        ours = TwoPhasePartitioner().partition(clique_ring, 4)
        rand = RandomHash().partition(clique_ring, 4)
        assert ours.replication_factor < rand.replication_factor

    def test_hdrf_mode_not_worse(self, social_graph):
        """2PS-HDRF improves (or matches) 2PS-L quality (paper Fig. 9)."""
        linear = TwoPhasePartitioner().partition(social_graph, 16)
        hdrf = TwoPhasePartitioner(mode="hdrf").partition(social_graph, 16)
        assert hdrf.replication_factor <= linear.replication_factor * 1.05

    def test_rf_at_least_one(self, powerlaw_graph):
        result = TwoPhasePartitioner().partition(powerlaw_graph, 4)
        assert result.replication_factor >= 1.0

    def test_handles_star_graph(self, hub_graph):
        result = TwoPhasePartitioner().partition(hub_graph, 4)
        validate_partition(hub_graph.edges, result.assignments, 4, alpha=1.05)
        # The hub must be replicated everywhere; leaves only once.
        counts = result.state.replica_counts()
        assert counts[0] == 4
        assert (counts[1:][counts[1:] > 0] == 1).all()


class TestOutOfCore:
    def test_file_stream_equivalent_to_memory(self, tmp_path, community_graph):
        path = tmp_path / "g.bin"
        write_binary_edge_list(community_graph, path)
        mem = TwoPhasePartitioner().partition(
            InMemoryEdgeStream(community_graph), 8
        )
        fil = TwoPhasePartitioner().partition(
            FileEdgeStream(path, n_vertices=community_graph.n_vertices), 8
        )
        assert np.array_equal(mem.assignments, fil.assignments)

    def test_stream_pass_count(self, community_graph):
        """1 degree + 1 clustering + 2 partitioning = 4 passes by default."""
        stream = InMemoryEdgeStream(community_graph)
        TwoPhasePartitioner().partition(stream, 4)
        assert stream.stats.passes == 4

    def test_restreaming_adds_passes(self, community_graph):
        stream = InMemoryEdgeStream(community_graph)
        TwoPhasePartitioner(clustering_passes=3).partition(stream, 4)
        assert stream.stats.passes == 6


class TestResultObject:
    def test_summary_keys(self, toy_graph):
        result = TwoPhasePartitioner().partition(toy_graph, 2)
        summary = result.summary()
        assert {"partitioner", "k", "rf", "alpha", "wall_s", "model_s"} <= set(summary)

    def test_partition_edge_indices(self, toy_graph):
        result = TwoPhasePartitioner().partition(toy_graph, 2)
        total = sum(
            result.partition_edge_indices(p).shape[0] for p in range(2)
        )
        assert total == toy_graph.n_edges

    def test_partition_edge_indices_bounds(self, toy_graph):
        result = TwoPhasePartitioner().partition(toy_graph, 2)
        with pytest.raises(PartitioningError):
            result.partition_edge_indices(5)

    def test_name_by_mode(self):
        assert TwoPhasePartitioner().name == "2PS-L"
        assert TwoPhasePartitioner(mode="hdrf").name == "2PS-HDRF"

    def test_state_bytes_positive(self, toy_graph):
        result = TwoPhasePartitioner().partition(toy_graph, 2)
        assert result.state_bytes > 0
