"""Tests for the shared partitioner base class, result record and errors."""

import numpy as np
import pytest

from repro import errors
from repro.baselines import DBH
from repro.errors import PartitioningError, StreamError
from repro.metrics.runtime import CostCounter, CostModel, PhaseTimer
from repro.partitioning import EdgePartitioner, PartitionResult, PartitionState
from repro.streaming import InMemoryEdgeStream


class _BrokenShort(EdgePartitioner):
    """Returns fewer assignments than edges (contract violation)."""

    name = "broken-short"

    def _run(self, stream, k, alpha):
        state = PartitionState(stream.n_vertices, k, stream.n_edges, alpha)
        return PartitionResult(
            partitioner=self.name,
            k=k,
            alpha=alpha,
            n_vertices=stream.n_vertices,
            n_edges=stream.n_edges,
            assignments=np.zeros(1, dtype=np.int32),
            state=state,
            timer=PhaseTimer(),
            cost=CostCounter(),
        )


class _BrokenUnassigned(EdgePartitioner):
    """Leaves edges unassigned (contract violation)."""

    name = "broken-unassigned"

    def _run(self, stream, k, alpha):
        state = PartitionState(stream.n_vertices, k, stream.n_edges, alpha)
        return PartitionResult(
            partitioner=self.name,
            k=k,
            alpha=alpha,
            n_vertices=stream.n_vertices,
            n_edges=stream.n_edges,
            assignments=np.full(stream.n_edges, -1, dtype=np.int32),
            state=state,
            timer=PhaseTimer(),
            cost=CostCounter(),
        )


class TestBaseContractGuards:
    def test_short_assignment_detected(self, toy_graph):
        with pytest.raises(PartitioningError, match="assignments"):
            _BrokenShort().partition(toy_graph, 2)

    def test_unassigned_detected(self, toy_graph):
        with pytest.raises(PartitioningError, match="unassigned"):
            _BrokenUnassigned().partition(toy_graph, 2)

    def test_unknown_vertex_count_raises(self):
        stream = InMemoryEdgeStream(np.array([[0, 1]]))  # no n_vertices
        with pytest.raises(StreamError):
            EdgePartitioner._resolve_n_vertices(stream)

    def test_vertex_count_from_degrees(self):
        stream = InMemoryEdgeStream(np.array([[0, 1]]))
        n = EdgePartitioner._resolve_n_vertices(stream, degrees=np.zeros(7))
        assert n == 7

    def test_repr(self):
        assert "DBH" in repr(DBH())


class TestPartitionResult:
    @pytest.fixture
    def result(self, toy_graph):
        return DBH().partition(toy_graph, 2)

    def test_sizes_sum(self, result, toy_graph):
        assert result.sizes.sum() == toy_graph.n_edges

    def test_wall_seconds_nonnegative(self, result):
        assert result.wall_seconds >= 0

    def test_model_seconds_custom_model(self, result):
        fast = CostModel(stream_edge=0.0, hash_evaluation=0.0)
        assert result.model_seconds(fast) <= result.model_seconds()

    def test_summary_round_trips_metrics(self, result):
        summary = result.summary()
        assert summary["rf"] == pytest.approx(result.replication_factor, abs=1e-3)
        assert summary["k"] == 2

    def test_empty_edge_result_alpha(self, toy_graph):
        result = DBH().partition(toy_graph, 2)
        assert result.measured_alpha >= 1.0


class TestErrorHierarchy:
    def test_all_errors_derive_from_base(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError) or obj is errors.ReproError

    def test_specific_hierarchy(self):
        assert issubclass(errors.BalanceError, errors.PartitioningError)
        assert issubclass(errors.FormatError, errors.ReproError)
        assert not issubclass(errors.StreamError, errors.PartitioningError)

    def test_catchable_as_base(self, toy_graph):
        with pytest.raises(errors.ReproError):
            DBH().partition(toy_graph, 1)
