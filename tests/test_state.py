"""Unit tests for PartitionState (replication matrix + balance cap)."""

import numpy as np
import pytest

from repro.errors import BalanceError, PartitioningError
from repro.partitioning import PackedReplicaMatrix, PartitionState


class TestConstruction:
    def test_capacity_formula(self):
        state = PartitionState(10, 4, 100, alpha=1.05)
        assert state.capacity == 26  # floor(1.05 * 25)

    def test_capacity_never_below_feasibility(self):
        # floor(alpha * m / k) < ceil(m / k) must be corrected upward.
        state = PartitionState(10, 3, 10, alpha=1.0)
        assert state.capacity == 4  # ceil(10 / 3)
        assert state.capacity * 3 >= 10

    def test_rejects_k_below_two(self):
        with pytest.raises(PartitioningError):
            PartitionState(10, 1, 100)

    def test_rejects_alpha_below_one(self):
        with pytest.raises(BalanceError):
            PartitionState(10, 2, 100, alpha=0.9)

    def test_rejects_negative_dims(self):
        with pytest.raises(PartitioningError):
            PartitionState(-1, 2, 100)


class TestAssignment:
    def test_assign_updates_sizes_and_replicas(self):
        state = PartitionState(4, 2, 10)
        state.assign(0, 1, 1)
        assert state.sizes.tolist() == [0, 1]
        assert state.replicas[0, 1]
        assert state.replicas[1, 1]
        assert not state.replicas[0, 0]

    def test_assign_self_loop(self):
        state = PartitionState(4, 2, 10)
        state.assign(2, 2, 0)
        assert state.replica_counts()[2] == 1

    def test_assign_over_capacity_raises(self):
        state = PartitionState(4, 2, 2)  # capacity 1 per partition
        state.assign(0, 1, 0)
        with pytest.raises(BalanceError):
            state.assign(2, 3, 0)

    def test_is_full(self):
        state = PartitionState(4, 2, 2)
        assert not state.is_full(0)
        state.assign(0, 1, 0)
        assert state.is_full(0)

    def test_least_loaded_open(self):
        state = PartitionState(6, 3, 9)
        state.assign(0, 1, 0)
        state.assign(0, 1, 0)
        state.assign(2, 3, 1)
        assert state.least_loaded_open() == 2

    def test_least_loaded_all_full(self):
        state = PartitionState(4, 2, 2)
        state.assign(0, 1, 0)
        state.assign(2, 3, 1)
        with pytest.raises(BalanceError):
            state.least_loaded_open()


class TestMetrics:
    def test_replication_factor_single_partition_usage(self):
        state = PartitionState(4, 2, 10)
        state.assign(0, 1, 0)
        state.assign(1, 2, 0)
        # 3 vertices, each on exactly 1 partition.
        assert state.replication_factor() == 1.0

    def test_replication_factor_with_replication(self):
        state = PartitionState(2, 2, 10)
        state.assign(0, 1, 0)
        state.assign(0, 1, 1)
        assert state.replication_factor() == 2.0

    def test_replication_factor_excludes_uncovered(self):
        state = PartitionState(100, 2, 10)
        state.assign(0, 1, 0)
        assert state.replication_factor() == 1.0

    def test_replication_factor_empty(self):
        state = PartitionState(10, 2, 10)
        assert state.replication_factor() == 0.0

    def test_vertex_cover_sizes(self):
        state = PartitionState(4, 2, 10)
        state.assign(0, 1, 0)
        state.assign(1, 2, 1)
        assert state.vertex_cover_sizes().tolist() == [2, 2]

    def test_measured_alpha(self):
        state = PartitionState(8, 2, 4)
        state.assign(0, 1, 0)
        state.assign(2, 3, 0)
        state.sizes[1] = 2  # balance manually for the metric
        assert state.measured_alpha() == 1.0
        state.sizes[0] = 3
        state.sizes[1] = 1
        assert state.measured_alpha() == 1.5

    def test_nbytes_grows_with_k(self):
        small = PartitionState(100, 4, 10)
        large = PartitionState(100, 64, 10)
        assert large.nbytes() > small.nbytes()


class TestScatterEdges:
    def test_records_bits_and_sizes(self):
        state = PartitionState(6, 3, 12)
        state.scatter_edges([0, 1], [2, 3], [1, 2])
        assert state.sizes.tolist() == [0, 1, 1]
        assert state.replicas[0, 1] and state.replicas[2, 1]
        assert state.replicas[1, 2] and state.replicas[3, 2]

    def test_empty_chunk_is_a_noop(self):
        state = PartitionState(6, 3, 12)
        state.scatter_edges(
            np.empty(0, np.int64), np.empty(0, np.int64), np.empty(0, np.int64)
        )
        assert state.sizes.tolist() == [0, 0, 0]
        assert not state.replicas.any()

    @pytest.mark.parametrize(
        "us, vs, ps",
        [
            ([0, 1], [2], [1, 2]),
            ([0], [2, 3], [1]),
            ([0, 1], [2, 3], [1]),
            ([0, 1], [2, 3], 1),
            (np.zeros((2, 2), np.int64), [2, 3], [1, 2]),
        ],
    )
    def test_mismatched_inputs_raise_clearly(self, us, vs, ps):
        state = PartitionState(6, 3, 12)
        with pytest.raises(PartitioningError, match="scatter_edges"):
            state.scatter_edges(us, vs, ps)
        # and the state is untouched by the rejected call
        assert state.sizes.tolist() == [0, 0, 0]
        assert not state.replicas.any()

    @pytest.mark.parametrize("ps", [[1, 3], [0, -1], [99, 0]])
    def test_out_of_range_partition_rejected_before_mutation(self, ps):
        """Regression (ISSUE 7 satellite): an out-of-range partition id
        used to surface as a raw ``IndexError`` *after* the replica
        bits of the in-range edges had already been scattered."""
        state = PartitionState(6, 3, 12)
        with pytest.raises(PartitioningError, match=r"\[0, 3\)"):
            state.scatter_edges([0, 1], [2, 3], ps)
        # validated up front: nothing was half-applied
        assert state.sizes.tolist() == [0, 0, 0]
        assert not state.replicas.any()


class TestPackedReplicaMatrix:
    """Bit-packed replica rows vs the dense bool matrix (ISSUE 7).

    Property tests: under identical random assignments every metric,
    the dirty-delta barrier and the shared-memory round trip must agree
    with the dense representation bit for bit, while the replica
    storage shrinks ~8x.
    """

    @staticmethod
    def _random_pair(seed, n=40, k=11, m=400):
        dense = PartitionState(n, k, m, alpha=1.5)
        packed = PartitionState(n, k, m, alpha=1.5, packed=True)
        rng = np.random.default_rng(seed)
        for _ in range(6):
            c = int(rng.integers(1, 30))
            us = rng.integers(0, n, size=c)
            vs = rng.integers(0, n, size=c)
            ps = rng.integers(0, k, size=c)
            dense.scatter_edges(us, vs, ps)
            packed.scatter_edges(us, vs, ps)
        return dense, packed

    @pytest.mark.parametrize("seed", [0, 1, 5, 9])
    @pytest.mark.parametrize("k", [2, 8, 9, 16, 17, 33])
    def test_metrics_match_dense(self, seed, k):
        dense, packed = self._random_pair(seed, k=k)
        assert isinstance(packed.replicas, PackedReplicaMatrix)
        np.testing.assert_array_equal(
            np.asarray(packed.replicas), dense.replicas
        )
        np.testing.assert_array_equal(
            packed.replica_counts(), dense.replica_counts()
        )
        np.testing.assert_array_equal(
            packed.vertex_cover_sizes(), dense.vertex_cover_sizes()
        )
        assert packed.replication_factor() == dense.replication_factor()
        np.testing.assert_array_equal(packed.sizes, dense.sizes)

    def test_nbytes_shrinks_eightfold_at_k32(self):
        dense = PartitionState(1000, 32, 10)
        packed = PartitionState(1000, 32, 10, packed=True)
        assert packed.replicas.nbytes * 8 == dense.replicas.nbytes
        assert dense.nbytes() / packed.nbytes() > 6.0

    def test_tail_bits_stay_zero_off_byte_boundary(self):
        state = PartitionState(4, 9, 10, packed=True)
        us = np.arange(4)
        state.scatter_edges(us, us[::-1], np.full(4, 8))
        raw = state.replicas.packed
        assert raw.shape == (4, 2)  # 9 bits -> 2 bytes per row
        assert (raw[:, 1] == 1).all()  # partition 8 = bit 0 of byte 1
        assert np.asarray(state.replicas).shape == (4, 9)

    def test_duplicate_bits_in_one_scatter(self):
        # Duplicate (vertex, partition) pairs inside one chunk must all
        # land (the packed write path cannot use buffered fancy |=).
        dense = PartitionState(6, 9, 20)
        packed = PartitionState(6, 9, 20, packed=True)
        us = np.array([0, 0, 0, 2])
        vs = np.array([1, 1, 3, 2])
        ps = np.array([3, 8, 3, 0])
        dense.scatter_edges(us, vs, ps)
        packed.scatter_edges(us, vs, ps)
        np.testing.assert_array_equal(
            np.asarray(packed.replicas), dense.replicas
        )

    def test_assign_and_single_bit_reads(self):
        state = PartitionState(4, 9, 10, packed=True)
        state.assign(0, 1, 8)
        assert state.replicas[0, 8] and state.replicas[1, 8]
        assert not state.replicas[0, 0]

    def test_scalar_bit_clear_supported(self):
        # The incremental partitioner clears replica bits on deletion.
        state = PartitionState(4, 9, 10, packed=True)
        state.replicas[0, 1] = True
        state.replicas[0, 8] = True
        state.replicas[0, 1] = False
        assert not state.replicas[0, 1]
        assert state.replicas[0, 8]  # neighboring bits untouched

    def test_fancy_bit_clear_writes_rejected(self):
        # Bulk clears stay unsupported: the streaming kernels never
        # clear bits, and a buffered fancy AND would drop duplicates.
        state = PartitionState(4, 9, 10, packed=True)
        with pytest.raises(PartitioningError):
            state.replicas[np.asarray([0, 1]), np.asarray([1, 2])] = False
        with pytest.raises(PartitioningError):
            state.replicas[0, 1] = 1  # only literal booleans

    @pytest.mark.parametrize("seed", [0, 3, 8])
    def test_dirty_delta_merge_matches_dense(self, seed):
        from repro.partitioning.state import merge_replica_deltas

        n, k, m = 30, 11, 300
        rng = np.random.default_rng(seed)

        def build(packed):
            state = PartitionState(n, k, m, packed=packed)
            views = [
                PartitionState(n, k, m, track_dirty=True, packed=packed)
                for _ in range(3)
            ]
            return state, views

        dense_state, dense_views = build(False)
        packed_state, packed_views = build(True)
        for _ in range(3):
            for dv, pv in zip(dense_views, packed_views):
                c = int(rng.integers(0, 15))
                if not c:
                    continue
                us = rng.integers(0, n, size=c)
                vs = rng.integers(0, n, size=c)
                ps = rng.integers(0, k, size=c)
                for view in (dv, pv):
                    view.scatter_edges(us, vs, ps)
                    view.mark_dirty(us)
                    view.mark_dirty(vs)
            rows_dense = merge_replica_deltas(dense_state, dense_views)
            rows_packed = merge_replica_deltas(packed_state, packed_views)
            assert rows_dense == rows_packed
            np.testing.assert_array_equal(
                np.asarray(packed_state.replicas), dense_state.replicas
            )
            np.testing.assert_array_equal(
                packed_state.sizes, dense_state.sizes
            )
            for dv, pv in zip(dense_views, packed_views):
                np.testing.assert_array_equal(
                    np.asarray(pv.replicas), dv.replicas
                )
                assert not pv.dirty.any()

    def test_shared_packed_round_trip(self):
        creator = PartitionState.from_shared(8, 11, 20, packed=True)
        try:
            attacher = PartitionState.attach(
                creator.shm_name, 8, 11, 20, packed=True
            )
            creator.scatter_edges([0, 1], [2, 3], [8, 10])
            assert attacher.replicas[0, 8] and attacher.replicas[3, 10]
            assert attacher.sizes[8] == 1 and attacher.sizes[10] == 1
            assert PartitionState.shared_nbytes(8, 11, packed=True) < (
                PartitionState.shared_nbytes(8, 11)
            )
            attacher.close()
        finally:
            creator.close()
            creator.unlink()


class TestSharedMemoryState:
    """from_shared / attach lifecycle (see the module docstring contract)."""

    def test_heap_state_lifecycle_is_noop(self):
        state = PartitionState(4, 2, 10)
        assert state.shm_name is None
        state.close()
        state.unlink()  # both no-ops; arrays stay usable
        state.assign(0, 1, 0)
        assert state.sizes.tolist() == [1, 0]

    def test_attacher_sees_creator_writes(self):
        creator = PartitionState.from_shared(8, 4, 20, alpha=1.2)
        try:
            assert creator.shm_name is not None
            attacher = PartitionState.attach(creator.shm_name, 8, 4, 20, 1.2)
            creator.assign(0, 1, 2)
            attacher.scatter_edges([3], [4], [1])
            # both mutations visible through both mappings
            assert creator.sizes.tolist() == [0, 1, 1, 0]
            assert attacher.sizes.tolist() == [0, 1, 1, 0]
            assert attacher.replicas[0, 2] and creator.replicas[3, 1]
            assert creator.capacity == attacher.capacity
            attacher.close()
        finally:
            creator.close()
            creator.unlink()

    def test_from_shared_starts_zeroed(self):
        state = PartitionState.from_shared(16, 3, 30)
        try:
            assert not state.replicas.any()
            assert state.sizes.tolist() == [0, 0, 0]
        finally:
            state.close()
            state.unlink()

    def test_attach_unknown_name_raises(self):
        with pytest.raises(PartitioningError, match="no shared"):
            PartitionState.attach("repro-no-such-segment", 4, 2, 10)

    def test_attach_after_unlink_raises(self):
        creator = PartitionState.from_shared(4, 2, 10)
        name = creator.shm_name
        creator.close()
        creator.unlink()
        with pytest.raises(PartitioningError):
            PartitionState.attach(name, 4, 2, 10)

    def test_attach_rejects_undersized_segment(self):
        creator = PartitionState.from_shared(4, 2, 10)
        try:
            with pytest.raises(PartitioningError, match="holds"):
                PartitionState.attach(creator.shm_name, 4096, 64, 10)
        finally:
            creator.close()
            creator.unlink()

    def test_close_and_unlink_are_idempotent(self):
        state = PartitionState.from_shared(4, 2, 10)
        state.close()
        state.close()
        state.unlink()
        state.unlink()

    def test_attacher_never_unlinks(self):
        creator = PartitionState.from_shared(4, 2, 10)
        try:
            attacher = PartitionState.attach(creator.shm_name, 4, 2, 10)
            attacher.close()
            attacher.unlink()  # must be a no-op for non-owners
            again = PartitionState.attach(creator.shm_name, 4, 2, 10)
            again.close()
        finally:
            creator.close()
            creator.unlink()

    def test_shared_nbytes_aligns_sizes(self):
        # replicas bytes rounded up to int64 alignment, then k sizes
        assert PartitionState.shared_nbytes(3, 3) == 16 + 24
        assert PartitionState.shared_nbytes(0, 2) == max(0 + 16, 1)


class TestReplicaDeltaBarriers:
    """Property tests for the dirty-row delta barrier (ISSUE 4 satellite):
    applying accumulated deltas must reconstruct exactly the state a full
    replica-matrix re-broadcast would produce, barrier after barrier."""

    @staticmethod
    def _make_views(global_state, n_workers):
        views = []
        for _ in range(n_workers):
            view = PartitionState(
                global_state.n_vertices,
                global_state.k,
                global_state.n_edges,
                global_state.alpha,
                track_dirty=True,
            )
            view.replicas[:] = global_state.replicas
            view.sizes[:] = global_state.sizes
            views.append(view)
        return views

    @staticmethod
    def _full_merge(global_state, views):
        """The pre-delta reference barrier: full re-broadcast."""
        merged = np.logical_or.reduce(
            [global_state.replicas] + [v.replicas for v in views]
        )
        new_sizes = global_state.sizes + sum(
            v.sizes - global_state.sizes for v in views
        )
        return merged, new_sizes

    def _random_round(self, rng, views, extra_dirty=False):
        """One sync window per view: disjoint random edges, dirty marks."""
        n = views[0].n_vertices
        k = views[0].k
        for view in views:
            m = int(rng.integers(0, 12))
            if m:
                us = rng.integers(0, n, size=m)
                vs = rng.integers(0, n, size=m)
                ps = rng.integers(0, k, size=m)
                view.scatter_edges(us, vs, ps)
                view.mark_dirty(us)
                view.mark_dirty(vs)
            if extra_dirty:
                # A superset mark (rows touched but not written) must
                # never change the outcome.
                view.mark_dirty(rng.integers(0, n, size=3))

    @pytest.mark.parametrize("seed", [0, 1, 7, 42, 99])
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_accumulated_deltas_reconstruct_full_matrix(
        self, seed, n_workers
    ):
        from repro.partitioning.state import merge_replica_deltas

        rng = np.random.default_rng(seed)
        n, k, m = 40, 5, 400
        state = PartitionState(n, k, m)
        views = self._make_views(state, n_workers)
        for round_no in range(4):
            self._random_round(rng, views, extra_dirty=round_no % 2 == 1)
            expect_replicas, expect_sizes = self._full_merge(state, views)
            rows = merge_replica_deltas(state, views)
            np.testing.assert_array_equal(state.replicas, expect_replicas)
            np.testing.assert_array_equal(state.sizes, expect_sizes)
            assert rows <= n
            for view in views:
                np.testing.assert_array_equal(
                    view.replicas, state.replicas
                )
                np.testing.assert_array_equal(view.sizes, state.sizes)
                assert not view.dirty.any(), "barrier must clear dirt"

    def test_overshoot_sizes_merge_exactly(self):
        """The stale-view overshoot PR 3 fixed: a worker's size view may
        legitimately exceed the hard cap; the delta barrier must carry
        the overshoot through unchanged, like the full merge."""
        from repro.partitioning.state import merge_replica_deltas

        state = PartitionState(6, 2, 8, alpha=1.0)  # capacity 4
        views = self._make_views(state, 2)
        # Worker 0 overshoots partition 0 well past the cap; worker 1
        # writes nothing (its delta is empty).
        us = np.array([0, 1, 2, 3, 4, 5])
        views[0].scatter_edges(us, us, np.zeros(6, dtype=np.int64))
        views[0].mark_dirty(us)
        expect_replicas, expect_sizes = self._full_merge(state, views)
        merge_replica_deltas(state, views)
        np.testing.assert_array_equal(state.replicas, expect_replicas)
        np.testing.assert_array_equal(state.sizes, expect_sizes)
        assert state.sizes[0] == 6 > state.capacity

    def test_clean_barrier_touches_no_rows(self):
        from repro.partitioning.state import merge_replica_deltas

        state = PartitionState(10, 3, 30)
        views = self._make_views(state, 3)
        assert merge_replica_deltas(state, views) == 0

    def test_dirty_bitmap_lifecycle(self):
        state = PartitionState(8, 2, 10, track_dirty=True)
        assert state.dirty is not None and not state.dirty.any()
        state.mark_dirty(np.array([1, 3, 3]))
        assert state.dirty[[1, 3]].all() and state.dirty.sum() == 2
        untracked = PartitionState(8, 2, 10)
        assert untracked.dirty is None
        untracked.mark_dirty(np.array([1]))  # no-op by contract

    def test_shared_segment_round_trips_dirty_bitmap(self):
        creator = PartitionState.from_shared(6, 2, 10, track_dirty=True)
        try:
            attacher = PartitionState.attach(
                creator.shm_name, 6, 2, 10, track_dirty=True
            )
            attacher.mark_dirty(np.array([2, 4]))
            assert creator.dirty[[2, 4]].all()
            assert PartitionState.shared_nbytes(6, 2, True) == (
                PartitionState.shared_nbytes(6, 2) + 6
            )
            attacher.close()
        finally:
            creator.close()
            creator.unlink()


class TestWireDeltaBarriers:
    """The distributed runner's wire barrier (extract -> merge -> refresh)
    must be bit-identical to the shared-memory ``merge_replica_deltas``
    path, barrier after barrier, dense and packed, including a trip of
    every delta through the wire payload encoding."""

    @staticmethod
    def _universe(n, k, m, n_workers, packed):
        state = PartitionState(n, k, m, packed=packed)
        views = [
            PartitionState(n, k, m, track_dirty=True, packed=packed)
            for _ in range(n_workers)
        ]
        return state, views

    @pytest.mark.parametrize("seed", [0, 3, 21])
    @pytest.mark.parametrize("n_workers", [1, 3])
    @pytest.mark.parametrize("packed", [False, True])
    def test_wire_path_matches_shared_memory_merge(
        self, seed, n_workers, packed
    ):
        from repro.core import wire
        from repro.partitioning.state import (
            apply_replica_refresh,
            extract_replica_delta,
            merge_replica_deltas,
            merge_replica_wire_deltas,
        )

        rng = np.random.default_rng(seed)
        n, k, m = 40, 11, 400
        shm_state, shm_views = self._universe(n, k, m, n_workers, packed)
        net_state, net_views = self._universe(n, k, m, n_workers, packed)
        for _ in range(4):
            for sv, nv in zip(shm_views, net_views):
                c = int(rng.integers(0, 12))
                if c:
                    us = rng.integers(0, n, size=c)
                    vs = rng.integers(0, n, size=c)
                    ps = rng.integers(0, k, size=c)
                    for view in (sv, nv):
                        view.scatter_edges(us, vs, ps)
                        view.mark_dirty(us)
                        view.mark_dirty(vs)
            # Shared-memory universe: the in-place barrier.
            merge_replica_deltas(shm_state, shm_views)
            # Wire universe: extract each worker's delta, round-trip it
            # through the payload codec (as MSG_WINDOW_RESULT would),
            # fold coordinator-side, broadcast the refresh.
            deltas = []
            for view in net_views:
                rows, rows_data, sizes = extract_replica_delta(view)
                fields = wire.decode_payload(wire.encode_payload({
                    "rows": rows,
                    "rows_data": np.asarray(rows_data),
                    "sizes": sizes,
                }))
                deltas.append(
                    (fields["rows"], fields["rows_data"], fields["sizes"])
                )
            rows, merged, new_sizes = merge_replica_wire_deltas(
                net_state, deltas
            )
            refresh = wire.decode_payload(wire.encode_payload({
                "rows": rows, "rows_data": merged, "sizes": new_sizes,
            }))
            for view in net_views:
                apply_replica_refresh(
                    view, refresh["rows"], refresh["rows_data"],
                    refresh["sizes"],
                )
            np.testing.assert_array_equal(
                np.asarray(net_state.replicas),
                np.asarray(shm_state.replicas),
            )
            np.testing.assert_array_equal(net_state.sizes, shm_state.sizes)
            for sv, nv in zip(shm_views, net_views):
                np.testing.assert_array_equal(
                    np.asarray(nv.replicas), np.asarray(sv.replicas)
                )
                np.testing.assert_array_equal(nv.sizes, sv.sizes)
                assert not nv.dirty.any(), "refresh must clear dirt"

    def test_extract_requires_dirty_tracking(self):
        from repro.partitioning.state import extract_replica_delta

        with pytest.raises(PartitioningError):
            extract_replica_delta(PartitionState(4, 2, 10))
