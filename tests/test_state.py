"""Unit tests for PartitionState (replication matrix + balance cap)."""

import numpy as np
import pytest

from repro.errors import BalanceError, PartitioningError
from repro.partitioning import PartitionState


class TestConstruction:
    def test_capacity_formula(self):
        state = PartitionState(10, 4, 100, alpha=1.05)
        assert state.capacity == 26  # floor(1.05 * 25)

    def test_capacity_never_below_feasibility(self):
        # floor(alpha * m / k) < ceil(m / k) must be corrected upward.
        state = PartitionState(10, 3, 10, alpha=1.0)
        assert state.capacity == 4  # ceil(10 / 3)
        assert state.capacity * 3 >= 10

    def test_rejects_k_below_two(self):
        with pytest.raises(PartitioningError):
            PartitionState(10, 1, 100)

    def test_rejects_alpha_below_one(self):
        with pytest.raises(BalanceError):
            PartitionState(10, 2, 100, alpha=0.9)

    def test_rejects_negative_dims(self):
        with pytest.raises(PartitioningError):
            PartitionState(-1, 2, 100)


class TestAssignment:
    def test_assign_updates_sizes_and_replicas(self):
        state = PartitionState(4, 2, 10)
        state.assign(0, 1, 1)
        assert state.sizes.tolist() == [0, 1]
        assert state.replicas[0, 1]
        assert state.replicas[1, 1]
        assert not state.replicas[0, 0]

    def test_assign_self_loop(self):
        state = PartitionState(4, 2, 10)
        state.assign(2, 2, 0)
        assert state.replica_counts()[2] == 1

    def test_assign_over_capacity_raises(self):
        state = PartitionState(4, 2, 2)  # capacity 1 per partition
        state.assign(0, 1, 0)
        with pytest.raises(BalanceError):
            state.assign(2, 3, 0)

    def test_is_full(self):
        state = PartitionState(4, 2, 2)
        assert not state.is_full(0)
        state.assign(0, 1, 0)
        assert state.is_full(0)

    def test_least_loaded_open(self):
        state = PartitionState(6, 3, 9)
        state.assign(0, 1, 0)
        state.assign(0, 1, 0)
        state.assign(2, 3, 1)
        assert state.least_loaded_open() == 2

    def test_least_loaded_all_full(self):
        state = PartitionState(4, 2, 2)
        state.assign(0, 1, 0)
        state.assign(2, 3, 1)
        with pytest.raises(BalanceError):
            state.least_loaded_open()


class TestMetrics:
    def test_replication_factor_single_partition_usage(self):
        state = PartitionState(4, 2, 10)
        state.assign(0, 1, 0)
        state.assign(1, 2, 0)
        # 3 vertices, each on exactly 1 partition.
        assert state.replication_factor() == 1.0

    def test_replication_factor_with_replication(self):
        state = PartitionState(2, 2, 10)
        state.assign(0, 1, 0)
        state.assign(0, 1, 1)
        assert state.replication_factor() == 2.0

    def test_replication_factor_excludes_uncovered(self):
        state = PartitionState(100, 2, 10)
        state.assign(0, 1, 0)
        assert state.replication_factor() == 1.0

    def test_replication_factor_empty(self):
        state = PartitionState(10, 2, 10)
        assert state.replication_factor() == 0.0

    def test_vertex_cover_sizes(self):
        state = PartitionState(4, 2, 10)
        state.assign(0, 1, 0)
        state.assign(1, 2, 1)
        assert state.vertex_cover_sizes().tolist() == [2, 2]

    def test_measured_alpha(self):
        state = PartitionState(8, 2, 4)
        state.assign(0, 1, 0)
        state.assign(2, 3, 0)
        state.sizes[1] = 2  # balance manually for the metric
        assert state.measured_alpha() == 1.0
        state.sizes[0] = 3
        state.sizes[1] = 1
        assert state.measured_alpha() == 1.5

    def test_nbytes_grows_with_k(self):
        small = PartitionState(100, 4, 10)
        large = PartitionState(100, 64, 10)
        assert large.nbytes() > small.nbytes()
