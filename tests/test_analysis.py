"""Tests for the analysis metrics (modularity, anatomy) and the
clustering-quality experiment."""

import networkx as nx
import numpy as np
import pytest

from repro.baselines import DBH
from repro.core import TwoPhasePartitioner
from repro.core.clustering import StreamingClustering, default_volume_cap
from repro.errors import PartitioningError
from repro.experiments import clustering_quality
from repro.metrics.analysis import (
    cluster_size_histogram,
    clustering_modularity,
    intra_cluster_edge_fraction,
    partition_anatomy,
)
from repro.streaming import InMemoryEdgeStream


class TestModularity:
    def test_matches_networkx(self, community_graph):
        graph = community_graph.deduplicated().without_self_loops()
        cap = default_volume_cap(graph.n_edges, 8)
        clustering = StreamingClustering(volume_cap=cap).run(
            InMemoryEdgeStream(graph), degrees=graph.degrees
        )
        ours = clustering_modularity(graph, clustering.v2c)
        G = nx.Graph()
        G.add_nodes_from(range(graph.n_vertices))
        G.add_edges_from(graph.edges.tolist())
        labels = clustering.v2c.copy()
        base = labels.max() + 1
        singles = np.where(labels < 0)[0]
        labels[singles] = base + np.arange(singles.shape[0])
        communities = {}
        for v, c in enumerate(labels):
            communities.setdefault(int(c), set()).add(v)
        expected = nx.algorithms.community.modularity(
            G, communities.values()
        )
        assert ours == pytest.approx(expected, abs=1e-9)

    def test_single_cluster_zero(self, toy_graph):
        v2c = np.zeros(toy_graph.n_vertices, dtype=np.int64)
        assert clustering_modularity(toy_graph, v2c) == pytest.approx(0.0)

    def test_planted_communities_high(self, community_graph):
        truth = np.arange(community_graph.n_vertices) // 24
        q = clustering_modularity(community_graph, truth)
        assert q > 0.5

    def test_rejects_bad_length(self, toy_graph):
        with pytest.raises(PartitioningError):
            clustering_modularity(toy_graph, np.zeros(3))

    def test_empty_graph(self):
        from repro.graph import Graph

        g = Graph([], n_vertices=4)
        assert clustering_modularity(g, np.zeros(4)) == 0.0


class TestIntraFraction:
    def test_ground_truth(self, community_graph):
        truth = np.arange(community_graph.n_vertices) // 24
        frac = intra_cluster_edge_fraction(community_graph, truth)
        assert frac > 0.85

    def test_all_singletons(self, toy_graph):
        v2c = np.arange(toy_graph.n_vertices)
        assert intra_cluster_edge_fraction(toy_graph, v2c) == 0.0


class TestHistogram:
    def test_sizes_sorted_descending(self, community_graph):
        cap = default_volume_cap(community_graph.n_edges, 8)
        clustering = StreamingClustering(volume_cap=cap).run(
            InMemoryEdgeStream(community_graph),
            degrees=community_graph.degrees,
        )
        hist = cluster_size_histogram(clustering.v2c)
        assert (np.diff(hist) <= 0).all()
        assert hist.sum() == (clustering.v2c >= 0).sum()

    def test_empty(self):
        assert cluster_size_histogram(np.full(5, -1)).shape == (0,)


class TestAnatomy:
    def test_totals_consistent(self, community_graph):
        result = TwoPhasePartitioner().partition(community_graph, 4)
        rows = partition_anatomy(
            community_graph.edges, result.assignments, 4,
            community_graph.n_vertices,
        )
        assert len(rows) == 4
        assert sum(r["edges"] for r in rows) == community_graph.n_edges
        covers = np.asarray([r["cover"] for r in rows])
        assert covers.sum() == result.state.vertex_cover_sizes().sum()

    def test_internal_fraction_bounds(self, community_graph):
        result = DBH().partition(community_graph, 4)
        rows = partition_anatomy(
            community_graph.edges, result.assignments, 4,
            community_graph.n_vertices,
        )
        for row in rows:
            assert 0.0 <= row["internal_fraction"] <= 1.0
            assert row["internal_vertices"] <= row["cover"]

    def test_clustered_partitioning_more_internal(self, community_graph):
        """2PS-L's cluster placement should yield more internal vertices
        than random hashing."""
        from repro.baselines import RandomHash

        ours = TwoPhasePartitioner().partition(community_graph, 4)
        rand = RandomHash().partition(community_graph, 4)

        def internal_total(result):
            rows = partition_anatomy(
                community_graph.edges, result.assignments, 4,
                community_graph.n_vertices,
            )
            return sum(r["internal_vertices"] for r in rows)

        assert internal_total(ours) > internal_total(rand)

    def test_rejects_mismatch(self, toy_graph):
        with pytest.raises(PartitioningError):
            partition_anatomy(toy_graph.edges, np.zeros(3), 2, 8)


class TestClusteringExperiment:
    def test_structure_and_monotonicity(self):
        result = clustering_quality.run(
            scale=0.05, datasets=("IT",), cap_factors=(0.5, 1.0), passes_list=(1,)
        )
        assert len(result.rows) == 2
        for row in result.rows:
            assert -0.5 < row["modularity"] <= 1.0
            assert 0.0 <= row["intra_frac"] <= 1.0
            assert row["clusters"] > 0
            assert row["rf"] >= 1.0
