"""Tests for the in-memory / hybrid baselines: NE, SNE, DNE, METIS, HEP."""

import numpy as np
import pytest

from repro.baselines import (
    HDRF,
    HEP,
    DistributedNE,
    MetisLike,
    NeighborhoodExpansion,
    RandomHash,
    StreamingNE,
)
from repro.baselines.ne import ExpansionState, edge_adjacency
from repro.errors import ConfigurationError
from repro.metrics import validate_partition


class TestEdgeAdjacency:
    def test_structure(self, toy_graph):
        indptr, nbr, eid = edge_adjacency(toy_graph.edges, toy_graph.n_vertices)
        assert indptr[-1] == 2 * toy_graph.n_edges
        assert nbr.shape == eid.shape

    def test_edge_ids_cover_all(self, community_graph):
        _, _, eid = edge_adjacency(community_graph.edges, community_graph.n_vertices)
        assert set(np.unique(eid)) == set(range(community_graph.n_edges))


class TestExpansionState:
    def test_expand_assigns_within_budget(self, community_graph):
        exp = ExpansionState(community_graph.edges, community_graph.n_vertices)
        got = []
        taken = exp.expand_partition(0, 50, lambda e, p: got.append(e))
        assert taken == len(got) == 50
        assert len(set(got)) == 50

    def test_exhausts_pool(self, toy_graph):
        exp = ExpansionState(toy_graph.edges, toy_graph.n_vertices)
        total = exp.expand_partition(0, 10_000, lambda e, p: None)
        assert total == toy_graph.n_edges
        assert not exp.has_unassigned()

    def test_zero_budget(self, toy_graph):
        exp = ExpansionState(toy_graph.edges, toy_graph.n_vertices)
        assert exp.expand_partition(0, 0, lambda e, p: None) == 0

    def test_expansion_is_local(self, clique_ring):
        """Expansion should swallow a clique before jumping elsewhere."""
        exp = ExpansionState(clique_ring.edges, clique_ring.n_vertices)
        got = []
        clique_edges = 8 * 7 // 2
        exp.expand_partition(0, clique_edges, lambda e, p: got.append(e))
        touched = np.unique(clique_ring.edges[got])
        cliques = set((touched // 8).tolist())
        assert len(cliques) <= 2

    def test_seed_hint_continues_region(self, community_graph):
        exp = ExpansionState(community_graph.edges, community_graph.n_vertices)
        first = []
        exp.expand_partition(0, 30, lambda e, p: first.append(e))
        hub_vertices = np.unique(community_graph.edges[first])
        second = []
        exp.expand_partition(
            0, 30, lambda e, p: second.append(e), seed_hint=hub_vertices
        )
        second_vertices = np.unique(community_graph.edges[second])
        # The continued expansion must overlap the first region.
        assert np.intersect1d(hub_vertices, second_vertices).size > 0

    def test_scan_count_grows(self, toy_graph):
        exp = ExpansionState(toy_graph.edges, toy_graph.n_vertices)
        base = exp.scan_count
        exp.expand_partition(0, 5, lambda e, p: None)
        assert exp.scan_count > base


@pytest.mark.parametrize(
    "factory",
    [
        NeighborhoodExpansion,
        lambda: StreamingNE(cache_factor=2.0),
        lambda: DistributedNE(),
        MetisLike,
        lambda: HEP(tau=1.0),
        lambda: HEP(tau=100.0),
    ],
    ids=["NE", "SNE", "DNE", "METIS", "HEP-1", "HEP-100"],
)
class TestInMemoryContract:
    def test_valid_and_balanced(self, factory, social_graph):
        result = factory().partition(social_graph, 8)
        validate_partition(social_graph.edges, result.assignments, 8, alpha=1.05)

    def test_beats_random(self, factory, community_graph):
        result = factory().partition(community_graph, 4)
        rand = RandomHash().partition(community_graph, 4)
        assert result.replication_factor < rand.replication_factor

    def test_deterministic(self, factory, toy_graph):
        a = factory().partition(toy_graph, 2)
        b = factory().partition(toy_graph, 2)
        assert np.array_equal(a.assignments, b.assignments)


class TestNE:
    def test_quality_on_clusterable_graph(self, clique_ring):
        """NE should nearly match the ideal on a ring of cliques."""
        result = NeighborhoodExpansion().partition(clique_ring, 4)
        assert result.replication_factor < 1.5

    def test_state_bytes_include_graph(self, community_graph):
        """In-memory partitioner: >= O(|E|) space (paper Table II)."""
        result = NeighborhoodExpansion().partition(community_graph, 4)
        assert result.state_bytes >= community_graph.edges.nbytes


class TestSNE:
    def test_rejects_bad_cache(self):
        with pytest.raises(ConfigurationError):
            StreamingNE(cache_factor=0)

    def test_peak_cache_bounded(self, social_graph):
        result = StreamingNE(cache_factor=1.0).partition(social_graph, 8)
        cap = result.extras["cache_capacity"]
        assert result.extras["peak_cache"] <= cap

    def test_larger_cache_not_worse(self, community_graph):
        small = StreamingNE(cache_factor=0.5).partition(community_graph, 8)
        large = StreamingNE(cache_factor=8.0).partition(community_graph, 8)
        assert large.replication_factor <= small.replication_factor * 1.25


class TestDNE:
    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            DistributedNE(expansion_ratio=0)
        with pytest.raises(ConfigurationError):
            DistributedNE(n_workers=0)

    def test_parallel_wall_model(self, community_graph):
        result = DistributedNE(n_workers=4).partition(community_graph, 4)
        assert result.extras["parallel_wall_s"] == pytest.approx(
            result.wall_seconds / 4
        )

    def test_concurrent_fronts_lose_to_sequential_ne(self, clique_ring):
        """The paper's DNE quality gap vs NE (fronts collide)."""
        dne = DistributedNE().partition(clique_ring, 4)
        ne = NeighborhoodExpansion().partition(clique_ring, 4)
        assert ne.replication_factor <= dne.replication_factor + 1e-9


class TestMetisLike:
    def test_quality_on_clusterable_graph(self, clique_ring):
        result = MetisLike().partition(clique_ring, 4)
        assert result.replication_factor < 2.0

    def test_levels_recorded(self, social_graph):
        result = MetisLike().partition(social_graph, 4)
        assert result.extras["levels"] >= 1
        assert result.extras["coarsest_n"] <= social_graph.n_vertices

    def test_refinement_counted(self, community_graph):
        result = MetisLike().partition(community_graph, 4)
        assert result.cost.refinement_moves >= 0
        assert result.cost.expansion_scans > 0


class TestHEP:
    def test_rejects_bad_tau(self):
        with pytest.raises(ConfigurationError):
            HEP(tau=0)

    def test_name_reflects_tau(self):
        assert HEP(tau=1.0).name == "HEP-1"
        assert HEP(tau=100.0).name == "HEP-100"
        assert HEP(tau=2.5).name == "HEP-2.5"

    def test_tau_controls_in_memory_share(self, social_graph):
        low = HEP(tau=1.0).partition(social_graph, 8)
        high = HEP(tau=100.0).partition(social_graph, 8)
        assert low.extras["in_memory_edges"] < high.extras["in_memory_edges"]

    def test_in_memory_plus_streamed_covers_all(self, social_graph):
        result = HEP(tau=10.0).partition(social_graph, 8)
        assert (
            result.extras["in_memory_edges"] + result.extras["streamed_edges"]
            == social_graph.n_edges
        )

    def test_high_tau_quality_close_to_ne(self, community_graph):
        hep = HEP(tau=100.0).partition(community_graph, 4)
        hdrf = HDRF().partition(community_graph, 4)
        assert hep.replication_factor <= hdrf.replication_factor * 1.1
