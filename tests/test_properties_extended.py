"""Property-based tests for the extensions and the processing simulator."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import DBH
from repro.core import IncrementalPartitioner, TwoPhasePartitioner
from repro.graph import Graph
from repro.hypergraph import (
    Hypergraph,
    MinMaxStreaming,
    TwoPhaseHypergraphPartitioner,
)
from repro.processing import PageRank, PartitionedGraph, PregelEngine

SLOW = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graphs(draw, max_vertices=40, max_edges=150):
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    m = draw(st.integers(min_value=1, max_value=max_edges))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    return Graph(rng.integers(0, n, size=(m, 2)), n)


@st.composite
def hypergraphs_strategy(draw, max_vertices=40, max_hyperedges=60):
    n = draw(st.integers(min_value=4, max_value=max_vertices))
    h = draw(st.integers(min_value=1, max_value=max_hyperedges))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    hyperedges = []
    for _ in range(h):
        size = int(rng.integers(2, min(6, n) + 1))
        hyperedges.append(rng.choice(n, size=size, replace=False).tolist())
    return Hypergraph(hyperedges, n)


class TestIncrementalProperties:
    @SLOW
    @given(graph=graphs(), updates=st.integers(min_value=1, max_value=60))
    def test_insert_preserves_consistency(self, graph, updates):
        """After arbitrary inserts: sizes sum to edge count, every insert's
        endpoints are replicated where assigned, RF stays within [1, k]."""
        k = 4
        base = TwoPhasePartitioner(keep_state=True).partition(graph, k)
        inc = IncrementalPartitioner.from_result(base)
        inc.attach_edges(graph.edges, base.assignments)
        rng = np.random.default_rng(1)
        for _ in range(updates):
            u, v = (int(x) for x in rng.integers(0, graph.n_vertices, 2))
            p = inc.insert(u, v)
            assert inc.replicas[u, p]
            assert inc.replicas[v, p]
        assert int(inc.sizes.sum()) == graph.n_edges + updates
        rf = inc.replication_factor()
        assert 1.0 <= rf <= k + 1e-9

    @SLOW
    @given(graph=graphs())
    def test_insert_then_delete_is_identity(self, graph):
        k = 4
        base = TwoPhasePartitioner(keep_state=True).partition(graph, k)
        inc = IncrementalPartitioner.from_result(base)
        inc.attach_edges(graph.edges, base.assignments)
        before_sizes = inc.sizes.copy()
        before_replicas = inc.replicas.copy()
        u, v = 0, graph.n_vertices - 1
        p = inc.insert(u, v)
        inc.delete(u, v, p)
        assert np.array_equal(inc.sizes, before_sizes)
        assert np.array_equal(inc.replicas, before_replicas)


class TestHypergraphProperties:
    @SLOW
    @given(hg=hypergraphs_strategy(), k=st.integers(min_value=2, max_value=8))
    def test_two_phase_valid(self, hg, k):
        result = TwoPhaseHypergraphPartitioner().partition(hg, k)
        assert result.assignments.shape[0] == hg.n_hyperedges
        assert result.assignments.min() >= 0
        assert result.assignments.max() < k
        cap = max(int(1.05 * hg.n_hyperedges / k), -(-hg.n_hyperedges // k))
        assert result.sizes.max() <= cap

    @SLOW
    @given(hg=hypergraphs_strategy(), k=st.integers(min_value=2, max_value=8))
    def test_minmax_valid(self, hg, k):
        result = MinMaxStreaming().partition(hg, k)
        assert result.sizes.sum() == hg.n_hyperedges
        # Replicas must cover exactly the members of assigned hyperedges.
        expected = np.zeros_like(result.replicas)
        for i, members in enumerate(hg):
            expected[members, result.assignments[i]] = True
        assert np.array_equal(result.replicas, expected)

    @SLOW
    @given(hg=hypergraphs_strategy(), k=st.integers(min_value=2, max_value=8))
    def test_linear_score_budget(self, hg, k):
        result = TwoPhaseHypergraphPartitioner().partition(hg, k)
        assert result.cost.score_evaluations <= 2 * hg.n_hyperedges


class TestProcessingProperties:
    @SLOW
    @given(graph=graphs(), k=st.integers(min_value=2, max_value=6))
    def test_pagerank_mass_conserved(self, graph, k):
        result = DBH().partition(graph, k)
        pgraph = PartitionedGraph(
            graph.edges, result.assignments, k, graph.n_vertices
        )
        values, _ = PregelEngine().run(pgraph, PageRank(), max_supersteps=5)
        assert values.sum() == pytest.approx(1.0, abs=1e-9)
        assert (values >= 0).all()

    @SLOW
    @given(graph=graphs(), k=st.integers(min_value=2, max_value=6))
    def test_sync_traffic_consistency(self, graph, k):
        result = DBH().partition(graph, k)
        pgraph = PartitionedGraph(
            graph.edges, result.assignments, k, graph.n_vertices
        )
        sent, recv, total = pgraph.sync_traffic()
        assert sent.sum() == total
        assert recv.sum() == total
        assert total == 2 * pgraph.mirror_count
        # RF and mirrors are two views of the same quantity.
        counts = pgraph.replica_counts
        covered = (counts > 0).sum()
        assert pgraph.mirror_count == counts.sum() - covered
