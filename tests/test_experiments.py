"""Smoke + shape tests for every experiment module (tiny scales).

Each experiment is run at a very small scale; the tests assert the
*structure* of the output (all expected rows present) plus the robust shape
claims the paper makes.  The full-scale shapes are asserted in
``benchmarks/``.
"""

import pytest

from repro.experiments import (
    figure1,
    figure2,
    figure3,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    table1,
    table2,
    table3,
    table5,
)
from repro.experiments.common import ExperimentResult, make_partitioner, run_one
from repro.experiments.report import format_table, render_result
from repro.errors import ConfigurationError


class TestCommon:
    def test_make_partitioner_known(self):
        assert make_partitioner("2PS-L").name == "2PS-L"
        assert make_partitioner("HEP-10").name == "HEP-10"

    def test_make_partitioner_unknown(self):
        with pytest.raises(ConfigurationError):
            make_partitioner("FOO")

    def test_run_one_row_schema(self):
        row = run_one("DBH", "OK", 4, scale=0.02)
        assert {
            "partitioner", "dataset", "k", "rf", "alpha", "wall_s", "model_s"
        } <= set(row)

    def test_result_filters(self):
        result = ExperimentResult(
            "x", "t", rows=[{"a": 1, "b": 2}, {"a": 1, "b": 3}, {"a": 2, "b": 4}]
        )
        assert len(result.rows_for(a=1)) == 2
        assert result.column("b", a=1) == [2, 3]


class TestReport:
    def test_format_table_basic(self):
        text = format_table([{"x": 1, "y": "ab"}], title="T")
        assert "T" in text
        assert "x" in text and "ab" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_missing_cells_blank(self):
        text = format_table([{"x": 1}, {"y": 2}])
        assert "x" in text and "y" in text

    def test_render_includes_reference(self):
        result = ExperimentResult("e", "T", rows=[{"a": 1}], paper_reference="P")
        assert "Paper reports: P" in render_result(result)


class TestFigure1:
    def test_rows_and_growth(self):
        result = figure1.run()
        years = [r["year"] for r in result.rows]
        assert min(years) == 2012
        assert max(years) >= 2021
        by_year = {r["year"]: r["year_max_edges"] for r in result.rows}
        assert by_year[2021] > by_year[2012]


class TestFigure2:
    def test_shape_claims(self):
        result = figure2.run(scale=0.05, ks=(4, 32))
        for k in (4, 32):
            names = {r["partitioner"] for r in result.rows_for(k=k)}
            assert names == {"2PS-L", "HDRF", "DBH"}
        # 2PS-L model time flat in k, HDRF grows.
        tp = result.column("model_s", partitioner="2PS-L")
        th = result.column("model_s", partitioner="HDRF")
        assert tp[1] < 2 * tp[0]
        assert th[1] > 3 * th[0]


class TestFigure3:
    def test_matches_paper_shape(self):
        result = figure3.run()
        aware = result.rows_for(strategy="clustering-aware (2PS-L)")[0]
        agnostic = [r for r in result.rows if "agnostic" in r["strategy"]][0]
        assert aware["cut_vertices"] == 2
        assert agnostic["cut_vertices"] > aware["cut_vertices"]


class TestFigure5:
    def test_fractions_sum_to_one(self):
        result = figure5.run(scale=0.05, datasets=("OK", "IT"))
        for row in result.rows:
            total = (
                row["degree_frac"] + row["clustering_frac"] + row["partitioning_frac"]
            )
            assert total == pytest.approx(1.0, abs=0.01)
            assert row["partitioning_frac"] > row["degree_frac"]


class TestFigure6:
    def test_web_prepartitions_more_than_social(self):
        result = figure6.run(scale=0.1, datasets=("OK", "IT"))
        ok = result.rows_for(dataset="OK")[0]
        it = result.rows_for(dataset="IT")[0]
        assert it["prepartitioned_frac"] > ok["prepartitioned_frac"]
        for row in result.rows:
            assert row["prepartitioned_frac"] + row["remaining_frac"] == pytest.approx(
                1.0, abs=0.01
            )


class TestFigure7:
    def test_normalization(self):
        result = figure7.run(scale=0.05, datasets=("IT",), passes=(1, 2, 4))
        first = result.rows_for(dataset="IT", passes=1)[0]
        assert first["normalized_rf"] == 1.0
        for row in result.rows:
            assert 0.7 < row["normalized_rf"] < 1.3


class TestFigure8:
    def test_runtime_grows_sublinearly(self):
        result = figure8.run(scale=0.05, datasets=("IT",), passes=(1, 4))
        four = result.rows_for(dataset="IT", passes=4)[0]
        assert four["normalized_model"] > 1.0
        # 4 passes must NOT quadruple the total (clustering is a fraction).
        assert four["normalized_model"] < 3.0


class TestFigure9:
    def test_hdrf_variant_tradeoff(self):
        result = figure9.run(scale=0.05, datasets=("IT",), ks=(4, 32))
        for row in result.rows:
            assert row["normalized_rf"] <= 1.1  # quality same or better
        t4 = result.rows_for(k=4)[0]["normalized_model_time"]
        t32 = result.rows_for(k=32)[0]["normalized_model_time"]
        assert t32 > t4  # run-time penalty grows with k


class TestTable1:
    def test_complexity_classes_match_paper(self):
        result = table1.run(scale=0.03)
        for row in result.rows:
            assert row["match"], f"{row['partitioner']} complexity mismatch"


class TestTable2:
    def test_k_scaling_shapes(self):
        result = table2.run(scale=0.03)
        by_name = {r["partitioner"]: r for r in result.rows}
        assert by_name["2PS-L"]["k_scaling_32x"] > 3
        assert by_name["HDRF"]["k_scaling_32x"] > 3
        assert by_name["DBH"]["k_scaling_32x"] == 1.0


class TestTable3:
    def test_covers_all_datasets(self):
        result = table3.run(scale=0.02)
        assert len(result.rows) == 8
        for row in result.rows:
            assert row["paper_E"] > row["standin_E"]


class TestTable5:
    def test_device_ordering(self):
        result = table5.run(scale=0.05, datasets=("OK", "IT"))
        for row in result.rows:
            assert row["page_cache_s"] < row["ssd_s"] < row["hdd_s"]
            assert 0 < row["ssd_slowdown"] < row["hdd_slowdown"]
