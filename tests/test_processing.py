"""Tests for the distributed graph-processing simulator."""

import networkx as nx
import numpy as np
import pytest

from repro.baselines import DBH, RandomHash
from repro.core import TwoPhasePartitioner
from repro.errors import ProcessingError
from repro.processing import (
    ConnectedComponents,
    PageRank,
    PartitionedGraph,
    PregelEngine,
    SingleSourceShortestPaths,
)
from repro.processing.cost import ClusterSpec, SimReport


def build(graph, k=4, partitioner=None):
    partitioner = partitioner or DBH()
    result = partitioner.partition(graph, k)
    return PartitionedGraph(graph.edges, result.assignments, k, graph.n_vertices)


class TestPartitionedGraph:
    def test_local_edges_cover_all(self, community_graph):
        pg = build(community_graph)
        total = sum(e.shape[0] for e in pg.local_edges)
        assert total == community_graph.n_edges

    def test_replica_counts_match_rf(self, community_graph):
        result = DBH().partition(community_graph, 4)
        pg = PartitionedGraph(
            community_graph.edges, result.assignments, 4, community_graph.n_vertices
        )
        assert pg.replication_factor() == pytest.approx(result.replication_factor)

    def test_master_is_a_replica(self, community_graph):
        pg = build(community_graph)
        covered = pg.replica_counts > 0
        for v in np.where(covered)[0][:50]:
            assert pg.replicas[v, pg.master[v]]

    def test_mirror_count(self, community_graph):
        pg = build(community_graph)
        counts = pg.replica_counts
        assert pg.mirror_count == counts.sum() - (counts > 0).sum()

    def test_sync_traffic_totals(self, community_graph):
        pg = build(community_graph)
        sent, recv, total = pg.sync_traffic()
        assert sent.sum() == recv.sum() == total
        assert total == 2 * pg.mirror_count

    def test_rejects_mismatched_lengths(self, toy_graph):
        with pytest.raises(ProcessingError):
            PartitionedGraph(toy_graph.edges, np.zeros(3), 2, toy_graph.n_vertices)

    def test_rejects_empty(self):
        with pytest.raises(ProcessingError):
            PartitionedGraph(
                np.empty((0, 2), dtype=int), np.empty(0, dtype=int), 2, 4
            )


class TestPageRankCorrectness:
    def test_matches_networkx(self, community_graph):
        graph = community_graph.deduplicated().without_self_loops()
        pg = build(graph, k=4)
        values, _ = PregelEngine().run(pg, PageRank(tol=1e-12), max_supersteps=300)
        G = nx.Graph()
        G.add_edges_from(graph.edges.tolist())
        expected = nx.pagerank(G, alpha=0.85, max_iter=300, tol=1e-13)
        for v, want in expected.items():
            assert values[v] == pytest.approx(want, abs=1e-8)

    def test_partitioning_invariant(self, community_graph):
        """PR values are identical regardless of how edges are partitioned."""
        graph = community_graph.deduplicated().without_self_loops()
        a = build(graph, k=2, partitioner=DBH())
        b = build(graph, k=8, partitioner=RandomHash())
        va, _ = PregelEngine().run(a, PageRank(), max_supersteps=20)
        vb, _ = PregelEngine().run(b, PageRank(), max_supersteps=20)
        assert np.allclose(va, vb)

    def test_mass_conserved(self, community_graph):
        pg = build(community_graph)
        values, _ = PregelEngine().run(pg, PageRank(), max_supersteps=30)
        assert values.sum() == pytest.approx(1.0, abs=1e-6)

    def test_rejects_bad_damping(self):
        with pytest.raises(ProcessingError):
            PageRank(damping=1.5)


class TestConnectedComponents:
    def test_matches_networkx(self, social_graph):
        pg = build(social_graph)
        labels, report = PregelEngine().run(
            pg, ConnectedComponents(), max_supersteps=200
        )
        assert report.converged
        G = nx.Graph()
        G.add_edges_from(social_graph.edges.tolist())
        for comp in nx.connected_components(G):
            comp_labels = {int(labels[v]) for v in comp}
            assert len(comp_labels) == 1
            assert min(comp) == comp_labels.pop()

    def test_ring_single_component(self, clique_ring):
        pg = build(clique_ring)
        labels, _ = PregelEngine().run(pg, ConnectedComponents(), max_supersteps=100)
        covered = pg.replica_counts > 0
        assert np.unique(labels[covered]).shape[0] == 1


class TestSSSP:
    def test_matches_networkx(self, community_graph):
        pg = build(community_graph)
        source = int(community_graph.edges[0, 0])
        dist, report = PregelEngine().run(
            pg, SingleSourceShortestPaths(source), max_supersteps=100
        )
        assert report.converged
        G = nx.Graph()
        G.add_edges_from(community_graph.edges.tolist())
        expected = nx.single_source_shortest_path_length(G, source)
        for v, d in expected.items():
            assert dist[v] == d

    def test_unreachable_is_inf(self):
        from repro.graph import Graph

        g = Graph([(0, 1), (2, 3)], n_vertices=4)
        result = RandomHash().partition(g, 2)
        pg = PartitionedGraph(g.edges, result.assignments, 2, 4)
        dist, _ = PregelEngine().run(
            pg, SingleSourceShortestPaths(0), max_supersteps=10
        )
        assert dist[1] == 1
        assert np.isinf(dist[2])

    def test_rejects_bad_source(self, toy_graph):
        pg = build(toy_graph, k=2)
        with pytest.raises(ProcessingError):
            PregelEngine().run(pg, SingleSourceShortestPaths(99), max_supersteps=5)


class TestCostModel:
    def test_lower_rf_means_less_comm(self, community_graph):
        good = build(community_graph, k=8, partitioner=TwoPhasePartitioner())
        bad = build(community_graph, k=8, partitioner=RandomHash())
        assert good.replication_factor() < bad.replication_factor()
        _, rep_good = PregelEngine().run(good, PageRank(), max_supersteps=10)
        _, rep_bad = PregelEngine().run(bad, PageRank(), max_supersteps=10)
        assert rep_good.comm_seconds < rep_bad.comm_seconds
        assert rep_good.total_messages < rep_bad.total_messages

    def test_report_accumulates(self, toy_graph):
        pg = build(toy_graph, k=2)
        _, report = PregelEngine().run(pg, PageRank(), max_supersteps=7)
        assert report.supersteps == 7
        assert len(report.per_superstep) == 7
        assert report.total_seconds == pytest.approx(
            report.compute_seconds + report.comm_seconds + report.latency_seconds
        )

    def test_cluster_spec_validation(self):
        with pytest.raises(ProcessingError):
            ClusterSpec(edge_rate=0)
        with pytest.raises(ProcessingError):
            ClusterSpec(superstep_latency=-1)

    def test_scaled_spec(self):
        base = ClusterSpec.paper_cluster()
        slow = base.scaled(10)
        assert slow.edge_rate == base.edge_rate / 10
        assert slow.superstep_latency == base.superstep_latency

    def test_scaled_rejects_bad_ratio(self):
        with pytest.raises(ProcessingError):
            ClusterSpec.paper_cluster().scaled(0)

    def test_engine_rejects_bad_supersteps(self, toy_graph):
        pg = build(toy_graph, k=2)
        with pytest.raises(ProcessingError):
            PregelEngine().run(pg, PageRank(), max_supersteps=0)

    def test_sim_report_record(self):
        report = SimReport()
        report.record(1.0, 2.0, 0.5, 10)
        assert report.total_seconds == 3.5
        assert report.total_messages == 10
