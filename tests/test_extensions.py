"""Tests for the Section-VI extensions: incremental, parallel, hypergraph."""

import numpy as np
import pytest

from repro.core import IncrementalPartitioner, ParallelTwoPhase, TwoPhasePartitioner
from repro.errors import ConfigurationError, PartitioningError
from repro.hypergraph import (
    HashHyperedges,
    Hypergraph,
    MinMaxStreaming,
    TwoPhaseHypergraphPartitioner,
    planted_hypergraph,
)
from repro.metrics import validate_partition
from repro.partitioning.state import PackedReplicaMatrix


def _incremental_snapshot(inc):
    """Deep copy of every piece of mutable IncrementalPartitioner state."""
    replicas = (
        inc.replicas.packed.copy()
        if isinstance(inc.replicas, PackedReplicaMatrix)
        else inc.replicas.copy()
    )
    return {
        "degrees": inc.degrees.copy(),
        "v2c": inc.v2c.copy(),
        "volumes": inc.volumes.copy(),
        "c2p": inc.c2p.copy(),
        "replicas": replicas,
        "sizes": inc.sizes.copy(),
        "updates": inc.updates,
        "incidence": dict(inc._incidence),
        "score_evaluations": inc.cost.score_evaluations,
        "hash_evaluations": inc.cost.hash_evaluations,
    }


def _assert_snapshots_equal(before, after):
    for key, expected in before.items():
        actual = after[key]
        if isinstance(expected, np.ndarray):
            np.testing.assert_array_equal(actual, expected, err_msg=key)
        else:
            assert actual == expected, f"{key}: {actual!r} != {expected!r}"


@pytest.fixture(scope="module")
def incremental(request):
    """A fresh incremental partitioner over the community graph."""
    from repro.graph.generators import planted_partition_graph

    graph = planted_partition_graph(20, 24, p_intra=0.6, p_inter=0.002, seed=13)
    base = TwoPhasePartitioner(keep_state=True).partition(graph, 8)
    inc = IncrementalPartitioner.from_result(base)
    inc.attach_edges(graph.edges, base.assignments)
    return graph, base, inc


class TestIncremental:
    def test_requires_kept_state(self, community_graph):
        base = TwoPhasePartitioner().partition(community_graph, 4)
        with pytest.raises(PartitioningError):
            IncrementalPartitioner.from_result(base)

    def test_initial_rf_matches_base(self, incremental):
        _, base, inc = incremental
        assert inc.replication_factor() == pytest.approx(base.replication_factor)

    def test_insert_returns_valid_partition(self, incremental):
        _, _, inc = incremental
        p = inc.insert(0, 1)
        assert 0 <= p < inc.k

    def test_insert_updates_state(self, community_graph):
        base = TwoPhasePartitioner(keep_state=True).partition(community_graph, 4)
        inc = IncrementalPartitioner.from_result(base)
        inc.attach_edges(community_graph.edges, base.assignments)
        before = int(inc.sizes.sum())
        p = inc.insert(2, 3)
        assert int(inc.sizes.sum()) == before + 1
        assert inc.replicas[2, p]
        assert inc.replicas[3, p]

    def test_intra_cluster_insert_prefers_cluster_partition(self, incremental):
        graph, base, inc = incremental
        # Vertices 0 and 1 are in community 0; if they share a cluster the
        # insert must go to that cluster's partition.
        cu = int(inc.v2c[0])
        cv = int(inc.v2c[1])
        if cu == cv:
            expected = int(inc.c2p[cu])
            if inc.sizes[expected] < inc.capacity:
                assert inc.insert(0, 1) == expected

    def test_new_vertex_adopts_neighbor_cluster(self, incremental):
        _, _, inc = incremental
        fresh = inc.v2c.shape[0] + 5
        inc.insert(0, fresh)
        assert inc.v2c[fresh] == inc.v2c[0]

    def test_two_new_vertices_open_cluster(self, incremental):
        _, _, inc = incremental
        a = inc.v2c.shape[0] + 10
        b = a + 1
        inc.insert(a, b)
        assert inc.v2c[a] >= 0
        assert inc.v2c[b] >= 0

    def test_delete_reverses_insert(self, community_graph):
        base = TwoPhasePartitioner(keep_state=True).partition(community_graph, 4)
        inc = IncrementalPartitioner.from_result(base)
        inc.attach_edges(community_graph.edges, base.assignments)
        rf_before = inc.replication_factor()
        fresh = community_graph.n_vertices + 1
        p = inc.insert(0, fresh)
        inc.delete(0, fresh, p)
        assert inc.replication_factor() == pytest.approx(rf_before)

    def test_delete_unknown_edge_rejected(self, incremental):
        _, _, inc = incremental
        with pytest.raises(PartitioningError):
            inc.delete(0, 1, (int(np.argmin(inc.sizes)) + 1) % inc.k)

    def test_delete_clears_empty_replica(self, community_graph):
        base = TwoPhasePartitioner(keep_state=True).partition(community_graph, 4)
        inc = IncrementalPartitioner.from_result(base)
        inc.attach_edges(community_graph.edges, base.assignments)
        fresh = community_graph.n_vertices + 2
        p = inc.insert(5, fresh)
        assert inc.replicas[fresh, p]
        inc.delete(5, fresh, p)
        assert not inc.replicas[fresh, p]

    def test_failed_insert_is_transactional(self, community_graph, monkeypatch):
        """Regression: a rejected insert must not leak counter mutations.

        Pre-fix, ``insert`` mutated degrees/volumes (and grew state via
        ``_ensure_vertex``) *before* the capacity feasibility check, so
        the raised ``PartitioningError`` left corrupted counters behind.
        Consistent state always has an open partition
        (``cap(m+1) * k >= m+1``), so the rejection is forced through the
        ``_insertion_capacity`` seam.
        """
        base = TwoPhasePartitioner(keep_state=True).partition(community_graph, 4)
        inc = IncrementalPartitioner.from_result(base)
        inc.attach_edges(community_graph.edges, base.assignments)
        monkeypatch.setattr(inc, "_insertion_capacity", lambda m_after: 0)
        fresh = community_graph.n_vertices + 7
        before = _incremental_snapshot(inc)
        # Existing vertices, one new vertex (growth + neighbor adoption),
        # and two new vertices (growth + a freshly opened cluster).
        for u, v in [(0, 1), (0, fresh), (fresh, fresh + 1)]:
            with pytest.raises(PartitioningError, match="at capacity"):
                inc.insert(u, v)
            _assert_snapshots_equal(before, _incremental_snapshot(inc))
        # And the partitioner still works once the cap seam is restored.
        monkeypatch.undo()
        p = inc.insert(0, 1)
        assert 0 <= p < inc.k

    def test_negative_vertex_id_rejected_before_mutation(self, community_graph):
        base = TwoPhasePartitioner(keep_state=True).partition(community_graph, 4)
        inc = IncrementalPartitioner.from_result(base)
        before = _incremental_snapshot(inc)
        with pytest.raises(PartitioningError, match="must be >= 0"):
            inc.insert(-1, 3)
        _assert_snapshots_equal(before, _incremental_snapshot(inc))

    def test_from_result_packed_state(self, community_graph):
        """Regression: ``from_result`` of a ``packed_state=True`` run.

        Pre-fix, ``__init__``'s ``replicas.copy()`` silently densified the
        packed matrix back to ``|V| x k`` bools, and the ``np.vstack``
        grow path kept it dense.  The packed partitioner must stay packed
        through growth/insert/delete and mirror the dense twin bit for
        bit (packed and dense base runs are bit-exact by contract).
        """
        dense_base = TwoPhasePartitioner(keep_state=True).partition(
            community_graph, 8
        )
        packed_base = TwoPhasePartitioner(
            keep_state=True, packed_state=True
        ).partition(community_graph, 8)
        dense = IncrementalPartitioner.from_result(dense_base)
        packed = IncrementalPartitioner.from_result(packed_base)
        assert isinstance(packed.replicas, PackedReplicaMatrix)
        dense.attach_edges(community_graph.edges, dense_base.assignments)
        packed.attach_edges(community_graph.edges, packed_base.assignments)
        fresh = community_graph.n_vertices + 3
        for u, v in [(0, 1), (2, fresh), (fresh, fresh + 1)]:
            assert dense.insert(u, v) == packed.insert(u, v)
        p = dense.insert(5, fresh + 2)
        assert packed.insert(5, fresh + 2) == p
        dense.delete(5, fresh + 2, p)
        packed.delete(5, fresh + 2, p)
        # Growth and deletion never densified the packed representation.
        assert isinstance(packed.replicas, PackedReplicaMatrix)
        np.testing.assert_array_equal(np.asarray(packed.replicas), dense.replicas)
        np.testing.assert_array_equal(packed.sizes, dense.sizes)
        assert packed.replication_factor() == dense.replication_factor()

    def test_quality_degrades_gracefully(self, community_graph):
        """A churn of random inserts should not blow up RF."""
        base = TwoPhasePartitioner(keep_state=True).partition(community_graph, 8)
        inc = IncrementalPartitioner.from_result(base)
        inc.attach_edges(community_graph.edges, base.assignments)
        rng = np.random.default_rng(4)
        for _ in range(300):
            u, v = rng.integers(0, community_graph.n_vertices, 2)
            inc.insert(int(u), int(v))
        assert inc.replication_factor() < base.replication_factor * 1.5
        assert inc.staleness > 0


class TestParallel:
    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            ParallelTwoPhase(n_workers=0)
        with pytest.raises(ConfigurationError):
            ParallelTwoPhase(sync_interval=0)

    def test_valid_partitioning(self, social_graph):
        result = ParallelTwoPhase(n_workers=4).partition(social_graph, 8)
        validate_partition(social_graph.edges, result.assignments, 8)

    def test_single_worker_close_to_sequential(self, community_graph):
        par = ParallelTwoPhase(n_workers=1, sync_interval=10**9).partition(
            community_graph, 8
        )
        seq = TwoPhasePartitioner().partition(community_graph, 8)
        assert par.replication_factor == pytest.approx(
            seq.replication_factor, rel=0.1
        )

    def test_sync_count_decreases_with_interval(self, community_graph):
        fine = ParallelTwoPhase(n_workers=4, sync_interval=32).partition(
            community_graph, 8
        )
        coarse = ParallelTwoPhase(n_workers=4, sync_interval=4096).partition(
            community_graph, 8
        )
        assert fine.extras["syncs"] > coarse.extras["syncs"]

    def test_quality_within_band_of_sequential(self, social_graph):
        """Staleness costs quality, but boundedly (the CuSP observation)."""
        par = ParallelTwoPhase(n_workers=4, sync_interval=256).partition(
            social_graph, 8
        )
        seq = TwoPhasePartitioner().partition(social_graph, 8)
        assert par.replication_factor < seq.replication_factor * 1.3

    def test_parallel_wall_model(self, community_graph):
        result = ParallelTwoPhase(n_workers=4, sync_interval=128).partition(
            community_graph, 8
        )
        assert result.extras["parallel_wall_s"] > 0
        assert result.extras["n_workers"] == 4


class TestHypergraphModel:
    def test_construction(self):
        hg = Hypergraph([[0, 1, 2], [2, 3]])
        assert hg.n_vertices == 4
        assert hg.n_hyperedges == 2
        assert hg.total_pins == 5

    def test_rejects_singleton_hyperedge(self):
        from repro.errors import GraphError

        with pytest.raises(GraphError):
            Hypergraph([[0]])

    def test_rejects_negative_ids(self):
        from repro.errors import GraphError

        with pytest.raises(GraphError):
            Hypergraph([[0, -1]])

    def test_degrees_count_pins(self):
        hg = Hypergraph([[0, 1], [0, 2], [0, 3]])
        assert hg.degrees.tolist() == [3, 1, 1, 1]

    def test_iteration(self):
        hg = Hypergraph([[0, 1, 2], [3, 4]])
        sizes = [len(he) for he in hg]
        assert sizes == [3, 2]

    def test_planted_generator_deterministic(self):
        a = planted_hypergraph(5, 10, 100, seed=2)
        b = planted_hypergraph(5, 10, 100, seed=2)
        assert np.array_equal(a.members, b.members)

    def test_planted_generator_intra_bias(self):
        hg = planted_hypergraph(10, 12, 500, p_intra=0.9, seed=3)
        intra = 0
        for members in hg:
            comms = set((members // 12).tolist())
            intra += len(comms) == 1
        assert intra > 0.7 * hg.n_hyperedges


class TestHypergraphPartitioners:
    @pytest.fixture(scope="class")
    def hg(self):
        return planted_hypergraph(20, 16, 1500, seed=5)

    @pytest.mark.parametrize(
        "factory",
        [TwoPhaseHypergraphPartitioner, MinMaxStreaming, HashHyperedges],
        ids=["2PS-L-H", "MinMax", "HashH"],
    )
    def test_every_hyperedge_assigned(self, factory, hg):
        result = factory().partition(hg, 8)
        assert result.assignments.shape[0] == hg.n_hyperedges
        assert result.assignments.min() >= 0
        assert result.assignments.max() < 8

    @pytest.mark.parametrize(
        "factory",
        [TwoPhaseHypergraphPartitioner, MinMaxStreaming],
        ids=["2PS-L-H", "MinMax"],
    )
    def test_balance_cap(self, factory, hg):
        result = factory().partition(hg, 8, alpha=1.05)
        cap = max(int(1.05 * hg.n_hyperedges / 8), -(-hg.n_hyperedges // 8))
        assert result.sizes.max() <= cap

    def test_rejects_empty(self):
        with pytest.raises(PartitioningError):
            TwoPhaseHypergraphPartitioner().partition(Hypergraph([], 4), 4)

    def test_rejects_k_one(self, hg):
        with pytest.raises(PartitioningError):
            MinMaxStreaming().partition(hg, 1)

    def test_quality_ordering(self, hg):
        """Clustering-aware beats hashing; full-k stateful beats both —
        the same hierarchy the paper shows for graphs."""
        two = TwoPhaseHypergraphPartitioner().partition(hg, 8)
        mm = MinMaxStreaming().partition(hg, 8)
        hh = HashHyperedges().partition(hg, 8)
        assert two.replication_factor < hh.replication_factor
        assert mm.replication_factor <= two.replication_factor * 1.6

    def test_linear_cost_profile(self, hg):
        """2PS-L-H scores O(1) candidates per hyperedge, MinMax scores k."""
        two = TwoPhaseHypergraphPartitioner().partition(hg, 16)
        mm = MinMaxStreaming().partition(hg, 16)
        assert two.cost.score_evaluations <= 2 * hg.n_hyperedges
        assert mm.cost.score_evaluations == 16 * hg.n_hyperedges

    def test_replication_factor_at_least_one(self, hg):
        result = TwoPhaseHypergraphPartitioner().partition(hg, 4)
        assert result.replication_factor >= 1.0
