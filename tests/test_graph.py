"""Unit tests for the core Graph container."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import Graph


class TestConstruction:
    def test_basic(self):
        g = Graph([(0, 1), (1, 2)])
        assert g.n_vertices == 3
        assert g.n_edges == 2

    def test_explicit_vertex_count_allows_isolated(self):
        g = Graph([(0, 1)], n_vertices=10)
        assert g.n_vertices == 10
        assert g.degrees.shape == (10,)
        assert g.degrees[9] == 0

    def test_empty_graph(self):
        g = Graph([], n_vertices=5)
        assert g.n_edges == 0
        assert g.n_vertices == 5
        assert g.degrees.sum() == 0

    def test_empty_graph_no_vertices(self):
        g = Graph([])
        assert g.n_vertices == 0
        assert g.max_degree == 0

    def test_rejects_bad_shape(self):
        with pytest.raises(GraphError):
            Graph(np.zeros((3, 3)))

    def test_rejects_negative_ids(self):
        with pytest.raises(GraphError):
            Graph([(0, -1)])

    def test_rejects_undersized_vertex_count(self):
        with pytest.raises(GraphError):
            Graph([(0, 7)], n_vertices=5)

    def test_edges_are_read_only(self):
        g = Graph([(0, 1)])
        with pytest.raises(ValueError):
            g.edges[0, 0] = 5

    def test_len_and_iter(self):
        g = Graph([(0, 1), (2, 3)])
        assert len(g) == 2
        assert list(g) == [(0, 1), (2, 3)]


class TestDegrees:
    def test_degrees_count_both_endpoints(self):
        g = Graph([(0, 1), (0, 2), (0, 3)])
        assert g.degrees.tolist() == [3, 1, 1, 1]

    def test_self_loop_counts_twice(self):
        g = Graph([(0, 0)])
        assert g.degrees[0] == 2

    def test_parallel_edges_counted(self):
        g = Graph([(0, 1), (0, 1)])
        assert g.degrees.tolist() == [2, 2]

    def test_max_degree(self, hub_graph):
        assert hub_graph.max_degree == 200

    def test_degrees_cached(self):
        g = Graph([(0, 1)])
        assert g.degrees is g.degrees


class TestCSR:
    def test_neighbors(self):
        g = Graph([(0, 1), (0, 2), (1, 2)])
        assert sorted(g.neighbors(0).tolist()) == [1, 2]
        assert sorted(g.neighbors(1).tolist()) == [0, 2]
        assert sorted(g.neighbors(2).tolist()) == [0, 1]

    def test_csr_covers_both_directions(self, powerlaw_graph):
        indptr, indices = powerlaw_graph.csr()
        assert indices.shape[0] == 2 * powerlaw_graph.n_edges
        assert indptr[-1] == indices.shape[0]

    def test_csr_consistent_with_degrees(self, powerlaw_graph):
        indptr, _ = powerlaw_graph.csr()
        per_vertex = np.diff(indptr)
        assert np.array_equal(per_vertex, powerlaw_graph.degrees)

    def test_isolated_vertex_has_no_neighbors(self):
        g = Graph([(0, 1)], n_vertices=3)
        assert g.neighbors(2).shape[0] == 0


class TestTransforms:
    def test_shuffled_preserves_edge_multiset(self, powerlaw_graph):
        shuffled = powerlaw_graph.shuffled(seed=5)
        a = np.sort(powerlaw_graph.edges, axis=0)
        b = np.sort(shuffled.edges, axis=0)
        assert np.array_equal(np.sort(a.ravel()), np.sort(b.ravel()))

    def test_shuffled_deterministic(self, powerlaw_graph):
        a = powerlaw_graph.shuffled(seed=5)
        b = powerlaw_graph.shuffled(seed=5)
        assert np.array_equal(a.edges, b.edges)

    def test_shuffled_different_seeds_differ(self, powerlaw_graph):
        a = powerlaw_graph.shuffled(seed=5)
        b = powerlaw_graph.shuffled(seed=6)
        assert not np.array_equal(a.edges, b.edges)

    def test_without_self_loops(self):
        g = Graph([(0, 0), (0, 1), (2, 2)])
        clean = g.without_self_loops()
        assert clean.n_edges == 1
        assert clean.edges.tolist() == [[0, 1]]

    def test_deduplicated_removes_reversed_duplicates(self):
        g = Graph([(0, 1), (1, 0), (0, 1), (2, 3)])
        d = g.deduplicated()
        assert d.n_edges == 2

    def test_deduplicated_keeps_first_orientation(self):
        g = Graph([(1, 0), (0, 1)])
        d = g.deduplicated()
        assert d.edges.tolist() == [[1, 0]]

    def test_deduplicated_empty(self):
        g = Graph([], n_vertices=4)
        assert g.deduplicated().n_edges == 0

    def test_subgraph_of_edges_shares_id_space(self):
        g = Graph([(0, 1), (2, 3), (4, 5)])
        sub = g.subgraph_of_edges(np.array([2]))
        assert sub.n_vertices == g.n_vertices
        assert sub.edges.tolist() == [[4, 5]]


class TestBookkeeping:
    def test_nbytes_positive(self, powerlaw_graph):
        assert powerlaw_graph.nbytes() == powerlaw_graph.edges.nbytes

    def test_validate_passes_on_good_graph(self, powerlaw_graph):
        powerlaw_graph.validate()

    def test_repr(self):
        assert "Graph" in repr(Graph([(0, 1)]))
