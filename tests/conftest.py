"""Shared fixtures for the test suite.

Graphs are deliberately small (hundreds to a few thousand edges) so the
whole suite stays fast; structural properties (power-law tails, planted
communities) are preserved at that scale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    DBH,
    HDRF,
    HEP,
    Adwise,
    DistributedNE,
    Greedy,
    Grid,
    MetisLike,
    NeighborhoodExpansion,
    RandomHash,
    StreamingNE,
)
from repro.core import TwoPhasePartitioner
from repro.graph.generators import (
    chung_lu_graph,
    planted_partition_graph,
    ring_of_cliques,
    social_community_graph,
    star_graph,
    two_cluster_toy_graph,
)

#: One factory per partitioner, used by the cross-cutting contract tests.
ALL_PARTITIONER_FACTORIES = {
    "2PS-L": lambda: TwoPhasePartitioner(),
    "2PS-HDRF": lambda: TwoPhasePartitioner(mode="hdrf"),
    "2PS-L-3pass": lambda: TwoPhasePartitioner(clustering_passes=3),
    "HDRF": lambda: HDRF(),
    "DBH": lambda: DBH(),
    "Grid": lambda: Grid(),
    "Random": lambda: RandomHash(),
    "Greedy": lambda: Greedy(),
    "ADWISE": lambda: Adwise(buffer_size=32),
    "NE": lambda: NeighborhoodExpansion(),
    "SNE": lambda: StreamingNE(),
    "DNE": lambda: DistributedNE(),
    "METIS": lambda: MetisLike(),
    "HEP-1": lambda: HEP(tau=1.0),
    "HEP-100": lambda: HEP(tau=100.0),
}

#: Subset that enforces the hard balance cap (stateless hashing cannot).
CAP_ENFORCING = {
    "2PS-L",
    "2PS-HDRF",
    "2PS-L-3pass",
    "HDRF",
    "Greedy",
    "ADWISE",
    "NE",
    "SNE",
    "DNE",
    "METIS",
    "HEP-1",
    "HEP-100",
}


@pytest.fixture(scope="session")
def powerlaw_graph():
    """A small power-law (social-like) multigraph."""
    return chung_lu_graph(400, 4000, gamma=2.1, seed=11)


@pytest.fixture(scope="session")
def community_graph():
    """A small planted-partition (web-like) graph."""
    return planted_partition_graph(20, 24, p_intra=0.6, p_inter=0.002, seed=13)


@pytest.fixture(scope="session")
def social_graph():
    """Mixed community + power-law social graph."""
    return social_community_graph(600, 6000, community_fraction=0.6, seed=17)


@pytest.fixture(scope="session")
def clique_ring():
    """Ring of cliques: perfectly clusterable structure."""
    return ring_of_cliques(12, 8, seed=3)


@pytest.fixture(scope="session")
def toy_graph():
    """The paper's Figure 3 illustration graph."""
    return two_cluster_toy_graph()


@pytest.fixture(scope="session")
def hub_graph():
    """A star: the extreme of degree skew."""
    return star_graph(200)


@pytest.fixture
def rng():
    return np.random.default_rng(99)
