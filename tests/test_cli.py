"""Tests for the repro-partition command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "ok.bin"
    code = main(
        ["generate", "--dataset", "OK", "--scale", "0.02", "--out", str(path)]
    )
    assert code == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["generate", "--dataset", "XX", "--out", "f"]
            )

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["partition", "--input", "f", "--algorithm", "XX", "--k", "4"]
            )


class TestGenerate:
    def test_writes_binary_file(self, graph_file):
        assert graph_file.exists()
        assert graph_file.stat().st_size % 8 == 0

    def test_output_message(self, graph_file, capsys):
        pass  # covered by fixture's exit-code assertion


class TestPartition:
    def test_basic_run(self, graph_file, capsys):
        code = main(
            ["partition", "--input", str(graph_file), "--k", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "replication factor" in out
        assert "2PS-L" in out

    def test_alternative_algorithm(self, graph_file, capsys):
        code = main(
            [
                "partition",
                "--input",
                str(graph_file),
                "--algorithm",
                "DBH",
                "--k",
                "8",
            ]
        )
        assert code == 0
        assert "DBH" in capsys.readouterr().out

    def test_writes_assignments(self, graph_file, tmp_path, capsys):
        out = tmp_path / "assign.bin"
        code = main(
            [
                "partition",
                "--input",
                str(graph_file),
                "--k",
                "4",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        assignments = np.fromfile(out, dtype="<i4")
        assert assignments.shape[0] == graph_file.stat().st_size // 8
        assert assignments.min() >= 0
        assert assignments.max() < 4

    def test_device_reported(self, graph_file, capsys):
        code = main(
            [
                "partition",
                "--input",
                str(graph_file),
                "--k",
                "4",
                "--device",
                "hdd",
            ]
        )
        assert code == 0
        assert "hdd" in capsys.readouterr().out

    def test_missing_file_is_clean_error(self, tmp_path, capsys):
        code = main(
            ["partition", "--input", str(tmp_path / "nope.bin"), "--k", "4"]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_auto_chunk_size(self, graph_file, capsys):
        code = main(
            [
                "partition",
                "--input",
                str(graph_file),
                "--k",
                "4",
                "--chunk-size",
                "auto",
            ]
        )
        assert code == 0
        assert "replication factor" in capsys.readouterr().out

    def test_simulated_runner_flag(self, graph_file, capsys):
        code = main(
            [
                "partition",
                "--input",
                str(graph_file),
                "--k",
                "4",
                "--runner",
                "simulated",
                "--n-workers",
                "3",
                "--sync-interval",
                "64",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2PS-L-parallel" in out
        assert "runner            : simulated" in out
        assert "modeled" in out

    def test_process_runner_flag(self, graph_file, capsys):
        code = main(
            [
                "partition",
                "--input",
                str(graph_file),
                "--k",
                "4",
                "--runner",
                "process",
                "--n-workers",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "runner            : process" in out
        assert "measured" in out

    def test_sync_interval_alone_activates_parallel_path(
        self, graph_file, capsys
    ):
        """--sync-interval must never be silently ignored."""
        code = main(
            [
                "partition",
                "--input",
                str(graph_file),
                "--k",
                "4",
                "--sync-interval",
                "128",
            ]
        )
        assert code == 0
        assert "2PS-L-parallel" in capsys.readouterr().out

    def test_parallel_phase1_flag(self, graph_file, capsys):
        """--parallel-phase1 alone activates the parallel path and runs
        the sharded Phase 1 (the phase-1 sync line proves it)."""
        code = main(
            [
                "partition",
                "--input",
                str(graph_file),
                "--k",
                "4",
                "--parallel-phase1",
                "--n-workers",
                "2",
                "--sync-interval",
                "64",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2PS-L-parallel" in out
        assert "phase-1 syncs" in out

    def test_parallel_phase1_requires_parallel_algorithm(
        self, graph_file, capsys
    ):
        code = main(
            [
                "partition",
                "--input",
                str(graph_file),
                "--k",
                "4",
                "--algorithm",
                "DBH",
                "--parallel-phase1",
            ]
        )
        assert code == 1
        assert "--parallel-phase1" in capsys.readouterr().err

    def test_runner_requires_parallel_algorithm(self, graph_file, capsys):
        code = main(
            [
                "partition",
                "--input",
                str(graph_file),
                "--k",
                "4",
                "--algorithm",
                "DBH",
                "--runner",
                "process",
            ]
        )
        assert code == 1
        assert "--runner" in capsys.readouterr().err


class TestDistributedCli:
    def test_loopback_runner_flag(self, graph_file, capsys):
        code = main(
            [
                "partition",
                "--input",
                str(graph_file),
                "--k",
                "4",
                "--runner",
                "distributed",
                "--n-workers",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "runner            : distributed" in out
        assert "measured" in out

    def test_worker_subcommand_pairs_with_workers_flag(
        self, graph_file, capsys
    ):
        import re
        import threading

        from repro.cli import _cmd_worker

        addrs = []

        def serve():
            _cmd_worker(
                type(
                    "Args",
                    (),
                    {"host": "127.0.0.1", "port": 0, "max_sessions": 1},
                )
            )

        threads = [threading.Thread(target=serve) for _ in range(2)]
        for thread in threads:
            thread.start()
        deadline = 40
        while len(addrs) < 2 and deadline > 0:
            addrs = re.findall(
                r"worker listening on (\S+)", capsys.readouterr().out
            ) + addrs
            deadline -= 1
            if len(addrs) < 2:
                import time

                time.sleep(0.1)
        assert len(addrs) == 2, "workers never announced their ports"
        code = main(
            [
                "partition",
                "--input",
                str(graph_file),
                "--k",
                "4",
                "--workers",
                ",".join(addrs),
            ]
        )
        for thread in threads:
            thread.join(timeout=10)
        assert code == 0
        out = capsys.readouterr().out
        assert "runner            : distributed" in out
        assert not any(thread.is_alive() for thread in threads)

    def test_workers_flag_rejects_other_runner(self, graph_file, capsys):
        code = main(
            [
                "partition",
                "--input",
                str(graph_file),
                "--k",
                "4",
                "--runner",
                "process",
                "--workers",
                "127.0.0.1:9001",
            ]
        )
        assert code == 1
        assert "--workers" in capsys.readouterr().err

    def test_workers_flag_rejects_contradicting_count(
        self, graph_file, capsys
    ):
        code = main(
            [
                "partition",
                "--input",
                str(graph_file),
                "--k",
                "4",
                "--n-workers",
                "3",
                "--workers",
                "127.0.0.1:9001,127.0.0.1:9002",
            ]
        )
        assert code == 1
        assert "contradicts" in capsys.readouterr().err


class TestPartitionedOutput:
    def test_out_dir_and_process(self, graph_file, tmp_path, capsys):
        out_dir = tmp_path / "parts"
        code = main(
            [
                "partition",
                "--input",
                str(graph_file),
                "--k",
                "4",
                "--out-dir",
                str(out_dir),
            ]
        )
        assert code == 0
        assert (out_dir / "manifest.json").exists()
        assert len(list(out_dir.glob("partition_*.bin"))) == 4
        capsys.readouterr()

        code = main(
            [
                "process",
                "--dir",
                str(out_dir),
                "--workload",
                "pagerank",
                "--supersteps",
                "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "replication factor" in out
        assert "supersteps        : 5" in out

    def test_process_components(self, graph_file, tmp_path, capsys):
        out_dir = tmp_path / "parts"
        main(
            [
                "partition",
                "--input",
                str(graph_file),
                "--k",
                "2",
                "--out-dir",
                str(out_dir),
            ]
        )
        capsys.readouterr()
        code = main(
            ["process", "--dir", str(out_dir), "--workload", "components"]
        )
        assert code == 0
        assert "converged" in capsys.readouterr().out

    def test_process_missing_dir(self, tmp_path, capsys):
        code = main(["process", "--dir", str(tmp_path / "nope")])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestServing:
    def test_pipeline_partition_export_lookup(
        self, graph_file, tmp_path, capsys
    ):
        """The full hand-off: partition --out -> serve-export -> lookup."""
        assign = tmp_path / "assign.bin"
        store = tmp_path / "store"
        code = main(
            [
                "partition", "--input", str(graph_file),
                "--k", "4", "--out", str(assign),
            ]
        )
        assert code == 0
        capsys.readouterr()
        code = main(
            [
                "serve-export", "--input", str(graph_file), "--k", "4",
                "--assignments", str(assign), "--store", str(store),
            ]
        )
        assert code == 0
        assert "store bytes" in capsys.readouterr().out
        code = main(
            [
                "lookup", "--store", str(store), "--vertex", "0", "3",
                "--hint", "2", "--edge", "0", "1", "--verify",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "checksums         : OK" in out
        assert "vertex 0 -> partition" in out
        assert "vertex 3 -> partition" in out
        assert "edge (0, 1) -> partition" in out

    def test_serve_export_partitions_inline(
        self, graph_file, tmp_path, capsys
    ):
        store = tmp_path / "store"
        code = main(
            [
                "serve-export", "--input", str(graph_file),
                "--k", "4", "--store", str(store),
            ]
        )
        assert code == 0
        assert (store / "manifest.json").exists()
        capsys.readouterr()
        code = main(["lookup", "--store", str(store), "--vertex", "1"])
        assert code == 0
        assert "vertex 1 -> partition" in capsys.readouterr().out

    def test_lookup_missing_store_is_clean_error(self, tmp_path, capsys):
        code = main(
            ["lookup", "--store", str(tmp_path / "nope"), "--vertex", "0"]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestExperimentSubcommand:
    def test_delegates_to_dispatcher(self, capsys):
        code = main(["experiment", "figure3"])
        assert code == 0
        assert "Figure 3" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        code = main(["experiment", "figure99"])
        assert code == 2


class TestInfoAndList:
    def test_info(self, graph_file, capsys):
        code = main(["info", "--input", str(graph_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "edges" in out

    def test_list(self, capsys):
        code = main(["list"])
        assert code == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "2PS-L" in out
