"""Tests for the stateless partitioners: DBH, Grid, RandomHash."""

import numpy as np

from repro.baselines import DBH, Grid, RandomHash
from repro.metrics import validate_partition
from repro.streaming.order import shuffled_copy


class TestDBH:
    def test_valid_partitioning(self, powerlaw_graph):
        result = DBH().partition(powerlaw_graph, 8)
        validate_partition(powerlaw_graph.edges, result.assignments, 8)

    def test_stream_order_independent(self, powerlaw_graph):
        """Stateless: the assignment of an edge depends only on the edge."""
        base = DBH().partition(powerlaw_graph, 8)
        shuffled = shuffled_copy(powerlaw_graph, seed=3)
        other = DBH().partition(shuffled, 8)
        # Map edge -> partition must be identical.
        base_map = {
            tuple(e): p
            for e, p in zip(powerlaw_graph.edges.tolist(), base.assignments)
        }
        for e, p in zip(shuffled.edges.tolist(), other.assignments):
            assert base_map[tuple(e)] == p

    def test_hashes_lower_degree_endpoint(self, hub_graph):
        """On a star, every edge hashes its leaf: leaves never replicate."""
        result = DBH().partition(hub_graph, 4)
        counts = result.state.replica_counts()
        assert (counts[1:][counts[1:] > 0] == 1).all()
        assert counts[0] == 4  # hub replicated on all partitions

    def test_seed_changes_assignment(self, powerlaw_graph):
        a = DBH(seed=0).partition(powerlaw_graph, 8)
        b = DBH(seed=1).partition(powerlaw_graph, 8)
        assert not np.array_equal(a.assignments, b.assignments)

    def test_fast_cost_profile(self, powerlaw_graph):
        result = DBH().partition(powerlaw_graph, 8)
        assert result.cost.score_evaluations == 0
        assert result.cost.hash_evaluations == powerlaw_graph.n_edges

    def test_cost_independent_of_k(self, powerlaw_graph):
        a = DBH().partition(powerlaw_graph, 4)
        b = DBH().partition(powerlaw_graph, 128)
        assert a.cost.total_operations() == b.cost.total_operations()


class TestGrid:
    def test_valid_partitioning(self, powerlaw_graph):
        result = Grid().partition(powerlaw_graph, 9)
        validate_partition(powerlaw_graph.edges, result.assignments, 9)

    def test_grid_shape(self):
        assert Grid.grid_shape(9) == (3, 3)
        assert Grid.grid_shape(8) == (2, 4)
        assert Grid.grid_shape(2) == (1, 2)
        r, c = Grid.grid_shape(17)
        assert r * c >= 17

    def test_bounded_replication(self, powerlaw_graph):
        """Grid bounds each vertex's replicas by one row + one column."""
        k = 16
        r, c = Grid.grid_shape(k)
        result = Grid().partition(powerlaw_graph, k)
        assert result.state.replica_counts().max() <= r + c

    def test_non_square_k(self, powerlaw_graph):
        result = Grid().partition(powerlaw_graph, 7)
        validate_partition(powerlaw_graph.edges, result.assignments, 7)

    def test_zero_state_bytes(self, powerlaw_graph):
        assert Grid().partition(powerlaw_graph, 8).state_bytes == 0


class TestRandomHash:
    def test_valid_partitioning(self, powerlaw_graph):
        result = RandomHash().partition(powerlaw_graph, 8)
        validate_partition(powerlaw_graph.edges, result.assignments, 8)

    def test_roughly_balanced(self, powerlaw_graph):
        result = RandomHash().partition(powerlaw_graph, 4)
        assert result.measured_alpha < 1.3

    def test_duplicate_edges_colocated(self):
        """Hashing on the (u, v) pair maps duplicates identically."""
        from repro.graph import Graph

        g = Graph([(0, 1)] * 10 + [(2, 3)] * 10)
        result = RandomHash().partition(g, 4)
        assert len(set(result.assignments[:10].tolist())) == 1
        assert len(set(result.assignments[10:].tolist())) == 1

    def test_worst_quality_of_stateless(self, social_graph):
        """Random hashing loses to degree-aware DBH on skewed graphs."""
        rand = RandomHash().partition(social_graph, 16)
        dbh = DBH().partition(social_graph, 16)
        assert dbh.replication_factor < rand.replication_factor
